//! Table-1 *shape* assertions on a reduced instance: the qualitative
//! relationships the paper reports must hold in this reproduction —
//! who wins on which objective, and by roughly what kind of margin.

use ff_bench::{run_method, MethodBudget, MethodId};
use fusionfission::atc::{FabopConfig, FabopInstance};
use fusionfission::prelude::*;
use std::collections::HashMap;
use std::time::Duration;

fn run_all(g: &fusionfission::graph::Graph, k: usize) -> HashMap<MethodId, Partition> {
    let budget = MethodBudget {
        time: Duration::from_secs(4),
        steps: 150_000,
    };
    MethodId::all()
        .into_iter()
        .map(|m| {
            (
                m,
                run_method(m, g, k, Objective::MCut, budget, 11).partition,
            )
        })
        .collect()
}

#[test]
fn table1_qualitative_shape() {
    let inst = FabopInstance::scaled(200, &FabopConfig::default());
    let g = &inst.graph;
    let k = 8;
    let partitions = run_all(g, k);
    let mcut = |m: MethodId| Objective::MCut.evaluate(g, &partitions[&m]);
    let cut = |m: MethodId| Objective::Cut.evaluate(g, &partitions[&m]);

    // 1. Unrefined linear bisection is by far the worst on Mcut (paper:
    //    2300 vs ≤ 120 for everything refined).
    let linear_mcut = mcut(MethodId::LinearBi);
    let ff_mcut = mcut(MethodId::FusionFission);
    assert!(
        linear_mcut > 2.0 * ff_mcut,
        "Linear(Bi) Mcut {linear_mcut} should dwarf FF {ff_mcut}"
    );

    // 2. KL refinement improves linear enormously (paper: 2300 → 89).
    let linear_kl = mcut(MethodId::LinearBiKl);
    assert!(
        linear_kl < linear_mcut,
        "KL must improve Linear(Bi): {linear_mcut} → {linear_kl}"
    );

    // 3. Fusion–fission is the best metaheuristic on Mcut, and beats the
    //    unrefined constructive methods (paper: FF first on all columns).
    for m in [
        MethodId::Percolation,
        MethodId::LinearBi,
        MethodId::SpectralLancBi,
        MethodId::SpectralLancOct,
        MethodId::MultilevelBi,
    ] {
        assert!(
            ff_mcut <= mcut(m) * 1.05,
            "FF Mcut {ff_mcut} should beat {:?} ({})",
            m,
            mcut(m)
        );
    }

    // 4. Percolation alone is mid-table at best: worse than FF on Mcut.
    assert!(mcut(MethodId::Percolation) >= ff_mcut * 0.99);

    // 5. On plain Cut, the specialized constructive methods are
    //    competitive — the best spectral/multilevel Cut is within 1.35× of
    //    the best metaheuristic Cut (paper: they actually beat SA/ACO).
    let best_constructive_cut = [
        MethodId::SpectralLancBiKl,
        MethodId::SpectralRqiOctKl,
        MethodId::MultilevelBi,
        MethodId::MultilevelOct,
    ]
    .into_iter()
    .map(cut)
    .fold(f64::INFINITY, f64::min);
    let best_meta_cut = [
        MethodId::SimulatedAnnealing,
        MethodId::AntColony,
        MethodId::FusionFission,
    ]
    .into_iter()
    .map(cut)
    .fold(f64::INFINITY, f64::min);
    assert!(
        best_constructive_cut <= best_meta_cut * 1.35,
        "constructive methods should be Cut-competitive: {best_constructive_cut} vs {best_meta_cut}"
    );
}

#[test]
fn spectral_and_multilevel_are_fast() {
    // Figure 1's reference lines: the constructive methods finish in
    // "a few seconds" while metaheuristics run on. On the reduced
    // instance they must finish well under a second each (release-mode
    // numbers are far lower still).
    let inst = FabopInstance::scaled(150, &FabopConfig::default());
    let g = &inst.graph;
    let budget = MethodBudget::quick();
    for m in [MethodId::MultilevelBi, MethodId::SpectralLancBi] {
        let out = run_method(m, g, 8, Objective::MCut, budget, 1);
        assert!(
            out.elapsed < Duration::from_secs(30),
            "{:?} took {:?}",
            m,
            out.elapsed
        );
    }
}

//! Determinism contract: every algorithm in the suite is a pure function
//! of (graph, config, seed). Reproducibility is what makes the paper's
//! tables regenerable.

use fusionfission::atc::{FabopConfig, FabopInstance};
use fusionfission::metaheur::StopCondition;
use fusionfission::prelude::*;

#[test]
fn fabop_instance_is_stable() {
    let a = FabopInstance::scaled(120, &FabopConfig::default());
    let b = FabopInstance::scaled(120, &FabopConfig::default());
    assert_eq!(
        a.graph.edges().collect::<Vec<_>>(),
        b.graph.edges().collect::<Vec<_>>()
    );
    assert_eq!(a.positions, b.positions);
}

#[test]
fn spectral_is_deterministic() {
    let inst = FabopInstance::scaled(120, &FabopConfig::default());
    let cfg = SpectralConfig {
        seed: 5,
        ..Default::default()
    };
    let p1 = spectral_partition(&inst.graph, 6, &cfg);
    let p2 = spectral_partition(&inst.graph, 6, &cfg);
    assert_eq!(p1.assignment(), p2.assignment());
}

#[test]
fn multilevel_is_deterministic() {
    let inst = FabopInstance::scaled(120, &FabopConfig::default());
    let cfg = MultilevelConfig {
        seed: 9,
        ..Default::default()
    };
    let p1 = multilevel_partition(&inst.graph, 6, &cfg);
    let p2 = multilevel_partition(&inst.graph, 6, &cfg);
    assert_eq!(p1.assignment(), p2.assignment());
}

#[test]
fn metaheuristics_are_deterministic_under_step_budgets() {
    let inst = FabopInstance::scaled(100, &FabopConfig::default());
    let g = &inst.graph;

    let sa = |seed| {
        SimulatedAnnealing::new(
            g,
            5,
            SimulatedAnnealingConfig {
                seed,
                stop: StopCondition::steps(10_000),
                ..Default::default()
            },
        )
        .run()
    };
    assert_eq!(sa(4).best.assignment(), sa(4).best.assignment());
    // different seeds explore differently
    assert_ne!(sa(4).best_value, sa(5).best_value);

    let ff = |seed| FusionFission::new(g, FusionFissionConfig::fast(5), seed).run();
    assert_eq!(ff(7).best.assignment(), ff(7).best.assignment());

    let aco = |seed| {
        AntColony::new(
            g,
            5,
            AntColonyConfig {
                seed,
                stop: StopCondition::steps(300),
                ..Default::default()
            },
        )
        .run()
    };
    assert_eq!(aco(2).best.assignment(), aco(2).best.assignment());
}

#[test]
fn ensemble_is_thread_schedule_independent() {
    let inst = FabopInstance::scaled(100, &FabopConfig::default());
    let g = &inst.graph;
    let base = FusionFissionConfig::fast(5);
    for islands in [1usize, 4] {
        let run = |max_threads: usize| {
            Solver::on(g)
                .config(base)
                .islands(islands)
                .migration_interval(400)
                .threads(max_threads)
                .seed(99)
                .run()
                .unwrap()
        };
        // Two invocations with the same root seed are identical…
        let a = run(0);
        let b = run(0);
        assert_eq!(a.best.assignment(), b.best.assignment());
        assert_eq!(a.best_value, b.best_value);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.migrations_adopted, b.migrations_adopted);
        // …and so is a run squeezed through a single thread (scheduling
        // cannot matter because the reduction is deterministic).
        let c = run(1);
        assert_eq!(a.best.assignment(), c.best.assignment());
        assert_eq!(a.best_value, c.best_value);
        // Invariant: the ensemble's best is the min over island bests.
        let min = a
            .islands
            .iter()
            .map(|r| r.best_value)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(a.best_value, min);
        assert_eq!(a.islands.len(), islands);
    }
}

#[test]
fn solver_policies_and_pareto_are_deterministic() {
    use fusionfission::partition::{dominates, Objective};
    let inst = FabopInstance::scaled(100, &FabopConfig::default());
    let g = &inst.graph;
    // Every migration policy re-runs byte-identically.
    for policy in [
        MigrationPolicyId::ReplaceIfBetter,
        MigrationPolicyId::Combine,
        MigrationPolicyId::Adaptive,
    ] {
        let run = || {
            Solver::on(g)
                .config(FusionFissionConfig::fast(5))
                .islands(3)
                .migration(policy.build())
                .migration_interval(300)
                .seed(17)
                .run()
                .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.best.assignment(), b.best.assignment(), "{policy:?}");
        assert_eq!(a.migrations_adopted, b.migrations_adopted, "{policy:?}");
    }
    // A mixed-objective run returns a deterministic non-dominated front.
    let run = || {
        Solver::on(g)
            .config(FusionFissionConfig::fast(5))
            .islands(3)
            .objectives([Objective::Cut, Objective::NCut, Objective::MCut])
            .reduction(ParetoFront)
            .seed(23)
            .run()
            .unwrap()
    };
    let (a, b) = (run(), run());
    let (fa, fb) = (a.pareto.unwrap(), b.pareto.unwrap());
    assert_eq!(fa.points.len(), fb.points.len());
    for (x, y) in fa.points.iter().zip(&fb.points) {
        assert_eq!(x.island, y.island);
        assert_eq!(x.values, y.values);
    }
    for x in &fa.points {
        for y in &fa.points {
            assert!(x.island == y.island || !dominates(&x.values, &y.values));
        }
    }
}

#[test]
fn percolation_is_deterministic() {
    let inst = FabopInstance::scaled(100, &FabopConfig::default());
    let cfg = PercolationConfig {
        seed: 12,
        ..Default::default()
    };
    let p1 = percolation_partition(&inst.graph, 7, &cfg);
    let p2 = percolation_partition(&inst.graph, 7, &cfg);
    assert_eq!(p1.assignment(), p2.assignment());
}

/// Distributed islands keep the same contract across *process
/// boundaries*: federated workers (two live servers driven over TCP)
/// produce bytes identical to the in-process [`Solver`] — on the pinned
/// golden instance and on a migration-heavy combine run.
#[test]
fn distributed_islands_match_in_process_goldens() {
    use fusionfission::engine::derive_seeds;
    use fusionfission::service::dist::{solve_distributed, DistOpts, DistSpec, WorkerSet};
    use fusionfission::service::{Client, GraphFormat, GraphSource, Server};

    const GRID: &str = "9 12\n2 4\n1 3 5\n2 6\n1 5 7\n2 4 6 8\n3 5 9\n4 8\n5 7 9\n6 8\n";
    let g = fusionfission::graph::io::read_metis(GRID.as_bytes()).unwrap();

    // Two real servers on ephemeral ports stand in for remote hosts.
    let servers: Vec<_> = (0..2)
        .map(|_| Server::bind("127.0.0.1:0", 2).unwrap().spawn().unwrap())
        .collect();
    let addrs: Vec<String> = servers.iter().map(|h| h.addr().to_string()).collect();

    let federate = |spec: &DistSpec| {
        solve_distributed(
            &g,
            spec,
            &WorkerSet::Connect {
                addrs: addrs.clone(),
            },
            &DistOpts::default(),
            &mut |_, _| {},
        )
        .unwrap()
    };
    let spec = |seed: u64, steps: u64, migration: MigrationPolicyId| DistSpec {
        instance: "grid".into(),
        source: GraphSource::Data(GRID.into()),
        format: GraphFormat::Metis,
        k: 2,
        steps,
        seeds: derive_seeds(seed, 4),
        objectives: vec![fusionfission::partition::Objective::MCut; 4],
        interval: 1024,
        migration,
        pareto: false,
    };

    // Golden 1: the pinned instance. The energy is part of the contract.
    let local = Solver::on(&g)
        .k(2)
        .islands(4)
        .steps(20_000)
        .seed(7)
        .run()
        .unwrap();
    assert!(
        (local.best_value - 0.964286).abs() < 5e-7,
        "pinned golden moved: {}",
        local.best_value
    );
    let dist = federate(&spec(7, 20_000, MigrationPolicyId::ReplaceIfBetter));
    assert_eq!(dist.best.assignment(), local.best.assignment());
    assert_eq!(dist.best_value, local.best_value);
    assert_eq!(dist.steps, local.steps);
    assert_eq!(dist.migrations_adopted, local.migrations_adopted);

    // Golden 2: a 4-island combine-migration (crossover) run.
    let local = Solver::on(&g)
        .k(2)
        .islands(4)
        .migration(Combine)
        .steps(8_000)
        .seed(13)
        .run()
        .unwrap();
    let dist = federate(&spec(13, 8_000, MigrationPolicyId::Combine));
    assert_eq!(dist.best.assignment(), local.best.assignment());
    assert_eq!(dist.best_value, local.best_value);
    assert_eq!(dist.migrations_adopted, local.migrations_adopted);
    for (a, b) in dist.islands.iter().zip(&local.islands) {
        assert_eq!(a.best.assignment(), b.best.assignment());
        assert_eq!(a.steps, b.steps);
    }

    for handle in servers {
        Client::connect(handle.addr()).unwrap().shutdown().unwrap();
        handle.join().unwrap();
    }
}

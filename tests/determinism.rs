//! Determinism contract: every algorithm in the suite is a pure function
//! of (graph, config, seed). Reproducibility is what makes the paper's
//! tables regenerable.

use fusionfission::atc::{FabopConfig, FabopInstance};
use fusionfission::metaheur::StopCondition;
use fusionfission::prelude::*;

#[test]
fn fabop_instance_is_stable() {
    let a = FabopInstance::scaled(120, &FabopConfig::default());
    let b = FabopInstance::scaled(120, &FabopConfig::default());
    assert_eq!(
        a.graph.edges().collect::<Vec<_>>(),
        b.graph.edges().collect::<Vec<_>>()
    );
    assert_eq!(a.positions, b.positions);
}

#[test]
fn spectral_is_deterministic() {
    let inst = FabopInstance::scaled(120, &FabopConfig::default());
    let cfg = SpectralConfig {
        seed: 5,
        ..Default::default()
    };
    let p1 = spectral_partition(&inst.graph, 6, &cfg);
    let p2 = spectral_partition(&inst.graph, 6, &cfg);
    assert_eq!(p1.assignment(), p2.assignment());
}

#[test]
fn multilevel_is_deterministic() {
    let inst = FabopInstance::scaled(120, &FabopConfig::default());
    let cfg = MultilevelConfig {
        seed: 9,
        ..Default::default()
    };
    let p1 = multilevel_partition(&inst.graph, 6, &cfg);
    let p2 = multilevel_partition(&inst.graph, 6, &cfg);
    assert_eq!(p1.assignment(), p2.assignment());
}

#[test]
fn metaheuristics_are_deterministic_under_step_budgets() {
    let inst = FabopInstance::scaled(100, &FabopConfig::default());
    let g = &inst.graph;

    let sa = |seed| {
        SimulatedAnnealing::new(
            g,
            5,
            SimulatedAnnealingConfig {
                seed,
                stop: StopCondition::steps(10_000),
                ..Default::default()
            },
        )
        .run()
    };
    assert_eq!(sa(4).best.assignment(), sa(4).best.assignment());
    // different seeds explore differently
    assert_ne!(sa(4).best_value, sa(5).best_value);

    let ff = |seed| FusionFission::new(g, FusionFissionConfig::fast(5), seed).run();
    assert_eq!(ff(7).best.assignment(), ff(7).best.assignment());

    let aco = |seed| {
        AntColony::new(
            g,
            5,
            AntColonyConfig {
                seed,
                stop: StopCondition::steps(300),
                ..Default::default()
            },
        )
        .run()
    };
    assert_eq!(aco(2).best.assignment(), aco(2).best.assignment());
}

#[test]
fn ensemble_is_thread_schedule_independent() {
    let inst = FabopInstance::scaled(100, &FabopConfig::default());
    let g = &inst.graph;
    let base = FusionFissionConfig::fast(5);
    for islands in [1usize, 4] {
        let run = |max_threads: usize| {
            Solver::on(g)
                .config(base)
                .islands(islands)
                .migration_interval(400)
                .threads(max_threads)
                .seed(99)
                .run()
                .unwrap()
        };
        // Two invocations with the same root seed are identical…
        let a = run(0);
        let b = run(0);
        assert_eq!(a.best.assignment(), b.best.assignment());
        assert_eq!(a.best_value, b.best_value);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.migrations_adopted, b.migrations_adopted);
        // …and so is a run squeezed through a single thread (scheduling
        // cannot matter because the reduction is deterministic).
        let c = run(1);
        assert_eq!(a.best.assignment(), c.best.assignment());
        assert_eq!(a.best_value, c.best_value);
        // Invariant: the ensemble's best is the min over island bests.
        let min = a
            .islands
            .iter()
            .map(|r| r.best_value)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(a.best_value, min);
        assert_eq!(a.islands.len(), islands);
    }
}

#[test]
fn solver_policies_and_pareto_are_deterministic() {
    use fusionfission::partition::{dominates, Objective};
    let inst = FabopInstance::scaled(100, &FabopConfig::default());
    let g = &inst.graph;
    // Every migration policy re-runs byte-identically.
    for policy in [
        MigrationPolicyId::ReplaceIfBetter,
        MigrationPolicyId::Combine,
        MigrationPolicyId::Adaptive,
    ] {
        let run = || {
            Solver::on(g)
                .config(FusionFissionConfig::fast(5))
                .islands(3)
                .migration(policy.build())
                .migration_interval(300)
                .seed(17)
                .run()
                .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.best.assignment(), b.best.assignment(), "{policy:?}");
        assert_eq!(a.migrations_adopted, b.migrations_adopted, "{policy:?}");
    }
    // A mixed-objective run returns a deterministic non-dominated front.
    let run = || {
        Solver::on(g)
            .config(FusionFissionConfig::fast(5))
            .islands(3)
            .objectives([Objective::Cut, Objective::NCut, Objective::MCut])
            .reduction(ParetoFront)
            .seed(23)
            .run()
            .unwrap()
    };
    let (a, b) = (run(), run());
    let (fa, fb) = (a.pareto.unwrap(), b.pareto.unwrap());
    assert_eq!(fa.points.len(), fb.points.len());
    for (x, y) in fa.points.iter().zip(&fb.points) {
        assert_eq!(x.island, y.island);
        assert_eq!(x.values, y.values);
    }
    for x in &fa.points {
        for y in &fa.points {
            assert!(x.island == y.island || !dominates(&x.values, &y.values));
        }
    }
}

#[test]
fn percolation_is_deterministic() {
    let inst = FabopInstance::scaled(100, &FabopConfig::default());
    let cfg = PercolationConfig {
        seed: 12,
        ..Default::default()
    };
    let p1 = percolation_partition(&inst.graph, 7, &cfg);
    let p2 = percolation_partition(&inst.graph, 7, &cfg);
    assert_eq!(p1.assignment(), p2.assignment());
}

//! Determinism contract: every algorithm in the suite is a pure function
//! of (graph, config, seed). Reproducibility is what makes the paper's
//! tables regenerable.

use fusionfission::atc::{FabopConfig, FabopInstance};
use fusionfission::metaheur::StopCondition;
use fusionfission::prelude::*;

#[test]
fn fabop_instance_is_stable() {
    let a = FabopInstance::scaled(120, &FabopConfig::default());
    let b = FabopInstance::scaled(120, &FabopConfig::default());
    assert_eq!(
        a.graph.edges().collect::<Vec<_>>(),
        b.graph.edges().collect::<Vec<_>>()
    );
    assert_eq!(a.positions, b.positions);
}

#[test]
fn spectral_is_deterministic() {
    let inst = FabopInstance::scaled(120, &FabopConfig::default());
    let cfg = SpectralConfig {
        seed: 5,
        ..Default::default()
    };
    let p1 = spectral_partition(&inst.graph, 6, &cfg);
    let p2 = spectral_partition(&inst.graph, 6, &cfg);
    assert_eq!(p1.assignment(), p2.assignment());
}

#[test]
fn multilevel_is_deterministic() {
    let inst = FabopInstance::scaled(120, &FabopConfig::default());
    let cfg = MultilevelConfig {
        seed: 9,
        ..Default::default()
    };
    let p1 = multilevel_partition(&inst.graph, 6, &cfg);
    let p2 = multilevel_partition(&inst.graph, 6, &cfg);
    assert_eq!(p1.assignment(), p2.assignment());
}

#[test]
fn metaheuristics_are_deterministic_under_step_budgets() {
    let inst = FabopInstance::scaled(100, &FabopConfig::default());
    let g = &inst.graph;

    let sa = |seed| {
        SimulatedAnnealing::new(
            g,
            5,
            SimulatedAnnealingConfig {
                seed,
                stop: StopCondition::steps(10_000),
                ..Default::default()
            },
        )
        .run()
    };
    assert_eq!(sa(4).best.assignment(), sa(4).best.assignment());
    // different seeds explore differently
    assert_ne!(sa(4).best_value, sa(5).best_value);

    let ff = |seed| FusionFission::new(g, FusionFissionConfig::fast(5), seed).run();
    assert_eq!(ff(7).best.assignment(), ff(7).best.assignment());

    let aco = |seed| {
        AntColony::new(
            g,
            5,
            AntColonyConfig {
                seed,
                stop: StopCondition::steps(300),
                ..Default::default()
            },
        )
        .run()
    };
    assert_eq!(aco(2).best.assignment(), aco(2).best.assignment());
}

#[test]
fn ensemble_is_thread_schedule_independent() {
    let inst = FabopInstance::scaled(100, &FabopConfig::default());
    let g = &inst.graph;
    let base = FusionFissionConfig::fast(5);
    for islands in [1usize, 4] {
        let run = |max_threads: usize| {
            let mut cfg = EnsembleConfig::new(base, islands);
            cfg.migration_interval = 400;
            cfg.max_threads = max_threads;
            Ensemble::new(g, cfg, 99).run()
        };
        // Two invocations with the same root seed are identical…
        let a = run(0);
        let b = run(0);
        assert_eq!(a.best.assignment(), b.best.assignment());
        assert_eq!(a.best_value, b.best_value);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.migrations_adopted, b.migrations_adopted);
        // …and so is a run squeezed through a single thread (scheduling
        // cannot matter because the reduction is deterministic).
        let c = run(1);
        assert_eq!(a.best.assignment(), c.best.assignment());
        assert_eq!(a.best_value, c.best_value);
        // Invariant: the ensemble's best is the min over island bests.
        let min = a
            .islands
            .iter()
            .map(|r| r.best_value)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(a.best_value, min);
        assert_eq!(a.islands.len(), islands);
    }
}

#[test]
fn percolation_is_deterministic() {
    let inst = FabopInstance::scaled(100, &FabopConfig::default());
    let cfg = PercolationConfig {
        seed: 12,
        ..Default::default()
    };
    let p1 = percolation_partition(&inst.graph, 7, &cfg);
    let p2 = percolation_partition(&inst.graph, 7, &cfg);
    assert_eq!(p1.assignment(), p2.assignment());
}

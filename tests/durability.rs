//! Whole-system durability: a journaled server's state survives a
//! restart, and a resubmitted step-budgeted job reproduces the exact
//! bytes the first life produced — the crash-recovery contract end to
//! end, in one process.

use ff_service::{
    Client, Event, GraphFormat, GraphSource, JobRequest, JobStatus, Server, ServerConfig,
};

fn journaled(path: &str) -> ServerConfig {
    ServerConfig {
        workers: 2,
        http: Some("127.0.0.1:0".into()),
        journal: Some(path.to_string()),
        ..ServerConfig::default()
    }
}

#[test]
fn journaled_server_restores_history_and_reruns_byte_identically() {
    let path = std::env::temp_dir().join(format!("ff-durability-{}.ndjson", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let path = path.to_string_lossy().into_owned();

    let g = ff_graph::generators::random_geometric(40, 0.3, 5);
    let mut metis = Vec::new();
    ff_graph::io::write_metis(&g, &mut metis).unwrap();
    let metis = String::from_utf8(metis).unwrap();
    let job = JobRequest {
        steps: Some(10_000),
        seed: 7,
        ..JobRequest::new("geo40", 3)
    };

    // Life one: run the job, remember its bytes, exit cleanly.
    let handle = Server::bind_with("127.0.0.1:0", journaled(&path))
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .load(
            "geo40",
            GraphSource::Data(metis.clone()),
            GraphFormat::Metis,
        )
        .unwrap();
    let id = client.submit(&job).unwrap();
    let (_, first) = client.wait_done(id).unwrap();
    assert_eq!(first.status, JobStatus::Completed);
    client.shutdown().unwrap();
    handle.join().unwrap();

    // Life two: the journal restores the finished job as observable
    // history, and the same spec lands the same bytes.
    let handle = Server::bind_with("127.0.0.1:0", journaled(&path))
        .unwrap()
        .spawn()
        .unwrap();
    let replay = handle.replay_summary().unwrap();
    assert_eq!((replay.finished, replay.resumed, replay.skipped), (1, 0, 0));
    let mut client = Client::connect(handle.addr()).unwrap();
    let Event::Stats(stats) = client.stats().unwrap() else {
        panic!("expected stats");
    };
    assert_eq!((stats.jobs_submitted, stats.jobs_done), (1, 1));

    let rerun = client.submit(&job).unwrap();
    assert!(rerun > id, "job ids must not be reused across lives");
    let (_, second) = client.wait_done(rerun).unwrap();
    assert_eq!(second.value, first.value);
    assert_eq!(
        second.assignment, first.assignment,
        "step-budgeted reruns across a restart must be byte-identical"
    );
    client.shutdown().unwrap();
    handle.join().unwrap();
    let _ = std::fs::remove_file(&path);
}

//! Cross-crate property-based tests: the invariants the whole suite rests
//! on, exercised with randomly generated graphs and operation sequences.

use ff_graph::{coarsen, heavy_edge_matching, GraphBuilder};
use fusionfission::graph::Graph;
use fusionfission::metaheur::StopCondition;
use fusionfission::prelude::*;
use proptest::prelude::*;

/// Strategy: a connected-ish random weighted graph with 4–40 vertices.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (4usize..40, any::<u64>()).prop_map(|(n, seed)| {
        use rand::prelude::*;
        use rand_chacha::ChaCha8Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        // random spanning tree for connectivity
        for v in 1..n {
            let u = rng.gen_range(0..v);
            b.add_edge(u as u32, v as u32, rng.gen_range(0.5..4.0));
        }
        // extra random edges
        let extra = rng.gen_range(0..(2 * n));
        for _ in 0..extra {
            let u = rng.gen_range(0..n) as u32;
            let v = rng.gen_range(0..n) as u32;
            if u != v {
                b.add_edge(u, v, rng.gen_range(0.1..5.0));
            }
        }
        b.build()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn incremental_objectives_match_fresh_evaluation(
        g in arb_graph(),
        seed in any::<u64>(),
    ) {
        use rand::prelude::*;
        use rand_chacha::ChaCha8Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let k = rng.gen_range(2..5usize);
        let p = Partition::random(&g, k, seed);
        let mut st = fusionfission::partition::CutState::new(&g, p);
        for _ in 0..60 {
            let v = rng.gen_range(0..g.num_vertices()) as u32;
            let to = rng.gen_range(0..k) as u32;
            st.move_vertex(v, to);
        }
        prop_assert!(st.drift() < 1e-7, "drift = {}", st.drift());
        for obj in Objective::all() {
            let incremental = st.objective(obj);
            let fresh = obj.evaluate(&g, st.partition());
            prop_assert!(
                (incremental - fresh).abs() < 1e-7
                    || (incremental.is_infinite() && fresh.is_infinite()),
                "{obj}: {incremental} vs {fresh}"
            );
        }
    }

    /// `CutState::move_delta` must agree with a full `Objective::evaluate`
    /// re-scoring after the move, for all three objectives — the
    /// incremental hot path every metaheuristic (and the `ff-engine`
    /// ensemble on top of them) trusts on every step.
    #[test]
    fn move_delta_agrees_with_full_rescoring(
        g in arb_graph(),
        seed in any::<u64>(),
    ) {
        use rand::prelude::*;
        use rand_chacha::ChaCha8Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let k = rng.gen_range(2..5usize);
        let mut st = fusionfission::partition::CutState::new(
            &g,
            Partition::random(&g, k, seed),
        );
        for _ in 0..40 {
            let v = rng.gen_range(0..g.num_vertices()) as u32;
            let to = rng.gen_range(0..k) as u32;
            let before: Vec<f64> = Objective::all()
                .iter()
                .map(|obj| obj.evaluate(&g, st.partition()))
                .collect();
            let deltas: Vec<f64> = Objective::all()
                .iter()
                .map(|obj| st.move_delta(*obj, v, to))
                .collect();
            st.move_vertex(v, to);
            for (obj, (b, d)) in Objective::all()
                .iter()
                .zip(before.iter().zip(deltas.iter()))
            {
                let after = obj.evaluate(&g, st.partition());
                // Infinities (hollow parts under Mcut) make the global
                // difference meaningless (∞−∞); the finite regime is the
                // hot path the metaheuristics rely on.
                if b.is_finite() && d.is_finite() && after.is_finite() {
                    prop_assert!(
                        ((after - b) - d).abs() < 1e-7,
                        "{obj}: predicted delta {d}, actual {}",
                        after - b
                    );
                }
            }
        }
    }

    #[test]
    fn coarsening_preserves_weight_invariants(
        g in arb_graph(),
        seed in any::<u64>(),
    ) {
        let m = heavy_edge_matching(&g, seed);
        let c = coarsen(&g, &m);
        prop_assert!(
            (c.graph.total_vertex_weight() - g.total_vertex_weight()).abs() < 1e-9
        );
        prop_assert!(c.graph.total_edge_weight() <= g.total_edge_weight() + 1e-9);
        // projection is a total surjective map
        let nc = c.graph.num_vertices();
        let mut seen = vec![false; nc];
        for &cv in &c.fine_to_coarse {
            prop_assert!((cv as usize) < nc);
            seen[cv as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// The full coarsening hierarchy (not just one level) conserves total
    /// vertex weight exactly, never grows total edge weight, and strictly
    /// shrinks the graph at every level — the invariants the multilevel
    /// V-cycle's "solve coarse, project fine" logic rests on.
    #[test]
    fn hierarchy_preserves_weights_at_every_level(
        g in arb_graph(),
        seed in any::<u64>(),
    ) {
        use ff_graph::Hierarchy;
        let target = (g.num_vertices() / 4).max(2);
        let h = Hierarchy::build(&g, target, seed);
        let mut prev_n = g.num_vertices();
        for level in h.levels() {
            let c = &level.graph;
            prop_assert!(
                (c.total_vertex_weight() - g.total_vertex_weight()).abs() < 1e-9,
                "vertex weight drifted at a level"
            );
            prop_assert!(c.total_edge_weight() <= g.total_edge_weight() + 1e-9);
            prop_assert!(c.num_vertices() < prev_n, "coarsening must shrink");
            prev_n = c.num_vertices();
        }
    }

    /// Projecting a coarse partition down the whole hierarchy preserves
    /// the Cut objective *exactly*: merged vertices share a part, so every
    /// cut edge of the fine partition maps to coarse cut weight and vice
    /// versa. (NCut/MCut renormalize by level-dependent volumes, so only
    /// Cut admits this bitwise-style identity.)
    #[test]
    fn projection_round_trips_the_cut_objective(
        g in arb_graph(),
        seed in any::<u64>(),
    ) {
        use ff_graph::Hierarchy;
        let target = (g.num_vertices() / 4).max(2);
        let h = Hierarchy::build(&g, target, seed);
        let coarsest = h.coarsest(&g);
        let k = 2 + (seed % 3) as usize;
        if k > coarsest.num_vertices() {
            return Ok(());
        }
        let coarse = Partition::random(coarsest, k, seed ^ 0x9e37);
        let coarse_cut = Objective::Cut.evaluate(coarsest, &coarse);
        let fine_asg = h.project_to_finest(coarse.assignment());
        let fine = Partition::from_assignment(&g, fine_asg, k);
        let fine_cut = Objective::Cut.evaluate(&g, &fine);
        prop_assert!(
            (fine_cut - coarse_cut).abs() <= 1e-9 * (1.0 + coarse_cut.abs()),
            "cut changed under projection: coarse {coarse_cut} vs fine {fine_cut}"
        );
    }

    /// The V-cycle driver refines monotonically at every level, under
    /// every objective, and lands on a partition whose incremental value
    /// matches a fresh evaluation on the finest graph.
    #[test]
    fn vcycle_refine_up_is_monotone_for_all_objectives(
        g in arb_graph(),
        seed in any::<u64>(),
    ) {
        use fusionfission::multilevel::{Vcycle, VcycleOpts};
        let opts = VcycleOpts {
            coarsen_until: (g.num_vertices() / 3).max(2),
            refine_passes: 4,
            seed,
            min_coarse_vertices: 2,
        };
        let vc = Vcycle::new(&g, opts);
        let k = 2 + (seed % 3) as usize;
        if k > vc.coarsest().num_vertices() {
            return Ok(());
        }
        let coarse = Partition::random(vc.coarsest(), k, seed);
        for obj in Objective::all() {
            let start = obj.evaluate(vc.coarsest(), &coarse);
            let (refined, reports) = vc.refine_up(&coarse, obj);
            prop_assert_eq!(refined.num_vertices(), g.num_vertices());
            for r in &reports {
                prop_assert!(
                    r.value_after <= r.value_before + 1e-9,
                    "refinement worsened level {}: {} -> {}",
                    r.level, r.value_before, r.value_after
                );
            }
            let fresh = obj.evaluate(&g, &refined);
            if let Some(last) = reports.last() {
                prop_assert!(
                    (last.value_after - fresh).abs() < 1e-7
                        || (last.value_after.is_infinite() && fresh.is_infinite()),
                    "{obj}: report {} vs fresh {}",
                    last.value_after, fresh
                );
            }
            // Cut projects exactly, so for Cut the refined value can never
            // exceed where the coarse search left off.
            if obj == Objective::Cut && start.is_finite() {
                prop_assert!(fresh <= start + 1e-9);
            }
        }
    }

    #[test]
    fn fusion_fission_preserves_vertex_universe(
        g in arb_graph(),
        seed in any::<u64>(),
    ) {
        let k = 2 + (seed % 3) as usize;
        if k > g.num_vertices() {
            return Ok(());
        }
        let cfg = FusionFissionConfig {
            stop: StopCondition::steps(300),
            ..FusionFissionConfig::fast(k)
        };
        let res = FusionFission::new(&g, cfg, seed).run();
        prop_assert!(res.best.validate(&g));
        let total: usize = (0..res.best.num_parts() as u32)
            .map(|p| res.best.part_size(p))
            .sum();
        prop_assert_eq!(total, g.num_vertices());
    }

    #[test]
    fn percolation_total_and_deterministic(
        g in arb_graph(),
        seed in any::<u64>(),
    ) {
        let k = 1 + (seed % 4) as usize;
        if k > g.num_vertices() {
            return Ok(());
        }
        let cfg = PercolationConfig { seed, ..Default::default() };
        let p = percolation_partition(&g, k, &cfg);
        prop_assert!(p.validate(&g));
        prop_assert_eq!(p.num_nonempty_parts(), k);
        let q = percolation_partition(&g, k, &cfg);
        prop_assert_eq!(p.assignment(), q.assignment());
    }

    #[test]
    fn spectral_bisection_never_empty_side(g in arb_graph()) {
        let p = spectral_partition(&g, 2, &SpectralConfig::default());
        prop_assert_eq!(p.num_nonempty_parts(), 2);
        prop_assert!(p.part_size(0) > 0 && p.part_size(1) > 0);
    }

    #[test]
    fn kl_and_fm_never_worsen(
        g in arb_graph(),
        seed in any::<u64>(),
    ) {
        use fusionfission::partition::CutState;
        use ff_partition::refine::{fm::FmOptions, kl::KlOptions};
        let p = Partition::random(&g, 2, seed);
        let before = Objective::Cut.evaluate(&g, &p);

        let mut st = CutState::new(&g, p.clone());
        ff_partition::kl_refine_bisection(&mut st, 0, 1, &KlOptions::default());
        prop_assert!(st.cut() <= before + 1e-9);

        let mut st = CutState::new(&g, p);
        ff_partition::fm_refine_bisection(&mut st, 0, 1, &FmOptions::default());
        prop_assert!(st.cut() <= before + 1e-9);
    }
}

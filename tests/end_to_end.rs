//! Cross-crate integration: every partitioning method in the suite runs
//! end-to-end on shared workloads and produces structurally valid results
//! with sane quality relationships.

use fusionfission::atc::{FabopConfig, FabopInstance};
use fusionfission::graph::generators::{grid2d, planted_partition};
use fusionfission::metaheur::StopCondition;
use fusionfission::multilevel::MultilevelMode;
use fusionfission::prelude::*;
use fusionfission::spectral::{RefineMethod, SectionMode};

fn small_fabop() -> FabopInstance {
    FabopInstance::scaled(150, &FabopConfig::default())
}

#[test]
fn all_families_produce_valid_k_partitions() {
    let inst = small_fabop();
    let g = &inst.graph;
    let k = 8;

    let partitions: Vec<(&str, Partition)> = vec![
        (
            "linear",
            linear_partition(
                g,
                k,
                fusionfission::spectral::LinearMode::Bisection,
                RefineMethod::Kl,
            ),
        ),
        (
            "spectral-bi",
            spectral_partition(g, k, &SpectralConfig::default()),
        ),
        (
            "spectral-oct",
            spectral_partition(
                g,
                k,
                &SpectralConfig {
                    mode: SectionMode::Octasection,
                    ..Default::default()
                },
            ),
        ),
        (
            "multilevel",
            multilevel_partition(g, k, &MultilevelConfig::default()),
        ),
        (
            "multilevel-kway",
            multilevel_partition(
                g,
                k,
                &MultilevelConfig {
                    mode: MultilevelMode::KWay,
                    ..Default::default()
                },
            ),
        ),
        (
            "percolation",
            percolation_partition(g, k, &PercolationConfig::default()),
        ),
        (
            "sa",
            SimulatedAnnealing::new(
                g,
                k,
                SimulatedAnnealingConfig {
                    stop: StopCondition::steps(20_000),
                    ..Default::default()
                },
            )
            .run()
            .best,
        ),
        (
            "aco",
            AntColony::new(
                g,
                k,
                AntColonyConfig {
                    stop: StopCondition::steps(400),
                    ..Default::default()
                },
            )
            .run()
            .best,
        ),
        (
            "ff",
            FusionFission::new(g, FusionFissionConfig::fast(k), 1)
                .run()
                .best,
        ),
    ];

    for (name, p) in &partitions {
        assert!(p.validate(g), "{name}: invalid partition");
        assert_eq!(p.num_nonempty_parts(), k, "{name}: wrong part count");
        for obj in Objective::all() {
            let v = obj.evaluate(g, p);
            assert!(v >= 0.0, "{name}: negative {obj}");
        }
    }
}

#[test]
fn refinement_only_improves_cut() {
    let inst = small_fabop();
    let g = &inst.graph;
    for k in [4usize, 8] {
        let plain = spectral_partition(g, k, &SpectralConfig::default());
        let kl = spectral_partition(
            g,
            k,
            &SpectralConfig {
                refine: RefineMethod::Kl,
                ..Default::default()
            },
        );
        let fm = spectral_partition(
            g,
            k,
            &SpectralConfig {
                refine: RefineMethod::Fm,
                ..Default::default()
            },
        );
        let c_plain = Objective::Cut.evaluate(g, &plain);
        let c_kl = Objective::Cut.evaluate(g, &kl);
        let c_fm = Objective::Cut.evaluate(g, &fm);
        assert!(c_kl <= c_plain + 1e-9, "KL worsened cut at k={k}");
        assert!(c_fm <= c_plain + 1e-9, "FM worsened cut at k={k}");
    }
}

#[test]
fn metaheuristics_beat_their_percolation_start_on_mcut() {
    let inst = small_fabop();
    let g = &inst.graph;
    let k = 8;
    let perc = percolation_partition(
        g,
        k,
        &PercolationConfig {
            seed: 3,
            ..Default::default()
        },
    );
    let perc_mcut = Objective::MCut.evaluate(g, &perc);

    let sa = SimulatedAnnealing::new(
        g,
        k,
        SimulatedAnnealingConfig {
            seed: 3,
            stop: StopCondition::steps(40_000),
            ..Default::default()
        },
    )
    .run();
    assert!(
        sa.best_value <= perc_mcut + 1e-9,
        "SA ({}) worse than its own start ({perc_mcut})",
        sa.best_value
    );

    let ff = FusionFission::new(
        g,
        FusionFissionConfig {
            stop: StopCondition::steps(6_000),
            ..FusionFissionConfig::standard(k)
        },
        3,
    )
    .run();
    assert!(
        ff.best_value <= perc_mcut + 1e-9,
        "FF ({}) worse than percolation ({perc_mcut})",
        ff.best_value
    );
}

#[test]
fn planted_structure_found_by_constructive_methods() {
    let g = planted_partition(4, 20, 0.6, 0.01, 77);
    let total = g.total_edge_weight();
    for (name, p) in [
        (
            "multilevel",
            multilevel_partition(&g, 4, &MultilevelConfig::default()),
        ),
        (
            "spectral+kl",
            spectral_partition(
                &g,
                4,
                &SpectralConfig {
                    refine: RefineMethod::Kl,
                    ..Default::default()
                },
            ),
        ),
    ] {
        let cut = Objective::Cut.evaluate(&g, &p);
        assert!(
            cut < 0.10 * total,
            "{name}: cut {cut} vs total {total} — planted structure missed"
        );
    }
}

#[test]
fn mesh_bisection_quality() {
    // On a 2D mesh the bisection optimum is a straight line; all serious
    // methods should land within 2× of it.
    let g = grid2d(16, 16);
    let optimal = 16.0;
    for (name, p) in [
        (
            "multilevel",
            multilevel_partition(&g, 2, &MultilevelConfig::default()),
        ),
        (
            "spectral",
            spectral_partition(&g, 2, &SpectralConfig::default()),
        ),
    ] {
        let cut = Objective::Cut.evaluate(&g, &p);
        assert!(
            cut <= 2.0 * optimal,
            "{name}: cut {cut} vs optimal {optimal}"
        );
    }
}

#[test]
fn hub_heavy_graphs_partition_cleanly() {
    // Barabási–Albert graphs stress balance: hubs attract everything.
    let g = fusionfission::graph::generators::barabasi_albert(150, 3, 3);
    for (name, p) in [
        (
            "multilevel",
            multilevel_partition(&g, 6, &MultilevelConfig::default()),
        ),
        (
            "percolation",
            percolation_partition(&g, 6, &PercolationConfig::default()),
        ),
        (
            "ff",
            FusionFission::new(&g, FusionFissionConfig::fast(6), 2)
                .run()
                .best,
        ),
    ] {
        assert!(p.validate(&g), "{name}");
        assert_eq!(p.num_nonempty_parts(), 6, "{name}");
    }
}

#[test]
fn warm_started_ff_beats_or_matches_multilevel() {
    let inst = small_fabop();
    let g = &inst.graph;
    let k = 8;
    let ml = multilevel_partition(g, k, &MultilevelConfig::default());
    let ml_mcut = Objective::MCut.evaluate(g, &ml);
    let refined = fusionfission::core::FusionFission::with_initial(
        g,
        FusionFissionConfig {
            stop: fusionfission::metaheur::StopCondition::steps(4_000),
            ..FusionFissionConfig::standard(k)
        },
        5,
        ml,
    )
    .run();
    assert!(
        refined.best_value <= ml_mcut + 1e-9,
        "FF polish worsened multilevel: {ml_mcut} → {}",
        refined.best_value
    );
}

#[test]
fn graph_io_roundtrip_preserves_partition_quality() {
    let inst = small_fabop();
    let g = &inst.graph;
    let mut buf = Vec::new();
    fusionfission::graph::io::write_metis(g, &mut buf).unwrap();
    let g2 = fusionfission::graph::io::read_metis(&buf[..]).unwrap();
    assert_eq!(g.num_vertices(), g2.num_vertices());
    assert_eq!(g.num_edges(), g2.num_edges());
    // Same seeds on the reread graph give identical partitions.
    let p1 = percolation_partition(g, 6, &PercolationConfig::default());
    let p2 = percolation_partition(&g2, 6, &PercolationConfig::default());
    assert_eq!(p1.assignment(), p2.assignment());
}

//! # ff-spectral — spectral graph partitioning (Chaco-style)
//!
//! Implements §2.1 of the paper:
//!
//! * [`laplacian`](mod@laplacian) — assembly of the combinatorial Laplacian `L = D − W`
//!   and the normalized Laplacian `L_sym = D^{-1/2} L D^{-1/2}` (the
//!   congruence transform that turns the Ncut/Mcut generalized
//!   eigenproblems `(D−W)x = λDx` / `(D−W)x = λWx` into standard ones),
//! * [`fiedler`] — the Fiedler vector via either **Lanczos** or
//!   **RQI/SYMMLQ** (the paper's `Lanc` and `RQI` rows),
//! * [`bisect`] — median-split spectral bisection and recursive bisection
//!   to arbitrary k, with optional KL/FM refinement at every level,
//! * [`octa`] — spectral quadrisection/octasection from 2–3 eigenvectors
//!   (Hendrickson–Leland multidimensional partitioning, the `Oct` rows),
//! * [`linear`] — the **Linear** baseline: vertex-index-order splits
//!   (Chaco's trivial scheme), with the same optional refinement.

pub mod bisect;
pub mod fiedler;
pub mod laplacian;
pub mod linear;
pub mod octa;

pub use bisect::{recursive_bisection, spectral_partition, RefineMethod, SpectralConfig};
pub use fiedler::{fiedler_vector, smallest_nontrivial_eigenvectors, SpectralSolver};
pub use laplacian::{laplacian, normalized_laplacian};
pub use linear::{linear_partition, LinearMode};
pub use octa::spectral_section;

/// How many parts each spectral division step produces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SectionMode {
    /// One eigenvector, two parts per step.
    Bisection,
    /// Three eigenvectors, eight parts per step.
    Octasection,
}

//! Spectral quadrisection and octasection.
//!
//! §2.1 of the paper: "To simultaneously cut the graph into 2ⁿ sets, we can
//! use the n top eigenvectors in the Fiedler order … The first eigenvector
//! gives a bisection, the second a quadrisection, the third an octasection."
//!
//! Following Hendrickson–Leland's multidimensional scheme in spirit, each
//! section step uses up to three non-trivial eigenvectors as coordinates
//! and splits hierarchically at weighted quantiles: u₂ divides the set in
//! two, u₃ divides each half, u₄ divides each quarter. Quantile (rather
//! than sign) thresholds keep the eight cells weight-balanced. Steps recurse
//! until `k` parts exist, so any `k` with more than 8 parts is handled by
//! recursion (32 = 8 × 4, as in the paper's experiments).

use crate::bisect::{RefineMethod, SpectralConfig};
use crate::fiedler::smallest_nontrivial_eigenvectors;
use ff_graph::{induced_subgraph, Graph, VertexId};
use ff_partition::refine::pairwise::{pairwise_refine_kway, PairwiseMethod, PairwiseOptions};
use ff_partition::{BalanceConstraint, CutState, Partition};

/// Spectral section with up-to-8-way steps (the paper's `Oct` rows).
///
/// # Panics
///
/// Panics if `k` is 0 or exceeds the vertex count.
pub fn spectral_section(g: &Graph, k: usize, cfg: &SpectralConfig) -> Partition {
    assert!(k >= 1, "k must be positive");
    assert!(k <= g.num_vertices().max(1), "more parts than vertices");
    let n = g.num_vertices();
    let mut assignment = vec![0u32; n];
    let members: Vec<VertexId> = g.vertices().collect();
    section_recursive(g, &members, k, 0, cfg, &mut assignment);
    Partition::from_assignment(g, assignment, k)
}

fn section_recursive(
    g: &Graph,
    members: &[VertexId],
    k: usize,
    base: u32,
    cfg: &SpectralConfig,
    assignment: &mut [u32],
) {
    if k <= 1 || members.len() <= 1 {
        for &v in members {
            assignment[v as usize] = base;
        }
        return;
    }
    // Arity of this step: 8, 4, or 2 — bounded by k and by subgraph size.
    let arity: usize = if k >= 8 && members.len() >= 8 {
        8
    } else if k >= 4 && members.len() >= 4 {
        4
    } else {
        2
    };
    let depth = arity.trailing_zeros() as usize; // 3, 2, 1 eigenvectors

    // Distribute k over `arity` cells as evenly as possible.
    let kq = k / arity;
    let kr = k % arity;
    let child_k: Vec<usize> = (0..arity).map(|i| kq + usize::from(i < kr)).collect();

    let sub = induced_subgraph(g, members);
    let m = members.len();
    let evecs = if sub.graph.num_edges() == 0 {
        // Degenerate subgraph: fall back to index coordinates.
        (0..depth)
            .map(|_| (0..m).map(|i| i as f64).collect::<Vec<f64>>())
            .collect::<Vec<_>>()
    } else {
        smallest_nontrivial_eigenvectors(&sub.graph, depth.min(m - 1), cfg.solver, cfg.seed)
    };

    // Hierarchical quantile split: cell id built bit by bit.
    let mut cell = vec![0u32; m];
    for (bit, coord) in evecs.iter().enumerate() {
        // For each existing cell prefix, split its members by this
        // eigenvector at the weight fraction implied by child_k.
        let prefixes: Vec<u32> = (0..(1u32 << bit)).collect();
        for prefix in prefixes {
            let group: Vec<u32> = (0..m as u32)
                .filter(|&v| cell[v as usize] == prefix)
                .collect();
            if group.is_empty() {
                continue;
            }
            // Weight fraction for the 0-branch of this prefix at this bit:
            // sum child_k of cells whose id extends prefix with bit 0.
            let (k0, k1) = branch_k(&child_k, prefix, bit, depth);
            if k0 == 0 {
                for &v in &group {
                    cell[v as usize] |= 1 << bit;
                }
                continue;
            }
            if k1 == 0 {
                continue; // all stay in 0-branch
            }
            let frac = k0 as f64 / (k0 + k1) as f64;
            let mut order = group.clone();
            order.sort_by(|&a, &b| {
                coord[a as usize]
                    .partial_cmp(&coord[b as usize])
                    .unwrap()
                    .then(a.cmp(&b))
            });
            let total_w: f64 = group.iter().map(|&v| sub.graph.vertex_weight(v)).sum();
            let target = total_w * frac;
            let mut acc = 0.0;
            let min_zero = k0.min(group.len());
            let max_zero = group.len().saturating_sub(k1);
            let mut zeros = 0usize;
            for (rank, &v) in order.iter().enumerate() {
                let take = (acc < target || zeros < min_zero) && zeros < max_zero.max(min_zero);
                if take && rank < group.len() {
                    acc += sub.graph.vertex_weight(v);
                    zeros += 1;
                } else {
                    cell[v as usize] |= 1 << bit;
                }
            }
        }
    }

    // Optional pairwise refinement of the cells on the subgraph.
    let live_cells = 1usize << depth;
    if cfg.refine != RefineMethod::None && live_cells > 1 {
        let p = Partition::from_assignment(&sub.graph, cell.clone(), live_cells);
        let counts: Vec<usize> = (0..live_cells as u32).map(|c| p.part_size(c)).collect();
        let mut st = CutState::new(&sub.graph, p);
        let method = match cfg.refine {
            RefineMethod::Kl => PairwiseMethod::Kl,
            RefineMethod::Fm => PairwiseMethod::Fm,
            RefineMethod::None => unreachable!(),
        };
        let ideal = sub.graph.total_vertex_weight() / live_cells as f64;
        pairwise_refine_kway(
            &mut st,
            &PairwiseOptions {
                method,
                max_rounds: 2,
                balance: BalanceConstraint {
                    lo: ideal * (1.0 - cfg.balance_eps),
                    hi: ideal * (1.0 + cfg.balance_eps),
                },
            },
        );
        let refined = st.into_partition();
        // Keep refinement only if no cell lost the capacity for its parts.
        let ok = (0..live_cells as u32)
            .all(|c| refined.part_size(c) >= child_k[c as usize].min(counts[c as usize]));
        if ok {
            for (i, c) in cell.iter_mut().enumerate() {
                *c = refined.part_of(i as VertexId);
            }
        }
    }

    // Recurse into cells.
    let mut next_base = base;
    for c in 0..live_cells as u32 {
        let kc = child_k[c as usize];
        let group: Vec<VertexId> = (0..m)
            .filter(|&i| cell[i] == c)
            .map(|i| sub.to_parent[i])
            .collect();
        if kc == 0 {
            // Shouldn't happen with balanced child_k, but place safely.
            for &v in &group {
                assignment[v as usize] = base;
            }
            continue;
        }
        section_recursive(g, &group, kc, next_base, cfg, assignment);
        next_base += kc as u32;
    }
}

/// `(k_zero, k_one)`: how many final parts land in the 0/1 branches of
/// `prefix` at `bit`, given per-cell part counts `child_k`.
fn branch_k(child_k: &[usize], prefix: u32, bit: usize, depth: usize) -> (usize, usize) {
    let mut k0 = 0;
    let mut k1 = 0;
    for (cell, &kc) in child_k.iter().enumerate() {
        let cell = cell as u32;
        // Cells whose low `bit` bits equal prefix belong to this group.
        if bit > 0 && (cell & ((1 << bit) - 1)) != prefix {
            continue;
        }
        if bit == 0 || depth >= bit {
            if (cell >> bit) & 1 == 0 {
                k0 += kc;
            } else {
                k1 += kc;
            }
        }
    }
    (k0, k1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SectionMode;
    use ff_graph::generators::{grid2d, planted_partition};
    use ff_partition::{imbalance, Objective};

    fn octa_cfg() -> SpectralConfig {
        SpectralConfig {
            mode: SectionMode::Octasection,
            ..Default::default()
        }
    }

    #[test]
    fn octasection_eight_parts() {
        let g = grid2d(8, 8);
        let p = spectral_section(&g, 8, &octa_cfg());
        assert_eq!(p.num_nonempty_parts(), 8);
        assert!(imbalance(&p) < 0.30, "imbalance {}", imbalance(&p));
    }

    #[test]
    fn quadrisection_four_parts() {
        let g = grid2d(10, 10);
        let p = spectral_section(&g, 4, &octa_cfg());
        assert_eq!(p.num_nonempty_parts(), 4);
        assert!(imbalance(&p) < 0.25);
    }

    #[test]
    fn thirty_two_parts_two_levels() {
        let g = grid2d(16, 16);
        let p = spectral_section(&g, 32, &octa_cfg());
        assert_eq!(p.num_nonempty_parts(), 32);
        assert!(imbalance(&p) < 0.5, "imbalance {}", imbalance(&p));
    }

    #[test]
    fn non_power_of_two_k() {
        let g = grid2d(9, 9);
        for k in [3usize, 6, 12] {
            let p = spectral_section(&g, k, &octa_cfg());
            assert_eq!(p.num_nonempty_parts(), k, "k = {k}");
        }
    }

    #[test]
    fn refinement_improves_or_equals() {
        let g = planted_partition(8, 8, 0.85, 0.04, 31);
        let plain = spectral_section(&g, 8, &octa_cfg());
        let refined = spectral_section(
            &g,
            8,
            &SpectralConfig {
                refine: RefineMethod::Kl,
                ..octa_cfg()
            },
        );
        let c0 = Objective::Cut.evaluate(&g, &plain);
        let c1 = Objective::Cut.evaluate(&g, &refined);
        assert!(c1 <= c0 + 1e-9, "KL worsened octasection: {c0} → {c1}");
    }

    #[test]
    fn two_parts_degenerates_to_bisection() {
        let g = grid2d(6, 6);
        let p = spectral_section(&g, 2, &octa_cfg());
        assert_eq!(p.num_nonempty_parts(), 2);
    }
}

//! Fiedler vectors: the eigen-engine behind spectral partitioning.

use crate::laplacian::laplacian;
use ff_graph::Graph;
use ff_linalg::{
    rayleigh_quotient_iteration, smallest_eigenpairs, IterativeSolveOptions, LanczosOptions,
    RqiOptions,
};

/// Which eigensolver computes the Fiedler vector — the paper's `Lanc` and
/// `RQI` method families (§2.1: "The Lanczos method is probably the most
/// known… But there exist also the RQI/Symmlq method").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpectralSolver {
    /// Lanczos with full reorthogonalization, run to convergence.
    Lanczos,
    /// Short Lanczos warm start, then Rayleigh quotient iteration with
    /// SYMMLQ inner solves (Chaco's RQI/Symmlq path).
    Rqi,
}

impl std::fmt::Display for SpectralSolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpectralSolver::Lanczos => write!(f, "Lanc"),
            SpectralSolver::Rqi => write!(f, "RQI"),
        }
    }
}

fn kernel_vector(n: usize) -> Vec<f64> {
    vec![1.0 / (n as f64).sqrt(); n]
}

/// The Fiedler vector (second-smallest Laplacian eigenvector) of `g`.
///
/// # Panics
///
/// Panics if `g` has fewer than 2 vertices.
pub fn fiedler_vector(g: &Graph, solver: SpectralSolver, seed: u64) -> Vec<f64> {
    smallest_nontrivial_eigenvectors(g, 1, solver, seed)
        .into_iter()
        .next()
        .expect("requested one eigenvector")
}

/// The `k` smallest non-trivial Laplacian eigenvectors of `g` in the
/// Fiedler order (λ₂ ≤ λ₃ ≤ …) — octasection needs three.
///
/// # Panics
///
/// Panics if `g` has fewer than `k + 1` vertices.
pub fn smallest_nontrivial_eigenvectors(
    g: &Graph,
    k: usize,
    solver: SpectralSolver,
    seed: u64,
) -> Vec<Vec<f64>> {
    let n = g.num_vertices();
    assert!(
        n > k,
        "need at least {} vertices for {k} eigenvectors",
        k + 1
    );
    let l = laplacian(g);
    let deflate = vec![kernel_vector(n)];

    match solver {
        SpectralSolver::Lanczos => {
            let opts = LanczosOptions {
                max_iter: 400.min(n),
                tol: 1e-7,
                seed,
                deflate,
            };
            smallest_eigenpairs(&l, k, &opts).vectors
        }
        SpectralSolver::Rqi => {
            // Rough Lanczos pass to land each eigenvector in its RQI basin,
            // then cubic-converging RQI polish with SYMMLQ inner solves.
            let rough_opts = LanczosOptions {
                max_iter: (6 * k + 40).min(n),
                tol: 1e-4,
                seed,
                deflate: deflate.clone(),
            };
            let rough = smallest_eigenpairs(&l, k, &rough_opts);
            let mut result = Vec::with_capacity(k);
            let mut deflate_acc = deflate;
            for x0 in rough.vectors.into_iter() {
                let opts = RqiOptions {
                    max_outer: 25,
                    tol: 1e-9,
                    inner: IterativeSolveOptions {
                        max_iter: (3 * n).min(1200),
                        rtol: 1e-8,
                    },
                    // Deflating previously found eigenvectors keeps RQI off
                    // already-claimed eigenpairs.
                    deflate: deflate_acc.clone(),
                };
                let refined = rayleigh_quotient_iteration(&l, &x0, &opts);
                deflate_acc.push(refined.vector.clone());
                result.push(refined.vector);
            }
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_graph::generators::{grid2d, path, two_cliques_bridge};
    use ff_linalg::vecops::dot;
    use std::f64::consts::PI;

    #[test]
    fn path_fiedler_matches_analytic() {
        let n = 20;
        let g = path(n);
        for solver in [SpectralSolver::Lanczos, SpectralSolver::Rqi] {
            let f = fiedler_vector(&g, solver, 3);
            // Analytic: cos(πk(i+1/2)/n) up to sign/scale; check monotone.
            let expect: Vec<f64> = (0..n)
                .map(|i| (PI * (i as f64 + 0.5) / n as f64).cos())
                .collect();
            let c = dot(&f, &expect).abs() / (dot(&f, &f).sqrt() * dot(&expect, &expect).sqrt());
            assert!(c > 0.999, "{solver}: cosine similarity {c}");
        }
    }

    #[test]
    fn fiedler_separates_two_cliques() {
        let g = two_cliques_bridge(6, 2.0, 0.1);
        for solver in [SpectralSolver::Lanczos, SpectralSolver::Rqi] {
            let f = fiedler_vector(&g, solver, 5);
            // All of clique 1 on one side of zero, clique 2 on the other.
            let side0: Vec<bool> = (0..6).map(|v| f[v] > 0.0).collect();
            let side1: Vec<bool> = (6..12).map(|v| f[v] > 0.0).collect();
            assert!(
                side0.iter().all(|&s| s == side0[0]),
                "{solver}: clique 1 split by Fiedler sign"
            );
            assert!(side1.iter().all(|&s| s == side1[0]));
            assert_ne!(side0[0], side1[0]);
        }
    }

    #[test]
    fn multiple_eigenvectors_orthogonal() {
        let g = grid2d(6, 6);
        let vs = smallest_nontrivial_eigenvectors(&g, 3, SpectralSolver::Lanczos, 1);
        assert_eq!(vs.len(), 3);
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert!(dot(&vs[i], &vs[j]).abs() < 1e-5, "({i},{j}) not orthogonal");
            }
            // orthogonal to constants
            let s: f64 = vs[i].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn rqi_and_lanczos_agree_on_fiedler_value() {
        let g = grid2d(5, 7);
        let l = laplacian(&g);
        let rayleigh = |x: &[f64]| {
            use ff_linalg::LinearOperator;
            let mut y = vec![0.0; x.len()];
            l.apply(x, &mut y);
            dot(x, &y) / dot(x, x)
        };
        let fl = fiedler_vector(&g, SpectralSolver::Lanczos, 2);
        let fr = fiedler_vector(&g, SpectralSolver::Rqi, 2);
        assert!(
            (rayleigh(&fl) - rayleigh(&fr)).abs() < 1e-6,
            "λ₂ mismatch: {} vs {}",
            rayleigh(&fl),
            rayleigh(&fr)
        );
    }
}

//! Laplacian matrix assembly.

use ff_graph::Graph;
use ff_linalg::CsrMatrix;

/// The combinatorial Laplacian `L = D − W` of `g`, where `D` is the
/// diagonal of weighted degrees and `W` the weighted adjacency matrix.
/// For a connected graph, `L` is PSD with a one-dimensional kernel spanned
/// by the constant vector; its second eigenpair is the Fiedler pair the
/// Cut-criterion spectral method uses.
pub fn laplacian(g: &Graph) -> CsrMatrix {
    let n = g.num_vertices();
    let mut triplets = Vec::with_capacity(2 * g.num_edges() + n);
    for v in g.vertices() {
        triplets.push((v as usize, v as usize, g.degree_weight(v)));
        for (u, w) in g.edges_of(v) {
            triplets.push((v as usize, u as usize, -w));
        }
    }
    CsrMatrix::from_triplets(n, &triplets)
}

/// The symmetric normalized Laplacian `L_sym = D^{-1/2} (D − W) D^{-1/2}`.
///
/// Solving `L_sym y = λ y` and substituting `x = D^{-1/2} y` solves the
/// Shi–Malik generalized system `(D − W) x = λ D x` (the Ncut relaxation).
/// The Mcut relaxation `(D − W) x = μ W x` has the *same eigenvectors*:
/// with `W = D − L`, it rewrites to `(D − W) x = (μ/(1+μ)) D x`, a monotone
/// reparameterization — so one solver serves both criteria.
///
/// Returns `(L_sym, d_inv_sqrt)`; isolated vertices (zero degree) get
/// `d_inv_sqrt = 0` and a unit diagonal entry, keeping the matrix PSD.
pub fn normalized_laplacian(g: &Graph) -> (CsrMatrix, Vec<f64>) {
    let n = g.num_vertices();
    let d_inv_sqrt: Vec<f64> = g
        .vertices()
        .map(|v| {
            let d = g.degree_weight(v);
            if d > 0.0 {
                1.0 / d.sqrt()
            } else {
                0.0
            }
        })
        .collect();
    let mut triplets = Vec::with_capacity(2 * g.num_edges() + n);
    for v in g.vertices() {
        let vi = v as usize;
        triplets.push((vi, vi, 1.0));
        for (u, w) in g.edges_of(v) {
            let ui = u as usize;
            triplets.push((vi, ui, -w * d_inv_sqrt[vi] * d_inv_sqrt[ui]));
        }
    }
    (CsrMatrix::from_triplets(n, &triplets), d_inv_sqrt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_graph::generators::{cycle, path, random_geometric};
    use ff_linalg::LinearOperator;

    #[test]
    fn laplacian_rows_sum_to_zero() {
        let g = random_geometric(40, 0.3, 3);
        let l = laplacian(&g);
        let ones = vec![1.0; 40];
        let mut y = vec![0.0; 40];
        l.apply(&ones, &mut y);
        assert!(y.iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn laplacian_is_symmetric() {
        let g = random_geometric(30, 0.35, 5);
        assert!(laplacian(&g).is_symmetric());
        assert!(normalized_laplacian(&g).0.is_symmetric());
    }

    #[test]
    fn laplacian_entries_of_path() {
        let g = path(3);
        let l = laplacian(&g);
        assert_eq!(l.get(0, 0), 1.0);
        assert_eq!(l.get(1, 1), 2.0);
        assert_eq!(l.get(0, 1), -1.0);
        assert_eq!(l.get(0, 2), 0.0);
    }

    #[test]
    fn normalized_laplacian_kernel_is_sqrt_degree() {
        // L_sym (D^{1/2} 1) = 0 for connected graphs.
        let g = cycle(12);
        let (lsym, _) = normalized_laplacian(&g);
        let d_sqrt: Vec<f64> = g.vertices().map(|v| g.degree_weight(v).sqrt()).collect();
        let mut y = vec![0.0; 12];
        lsym.apply(&d_sqrt, &mut y);
        assert!(y.iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn normalized_diagonal_is_one() {
        let g = random_geometric(20, 0.4, 7);
        let (lsym, dinv) = normalized_laplacian(&g);
        for (v, dv) in dinv.iter().enumerate() {
            assert!((lsym.get(v, v) - 1.0).abs() < 1e-12);
            assert!(*dv > 0.0);
        }
    }

    #[test]
    fn isolated_vertex_handled() {
        let mut b = ff_graph::GraphBuilder::new(3);
        b.add_edge(0, 1, 2.0);
        let g = b.build();
        let (lsym, dinv) = normalized_laplacian(&g);
        assert_eq!(dinv[2], 0.0);
        assert_eq!(lsym.get(2, 2), 1.0);
    }
}

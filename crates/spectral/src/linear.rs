//! The "Linear" baseline partitioner.
//!
//! Chaco's simplest scheme: treat the vertex numbering itself as the
//! one-dimensional coordinate and split index ranges — no eigenvectors, no
//! geometry. Table 1's first three rows (`Linear (Bi)`, `Linear (Bi, KL)`,
//! `Linear (Oct, KL)`) come from this family; unrefined linear bisection is
//! the paper's example of how badly a structure-blind method does on Mcut
//! (2300.85 vs ≈70 for the metaheuristics).

use crate::bisect::{recursive_bisection, RefineMethod};
use ff_graph::{Graph, VertexId};
use ff_partition::refine::pairwise::{pairwise_refine_kway, PairwiseMethod, PairwiseOptions};
use ff_partition::{CutState, Partition};

/// Division arity for the linear scheme (mirrors the spectral modes).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LinearMode {
    /// Recursive 2-way index splits.
    Bisection,
    /// Direct k-way index blocks, then optional pairwise refinement —
    /// the `Linear (Oct, KL)` construction.
    Octasection,
}

/// Linear (index-order) k-way partitioning with optional refinement.
///
/// # Panics
///
/// Panics if `k` is 0 or exceeds the vertex count.
pub fn linear_partition(g: &Graph, k: usize, mode: LinearMode, refine: RefineMethod) -> Partition {
    assert!(k >= 1, "k must be positive");
    assert!(k <= g.num_vertices().max(1), "more parts than vertices");
    match mode {
        LinearMode::Bisection => recursive_bisection(
            g,
            k,
            refine,
            0.05,
            &mut |_sub: &Graph, to_parent: &[VertexId]| {
                to_parent.iter().map(|&v| v as f64).collect()
            },
        ),
        LinearMode::Octasection => {
            let p = Partition::block(g, k);
            if refine == RefineMethod::None {
                return p;
            }
            let method = match refine {
                RefineMethod::Kl => PairwiseMethod::Kl,
                RefineMethod::Fm => PairwiseMethod::Fm,
                RefineMethod::None => unreachable!(),
            };
            let mut st = CutState::new(g, p);
            pairwise_refine_kway(
                &mut st,
                &PairwiseOptions {
                    method,
                    ..Default::default()
                },
            );
            st.into_partition()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_graph::generators::{grid2d, random_geometric};
    use ff_partition::{imbalance, Objective};

    #[test]
    fn unrefined_bisection_is_block_like() {
        let g = grid2d(4, 8);
        let p = linear_partition(&g, 2, LinearMode::Bisection, RefineMethod::None);
        assert_eq!(p.num_nonempty_parts(), 2);
        // index split of a row-major grid = first 16 vs last 16
        assert_eq!(p.part_of(0), p.part_of(15));
        assert_ne!(p.part_of(0), p.part_of(16));
    }

    #[test]
    fn kl_improves_linear() {
        // On a geometric graph, index order is uninformative; KL must help.
        let g = random_geometric(80, 0.25, 33);
        let plain = linear_partition(&g, 4, LinearMode::Bisection, RefineMethod::None);
        let kl = linear_partition(&g, 4, LinearMode::Bisection, RefineMethod::Kl);
        let c0 = Objective::Cut.evaluate(&g, &plain);
        let c1 = Objective::Cut.evaluate(&g, &kl);
        assert!(
            c1 < c0,
            "KL should improve random-order linear: {c0} → {c1}"
        );
    }

    #[test]
    fn octasection_mode_balanced() {
        let g = grid2d(8, 8);
        let p = linear_partition(&g, 8, LinearMode::Octasection, RefineMethod::None);
        assert_eq!(p.num_nonempty_parts(), 8);
        assert!(imbalance(&p) < 1e-9);
    }

    #[test]
    fn octasection_kl_refines() {
        let g = random_geometric(60, 0.3, 9);
        let plain = linear_partition(&g, 4, LinearMode::Octasection, RefineMethod::None);
        let kl = linear_partition(&g, 4, LinearMode::Octasection, RefineMethod::Kl);
        let c0 = Objective::Cut.evaluate(&g, &plain);
        let c1 = Objective::Cut.evaluate(&g, &kl);
        assert!(c1 <= c0 + 1e-9);
    }

    #[test]
    fn any_k() {
        let g = grid2d(5, 5);
        for k in [1usize, 3, 5, 25] {
            let p = linear_partition(&g, k, LinearMode::Bisection, RefineMethod::None);
            assert_eq!(p.num_nonempty_parts(), k);
        }
    }
}

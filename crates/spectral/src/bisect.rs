//! Recursive bisection drivers (spectral and generic).
//!
//! A *bisection step* sorts vertices along a one-dimensional coordinate
//! (the Fiedler vector for the spectral method, the vertex index for the
//! Linear baseline), splits at the weighted quantile matching the target
//! part ratio, optionally refines the two sides with KL or FM, and
//! recurses. Unlike textbook recursive bisection this driver supports any
//! `k`, not just powers of two, by splitting `k` into `⌊k/2⌋ + ⌈k/2⌉` and
//! cutting at the proportional weight fraction.

use crate::fiedler::{fiedler_vector, SpectralSolver};
use crate::octa::spectral_section;
use crate::SectionMode;
use ff_graph::{induced_subgraph, Graph, VertexId};
use ff_partition::refine::{fm::FmOptions, kl::KlOptions};
use ff_partition::{
    fm_refine_bisection, kl_refine_bisection, BalanceConstraint, CutState, Partition,
};

/// Optional local refinement applied after each division step — the
/// presence/absence of `KL` in Table 1's method names.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RefineMethod {
    /// No refinement.
    None,
    /// Kernighan–Lin pair swaps.
    Kl,
    /// Fiduccia–Mattheyses moves within a balance band.
    Fm,
}

/// Configuration for [`spectral_partition`].
#[derive(Clone, Copy, Debug)]
pub struct SpectralConfig {
    /// Fiedler solver (Lanczos or RQI/SYMMLQ).
    pub solver: SpectralSolver,
    /// Bisection or octasection steps.
    pub mode: SectionMode,
    /// Per-step local refinement.
    pub refine: RefineMethod,
    /// Balance tolerance for FM refinement (relative, default 0.05).
    pub balance_eps: f64,
    /// Seed for the eigensolver start vectors.
    pub seed: u64,
}

impl Default for SpectralConfig {
    fn default() -> Self {
        SpectralConfig {
            solver: SpectralSolver::Lanczos,
            mode: SectionMode::Bisection,
            refine: RefineMethod::None,
            balance_eps: 0.05,
            seed: 1,
        }
    }
}

/// Spectral k-way partitioning per the configured mode.
///
/// # Panics
///
/// Panics if `k` is 0 or exceeds the vertex count.
pub fn spectral_partition(g: &Graph, k: usize, cfg: &SpectralConfig) -> Partition {
    assert!(k >= 1, "k must be positive");
    assert!(
        k <= g.num_vertices().max(1),
        "cannot make {k} non-empty parts from {} vertices",
        g.num_vertices()
    );
    match cfg.mode {
        SectionMode::Bisection => {
            let solver = cfg.solver;
            let seed = cfg.seed;
            recursive_bisection(
                g,
                k,
                cfg.refine,
                cfg.balance_eps,
                &mut move |sub: &Graph, _to_parent: &[VertexId]| fiedler_vector(sub, solver, seed),
            )
        }
        SectionMode::Octasection => spectral_section(g, k, cfg),
    }
}

/// Generic recursive bisection along caller-supplied coordinates.
///
/// `value_fn(sub, to_parent)` returns one coordinate per subgraph vertex;
/// the split point is the weighted quantile at the target part ratio.
pub fn recursive_bisection<F>(
    g: &Graph,
    k: usize,
    refine: RefineMethod,
    balance_eps: f64,
    value_fn: &mut F,
) -> Partition
where
    F: FnMut(&Graph, &[VertexId]) -> Vec<f64>,
{
    let n = g.num_vertices();
    let mut assignment = vec![0u32; n];
    let all: Vec<VertexId> = g.vertices().collect();
    let ids: Vec<VertexId> = all.clone();
    split_recursive(
        g,
        &ids,
        k,
        0,
        refine,
        balance_eps,
        value_fn,
        &mut assignment,
    );
    Partition::from_assignment(g, assignment, k)
}

/// Recursively assigns parts `base..base+k` to `members` (parent ids).
#[allow(clippy::too_many_arguments)]
fn split_recursive<F>(
    g: &Graph,
    members: &[VertexId],
    k: usize,
    base: u32,
    refine: RefineMethod,
    balance_eps: f64,
    value_fn: &mut F,
    assignment: &mut [u32],
) where
    F: FnMut(&Graph, &[VertexId]) -> Vec<f64>,
{
    if k <= 1 || members.len() <= 1 {
        for &v in members {
            assignment[v as usize] = base;
        }
        return;
    }
    let sub = induced_subgraph(g, members);
    let k_left = k / 2;
    let k_right = k - k_left;
    let frac = k_left as f64 / k as f64;

    // Coordinate sort and weighted-quantile split.
    let coords = value_fn(&sub.graph, &sub.to_parent);
    assert_eq!(coords.len(), members.len(), "value_fn length mismatch");
    let mut order: Vec<u32> = (0..members.len() as u32).collect();
    order.sort_by(|&a, &b| {
        coords[a as usize]
            .partial_cmp(&coords[b as usize])
            .unwrap()
            .then(a.cmp(&b))
    });
    let total_w: f64 = (0..members.len() as u32)
        .map(|v| sub.graph.vertex_weight(v))
        .sum();
    let target = total_w * frac;
    let mut local_side = vec![1u32; members.len()];
    let mut acc = 0.0;
    let mut left_count = 0usize;
    for &v in &order {
        if (acc < target && left_count < members.len() - k_right) || left_count < k_left.min(1) {
            local_side[v as usize] = 0;
            acc += sub.graph.vertex_weight(v);
            left_count += 1;
        } else {
            break;
        }
    }
    // Ensure both sides can host their k parts.
    let mut right_count = members.len() - left_count;
    if left_count < k_left || right_count < k_right {
        // Fall back to a count-proportional split.
        local_side.iter_mut().for_each(|s| *s = 1);
        left_count = (members.len() * k_left / k).clamp(k_left, members.len() - k_right);
        for &v in order.iter().take(left_count) {
            local_side[v as usize] = 0;
        }
        right_count = members.len() - left_count;
    }
    debug_assert!(left_count >= k_left && right_count >= k_right);

    // Optional local refinement of the 2-way split on the subgraph.
    if refine != RefineMethod::None {
        let p = Partition::from_assignment(&sub.graph, local_side.clone(), 2);
        let mut st = CutState::new(&sub.graph, p);
        match refine {
            RefineMethod::Kl => {
                kl_refine_bisection(&mut st, 0, 1, &KlOptions::default());
            }
            RefineMethod::Fm => {
                let (wa, wb) = (st.partition().part_weight(0), st.partition().part_weight(1));
                let balance = BalanceConstraint {
                    lo: wa.min(wb) * (1.0 - balance_eps),
                    hi: wa.max(wb) * (1.0 + balance_eps),
                };
                fm_refine_bisection(
                    &mut st,
                    0,
                    1,
                    &FmOptions {
                        balance,
                        ..Default::default()
                    },
                );
            }
            RefineMethod::None => unreachable!(),
        }
        // Keep the refined split only if both sides can still host k parts.
        let refined = st.into_partition();
        if refined.part_size(0) >= k_left && refined.part_size(1) >= k_right {
            for (i, s) in local_side.iter_mut().enumerate() {
                *s = refined.part_of(i as VertexId);
            }
        }
    }

    let left: Vec<VertexId> = members
        .iter()
        .enumerate()
        .filter(|&(i, _)| local_side[i] == 0)
        .map(|(_, &v)| v)
        .collect();
    let right: Vec<VertexId> = members
        .iter()
        .enumerate()
        .filter(|&(i, _)| local_side[i] == 1)
        .map(|(_, &v)| v)
        .collect();

    split_recursive(
        g,
        &left,
        k_left,
        base,
        refine,
        balance_eps,
        value_fn,
        assignment,
    );
    split_recursive(
        g,
        &right,
        k_right,
        base + k_left as u32,
        refine,
        balance_eps,
        value_fn,
        assignment,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_graph::generators::{grid2d, planted_partition, two_cliques_bridge};
    use ff_partition::{imbalance, Objective};

    #[test]
    fn bisects_two_cliques_cleanly() {
        let g = two_cliques_bridge(8, 2.0, 0.2);
        let p = spectral_partition(&g, 2, &SpectralConfig::default());
        assert_eq!(p.num_nonempty_parts(), 2);
        let cut = Objective::Cut.evaluate(&g, &p);
        assert!((cut - 0.2).abs() < 1e-9, "cut = {cut}");
    }

    #[test]
    fn recursive_power_of_two() {
        let g = grid2d(8, 8);
        let p = spectral_partition(&g, 4, &SpectralConfig::default());
        assert_eq!(p.num_nonempty_parts(), 4);
        assert!(imbalance(&p) < 0.20, "imbalance {}", imbalance(&p));
    }

    #[test]
    fn arbitrary_k_supported() {
        let g = grid2d(9, 7);
        for k in [3usize, 5, 6, 7] {
            let p = spectral_partition(&g, k, &SpectralConfig::default());
            assert_eq!(p.num_nonempty_parts(), k, "k = {k}");
        }
    }

    #[test]
    fn kl_refinement_does_not_hurt() {
        let g = planted_partition(4, 12, 0.8, 0.03, 17);
        let base = spectral_partition(&g, 4, &SpectralConfig::default());
        let refined = spectral_partition(
            &g,
            4,
            &SpectralConfig {
                refine: RefineMethod::Kl,
                ..Default::default()
            },
        );
        let c0 = Objective::Cut.evaluate(&g, &base);
        let c1 = Objective::Cut.evaluate(&g, &refined);
        assert!(c1 <= c0 + 1e-9, "KL made it worse: {c0} → {c1}");
    }

    #[test]
    fn fm_refinement_does_not_hurt() {
        let g = planted_partition(4, 12, 0.8, 0.03, 23);
        let base = spectral_partition(&g, 4, &SpectralConfig::default());
        let refined = spectral_partition(
            &g,
            4,
            &SpectralConfig {
                refine: RefineMethod::Fm,
                ..Default::default()
            },
        );
        let c0 = Objective::Cut.evaluate(&g, &base);
        let c1 = Objective::Cut.evaluate(&g, &refined);
        assert!(c1 <= c0 + 1e-9, "FM made it worse: {c0} → {c1}");
    }

    #[test]
    fn rqi_solver_also_works() {
        let g = two_cliques_bridge(6, 2.0, 0.3);
        let p = spectral_partition(
            &g,
            2,
            &SpectralConfig {
                solver: SpectralSolver::Rqi,
                ..Default::default()
            },
        );
        let cut = Objective::Cut.evaluate(&g, &p);
        assert!((cut - 0.3).abs() < 1e-9, "cut = {cut}");
    }

    #[test]
    fn k_equals_one() {
        let g = grid2d(3, 3);
        let p = spectral_partition(&g, 1, &SpectralConfig::default());
        assert_eq!(p.num_nonempty_parts(), 1);
        assert_eq!(Objective::Cut.evaluate(&g, &p), 0.0);
    }

    #[test]
    fn k_equals_n() {
        let g = grid2d(2, 3);
        let p = spectral_partition(&g, 6, &SpectralConfig::default());
        assert_eq!(p.num_nonempty_parts(), 6);
    }
}

//! Property-based validation of the eigensolver stack: for random
//! symmetric matrices, every solver must agree with first-principles
//! checks (residuals, Gershgorin bounds, dense elimination).

use ff_linalg::{
    minres, smallest_eigenpairs, symmlq, CsrMatrix, IterativeSolveOptions, LanczosOptions,
    LinearOperator,
};
use proptest::prelude::*;

/// Strategy: a random symmetric diagonally-dominant matrix (SPD) of
/// dimension 3..24 plus a random rhs.
fn arb_spd() -> impl Strategy<Value = (CsrMatrix, Vec<f64>)> {
    (3usize..24, any::<u64>()).prop_map(|(n, seed)| {
        use rand::prelude::*;
        use rand_chacha::ChaCha8Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut t = Vec::new();
        let mut diag = vec![0.5f64; n];
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen::<f64>() < 0.4 {
                    let v: f64 = rng.gen_range(-2.0..2.0);
                    t.push((i, j, v));
                    t.push((j, i, v));
                    diag[i] += v.abs();
                    diag[j] += v.abs();
                }
            }
        }
        for (i, d) in diag.iter().enumerate() {
            t.push((i, i, *d));
        }
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        (CsrMatrix::from_triplets(n, &t), b)
    })
}

fn residual(a: &CsrMatrix, b: &[f64], x: &[f64]) -> f64 {
    let mut ax = vec![0.0; b.len()];
    a.apply(x, &mut ax);
    ax.iter()
        .zip(b)
        .map(|(axi, bi)| (axi - bi).powi(2))
        .sum::<f64>()
        .sqrt()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn symmlq_solves_spd((a, b) in arb_spd()) {
        let opts = IterativeSolveOptions { max_iter: 8 * a.n(), rtol: 1e-10 };
        let out = symmlq(&a, &b, &opts);
        let bnorm = b.iter().map(|x| x * x).sum::<f64>().sqrt();
        prop_assert!(out.converged, "residual {}", out.residual_norm);
        prop_assert!(residual(&a, &b, &out.x) <= 1e-6 * bnorm.max(1.0));
    }

    #[test]
    fn minres_and_symmlq_agree((a, b) in arb_spd()) {
        let opts = IterativeSolveOptions { max_iter: 8 * a.n(), rtol: 1e-11 };
        let xs = symmlq(&a, &b, &opts);
        let xm = minres(&a, &b, &opts);
        let diff = xs
            .x
            .iter()
            .zip(&xm.x)
            .map(|(s, m)| (s - m).abs())
            .fold(0.0f64, f64::max);
        prop_assert!(diff < 1e-5, "solvers disagree by {diff}");
    }

    #[test]
    fn lanczos_eigenvalues_inside_gershgorin((a, _b) in arb_spd()) {
        let (lo, hi) = a.gershgorin_bounds();
        let k = 2.min(a.n());
        let eig = smallest_eigenpairs(&a, k, &LanczosOptions::default());
        for lam in &eig.values {
            prop_assert!(
                (lo - 1e-8..=hi + 1e-8).contains(lam),
                "λ = {lam} outside Gershgorin [{lo}, {hi}]"
            );
        }
        // Ritz pairs satisfy their own equation.
        let mut ax = vec![0.0; a.n()];
        for (lam, v) in eig.values.iter().zip(&eig.vectors) {
            a.apply(v, &mut ax);
            let res = ax
                .iter()
                .zip(v)
                .map(|(axi, vi)| (axi - lam * vi).abs())
                .fold(0.0f64, f64::max);
            prop_assert!(res < 1e-5, "eigen-residual {res}");
        }
    }

    #[test]
    fn spd_smallest_eigenvalue_positive((a, _b) in arb_spd()) {
        let eig = smallest_eigenpairs(&a, 1, &LanczosOptions::default());
        prop_assert!(
            eig.values[0] > -1e-9,
            "SPD matrix produced λ_min = {}",
            eig.values[0]
        );
    }
}

//! Symmetric sparse matrices in CSR form.

use crate::operator::LinearOperator;

/// A square sparse matrix in compressed-sparse-row form.
///
/// The eigensolvers in this crate assume symmetry; [`CsrMatrix::is_symmetric`]
/// verifies it and constructors used by the suite (Laplacian assembly in
/// `ff-spectral`) produce symmetric matrices by construction.
#[derive(Clone, Debug)]
pub struct CsrMatrix {
    n: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    vals: Vec<f64>,
}

impl CsrMatrix {
    /// Builds from triplets `(row, col, value)`; duplicate positions sum.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range indices or non-finite values.
    pub fn from_triplets(n: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let mut sorted: Vec<(usize, usize, f64)> = triplets
            .iter()
            .inspect(|&&(r, c, v)| {
                assert!(r < n && c < n, "triplet index out of range");
                assert!(v.is_finite(), "matrix entries must be finite");
            })
            .copied()
            .collect();
        sorted.sort_unstable_by_key(|a| (a.0, a.1));
        let mut merged: Vec<(usize, usize, f64)> = Vec::with_capacity(sorted.len());
        for (r, c, v) in sorted {
            match merged.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => merged.push((r, c, v)),
            }
        }
        let mut row_ptr = vec![0usize; n + 1];
        for &(r, _, _) in &merged {
            row_ptr[r + 1] += 1;
        }
        for i in 0..n {
            row_ptr[i + 1] += row_ptr[i];
        }
        let col_idx = merged.iter().map(|&(_, c, _)| c as u32).collect();
        let vals = merged.iter().map(|&(_, _, v)| v).collect();
        CsrMatrix {
            n,
            row_ptr,
            col_idx,
            vals,
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let triplets: Vec<_> = (0..n).map(|i| (i, i, 1.0)).collect();
        Self::from_triplets(n, &triplets)
    }

    /// Matrix dimension.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Sparse matrix–vector product `y ← Ax`.
    ///
    /// # Panics
    ///
    /// Panics when `x`/`y` lengths differ from `n`.
    pub fn spmv(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.n, "spmv: x length");
        assert_eq!(y.len(), self.n, "spmv: y length");
        #[allow(clippy::needless_range_loop)] // row-indexed is the CSR idiom
        for r in 0..self.n {
            let mut acc = 0.0;
            for idx in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.vals[idx] * x[self.col_idx[idx] as usize];
            }
            y[r] = acc;
        }
    }

    /// Entry `(r, c)` (0.0 when absent). O(log nnz(row)).
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.n && c < self.n);
        let lo = self.row_ptr[r];
        let hi = self.row_ptr[r + 1];
        match self.col_idx[lo..hi].binary_search(&(c as u32)) {
            Ok(pos) => self.vals[lo + pos],
            Err(_) => 0.0,
        }
    }

    /// The main diagonal as a dense vector.
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.n).map(|i| self.get(i, i)).collect()
    }

    /// Exact symmetry check: `A[r][c] == A[c][r]` for all stored entries.
    pub fn is_symmetric(&self) -> bool {
        for r in 0..self.n {
            for idx in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[idx] as usize;
                if (self.get(c, r) - self.vals[idx]).abs() > 1e-12 {
                    return false;
                }
            }
        }
        true
    }

    /// Dense `n × n` copy (tests / tiny problems only).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; self.n]; self.n];
        #[allow(clippy::needless_range_loop)] // row-indexed is the CSR idiom
        for r in 0..self.n {
            for idx in self.row_ptr[r]..self.row_ptr[r + 1] {
                d[r][self.col_idx[idx] as usize] = self.vals[idx];
            }
        }
        d
    }

    /// Gershgorin interval `[lo, hi]` containing every eigenvalue of a
    /// symmetric matrix: each disc is `a_ii ± Σ_{j≠i} |a_ij|`. Cheap
    /// validation for eigensolver output (all Ritz values must land
    /// inside) and a safe bracket for spectral shifts.
    pub fn gershgorin_bounds(&self) -> (f64, f64) {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        if self.n == 0 {
            return (0.0, 0.0);
        }
        for r in 0..self.n {
            let mut diag = 0.0;
            let mut radius = 0.0;
            for idx in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[idx] as usize;
                if c == r {
                    diag = self.vals[idx];
                } else {
                    radius += self.vals[idx].abs();
                }
            }
            lo = lo.min(diag - radius);
            hi = hi.max(diag + radius);
        }
        (lo, hi)
    }
}

impl LinearOperator for CsrMatrix {
    fn dim(&self) -> usize {
        self.n
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.spmv(x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laplacian_path3() -> CsrMatrix {
        // Path 0-1-2 Laplacian
        CsrMatrix::from_triplets(
            3,
            &[
                (0, 0, 1.0),
                (0, 1, -1.0),
                (1, 0, -1.0),
                (1, 1, 2.0),
                (1, 2, -1.0),
                (2, 1, -1.0),
                (2, 2, 1.0),
            ],
        )
    }

    #[test]
    fn spmv_matches_dense() {
        let a = laplacian_path3();
        let x = vec![1.0, 2.0, 3.0];
        let mut y = vec![0.0; 3];
        a.spmv(&x, &mut y);
        assert_eq!(y, vec![-1.0, 0.0, 1.0]);
    }

    #[test]
    fn duplicates_sum() {
        let a = CsrMatrix::from_triplets(2, &[(0, 0, 1.0), (0, 0, 2.0)]);
        assert_eq!(a.get(0, 0), 3.0);
        assert_eq!(a.nnz(), 1);
    }

    #[test]
    fn get_absent_is_zero() {
        let a = laplacian_path3();
        assert_eq!(a.get(0, 2), 0.0);
    }

    #[test]
    fn diagonal_extraction() {
        let a = laplacian_path3();
        assert_eq!(a.diagonal(), vec![1.0, 2.0, 1.0]);
    }

    #[test]
    fn symmetry_check() {
        assert!(laplacian_path3().is_symmetric());
        let asym = CsrMatrix::from_triplets(2, &[(0, 1, 1.0)]);
        assert!(!asym.is_symmetric());
    }

    #[test]
    fn identity_spmv() {
        let i = CsrMatrix::identity(4);
        let x = vec![1.0, -2.0, 3.0, 0.5];
        let mut y = vec![0.0; 4];
        i.spmv(&x, &mut y);
        assert_eq!(y, x);
    }

    #[test]
    fn laplacian_annihilates_ones() {
        // Rows of a Laplacian sum to zero ⇒ L·1 = 0.
        let a = laplacian_path3();
        let mut y = vec![9.0; 3];
        a.spmv(&[1.0, 1.0, 1.0], &mut y);
        assert!(y.iter().all(|&v| v.abs() < 1e-15));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_index() {
        CsrMatrix::from_triplets(2, &[(0, 5, 1.0)]);
    }

    #[test]
    fn gershgorin_contains_spectrum() {
        // Path Laplacian: eigenvalues in [0, 4]; Gershgorin gives [0, 4]
        // exactly for interior rows (2 ± 2).
        let a = laplacian_path3();
        let (lo, hi) = a.gershgorin_bounds();
        assert!(lo <= 0.0 && hi >= 3.0, "bounds [{lo}, {hi}]");
        assert!(hi <= 4.0 + 1e-12);
    }

    #[test]
    fn gershgorin_diagonal_matrix_tight() {
        let a = CsrMatrix::from_triplets(3, &[(0, 0, -2.0), (1, 1, 5.0), (2, 2, 1.0)]);
        let (lo, hi) = a.gershgorin_bounds();
        assert_eq!((lo, hi), (-2.0, 5.0));
    }

    #[test]
    fn gershgorin_empty() {
        let a = CsrMatrix::from_triplets(0, &[]);
        assert_eq!(a.gershgorin_bounds(), (0.0, 0.0));
    }
}

//! # ff-linalg — sparse symmetric eigensolver substrate
//!
//! The spectral partitioning path of the suite (Chaco-style) needs the
//! second-smallest eigenpair (the *Fiedler pair*) of graph Laplacians. This
//! crate implements that machinery from scratch:
//!
//! * [`sparse::CsrMatrix`] — symmetric sparse matrix with `spmv`,
//! * [`vecops`] — the dense vector kernels everything is built from,
//! * [`tridiag`] — implicit-shift QL eigensolver for symmetric tridiagonal
//!   matrices (the projected problem inside Lanczos),
//! * [`lanczos`] — Lanczos with full reorthogonalization and deflation,
//!   returning the smallest Ritz pairs,
//! * [`symmlq`](mod@symmlq) — Paige–Saunders SYMMLQ for symmetric (possibly indefinite)
//!   systems, plus MINRES as a cross-check solver,
//! * [`rqi`] — Rayleigh quotient iteration with SYMMLQ inner solves, the
//!   Chaco "RQI/Symmlq" Fiedler path.
//!
//! The crate is deliberately dependency-free (no BLAS): problem sizes in
//! the paper are n ≈ 10³; clarity and determinism beat peak FLOPs.

pub mod lanczos;
pub mod operator;
pub mod rqi;
pub mod sparse;
pub mod symmlq;
pub mod tridiag;
pub mod vecops;

pub use lanczos::{smallest_eigenpairs, EigenPairs, LanczosOptions};
pub use operator::{LinearOperator, ShiftedOperator};
pub use rqi::{rayleigh_quotient_iteration, RqiOptions, RqiResult};
pub use sparse::CsrMatrix;
pub use symmlq::{minres, symmlq, IterativeSolveOptions, SolveOutcome};

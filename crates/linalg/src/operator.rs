//! Abstract linear operators.
//!
//! Lanczos, SYMMLQ/MINRES and RQI only need `y ← Ax`; abstracting it lets
//! them run on a bare [`crate::CsrMatrix`], a shifted matrix `A − σI`
//! (without materializing it), or any caller-supplied operator.

/// A symmetric linear operator on ℝⁿ.
pub trait LinearOperator {
    /// Dimension `n`.
    fn dim(&self) -> usize;

    /// `y ← A x`. Implementations may assume `x.len() == y.len() == dim()`.
    fn apply(&self, x: &[f64], y: &mut [f64]);
}

/// `A − σI` applied on the fly — the operator RQI feeds to SYMMLQ.
pub struct ShiftedOperator<'a, A: LinearOperator> {
    /// The base operator.
    pub base: &'a A,
    /// The shift σ.
    pub shift: f64,
}

impl<'a, A: LinearOperator> ShiftedOperator<'a, A> {
    /// Wraps `base` as `base − shift·I`.
    pub fn new(base: &'a A, shift: f64) -> Self {
        ShiftedOperator { base, shift }
    }
}

impl<A: LinearOperator> LinearOperator for ShiftedOperator<'_, A> {
    fn dim(&self) -> usize {
        self.base.dim()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        self.base.apply(x, y);
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi -= self.shift * xi;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CsrMatrix;

    #[test]
    fn shifted_operator_subtracts() {
        let a = CsrMatrix::identity(3);
        let sh = ShiftedOperator::new(&a, 0.25);
        let x = vec![2.0, 4.0, -1.0];
        let mut y = vec![0.0; 3];
        sh.apply(&x, &mut y);
        // (I - 0.25 I) x = 0.75 x
        assert_eq!(y, vec![1.5, 3.0, -0.75]);
        assert_eq!(sh.dim(), 3);
    }
}

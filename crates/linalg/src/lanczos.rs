//! Lanczos iteration with full reorthogonalization.
//!
//! Returns the *smallest* Ritz pairs of a symmetric operator — what spectral
//! partitioning needs (Fiedler pair = smallest non-trivial Laplacian
//! eigenpair). The caller passes known null/unwanted directions (for a
//! connected graph's Laplacian, the constant vector) as *deflation vectors*;
//! the Krylov basis is kept orthogonal to them, so the "smallest" eigenpair
//! in the deflated space is λ₂.
//!
//! Full reorthogonalization costs O(n·j) per step j — the textbook cure for
//! the ghost-eigenvalue problem, and cheap at the problem sizes this suite
//! targets (the paper's graph has n = 762; Chaco recommends Lanczos up to
//! n ≈ 10,000, which this implementation handles comfortably).

use crate::operator::LinearOperator;
use crate::tridiag::eigh_tridiagonal;
use crate::vecops::{axpy, dot, norm, normalize};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Options for [`smallest_eigenpairs`].
#[derive(Clone, Debug)]
pub struct LanczosOptions {
    /// Maximum Krylov dimension before giving up (default 300).
    pub max_iter: usize,
    /// Relative residual tolerance ‖Ax − θx‖ ≤ tol·max(1, |θ|) (default 1e-8).
    pub tol: f64,
    /// RNG seed for the start vector (and breakdown restarts).
    pub seed: u64,
    /// Unit-norm directions the iteration must avoid (deflation).
    pub deflate: Vec<Vec<f64>>,
}

impl Default for LanczosOptions {
    fn default() -> Self {
        LanczosOptions {
            max_iter: 300,
            tol: 1e-8,
            seed: 1,
            deflate: Vec::new(),
        }
    }
}

/// Eigenvalues (ascending) and unit eigenvectors returned by the solver.
#[derive(Clone, Debug)]
pub struct EigenPairs {
    /// Ritz values, ascending.
    pub values: Vec<f64>,
    /// `vectors[j]` is the unit Ritz vector for `values[j]`.
    pub vectors: Vec<Vec<f64>>,
    /// Krylov dimension actually used.
    pub iterations: usize,
    /// `true` when all requested pairs met the residual tolerance.
    pub converged: bool,
}

fn orthogonalize_full(w: &mut [f64], basis: &[Vec<f64>], deflate: &[Vec<f64>]) {
    // Two passes of classical Gram–Schmidt ("twice is enough").
    for _ in 0..2 {
        for q in deflate.iter().chain(basis.iter()) {
            let c = dot(q, w);
            axpy(-c, q, w);
        }
    }
}

fn random_unit_orthogonal(
    n: usize,
    rng: &mut ChaCha8Rng,
    basis: &[Vec<f64>],
    deflate: &[Vec<f64>],
) -> Option<Vec<f64>> {
    for _ in 0..8 {
        let mut v: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        orthogonalize_full(&mut v, basis, deflate);
        if normalize(&mut v) > 1e-8 {
            return Some(v);
        }
    }
    None
}

/// Computes the `k` smallest eigenpairs of symmetric operator `a`,
/// orthogonally to `opts.deflate`.
///
/// # Panics
///
/// Panics if `k == 0` or `k` exceeds the deflated space dimension.
pub fn smallest_eigenpairs<A: LinearOperator>(
    a: &A,
    k: usize,
    opts: &LanczosOptions,
) -> EigenPairs {
    let n = a.dim();
    let free_dim = n - opts.deflate.len();
    assert!(k >= 1, "must request at least one eigenpair");
    assert!(
        k <= free_dim,
        "requested {k} pairs from a {free_dim}-dimensional deflated space"
    );

    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
    let max_dim = opts.max_iter.min(free_dim);

    let mut basis: Vec<Vec<f64>> = Vec::with_capacity(max_dim);
    let mut alphas: Vec<f64> = Vec::with_capacity(max_dim);
    let mut betas: Vec<f64> = Vec::with_capacity(max_dim); // betas[j] couples v_j, v_{j+1}

    let v0 = random_unit_orthogonal(n, &mut rng, &basis, &opts.deflate)
        .expect("could not build a start vector orthogonal to deflation space");
    basis.push(v0);

    let mut w = vec![0.0; n];
    let mut invariant = false;
    loop {
        let j = basis.len() - 1;
        a.apply(&basis[j], &mut w);
        let alpha = dot(&basis[j], &w);
        alphas.push(alpha);
        // Standard three-term recurrence, then full reorthogonalization to
        // clean up floating-point drift.
        axpy(-alpha, &basis[j], &mut w);
        if j > 0 {
            let beta_prev = betas[j - 1];
            axpy(-beta_prev, &basis[j - 1], &mut w);
        }
        orthogonalize_full(&mut w, &basis, &opts.deflate);
        let beta = norm(&w);

        let dim = basis.len();
        // Convergence test on the projected problem (every few steps to
        // amortize the O(dim²) tridiagonal solve).
        let check_now = dim >= k && (dim.is_multiple_of(5) || dim == max_dim || beta < 1e-12);
        if check_now {
            let eig = eigh_tridiagonal(&alphas, &betas);
            let mut all_ok = true;
            for i in 0..k.min(dim) {
                let zlast = eig.vectors[i][dim - 1].abs();
                let resid = beta * zlast;
                if resid > opts.tol * eig.values[i].abs().max(1.0) {
                    all_ok = false;
                    break;
                }
            }
            if (all_ok && dim >= k) || dim == max_dim || (beta < 1e-12 && dim >= k) {
                if beta < 1e-12 {
                    invariant = true;
                }
                return finalize(
                    a,
                    &basis,
                    &alphas,
                    &betas,
                    k,
                    dim,
                    all_ok || invariant,
                    opts,
                );
            }
        }

        if beta < 1e-12 {
            // Invariant subspace found but not enough Ritz pairs yet:
            // restart with a fresh orthogonal direction (counts as β = 0).
            match random_unit_orthogonal(n, &mut rng, &basis, &opts.deflate) {
                Some(v) => {
                    betas.push(0.0);
                    basis.push(v);
                }
                None => {
                    let dim = basis.len();
                    return finalize(a, &basis, &alphas, &betas, k.min(dim), dim, true, opts);
                }
            }
        } else {
            let mut v = std::mem::take(&mut w);
            normalize(&mut v);
            betas.push(beta);
            basis.push(v);
            w = vec![0.0; n];
        }

        if basis.len() > max_dim {
            let dim = alphas.len();
            return finalize(
                a,
                &basis[..dim],
                &alphas,
                &betas[..dim - 1],
                k,
                dim,
                false,
                opts,
            );
        }
    }
}

#[allow(clippy::too_many_arguments)] // internal: takes the full Lanczos state
fn finalize<A: LinearOperator>(
    a: &A,
    basis: &[Vec<f64>],
    alphas: &[f64],
    betas: &[f64],
    k: usize,
    dim: usize,
    presumed_converged: bool,
    opts: &LanczosOptions,
) -> EigenPairs {
    let n = a.dim();
    let eig = eigh_tridiagonal(&alphas[..dim], &betas[..dim.saturating_sub(1)]);
    let k = k.min(dim);
    let mut values = Vec::with_capacity(k);
    let mut vectors = Vec::with_capacity(k);
    let mut converged = presumed_converged;
    let mut ax = vec![0.0; n];
    for i in 0..k {
        let z = &eig.vectors[i];
        let mut x = vec![0.0; n];
        for (vj, &zj) in basis.iter().take(dim).zip(z.iter()) {
            axpy(zj, vj, &mut x);
        }
        normalize(&mut x);
        // Verify with an explicit residual — Ritz estimates can be
        // optimistic after restarts.
        a.apply(&x, &mut ax);
        let theta = dot(&x, &ax);
        axpy(-theta, &x, &mut ax);
        if norm(&ax) > opts.tol * theta.abs().max(1.0) * 10.0 {
            converged = false;
        }
        values.push(theta);
        vectors.push(x);
    }
    // Ritz values from a restarted basis may come out slightly unsorted
    // after the explicit Rayleigh-quotient correction.
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&x, &y| values[x].partial_cmp(&values[y]).unwrap());
    let values_sorted = order.iter().map(|&i| values[i]).collect();
    let vectors_sorted = order.iter().map(|&i| vectors[i].clone()).collect();
    EigenPairs {
        values: values_sorted,
        vectors: vectors_sorted,
        iterations: dim,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse::CsrMatrix;
    use std::f64::consts::PI;

    /// Laplacian of the path graph P_n as a CsrMatrix.
    fn path_laplacian(n: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n {
            let mut d = 0.0;
            if i > 0 {
                t.push((i, i - 1, -1.0));
                d += 1.0;
            }
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                d += 1.0;
            }
            t.push((i, i, d));
        }
        CsrMatrix::from_triplets(n, &t)
    }

    fn ones_unit(n: usize) -> Vec<f64> {
        vec![1.0 / (n as f64).sqrt(); n]
    }

    #[test]
    fn fiedler_value_of_path() {
        let n = 30;
        let l = path_laplacian(n);
        let opts = LanczosOptions {
            deflate: vec![ones_unit(n)],
            ..Default::default()
        };
        let eig = smallest_eigenpairs(&l, 1, &opts);
        let expect = 4.0 * (PI / (2.0 * n as f64)).sin().powi(2);
        assert!(eig.converged);
        assert!(
            (eig.values[0] - expect).abs() < 1e-7,
            "λ₂ = {}, expected {expect}",
            eig.values[0]
        );
    }

    #[test]
    fn multiple_smallest_of_path() {
        let n = 40;
        let l = path_laplacian(n);
        let opts = LanczosOptions {
            deflate: vec![ones_unit(n)],
            ..Default::default()
        };
        let eig = smallest_eigenpairs(&l, 3, &opts);
        for (k, lam) in eig.values.iter().enumerate() {
            let expect = 4.0 * (PI * (k + 1) as f64 / (2.0 * n as f64)).sin().powi(2);
            assert!(
                (lam - expect).abs() < 1e-6,
                "λ_{} = {lam}, expected {expect}",
                k + 2
            );
        }
    }

    #[test]
    fn eigenvectors_have_small_residuals() {
        let n = 25;
        let l = path_laplacian(n);
        let opts = LanczosOptions {
            deflate: vec![ones_unit(n)],
            ..Default::default()
        };
        let eig = smallest_eigenpairs(&l, 2, &opts);
        let mut ax = vec![0.0; n];
        for (lam, v) in eig.values.iter().zip(&eig.vectors) {
            l.apply(v, &mut ax);
            let mut res = 0.0f64;
            for i in 0..n {
                res = res.max((ax[i] - lam * v[i]).abs());
            }
            assert!(res < 1e-6, "residual {res}");
        }
    }

    #[test]
    fn deflation_respected() {
        let n = 20;
        let l = path_laplacian(n);
        let ones = ones_unit(n);
        let opts = LanczosOptions {
            deflate: vec![ones.clone()],
            ..Default::default()
        };
        let eig = smallest_eigenpairs(&l, 1, &opts);
        assert!(
            dot(&eig.vectors[0], &ones).abs() < 1e-8,
            "Fiedler vector must be orthogonal to the constant vector"
        );
        // And must not be the zero eigenvalue:
        assert!(eig.values[0] > 1e-6);
    }

    #[test]
    fn diagonal_matrix_smallest() {
        let n = 50;
        let t: Vec<_> = (0..n).map(|i| (i, i, (i + 1) as f64)).collect();
        let a = CsrMatrix::from_triplets(n, &t);
        let eig = smallest_eigenpairs(&a, 4, &LanczosOptions::default());
        for (i, lam) in eig.values.iter().enumerate() {
            assert!((lam - (i + 1) as f64).abs() < 1e-6, "eigenvalue {i}: {lam}");
        }
    }

    #[test]
    fn small_dense_space_exact() {
        // n = 4, request all deflated dims: runs to full dimension.
        let a = CsrMatrix::from_triplets(4, &[(0, 0, 2.0), (1, 1, 5.0), (2, 2, -1.0), (3, 3, 0.5)]);
        let eig = smallest_eigenpairs(&a, 4, &LanczosOptions::default());
        let mut expect = vec![-1.0, 0.5, 2.0, 5.0];
        expect.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for (lam, exp) in eig.values.iter().zip(expect) {
            assert!((lam - exp).abs() < 1e-8);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let n = 30;
        let l = path_laplacian(n);
        let opts = LanczosOptions {
            deflate: vec![ones_unit(n)],
            seed: 9,
            ..Default::default()
        };
        let a = smallest_eigenpairs(&l, 1, &opts);
        let b = smallest_eigenpairs(&l, 1, &opts);
        assert_eq!(a.values, b.values);
        assert_eq!(a.vectors, b.vectors);
    }

    #[test]
    #[should_panic(expected = "at least one eigenpair")]
    fn zero_k_panics() {
        let l = path_laplacian(5);
        smallest_eigenpairs(&l, 0, &LanczosOptions::default());
    }
}

//! Rayleigh quotient iteration with SYMMLQ inner solves.
//!
//! This is the Chaco "RQI/Symmlq" Fiedler path: start from an approximate
//! eigenvector (e.g. from a short Lanczos run or a coarse-level projection),
//! then iterate
//!
//! ```text
//! ρ = xᵀAx,   solve (A − ρI) y = x  (SYMMLQ),   x ← y / ‖y‖
//! ```
//!
//! which converges cubically to the eigenpair nearest the initial Rayleigh
//! quotient. Deflation vectors keep the iterate out of the Laplacian kernel.

use crate::operator::{LinearOperator, ShiftedOperator};
use crate::symmlq::{symmlq, IterativeSolveOptions};
use crate::vecops::{axpy, dot, norm, normalize, orthogonalize_against};

/// Options for [`rayleigh_quotient_iteration`].
#[derive(Clone, Debug)]
pub struct RqiOptions {
    /// Outer iteration cap (default 30; RQI usually needs < 10).
    pub max_outer: usize,
    /// Eigen-residual tolerance ‖Ax − ρx‖ ≤ tol·max(1, |ρ|) (default 1e-8).
    pub tol: f64,
    /// Inner-solver settings. The inner solve does not need to be accurate
    /// far from convergence; 1e-6 relative is plenty.
    pub inner: IterativeSolveOptions,
    /// Unit-norm directions to deflate (e.g. the constant vector for a
    /// connected graph's Laplacian).
    pub deflate: Vec<Vec<f64>>,
}

impl Default for RqiOptions {
    fn default() -> Self {
        RqiOptions {
            max_outer: 30,
            tol: 1e-8,
            inner: IterativeSolveOptions {
                max_iter: 400,
                rtol: 1e-6,
            },
            deflate: Vec::new(),
        }
    }
}

/// Result of [`rayleigh_quotient_iteration`].
#[derive(Clone, Debug)]
pub struct RqiResult {
    /// Converged Rayleigh quotient (eigenvalue estimate).
    pub value: f64,
    /// Unit eigenvector estimate.
    pub vector: Vec<f64>,
    /// Outer iterations used.
    pub iterations: usize,
    /// Final eigen-residual ‖Ax − ρx‖.
    pub residual: f64,
    /// Whether `tol` was met.
    pub converged: bool,
}

/// Refines `x0` toward the eigenpair of `a` nearest its Rayleigh quotient.
///
/// # Panics
///
/// Panics if `x0` has the wrong length or is (numerically) inside the
/// deflation space.
pub fn rayleigh_quotient_iteration<A: LinearOperator>(
    a: &A,
    x0: &[f64],
    opts: &RqiOptions,
) -> RqiResult {
    let n = a.dim();
    assert_eq!(x0.len(), n, "start vector length mismatch");

    let mut x = x0.to_vec();
    for q in &opts.deflate {
        orthogonalize_against(&mut x, q);
    }
    assert!(
        normalize(&mut x) > 1e-12,
        "start vector lies in the deflation space"
    );

    let mut ax = vec![0.0; n];
    let mut best_res = f64::INFINITY;
    let mut best_val = 0.0;
    let mut best_vec = x.clone();
    let mut iterations = 0;

    for outer in 0..opts.max_outer {
        iterations = outer + 1;
        a.apply(&x, &mut ax);
        let rho = dot(&x, &ax);
        // residual r = Ax − ρx
        let mut r = ax.clone();
        axpy(-rho, &x, &mut r);
        let res = norm(&r);
        if res < best_res {
            best_res = res;
            best_val = rho;
            best_vec = x.clone();
        }
        if res <= opts.tol * rho.abs().max(1.0) {
            return RqiResult {
                value: rho,
                vector: x,
                iterations,
                residual: res,
                converged: true,
            };
        }

        // Inner solve (A − ρI) y = x. Near convergence the system is nearly
        // singular — SYMMLQ then returns a vector dominated by the desired
        // eigendirection, which is exactly what we want.
        let shifted = ShiftedOperator::new(a, rho);
        let sol = symmlq(&shifted, &x, &opts.inner);
        let mut y = sol.x;
        for q in &opts.deflate {
            orthogonalize_against(&mut y, q);
        }
        if normalize(&mut y) <= 1e-14 {
            break; // solver returned ~zero; keep best seen
        }
        x = y;
    }

    RqiResult {
        value: best_val,
        vector: best_vec,
        iterations,
        residual: best_res,
        converged: best_res <= opts.tol * best_val.abs().max(1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lanczos::{smallest_eigenpairs, LanczosOptions};
    use crate::sparse::CsrMatrix;
    use std::f64::consts::PI;

    fn path_laplacian(n: usize) -> CsrMatrix {
        let mut t = Vec::new();
        for i in 0..n {
            let mut d = 0.0;
            if i > 0 {
                t.push((i, i - 1, -1.0));
                d += 1.0;
            }
            if i + 1 < n {
                t.push((i, i + 1, -1.0));
                d += 1.0;
            }
            t.push((i, i, d));
        }
        CsrMatrix::from_triplets(n, &t)
    }

    fn ones_unit(n: usize) -> Vec<f64> {
        vec![1.0 / (n as f64).sqrt(); n]
    }

    #[test]
    fn converges_to_fiedler_from_good_start() {
        let n = 30;
        let l = path_laplacian(n);
        // Analytic Fiedler vector of a path: cos(π(i+0.5)/n).
        let x0: Vec<f64> = (0..n)
            .map(|i| (PI * (i as f64 + 0.5) / n as f64).cos())
            .collect();
        let opts = RqiOptions {
            deflate: vec![ones_unit(n)],
            ..Default::default()
        };
        let r = rayleigh_quotient_iteration(&l, &x0, &opts);
        let expect = 4.0 * (PI / (2.0 * n as f64)).sin().powi(2);
        assert!(r.converged, "residual {}", r.residual);
        assert!(
            (r.value - expect).abs() < 1e-8,
            "λ₂={}, expected {expect}",
            r.value
        );
        assert!(
            r.iterations <= 6,
            "cubic convergence expected, used {}",
            r.iterations
        );
    }

    #[test]
    fn matches_lanczos_answer() {
        let n = 24;
        let l = path_laplacian(n);
        // Moderately converged start (1e-4): close enough that RQI's basin
        // is λ₂ — the same contract ff-spectral's RQI path relies on.
        let lopts = LanczosOptions {
            deflate: vec![ones_unit(n)],
            max_iter: 40,
            tol: 1e-4,
            ..Default::default()
        };
        let rough = smallest_eigenpairs(&l, 1, &lopts);
        let opts = RqiOptions {
            deflate: vec![ones_unit(n)],
            ..Default::default()
        };
        let refined = rayleigh_quotient_iteration(&l, &rough.vectors[0], &opts);
        let expect = 4.0 * (PI / (2.0 * n as f64)).sin().powi(2);
        assert!(refined.converged);
        assert!((refined.value - expect).abs() < 1e-8);
    }

    #[test]
    fn eigen_residual_is_small() {
        let n = 20;
        let l = path_laplacian(n);
        let x0: Vec<f64> = (0..n)
            .map(|i| (PI * (i as f64 + 0.5) / n as f64).cos())
            .collect();
        let opts = RqiOptions {
            deflate: vec![ones_unit(n)],
            ..Default::default()
        };
        let r = rayleigh_quotient_iteration(&l, &x0, &opts);
        let mut ax = vec![0.0; n];
        l.apply(&r.vector, &mut ax);
        for (axi, xi) in ax.iter().zip(&r.vector) {
            assert!((axi - r.value * xi).abs() < 1e-6);
        }
    }

    #[test]
    fn stays_out_of_kernel() {
        let n = 16;
        let l = path_laplacian(n);
        let x0: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let opts = RqiOptions {
            deflate: vec![ones_unit(n)],
            ..Default::default()
        };
        let r = rayleigh_quotient_iteration(&l, &x0, &opts);
        assert!(dot(&r.vector, &ones_unit(n)).abs() < 1e-8);
        assert!(r.value > 1e-6, "must not converge to the kernel eigenvalue");
    }

    #[test]
    #[should_panic(expected = "deflation space")]
    fn rejects_start_in_deflation_space() {
        let n = 8;
        let l = path_laplacian(n);
        let opts = RqiOptions {
            deflate: vec![ones_unit(n)],
            ..Default::default()
        };
        let ones = vec![1.0; n];
        rayleigh_quotient_iteration(&l, &ones, &opts);
    }
}

//! Dense vector kernels.
//!
//! Everything in this crate reduces to these few operations; keeping them in
//! one place makes the numerical code above read like the math it
//! implements. All kernels are plain loops — LLVM vectorizes them, and at
//! the paper's problem sizes (n ≈ 10³) they are nowhere near hot enough to
//! justify unsafe SIMD.

/// Dot product `xᵀy`.
///
/// # Panics
///
/// Panics when lengths differ (debug and release: a silent truncation here
/// corrupts eigensolves in ways that are very hard to trace).
#[inline]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm `‖x‖₂`.
#[inline]
pub fn norm(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// `y ← y + a·x`.
#[inline]
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// `x ← a·x`.
#[inline]
pub fn scale(a: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= a;
    }
}

/// Normalizes `x` to unit 2-norm in place; returns the original norm.
/// A zero vector is left untouched (returns 0.0).
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm(x);
    if n > 0.0 {
        scale(1.0 / n, x);
    }
    n
}

/// Removes from `x` its component along (unit-norm) `q`: `x ← x − (qᵀx)·q`.
pub fn orthogonalize_against(x: &mut [f64], q: &[f64]) {
    let c = dot(q, x);
    axpy(-c, q, x);
}

/// `x − y` as a new vector.
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "sub: length mismatch");
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

/// Maximum absolute entry, 0.0 for the empty vector.
pub fn max_abs(x: &[f64]) -> f64 {
    x.iter().fold(0.0f64, |m, &v| m.max(v.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(norm(&[]), 0.0);
    }

    #[test]
    fn axpy_updates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn normalize_unit() {
        let mut x = vec![0.0, 3.0, 4.0];
        let n = normalize(&mut x);
        assert!((n - 5.0).abs() < 1e-15);
        assert!((norm(&x) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn normalize_zero_vector_noop() {
        let mut x = vec![0.0, 0.0];
        assert_eq!(normalize(&mut x), 0.0);
        assert_eq!(x, vec![0.0, 0.0]);
    }

    #[test]
    fn orthogonalization() {
        let q = {
            let mut q = vec![1.0, 1.0];
            normalize(&mut q);
            q
        };
        let mut x = vec![2.0, 0.0];
        orthogonalize_against(&mut x, &q);
        assert!(dot(&x, &q).abs() < 1e-14);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn max_abs_works() {
        assert_eq!(max_abs(&[-3.0, 2.0]), 3.0);
        assert_eq!(max_abs(&[]), 0.0);
    }
}

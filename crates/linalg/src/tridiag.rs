//! Eigendecomposition of symmetric tridiagonal matrices.
//!
//! This is the projected problem Lanczos produces; we solve it with the
//! classic implicit-shift QL algorithm (EISPACK `tql2` lineage). O(n²) per
//! eigenvalue with eigenvectors, entirely adequate for Krylov dimensions of
//! a few hundred.

/// Eigenvalues (ascending) and matching eigenvectors of a symmetric
/// tridiagonal matrix. `vectors[j]` is the unit eigenvector for
/// `values[j]`.
#[derive(Clone, Debug)]
pub struct TridiagEigen {
    /// Eigenvalues, sorted ascending.
    pub values: Vec<f64>,
    /// `vectors[j][i]` = component `i` of eigenvector `j`.
    pub vectors: Vec<Vec<f64>>,
}

/// Computes all eigenpairs of the symmetric tridiagonal matrix with main
/// diagonal `diag` (length n) and off-diagonal `offdiag` (length n−1;
/// `offdiag[i]` couples rows `i` and `i+1`).
///
/// # Panics
///
/// Panics if `offdiag.len() + 1 != diag.len()` (unless both are empty) or
/// if the QL sweep fails to converge in 50 iterations per eigenvalue
/// (which for symmetric tridiagonals indicates NaN input).
pub fn eigh_tridiagonal(diag: &[f64], offdiag: &[f64]) -> TridiagEigen {
    let n = diag.len();
    if n == 0 {
        return TridiagEigen {
            values: vec![],
            vectors: vec![],
        };
    }
    assert_eq!(
        offdiag.len(),
        n - 1,
        "offdiag must have exactly n-1 entries"
    );
    assert!(
        diag.iter().chain(offdiag).all(|v| v.is_finite()),
        "tridiagonal entries must be finite"
    );

    let mut d = diag.to_vec();
    // e[i] couples d[i] and d[i+1]; e[n-1] is scratch.
    let mut e = {
        let mut e = offdiag.to_vec();
        e.push(0.0);
        e
    };
    // z[r][c]: rotations accumulate so columns become eigenvectors.
    let mut z = vec![vec![0.0; n]; n];
    for (i, row) in z.iter_mut().enumerate() {
        row[i] = 1.0;
    }

    for l in 0..n {
        let mut iter = 0;
        loop {
            // Find the first small off-diagonal element at or after l.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iter += 1;
            assert!(iter <= 50, "tql2 failed to converge (NaN input?)");

            // Form implicit shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + r.copysign(if g >= 0.0 { 1.0 } else { -1.0 }));
            let mut s = 1.0;
            let mut c = 1.0;
            let mut p = 0.0;
            let mut underflow = false;
            for i in (l..m).rev() {
                let mut f = s * e[i];
                let b = c * e[i];
                r = f.hypot(g);
                e[i + 1] = r;
                if r == 0.0 {
                    // Deflation by rotation underflow.
                    d[i + 1] -= p;
                    e[m] = 0.0;
                    underflow = true;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[i + 1] - p;
                r = (d[i] - g) * s + 2.0 * c * b;
                p = s * r;
                d[i + 1] = g + p;
                g = c * r - b;
                for zk in z.iter_mut() {
                    f = zk[i + 1];
                    zk[i + 1] = s * zk[i] + c * f;
                    zk[i] = c * zk[i] - s * f;
                }
            }
            if underflow {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }

    // Sort ascending, carrying eigenvectors along.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| d[a].partial_cmp(&d[b]).unwrap());
    let values: Vec<f64> = order.iter().map(|&j| d[j]).collect();
    let vectors: Vec<Vec<f64>> = order
        .iter()
        .map(|&j| (0..n).map(|i| z[i][j]).collect())
        .collect();
    TridiagEigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vecops::{dot, norm};

    fn check_eigenpairs(diag: &[f64], offdiag: &[f64], eig: &TridiagEigen, tol: f64) {
        let n = diag.len();
        // multiply tridiagonal by vector
        let mul = |x: &[f64]| -> Vec<f64> {
            (0..n)
                .map(|i| {
                    let mut acc = diag[i] * x[i];
                    if i > 0 {
                        acc += offdiag[i - 1] * x[i - 1];
                    }
                    if i + 1 < n {
                        acc += offdiag[i] * x[i + 1];
                    }
                    acc
                })
                .collect()
        };
        for (lam, v) in eig.values.iter().zip(&eig.vectors) {
            let av = mul(v);
            let mut res = 0.0f64;
            for i in 0..n {
                res = res.max((av[i] - lam * v[i]).abs());
            }
            assert!(res < tol, "residual {res} too large for λ={lam}");
            assert!((norm(v) - 1.0).abs() < 1e-9, "eigenvector not unit norm");
        }
        // ascending
        for w in eig.values.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn diagonal_matrix() {
        let eig = eigh_tridiagonal(&[3.0, 1.0, 2.0], &[0.0, 0.0]);
        assert!((eig.values[0] - 1.0).abs() < 1e-14);
        assert!((eig.values[1] - 2.0).abs() < 1e-14);
        assert!((eig.values[2] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn two_by_two_analytic() {
        // [[2, 1], [1, 2]] → eigenvalues 1 and 3
        let eig = eigh_tridiagonal(&[2.0, 2.0], &[1.0]);
        assert!((eig.values[0] - 1.0).abs() < 1e-12);
        assert!((eig.values[1] - 3.0).abs() < 1e-12);
        check_eigenpairs(&[2.0, 2.0], &[1.0], &eig, 1e-12);
    }

    #[test]
    fn path_laplacian_analytic() {
        // Laplacian of path P_n is tridiagonal; eigenvalues 4 sin²(kπ/2n).
        let n = 12;
        let mut diag = vec![2.0; n];
        diag[0] = 1.0;
        diag[n - 1] = 1.0;
        let offdiag = vec![-1.0; n - 1];
        let eig = eigh_tridiagonal(&diag, &offdiag);
        for (k, lam) in eig.values.iter().enumerate() {
            let expect = 4.0
                * (std::f64::consts::PI * k as f64 / (2.0 * n as f64))
                    .sin()
                    .powi(2);
            assert!(
                (lam - expect).abs() < 1e-10,
                "λ_{k} = {lam}, expected {expect}"
            );
        }
        check_eigenpairs(&diag, &offdiag, &eig, 1e-9);
    }

    #[test]
    fn random_tridiagonal_residuals() {
        use rand::prelude::*;
        use rand_chacha::ChaCha8Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        for n in [1usize, 2, 3, 7, 25, 60] {
            let diag: Vec<f64> = (0..n).map(|_| rng.gen_range(-5.0..5.0)).collect();
            let off: Vec<f64> = (0..n.saturating_sub(1))
                .map(|_| rng.gen_range(-3.0..3.0))
                .collect();
            let eig = eigh_tridiagonal(&diag, &off);
            check_eigenpairs(&diag, &off, &eig, 1e-8);
        }
    }

    #[test]
    fn eigenvectors_orthogonal() {
        let n = 20;
        let diag: Vec<f64> = (0..n).map(|i| (i % 5) as f64).collect();
        let off = vec![1.0; n - 1];
        let eig = eigh_tridiagonal(&diag, &off);
        for i in 0..n {
            for j in (i + 1)..n {
                assert!(
                    dot(&eig.vectors[i], &eig.vectors[j]).abs() < 1e-8,
                    "vectors {i},{j} not orthogonal"
                );
            }
        }
    }

    #[test]
    fn empty_and_singleton() {
        let e = eigh_tridiagonal(&[], &[]);
        assert!(e.values.is_empty());
        let e = eigh_tridiagonal(&[7.5], &[]);
        assert_eq!(e.values, vec![7.5]);
        assert_eq!(e.vectors, vec![vec![1.0]]);
    }

    #[test]
    fn trace_preserved() {
        let diag = vec![1.0, -2.0, 0.5, 3.0];
        let off = vec![0.7, -1.1, 2.0];
        let eig = eigh_tridiagonal(&diag, &off);
        let trace: f64 = diag.iter().sum();
        let sum: f64 = eig.values.iter().sum();
        assert!((trace - sum).abs() < 1e-10);
    }
}

//! Krylov solvers for symmetric (possibly indefinite) systems.
//!
//! * [`symmlq`] — Paige & Saunders' SYMMLQ (SIAM J. Numer. Anal. 12, 1975),
//!   the solver Chaco pairs with RQI for Fiedler-vector refinement and the
//!   one the paper's "Spectral (RQI)" rows refer to.
//! * [`minres`] — MINRES from the same paper; kept as an independent
//!   implementation used to cross-validate SYMMLQ in tests and as an
//!   alternative inner solver for RQI.
//!
//! Both operate on a [`LinearOperator`] so RQI can solve shifted systems
//! `(A − σI)y = x` without materializing the shift.

use crate::operator::LinearOperator;
use crate::vecops::{axpy, dot, norm, scale};

/// Options shared by the iterative solvers.
#[derive(Clone, Debug)]
pub struct IterativeSolveOptions {
    /// Iteration cap (default 500).
    pub max_iter: usize,
    /// Relative residual tolerance ‖b − Ax‖ ≤ rtol·‖b‖ (default 1e-10).
    pub rtol: f64,
}

impl Default for IterativeSolveOptions {
    fn default() -> Self {
        IterativeSolveOptions {
            max_iter: 500,
            rtol: 1e-10,
        }
    }
}

/// Result of an iterative solve.
#[derive(Clone, Debug)]
pub struct SolveOutcome {
    /// The (approximate) solution.
    pub x: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// True residual norm ‖b − Ax‖ at exit (recomputed, not estimated).
    pub residual_norm: f64,
    /// Whether the tolerance was met.
    pub converged: bool,
}

fn true_residual<A: LinearOperator>(a: &A, b: &[f64], x: &[f64]) -> f64 {
    let mut r = vec![0.0; b.len()];
    a.apply(x, &mut r);
    for (ri, bi) in r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
    norm(&r)
}

/// Solves `A x = b` for symmetric `A` with SYMMLQ.
///
/// Follows the classic Paige–Saunders organization (Lanczos recurrence +
/// LQ factorization of the tridiagonal, solution tracked at the LQ point
/// with the component along `b` accumulated separately and added at exit,
/// followed by the transfer to the CG point).
pub fn symmlq<A: LinearOperator>(a: &A, b: &[f64], opts: &IterativeSolveOptions) -> SolveOutcome {
    let n = a.dim();
    assert_eq!(b.len(), n, "rhs length mismatch");
    let beta1 = norm(b);
    if beta1 == 0.0 {
        return SolveOutcome {
            x: vec![0.0; n],
            iterations: 0,
            residual_norm: 0.0,
            converged: true,
        };
    }

    // --- First Lanczos step ---------------------------------------------
    let mut r1 = b.to_vec();
    let mut v = b.to_vec();
    scale(1.0 / beta1, &mut v);
    let mut y = vec![0.0; n];
    a.apply(&v, &mut y);
    let alfa = dot(&v, &y);
    axpy(-alfa / beta1, &r1, &mut y);
    // Local reorthogonalization of r2 against v1.
    let t = dot(&v, &y);
    axpy(-t, &v, &mut y);
    let mut r2 = y.clone();
    let mut oldb = beta1;
    let mut beta = norm(&r2);

    if beta < f64::EPSILON * beta1 {
        // b is an eigenvector: x = b/alfa solves exactly.
        let mut x = b.to_vec();
        scale(1.0 / alfa, &mut x);
        let res = true_residual(a, b, &x);
        return SolveOutcome {
            x,
            iterations: 1,
            residual_norm: res,
            converged: res <= opts.rtol * beta1,
        };
    }

    let mut gbar = alfa;
    let mut dbar = beta;
    let mut rhs1 = beta1;
    let mut rhs2 = 0.0;
    let mut bstep = 0.0;
    let mut snprod = 1.0;
    let mut x = vec![0.0; n];
    let mut w = vec![0.0; n];
    let mut itn = 0usize;

    while itn < opts.max_iter {
        itn += 1;
        // --- Next Lanczos vector ----------------------------------------
        let s = 1.0 / beta;
        for (vi, yi) in v.iter_mut().zip(&r2) {
            *vi = s * yi;
        }
        a.apply(&v, &mut y);
        axpy(-beta / oldb, &r1, &mut y);
        let alfa = dot(&v, &y);
        axpy(-alfa / beta, &r2, &mut y);
        std::mem::swap(&mut r1, &mut r2);
        std::mem::swap(&mut r2, &mut y);
        oldb = beta;
        beta = norm(&r2);

        // --- Plane rotation (LQ factorization of T) ---------------------
        let gamma = (gbar * gbar + oldb * oldb).sqrt();
        let cs = gbar / gamma;
        let sn = oldb / gamma;
        let delta = cs * dbar + sn * alfa;
        gbar = sn * dbar - cs * alfa;
        let epsln = sn * beta;
        dbar = -cs * beta;

        // --- Update the LQ point ----------------------------------------
        let z = rhs1 / gamma;
        let zc = z * cs;
        let zs = z * sn;
        for i in 0..n {
            x[i] += zc * w[i] + zs * v[i];
            w[i] = sn * w[i] - cs * v[i];
        }
        bstep += snprod * cs * z;
        snprod *= sn;
        rhs1 = rhs2 - delta * z;
        rhs2 = -epsln * z;

        // --- Convergence check (true residual at the CG point) ----------
        // SYMMLQ's cheap estimates need care near breakdown; at this
        // suite's problem sizes an explicit residual every iteration is an
        // acceptable extra matvec and is unconditionally trustworthy.
        let xc = cg_point(&x, &w, b, beta1, bstep, rhs1, gbar, snprod);
        let res = true_residual(a, b, &xc);
        if res <= opts.rtol * beta1 {
            let residual_norm = res;
            return SolveOutcome {
                x: xc,
                iterations: itn,
                residual_norm,
                converged: true,
            };
        }
        if beta < f64::EPSILON * beta1 {
            return SolveOutcome {
                converged: res <= opts.rtol * beta1,
                x: xc,
                iterations: itn,
                residual_norm: res,
            };
        }
    }

    let xc = cg_point(&x, &w, b, beta1, bstep, rhs1, gbar, snprod);
    let residual_norm = true_residual(a, b, &xc);
    SolveOutcome {
        converged: residual_norm <= opts.rtol * beta1,
        x: xc,
        iterations: itn,
        residual_norm,
    }
}

/// Transfers the SYMMLQ LQ point to the CG point and restores the
/// separately-tracked component along `b`.
#[allow(clippy::too_many_arguments)]
fn cg_point(
    x_lq: &[f64],
    w: &[f64],
    b: &[f64],
    beta1: f64,
    bstep: f64,
    rhs1: f64,
    gbar: f64,
    snprod: f64,
) -> Vec<f64> {
    let mut xc = x_lq.to_vec();
    if gbar.abs() > f64::EPSILON {
        let zbar = rhs1 / gbar;
        axpy(zbar, w, &mut xc);
        let step = (bstep + snprod * zbar) / beta1;
        axpy(step, b, &mut xc);
    } else {
        axpy(bstep / beta1, b, &mut xc);
    }
    xc
}

/// Solves `A x = b` for symmetric (possibly indefinite) `A` with MINRES.
pub fn minres<A: LinearOperator>(a: &A, b: &[f64], opts: &IterativeSolveOptions) -> SolveOutcome {
    let n = a.dim();
    assert_eq!(b.len(), n, "rhs length mismatch");
    let beta1 = norm(b);
    if beta1 == 0.0 {
        return SolveOutcome {
            x: vec![0.0; n],
            iterations: 0,
            residual_norm: 0.0,
            converged: true,
        };
    }

    let mut r1 = b.to_vec();
    let mut r2 = b.to_vec();
    let mut y = b.to_vec();
    let mut oldb = 0.0f64;
    let mut beta = beta1;
    let mut dbar = 0.0f64;
    let mut epsln = 0.0f64;
    let mut phibar = beta1;
    let mut cs = -1.0f64;
    let mut sn = 0.0f64;
    let mut w = vec![0.0; n];
    let mut w2 = vec![0.0; n];
    let mut x = vec![0.0; n];
    let mut v = vec![0.0; n];
    let mut ay = vec![0.0; n];

    let mut itn = 0usize;
    while itn < opts.max_iter {
        itn += 1;
        let s = 1.0 / beta;
        for (vi, yi) in v.iter_mut().zip(&y) {
            *vi = s * yi;
        }
        a.apply(&v, &mut ay);
        if itn >= 2 {
            axpy(-beta / oldb, &r1, &mut ay);
        }
        let alfa = dot(&v, &ay);
        axpy(-alfa / beta, &r2, &mut ay);
        std::mem::swap(&mut r1, &mut r2);
        r2.copy_from_slice(&ay);
        oldb = beta;
        beta = norm(&r2);

        // Apply previous rotation.
        let oldeps = epsln;
        let delta = cs * dbar + sn * alfa;
        let gbar = sn * dbar - cs * alfa;
        epsln = sn * beta;
        dbar = -cs * beta;

        // Current rotation.
        let gamma = (gbar * gbar + beta * beta).sqrt().max(f64::EPSILON);
        cs = gbar / gamma;
        sn = beta / gamma;
        let phi = cs * phibar;
        phibar *= sn;

        // Update solution.
        let denom = 1.0 / gamma;
        let w1 = w2.clone();
        w2.copy_from_slice(&w);
        for i in 0..n {
            w[i] = (v[i] - oldeps * w1[i] - delta * w2[i]) * denom;
            x[i] += phi * w[i];
        }

        y.copy_from_slice(&r2);

        if phibar <= opts.rtol * beta1 {
            break;
        }
        if beta < f64::EPSILON * beta1 {
            break;
        }
    }

    let residual_norm = true_residual(a, b, &x);
    SolveOutcome {
        converged: residual_norm <= opts.rtol * beta1 * 10.0,
        x,
        iterations: itn,
        residual_norm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::ShiftedOperator;
    use crate::sparse::CsrMatrix;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    /// Dense Gaussian elimination with partial pivoting (test oracle).
    fn dense_solve(a: &CsrMatrix, b: &[f64]) -> Vec<f64> {
        let n = a.n();
        let mut m = a.to_dense();
        let mut rhs = b.to_vec();
        for col in 0..n {
            let piv = (col..n)
                .max_by(|&i, &j| m[i][col].abs().partial_cmp(&m[j][col].abs()).unwrap())
                .unwrap();
            m.swap(col, piv);
            rhs.swap(col, piv);
            let d = m[col][col];
            assert!(d.abs() > 1e-12, "singular test matrix");
            for row in (col + 1)..n {
                let f = m[row][col] / d;
                #[allow(clippy::needless_range_loop)] // pivot-row elimination
                for k in col..n {
                    m[row][k] -= f * m[col][k];
                }
                rhs[row] -= f * rhs[col];
            }
        }
        let mut x = vec![0.0; n];
        for row in (0..n).rev() {
            let mut acc = rhs[row];
            for k in (row + 1)..n {
                acc -= m[row][k] * x[k];
            }
            x[row] = acc / m[row][row];
        }
        x
    }

    fn random_spd(n: usize, seed: u64) -> CsrMatrix {
        // Diagonally dominant symmetric → SPD.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut t = Vec::new();
        let mut diag = vec![1.0; n];
        for i in 0..n {
            for j in (i + 1)..n {
                if rng.gen::<f64>() < 0.3 {
                    let v: f64 = rng.gen_range(-1.0..1.0);
                    t.push((i, j, v));
                    t.push((j, i, v));
                    diag[i] += v.abs();
                    diag[j] += v.abs();
                }
            }
        }
        for (i, d) in diag.iter().enumerate() {
            t.push((i, i, *d));
        }
        CsrMatrix::from_triplets(n, &t)
    }

    fn check_solver(
        solver: fn(&CsrMatrix, &[f64], &IterativeSolveOptions) -> SolveOutcome,
        a: &CsrMatrix,
        b: &[f64],
        tol: f64,
    ) {
        let opts = IterativeSolveOptions {
            max_iter: 4 * a.n(),
            rtol: 1e-12,
        };
        let out = solver(a, b, &opts);
        assert!(
            out.converged,
            "solver did not converge: res={}",
            out.residual_norm
        );
        let exact = dense_solve(a, b);
        let err: f64 = out
            .x
            .iter()
            .zip(&exact)
            .map(|(xi, ei)| (xi - ei).abs())
            .fold(0.0, f64::max);
        assert!(err < tol, "solution error {err} exceeds {tol}");
    }

    #[test]
    fn symmlq_spd_systems() {
        for seed in 0..4 {
            let n = 30;
            let a = random_spd(n, seed);
            let mut rng = ChaCha8Rng::seed_from_u64(seed + 100);
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            check_solver(symmlq::<CsrMatrix>, &a, &b, 1e-7);
        }
    }

    #[test]
    fn minres_spd_systems() {
        for seed in 0..4 {
            let n = 30;
            let a = random_spd(n, seed);
            let mut rng = ChaCha8Rng::seed_from_u64(seed + 200);
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            check_solver(minres::<CsrMatrix>, &a, &b, 1e-7);
        }
    }

    #[test]
    fn symmlq_indefinite_system() {
        // SPD matrix shifted to indefiniteness — exactly RQI's use case.
        let n = 25;
        let a = random_spd(n, 7);
        let shifted = ShiftedOperator::new(&a, 3.0);
        // Build explicit shifted matrix for the oracle.
        let mut t = Vec::new();
        for i in 0..n {
            for j in 0..n {
                let v = a.get(i, j) - if i == j { 3.0 } else { 0.0 };
                if v != 0.0 {
                    t.push((i, j, v));
                }
            }
        }
        let a_shift = CsrMatrix::from_triplets(n, &t);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let opts = IterativeSolveOptions {
            max_iter: 6 * n,
            rtol: 1e-11,
        };
        let out = symmlq(&shifted, &b, &opts);
        assert!(out.converged, "res = {}", out.residual_norm);
        let exact = dense_solve(&a_shift, &b);
        let err: f64 = out
            .x
            .iter()
            .zip(&exact)
            .map(|(x, e)| (x - e).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-6, "indefinite solve error {err}");
    }

    #[test]
    fn minres_indefinite_system() {
        let n = 25;
        let a = random_spd(n, 11);
        let shifted = ShiftedOperator::new(&a, 2.5);
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let opts = IterativeSolveOptions {
            max_iter: 6 * n,
            rtol: 1e-11,
        };
        let out = minres(&shifted, &b, &opts);
        assert!(
            out.residual_norm < 1e-7 * norm(&b),
            "res = {}",
            out.residual_norm
        );
    }

    #[test]
    fn zero_rhs() {
        let a = random_spd(10, 1);
        let b = vec![0.0; 10];
        let out = symmlq(&a, &b, &IterativeSolveOptions::default());
        assert!(out.converged);
        assert!(out.x.iter().all(|&v| v == 0.0));
        let out = minres(&a, &b, &IterativeSolveOptions::default());
        assert!(out.converged);
    }

    #[test]
    fn rhs_is_eigenvector() {
        // A = diag(2, 5), b = e1 → x = b/2.
        let a = CsrMatrix::from_triplets(2, &[(0, 0, 2.0), (1, 1, 5.0)]);
        let b = vec![1.0, 0.0];
        let out = symmlq(&a, &b, &IterativeSolveOptions::default());
        assert!(out.converged);
        assert!((out.x[0] - 0.5).abs() < 1e-10);
        assert!(out.x[1].abs() < 1e-10);
    }

    #[test]
    fn solvers_agree() {
        let n = 40;
        let a = random_spd(n, 21);
        let mut rng = ChaCha8Rng::seed_from_u64(22);
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let opts = IterativeSolveOptions {
            max_iter: 4 * n,
            rtol: 1e-12,
        };
        let xs = symmlq(&a, &b, &opts);
        let xm = minres(&a, &b, &opts);
        let diff: f64 =
            xs.x.iter()
                .zip(&xm.x)
                .map(|(s, m)| (s - m).abs())
                .fold(0.0, f64::max);
        assert!(diff < 1e-6, "SYMMLQ and MINRES disagree by {diff}");
    }

    #[test]
    fn iteration_cap_respected() {
        let a = random_spd(60, 5);
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let b: Vec<f64> = (0..60).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let opts = IterativeSolveOptions {
            max_iter: 3,
            rtol: 1e-16,
        };
        let out = symmlq(&a, &b, &opts);
        assert_eq!(out.iterations, 3);
        assert!(!out.converged);
    }
}

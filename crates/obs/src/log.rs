//! Structured operational logging: timestamped, job-tagged span events
//! in NDJSON (one JSON object per line, machine-parseable) or logfmt-ish
//! text, written line-atomically to stderr or any sink.
//!
//! The logger is observation-only by construction: it owns its own
//! writer, never touches the protocol streams, and a disabled logger
//! ([`Logger::off`]) compiles every call down to an `is_none` check.

use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::{SystemTime, UNIX_EPOCH};

/// Output shape of the operational log.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LogFormat {
    /// One JSON object per line (NDJSON).
    Json,
    /// `key=value` pairs, strings quoted.
    Text,
}

impl LogFormat {
    /// Parses the CLI spelling (`json` | `text`).
    pub fn parse(name: &str) -> Option<LogFormat> {
        match name {
            "json" => Some(LogFormat::Json),
            "text" => Some(LogFormat::Text),
            _ => None,
        }
    }
}

/// One typed field value on a log event.
#[derive(Clone, Copy, Debug)]
pub enum LogValue<'a> {
    /// Unsigned integer.
    U64(u64),
    /// Float.
    F64(f64),
    /// String (quoted/escaped on output).
    Str(&'a str),
    /// Boolean.
    Bool(bool),
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct LogTarget {
    format: LogFormat,
    out: Mutex<Box<dyn Write + Send>>,
}

/// A clonable, line-atomic structured logger. See the module docs.
#[derive(Clone)]
pub struct Logger(Option<Arc<LogTarget>>);

impl Logger {
    /// A disabled logger: every [`Logger::log`] call is a no-op.
    pub fn off() -> Logger {
        Logger(None)
    }

    /// Logs to stderr in `format` — the `ffpart serve --log-format`
    /// shape.
    pub fn stderr(format: LogFormat) -> Logger {
        Logger::to(format, Box::new(std::io::stderr()))
    }

    /// Logs to an arbitrary sink (tests use an in-memory buffer).
    pub fn to(format: LogFormat, out: Box<dyn Write + Send>) -> Logger {
        Logger(Some(Arc::new(LogTarget {
            format,
            out: Mutex::new(out),
        })))
    }

    /// Whether events are actually written.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Emits one span event: a Unix-epoch-millisecond timestamp, the
    /// event name, the owning job id (if any), and typed fields, as one
    /// line written under a lock (concurrent events interleave between
    /// lines, never within one). Write errors are swallowed — logging
    /// must never take down the server.
    pub fn log(&self, event: &str, job: Option<u64>, fields: &[(&str, LogValue<'_>)]) {
        let Some(target) = &self.0 else { return };
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let mut line = String::new();
        match target.format {
            LogFormat::Json => {
                line.push_str(&format!(
                    "{{\"ts_ms\":{ts_ms},\"event\":\"{}\"",
                    json_escape(event)
                ));
                if let Some(job) = job {
                    line.push_str(&format!(",\"job\":{job}"));
                }
                for (key, value) in fields {
                    line.push_str(&format!(",\"{}\":", json_escape(key)));
                    match value {
                        LogValue::U64(v) => line.push_str(&v.to_string()),
                        LogValue::F64(v) if v.is_finite() => line.push_str(&v.to_string()),
                        LogValue::F64(v) => line.push_str(&format!("\"{v}\"")),
                        LogValue::Str(v) => line.push_str(&format!("\"{}\"", json_escape(v))),
                        LogValue::Bool(v) => line.push_str(&v.to_string()),
                    }
                }
                line.push('}');
            }
            LogFormat::Text => {
                line.push_str(&format!("ts_ms={ts_ms} event={event}"));
                if let Some(job) = job {
                    line.push_str(&format!(" job={job}"));
                }
                for (key, value) in fields {
                    match value {
                        LogValue::U64(v) => line.push_str(&format!(" {key}={v}")),
                        LogValue::F64(v) => line.push_str(&format!(" {key}={v}")),
                        LogValue::Str(v) => line.push_str(&format!(" {key}={v:?}")),
                        LogValue::Bool(v) => line.push_str(&format!(" {key}={v}")),
                    }
                }
            }
        }
        let mut out = target.out.lock().unwrap();
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    }
}

impl std::fmt::Debug for Logger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            None => write!(f, "Logger(off)"),
            Some(t) => write!(f, "Logger({:?})", t.format),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn capture(format: LogFormat) -> (Logger, Arc<Mutex<Vec<u8>>>) {
        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = Arc::new(Mutex::new(Vec::new()));
        (Logger::to(format, Box::new(Shared(buf.clone()))), buf)
    }

    #[test]
    fn json_lines_are_well_formed_and_tagged() {
        let (logger, buf) = capture(LogFormat::Json);
        logger.log(
            "submit",
            Some(7),
            &[
                ("instance", LogValue::Str("grid \"x\"\n")),
                ("k", LogValue::U64(2)),
                ("cached", LogValue::Bool(true)),
                ("value", LogValue::F64(0.5)),
                ("inf", LogValue::F64(f64::INFINITY)),
            ],
        );
        let bytes = buf.lock().unwrap().clone();
        let line = String::from_utf8(bytes).unwrap();
        assert_eq!(line.lines().count(), 1);
        assert!(line.contains("\"event\":\"submit\""), "{line}");
        assert!(line.contains("\"job\":7"), "{line}");
        assert!(
            line.contains("\"instance\":\"grid \\\"x\\\"\\n\""),
            "{line}"
        );
        assert!(line.contains("\"k\":2"), "{line}");
        assert!(line.contains("\"inf\":\"inf\""), "{line}");
        assert!(line.trim_end().ends_with('}'), "{line}");
        assert!(line.contains("\"ts_ms\":"), "{line}");
    }

    #[test]
    fn text_lines_carry_every_field() {
        let (logger, buf) = capture(LogFormat::Text);
        logger.log("done", Some(3), &[("status", LogValue::Str("completed"))]);
        let bytes = buf.lock().unwrap().clone();
        let line = String::from_utf8(bytes).unwrap();
        assert!(
            line.contains("event=done job=3 status=\"completed\""),
            "{line}"
        );
    }

    #[test]
    fn disabled_logger_writes_nothing() {
        let logger = Logger::off();
        assert!(!logger.is_enabled());
        logger.log("noop", None, &[]);
    }
}

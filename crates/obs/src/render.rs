//! Prometheus text exposition (version 0.0.4): rendering a [`Registry`]
//! snapshot, and a strict parser for the same format used by the test
//! suite to prove every rendered page parses back.

use crate::registry::{Registry, Series};
use std::sync::atomic::Ordering;

/// The `Content-Type` an HTTP endpoint should serve [`Registry::render`]
/// under.
pub const EXPOSITION_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Formats a sample value the way the exposition format spells it
/// (`+Inf`, `-Inf`, `NaN`; integers without a trailing `.0`).
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Escapes a `HELP` text: backslashes and newlines only (the format
/// leaves quotes alone outside label values).
fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Splices a `le` label into an existing label block.
fn with_le(labels: &str, le: &str) -> String {
    let le = format!("le=\"{le}\"");
    if labels.is_empty() {
        format!("{{{le}}}")
    } else {
        // `{a="x"}` → `{a="x",le="..."}`
        format!("{},{le}}}", &labels[..labels.len() - 1])
    }
}

impl Registry {
    /// Renders the whole registry as Prometheus text exposition:
    /// `# HELP` / `# TYPE` per family, one sample line per series, and
    /// for histograms the cumulative `_bucket` series (ending at
    /// `le="+Inf"`) plus `_sum` and `_count`. Family and series order is
    /// deterministic (sorted), so two snapshots of identical state are
    /// byte-identical.
    pub fn render(&self) -> String {
        let inner = self.inner.lock().unwrap();
        let mut out = String::new();
        for (name, family) in inner.iter() {
            out.push_str(&format!("# HELP {name} {}\n", escape_help(&family.help)));
            out.push_str(&format!("# TYPE {name} {}\n", family.kind.as_str()));
            for (labels, series) in &family.series {
                match series {
                    Series::Counter(c) => {
                        out.push_str(&format!("{name}{labels} {}\n", c.get()));
                    }
                    Series::Gauge(g) => {
                        out.push_str(&format!("{name}{labels} {}\n", fmt_value(g.get())));
                    }
                    Series::Histogram(h) => {
                        let core = &h.0;
                        let mut cum = 0u64;
                        for (i, bucket) in core.buckets.iter().enumerate() {
                            cum += bucket.load(Ordering::Relaxed);
                            let le = match core.bounds.get(i) {
                                Some(&b) => fmt_value(b),
                                None => "+Inf".to_string(),
                            };
                            out.push_str(&format!("{name}_bucket{} {cum}\n", with_le(labels, &le)));
                        }
                        out.push_str(&format!("{name}_sum{labels} {}\n", fmt_value(h.sum())));
                        out.push_str(&format!("{name}_count{labels} {cum}\n"));
                    }
                }
            }
        }
        out
    }
}

/// One parsed sample line.
#[derive(Clone, Debug, PartialEq)]
pub struct Sample {
    /// Metric name as spelled on the line (histograms appear as their
    /// `_bucket` / `_sum` / `_count` series).
    pub name: String,
    /// Labels in line order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

fn parse_value(text: &str) -> Result<f64, String> {
    match text {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        other => other
            .parse::<f64>()
            .map_err(|e| format!("bad sample value `{other}`: {e}")),
    }
}

fn parse_labels(text: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut chars = text.chars().peekable();
    loop {
        if chars.peek().is_none() {
            return Err("unterminated label block".into());
        }
        if chars.peek() == Some(&'}') {
            chars.next();
            break;
        }
        let mut key = String::new();
        for c in chars.by_ref() {
            if c == '=' {
                break;
            }
            key.push(c);
        }
        if key.is_empty()
            || !key
                .chars()
                .enumerate()
                .all(|(i, c)| c == '_' || c.is_ascii_alphabetic() || (i > 0 && c.is_ascii_digit()))
        {
            return Err(format!("bad label name `{key}`"));
        }
        if chars.next() != Some('"') {
            return Err(format!("label `{key}`: expected opening quote"));
        }
        let mut value = String::new();
        loop {
            match chars.next() {
                None => return Err(format!("label `{key}`: unterminated value")),
                Some('"') => break,
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => return Err(format!("label `{key}`: bad escape {other:?}")),
                },
                Some(c) => value.push(c),
            }
        }
        labels.push((key, value));
        match chars.peek() {
            Some(',') => {
                chars.next();
            }
            Some('}') => {}
            other => return Err(format!("expected `,` or `}}` after label, got {other:?}")),
        }
    }
    if chars.next().is_some() {
        return Err("trailing characters after label block".into());
    }
    Ok(labels)
}

/// Parses a full exposition page back into its samples, validating
/// comment lines (`# HELP` / `# TYPE` with a known type), metric-name
/// shape, label quoting/escapes and value syntax. Strict by design: the
/// test suite uses it to prove [`Registry::render`] output is always
/// well-formed.
pub fn parse_exposition(text: &str) -> Result<Vec<Sample>, String> {
    let mut samples = Vec::new();
    for (ln, line) in text.lines().enumerate() {
        let err = |msg: String| format!("line {}: {msg}", ln + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.trim_start().splitn(3, ' ');
            match parts.next() {
                Some("HELP") => {
                    let name = parts
                        .next()
                        .ok_or_else(|| err("HELP without name".into()))?;
                    if !valid_name(name) {
                        return Err(err(format!("HELP for invalid name `{name}`")));
                    }
                }
                Some("TYPE") => {
                    let name = parts
                        .next()
                        .ok_or_else(|| err("TYPE without name".into()))?;
                    if !valid_name(name) {
                        return Err(err(format!("TYPE for invalid name `{name}`")));
                    }
                    match parts.next() {
                        Some("counter" | "gauge" | "histogram" | "summary" | "untyped") => {}
                        other => return Err(err(format!("unknown TYPE {other:?}"))),
                    }
                }
                _ => {} // plain comment
            }
            continue;
        }
        // Sample: name[{labels}] value
        let name_end = line
            .find(['{', ' '])
            .ok_or_else(|| err("sample line without value".into()))?;
        let name = &line[..name_end];
        if !valid_name(name) {
            return Err(err(format!("invalid metric name `{name}`")));
        }
        let rest = &line[name_end..];
        let (labels, value_text) = if let Some(stripped) = rest.strip_prefix('{') {
            // Label values may contain spaces; find the closing brace by
            // scanning with escape awareness.
            let close = closing_brace(stripped).ok_or_else(|| err("unclosed `{`".into()))?;
            let labels = parse_labels(&stripped[..=close]).map_err(err)?;
            (labels, stripped[close + 1..].trim_start())
        } else {
            (Vec::new(), rest.trim_start())
        };
        // Samples may carry an optional trailing timestamp; we never
        // render one, so reject it to keep the round-trip strict.
        let value = parse_value(value_text.trim_end()).map_err(err)?;
        samples.push(Sample {
            name: name.to_string(),
            labels,
            value,
        });
    }
    Ok(samples)
}

/// Index of the `}` closing a label block whose `{` was already
/// consumed, skipping quoted strings and escapes.
fn closing_brace(text: &str) -> Option<usize> {
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in text.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            '}' if !in_quotes => return Some(i),
            _ => {}
        }
    }
    None
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn renders_and_parses_back() {
        let reg = Registry::new();
        reg.counter("ff_jobs_total", "Jobs").add(3);
        reg.gauge("ff_depth", "Depth").set(2.5);
        let h = reg.histogram("ff_wait_ms", "Waits", &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(42.0);
        let page = reg.render();
        let samples = parse_exposition(&page).unwrap();
        let get = |name: &str| samples.iter().find(|s| s.name == name).unwrap();
        assert_eq!(get("ff_jobs_total").value, 3.0);
        assert_eq!(get("ff_depth").value, 2.5);
        assert_eq!(get("ff_wait_ms_count").value, 2.0);
        assert_eq!(get("ff_wait_ms_sum").value, 42.5);
        let inf = samples
            .iter()
            .find(|s| s.name == "ff_wait_ms_bucket" && s.label("le") == Some("+Inf"))
            .unwrap();
        assert_eq!(inf.value, 2.0);
    }

    #[test]
    fn label_escaping_round_trips() {
        let reg = Registry::new();
        reg.counter_with(
            "ff_esc_total",
            "with \\ and \n in help",
            &[("path", "a\\b \"quoted\"\nnewline")],
        )
        .inc();
        let page = reg.render();
        let samples = parse_exposition(&page).unwrap();
        assert_eq!(samples[0].label("path"), Some("a\\b \"quoted\"\nnewline"));
    }

    #[test]
    fn special_values_render_as_prometheus_spellings() {
        let reg = Registry::new();
        reg.gauge("ff_inf", "h").set(f64::INFINITY);
        let page = reg.render();
        assert!(page.contains("ff_inf +Inf\n"), "{page}");
        assert_eq!(parse_exposition(&page).unwrap()[0].value, f64::INFINITY);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(parse_exposition("0bad 1").is_err());
        assert!(parse_exposition("ff_x{le=\"1\" 2").is_err());
        assert!(parse_exposition("ff_x{le=1} 2").is_err());
        assert!(parse_exposition("ff_x notanumber").is_err());
        assert!(parse_exposition("# TYPE ff_x nonsense").is_err());
    }
}

//! # ff-obs — fleet-grade observability, std-only
//!
//! The serving stack's measurement layer: a thread-safe metrics
//! registry (counters, gauges, fixed-bucket histograms — the
//! [`FairGate`] wait-histogram pattern generalized), Prometheus text
//! exposition for `GET /metrics`, and structured NDJSON/text
//! operational logging. No dependencies, no async runtime, and —
//! critically — **observation-only**: nothing in this crate touches an
//! RNG stream, a step budget, or a wire byte, so enabling metrics or
//! logging can never change a partition result. The service test suite
//! asserts that contract end to end.
//!
//! [`FairGate`]: https://docs.rs/ff-service
//!
//! ## Example
//!
//! ```
//! use ff_obs::{parse_exposition, Registry};
//!
//! let reg = Registry::new();
//! let jobs = reg.counter("ff_jobs_completed_total", "Jobs finished");
//! let waits = reg.histogram("ff_permit_wait_ms", "Permit waits", &[1.0, 10.0, 100.0, 1000.0]);
//! jobs.inc();
//! waits.observe(0.3);
//!
//! let page = reg.render();
//! assert!(page.contains("# TYPE ff_jobs_completed_total counter"));
//! assert!(page.contains("ff_permit_wait_ms_bucket{le=\"+Inf\"} 1"));
//! // Every render is valid exposition text.
//! assert!(parse_exposition(&page).is_ok());
//! ```

mod log;
mod registry;
mod render;

pub use log::{LogFormat, LogValue, Logger};
pub use registry::{Counter, Gauge, Histogram, Kind, Registry};
pub use render::{parse_exposition, Sample, EXPOSITION_CONTENT_TYPE};

//! The metrics registry: named families of counters, gauges and
//! fixed-bucket histograms, each family holding one series per label
//! set.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`
//! clones around atomics: registration takes a lock once, updates are
//! lock-free, and the same `(name, labels)` always resolves to the same
//! underlying series — two subsystems asking for
//! `ff_jobs_completed_total` increment one counter.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// What a metric family measures. Fixed at first registration; a second
/// registration under the same name must agree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Monotonically increasing count.
    Counter,
    /// A value that can go up and down.
    Gauge,
    /// Observations bucketed by fixed upper bounds (plus `+Inf`).
    Histogram,
}

impl Kind {
    pub(crate) fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// A monotone counter handle.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Mirrors an external monotone source: raises the counter to `v` if
    /// `v` is larger, never lowers it — so scraping stays monotone even
    /// when the source snapshot briefly lags another thread's update.
    pub fn raise_to(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle (an `f64` that can move both ways).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: f64) {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

pub(crate) struct HistogramCore {
    /// Upper bounds (inclusive, per Prometheus `le`) of every bucket but
    /// the last; the last bucket is `+Inf`. Finite, strictly increasing.
    pub(crate) bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) observation counts; `bounds.len() + 1`
    /// entries, the last being the `+Inf` overflow bucket.
    pub(crate) buckets: Vec<AtomicU64>,
    /// Sum of observed values, as `f64` bits.
    pub(crate) sum: AtomicU64,
}

/// A fixed-bucket histogram handle.
#[derive(Clone)]
pub struct Histogram(pub(crate) Arc<HistogramCore>);

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let core = &self.0;
        let idx = core
            .bounds
            .iter()
            .position(|&hi| v <= hi)
            .unwrap_or(core.bounds.len());
        core.buckets[idx].fetch_add(1, Ordering::Relaxed);
        let mut cur = core.sum.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match core
                .sum
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The finite bucket upper bounds (the `+Inf` bucket is implicit).
    pub fn bounds(&self) -> &[f64] {
        &self.0.bounds
    }

    /// Per-bucket (non-cumulative) counts, `bounds().len() + 1` entries.
    pub fn counts(&self) -> Vec<u64> {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.counts().iter().sum()
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum.load(Ordering::Relaxed))
    }
}

pub(crate) enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

pub(crate) struct Family {
    pub(crate) help: String,
    pub(crate) kind: Kind,
    /// Histogram bounds shared by every series of the family.
    pub(crate) bounds: Vec<f64>,
    /// Series keyed by their rendered label block (`""` for none) —
    /// `BTreeMap` so exposition order is deterministic.
    pub(crate) series: BTreeMap<String, Series>,
}

/// A thread-safe, clonable metrics registry. See the [crate docs](crate)
/// for a full example.
#[derive(Clone, Default)]
pub struct Registry {
    pub(crate) inner: Arc<Mutex<BTreeMap<String, Family>>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap();
        f.debug_struct("Registry")
            .field("families", &inner.len())
            .finish()
    }
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn valid_label_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Renders a label set as the exposition block `{a="x",b="y"}` (empty
/// string for no labels), label values escaped, labels sorted by name so
/// the same set always keys the same series.
pub(crate) fn label_block(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort_unstable();
    let mut out = String::from("{");
    for (i, (k, v)) in sorted.iter().enumerate() {
        assert!(valid_label_name(k), "invalid label name `{k}`");
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// An unlabeled counter. Idempotent: the same name returns the same
    /// underlying series.
    ///
    /// # Panics
    /// On an invalid metric name, or if `name` is already registered
    /// with a different kind.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// A counter with labels.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.series(name, help, Kind::Counter, labels, &[]) {
            Series::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// An unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// A gauge with labels.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.series(name, help, Kind::Gauge, labels, &[]) {
            Series::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// An unlabeled histogram with the given finite, strictly increasing
    /// bucket upper bounds (a `+Inf` bucket is always appended).
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Histogram {
        self.histogram_with(name, help, bounds, &[])
    }

    /// A histogram with labels. Every series of one family shares the
    /// family's bounds (fixed at first registration).
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: &[(&str, &str)],
    ) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite (`+Inf` is implicit)"
        );
        match self.series(name, help, Kind::Histogram, labels, bounds) {
            Series::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    fn series(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Series {
        assert!(valid_metric_name(name), "invalid metric name `{name}`");
        let key = label_block(labels);
        let mut inner = self.inner.lock().unwrap();
        let family = inner.entry(name.to_string()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            bounds: bounds.to_vec(),
            series: BTreeMap::new(),
        });
        assert_eq!(
            family.kind,
            kind,
            "metric `{name}` already registered as a {}",
            family.kind.as_str()
        );
        if kind == Kind::Histogram {
            assert_eq!(
                family.bounds, bounds,
                "metric `{name}` already registered with different bounds"
            );
        }
        let series = family.series.entry(key).or_insert_with(|| match kind {
            Kind::Counter => Series::Counter(Counter(Arc::new(AtomicU64::new(0)))),
            Kind::Gauge => Series::Gauge(Gauge(Arc::new(AtomicU64::new(0.0f64.to_bits())))),
            Kind::Histogram => Series::Histogram(Histogram(Arc::new(HistogramCore {
                bounds: bounds.to_vec(),
                buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                sum: AtomicU64::new(0.0f64.to_bits()),
            }))),
        });
        match series {
            Series::Counter(c) => Series::Counter(c.clone()),
            Series::Gauge(g) => Series::Gauge(g.clone()),
            Series::Histogram(h) => Series::Histogram(h.clone()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_and_labels_share_one_series() {
        let reg = Registry::new();
        let a = reg.counter("ff_test_total", "help");
        let b = reg.counter("ff_test_total", "other help ignored");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        let l1 = reg.counter_with("ff_lbl_total", "h", &[("kind", "x")]);
        let l2 = reg.counter_with("ff_lbl_total", "h", &[("kind", "y")]);
        l1.inc();
        assert_eq!(l2.get(), 0, "distinct label sets are distinct series");
    }

    #[test]
    fn histogram_buckets_by_inclusive_upper_bound() {
        let reg = Registry::new();
        let h = reg.histogram("ff_h", "h", &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(1.0); // le="1" is inclusive
        h.observe(5.0);
        h.observe(100.0);
        assert_eq!(h.counts(), vec![2, 1, 1]);
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 106.5).abs() < 1e-9);
    }

    #[test]
    fn counter_raise_to_never_lowers() {
        let reg = Registry::new();
        let c = reg.counter("ff_mirror_total", "h");
        c.raise_to(5);
        c.raise_to(3);
        assert_eq!(c.get(), 5);
        c.raise_to(9);
        assert_eq!(c.get(), 9);
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn kind_conflict_panics() {
        let reg = Registry::new();
        reg.counter("ff_conflict", "h");
        reg.gauge("ff_conflict", "h");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn bad_metric_name_panics() {
        Registry::new().counter("0bad", "h");
    }

    #[test]
    fn concurrent_updates_lose_nothing() {
        let reg = Registry::new();
        let c = reg.counter("ff_c_total", "h");
        let h = reg.histogram("ff_ms", "h", &[10.0]);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                let h = h.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        c.inc();
                        h.observe(i as f64);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        assert_eq!(h.count(), 8000);
    }
}

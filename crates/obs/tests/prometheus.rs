//! Prometheus exposition correctness: escaping, histogram bucket
//! cumulativity (ending at `le="+Inf"`), counter monotonicity across
//! scrapes, and a property test that every rendered page parses back.

use ff_obs::{parse_exposition, Registry, Sample};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn samples_named<'a>(samples: &'a [Sample], name: &str) -> Vec<&'a Sample> {
    samples.iter().filter(|s| s.name == name).collect()
}

#[test]
fn metric_names_and_help_render_validly() {
    let reg = Registry::new();
    reg.counter("ff_jobs_completed_total", "Jobs that finished")
        .inc();
    reg.gauge("ff_open_connections", "Open client connections")
        .set(3.0);
    let page = reg.render();
    assert!(page.contains("# HELP ff_jobs_completed_total Jobs that finished\n"));
    assert!(page.contains("# TYPE ff_jobs_completed_total counter\n"));
    assert!(page.contains("# TYPE ff_open_connections gauge\n"));
    parse_exposition(&page).expect("render must be valid exposition text");
}

#[test]
fn label_values_with_every_special_char_round_trip() {
    let reg = Registry::new();
    let hostile = "back\\slash \"quotes\"\nnewline,comma}brace le=\"1\"";
    reg.counter_with(
        "ff_wire_failures_total",
        "Wire failures",
        &[("kind", hostile)],
    )
    .add(2);
    let page = reg.render();
    let samples = parse_exposition(&page).expect("hostile labels must still parse");
    assert_eq!(samples.len(), 1);
    assert_eq!(samples[0].label("kind"), Some(hostile));
    assert_eq!(samples[0].value, 2.0);
}

#[test]
fn help_text_escapes_backslash_and_newline() {
    let reg = Registry::new();
    reg.counter("ff_esc_total", "line one\nline two \\ backslash")
        .inc();
    let page = reg.render();
    assert!(
        page.contains("# HELP ff_esc_total line one\\nline two \\\\ backslash\n"),
        "{page}"
    );
    parse_exposition(&page).unwrap();
}

#[test]
fn histogram_buckets_are_cumulative_and_end_at_inf() {
    let reg = Registry::new();
    let h = reg.histogram("ff_job_duration_ms", "Job durations", &[1.0, 10.0, 100.0]);
    // One observation per bucket region, including the +Inf overflow,
    // plus a boundary hit: `le` is inclusive, so 10.0 lands in le="10".
    for v in [0.5, 10.0, 42.0, 1e6] {
        h.observe(v);
    }
    let samples = parse_exposition(&reg.render()).unwrap();
    let buckets = samples_named(&samples, "ff_job_duration_ms_bucket");
    assert_eq!(
        buckets
            .iter()
            .map(|s| (s.label("le").unwrap().to_string(), s.value))
            .collect::<Vec<_>>(),
        vec![
            ("1".to_string(), 1.0),
            ("10".to_string(), 2.0),
            ("100".to_string(), 3.0),
            ("+Inf".to_string(), 4.0),
        ]
    );
    // Cumulativity: each bucket >= the previous; +Inf equals _count.
    for pair in buckets.windows(2) {
        assert!(pair[1].value >= pair[0].value);
    }
    let count = samples_named(&samples, "ff_job_duration_ms_count")[0].value;
    assert_eq!(buckets.last().unwrap().value, count);
    let sum = samples_named(&samples, "ff_job_duration_ms_sum")[0].value;
    assert_eq!(sum, 0.5 + 10.0 + 42.0 + 1e6);
}

#[test]
fn counters_are_monotone_across_scrapes() {
    let reg = Registry::new();
    let jobs = reg.counter("ff_jobs_completed_total", "Jobs");
    let mirrored = reg.counter("ff_cache_loads_total", "Cache loads");
    let mut last_jobs = -1.0;
    let mut last_loads = -1.0;
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    for scrape in 0..50u64 {
        jobs.add(rng.gen_range(0..4u64));
        // Mirror an external monotone source that may be re-reported
        // out of order; raise_to must keep the exposed series monotone.
        mirrored.raise_to(scrape.saturating_sub(rng.gen_range(0..3u64)));
        let samples = parse_exposition(&reg.render()).unwrap();
        let j = samples_named(&samples, "ff_jobs_completed_total")[0].value;
        let l = samples_named(&samples, "ff_cache_loads_total")[0].value;
        assert!(j >= last_jobs, "scrape {scrape}: {j} < {last_jobs}");
        assert!(l >= last_loads, "scrape {scrape}: {l} < {last_loads}");
        last_jobs = j;
        last_loads = l;
    }
}

#[test]
fn identical_state_renders_byte_identically() {
    let reg = Registry::new();
    reg.counter_with("ff_x_total", "x", &[("b", "2"), ("a", "1")])
        .inc();
    reg.histogram("ff_h_ms", "h", &[1.0]).observe(0.5);
    assert_eq!(reg.render(), reg.render());
}

/// Random registry contents for the parse-back property: names from a
/// safe alphabet, label values from a hostile alphabet (quotes,
/// backslashes, newlines, braces, spaces), and random update mixes.
fn random_registry(seed: u64) -> Registry {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let reg = Registry::new();
    let name_alphabet: Vec<char> = "abcdefghijklmnopqrstuvwxyz_0123456789".chars().collect();
    let label_alphabet: Vec<char> = "ab \"\\\n{},=".chars().collect();
    let families = rng.gen_range(1..6usize);
    for f in 0..families {
        // First char must be alphabetic/underscore; suffix is free-form.
        let mut name = String::from("ff_");
        for _ in 0..rng.gen_range(1..8usize) {
            name.push(name_alphabet[rng.gen_range(0..name_alphabet.len())]);
        }
        name.push_str(&format!("_{f}"));
        let series = rng.gen_range(1..4usize);
        // Kind is a per-family property (the registry asserts it), so
        // draw it once and vary only labels/updates per series.
        let kind = rng.gen_range(0..3u32);
        for _ in 0..series {
            let mut value = String::new();
            for _ in 0..rng.gen_range(0..6usize) {
                value.push(label_alphabet[rng.gen_range(0..label_alphabet.len())]);
            }
            let labels = [("kind", value.as_str())];
            match kind {
                0 => {
                    let c = reg.counter_with(&name, "random counter", &labels);
                    for _ in 0..rng.gen_range(0..5u32) {
                        c.add(rng.gen_range(0..1000u64));
                    }
                }
                1 => {
                    let g = reg.gauge_with(&name, "random gauge", &labels);
                    g.set(rng.gen_range(-1e6..1e6));
                    if rng.gen_range(0..4u32) == 0 {
                        g.set(f64::INFINITY);
                    }
                }
                _ => {
                    let h =
                        reg.histogram_with(&name, "random histogram", &[0.5, 5.0, 50.0], &labels);
                    for _ in 0..rng.gen_range(0..10u32) {
                        h.observe(rng.gen_range(0.0..200.0));
                    }
                }
            }
        }
    }
    reg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whatever ends up in the registry, `render()` output must parse
    /// back — and histogram invariants must hold on the parsed samples.
    #[test]
    fn rendered_pages_always_parse_back(seed in any::<u64>()) {
        let reg = random_registry(seed);
        let page = reg.render();
        let samples = match parse_exposition(&page) {
            Ok(s) => s,
            Err(e) => return Err(format!("seed {seed}: {e}\n{page}")),
        };
        // Histogram invariants: cumulative buckets, +Inf == _count.
        let mut names: Vec<&str> = samples
            .iter()
            .filter_map(|s| s.name.strip_suffix("_bucket"))
            .collect();
        names.dedup();
        for base in names {
            let bucket_name = format!("{base}_bucket");
            let count_name = format!("{base}_count");
            // Group buckets by label set (minus `le`).
            let mut by_series: std::collections::BTreeMap<String, Vec<f64>> = Default::default();
            for s in samples.iter().filter(|s| s.name == bucket_name) {
                let key: Vec<String> = s
                    .labels
                    .iter()
                    .filter(|(k, _)| k != "le")
                    .map(|(k, v)| format!("{k}={v:?}"))
                    .collect();
                by_series.entry(key.join(",")).or_default().push(s.value);
            }
            for (key, buckets) in &by_series {
                for pair in buckets.windows(2) {
                    prop_assert!(
                        pair[1] >= pair[0],
                        "seed {seed}: {bucket_name}{{{key}}} not cumulative: {buckets:?}"
                    );
                }
                let count = samples
                    .iter()
                    .find(|s| {
                        s.name == count_name
                            && s.labels
                                .iter()
                                .map(|(k, v)| format!("{k}={v:?}"))
                                .collect::<Vec<_>>()
                                .join(",")
                                == *key
                    })
                    .map(|s| s.value);
                prop_assert_eq!(buckets.last().copied(), count);
            }
        }
    }
}

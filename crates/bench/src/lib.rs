//! # ff-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§6):
//!
//! | artifact | binary | what it reproduces |
//! |---|---|---|
//! | Table 1 | `table1` | 17 methods × {Cut, Ncut, Mcut} on the FABOP instance, k = 32 |
//! | Figure 1 | `figure1` | anytime Mcut vs wall-clock for SA / ACO / FF with spectral & multilevel reference lines |
//! | §6 claim | `sweep_k` | fusion–fission quality across realized part counts 27–38 |
//! | design ablations | `ablation` | energy scaling, law learning, fission splitter, SA cooling |
//!
//! Criterion micro/meso benches live in `benches/`. All binaries print
//! human-readable tables and write CSV into `results/`.

pub mod methods;
pub mod report;

pub use ff_engine::MigrationPolicyId;
pub use methods::{run_method, run_method_ensemble, MethodBudget, MethodId, MethodOutcome};
pub use report::{to_json, write_csv, write_json, Cell, Table};

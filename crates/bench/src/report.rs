//! Table rendering and CSV output for the experiment binaries.

use std::fs;
use std::io::Write;
use std::path::Path;

/// One table cell.
#[derive(Clone, Debug)]
pub enum Cell {
    /// Left-aligned text.
    Text(String),
    /// Number rendered with the given decimal places.
    Num(f64, usize),
}

impl Cell {
    fn render(&self) -> String {
        match self {
            Cell::Text(s) => s.clone(),
            Cell::Num(v, places) => {
                if v.is_infinite() {
                    "inf".to_string()
                } else {
                    format!("{v:.places$}")
                }
            }
        }
    }
}

/// A printable/CSV-able table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Row-major cells.
    pub rows: Vec<Vec<Cell>>,
}

impl Table {
    /// Creates a table with the given headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push_row(&mut self, row: Vec<Cell>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders an aligned ASCII table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(Cell::render).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!(" {:<width$} ", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("|")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &rendered {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// CSV serialization (headers + rows).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = self
            .headers
            .iter()
            .map(|h| esc(h))
            .collect::<Vec<_>>()
            .join(",");
        out.push('\n');
        for row in &self.rows {
            let line = row
                .iter()
                .map(|c| esc(&c.render()))
                .collect::<Vec<_>>()
                .join(",");
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

/// Writes a table as CSV under `results/` (created on demand), returning
/// the path written.
pub fn write_csv(table: &Table, name: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = Path::new("results");
    fs::create_dir_all(dir)?;
    let path = dir.join(name);
    let mut f = fs::File::create(&path)?;
    f.write_all(table.to_csv().as_bytes())?;
    Ok(path)
}

/// JSON serialization: an array of objects keyed by header (numbers stay
/// numbers, text stays text) — the machine-readable twin of the CSV.
pub fn to_json(table: &Table) -> serde_json::Value {
    let rows: Vec<serde_json::Value> = table
        .rows
        .iter()
        .map(|row| {
            let mut obj = serde_json::Map::new();
            for (h, cell) in table.headers.iter().zip(row) {
                let v = match cell {
                    Cell::Text(s) => serde_json::Value::String(s.clone()),
                    Cell::Num(x, _) => serde_json::Number::from_f64(*x)
                        .map(serde_json::Value::Number)
                        .unwrap_or_else(|| serde_json::Value::String(x.to_string())),
                };
                obj.insert(h.clone(), v);
            }
            serde_json::Value::Object(obj)
        })
        .collect();
    serde_json::Value::Array(rows)
}

/// Writes a table as JSON under `results/`, returning the path written.
pub fn write_json(table: &Table, name: &str) -> std::io::Result<std::path::PathBuf> {
    let dir = Path::new("results");
    fs::create_dir_all(dir)?;
    let path = dir.join(name);
    let f = fs::File::create(&path)?;
    serde_json::to_writer_pretty(f, &to_json(table))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(&["Method", "Cut", "Mcut"]);
        t.push_row(vec![
            Cell::Text("Fusion Fission".into()),
            Cell::Num(198.0, 1),
            Cell::Num(69.03, 2),
        ]);
        t.push_row(vec![
            Cell::Text("Linear (Bi)".into()),
            Cell::Num(274.2, 1),
            Cell::Num(f64::INFINITY, 2),
        ]);
        t
    }

    #[test]
    fn renders_aligned() {
        let s = sample().render();
        assert!(s.contains("Fusion Fission"));
        assert!(s.contains("198.0"));
        assert!(s.contains("inf"));
        // all lines same width
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines.len() >= 4);
        assert_eq!(lines[0].len(), lines[2].len());
    }

    #[test]
    fn csv_roundtrip_shape() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "Method,Cut,Mcut");
        assert!(lines[1].starts_with("Fusion Fission,198.0,"));
    }

    #[test]
    fn csv_escapes_commas() {
        let mut t = Table::new(&["a"]);
        t.push_row(vec![Cell::Text("x, y".into())]);
        assert!(t.to_csv().contains("\"x, y\""));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn width_mismatch_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.push_row(vec![Cell::Num(1.0, 0)]);
    }

    #[test]
    fn json_preserves_types() {
        let j = to_json(&sample());
        let rows = j.as_array().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0]["Method"], "Fusion Fission");
        assert_eq!(rows[0]["Cut"].as_f64(), Some(198.0));
        // infinity can't be a JSON number: falls back to string
        assert!(rows[1]["Mcut"].is_string());
    }
}

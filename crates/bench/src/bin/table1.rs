//! Regenerates **Table 1** of the paper: all 17 methods × {Cut, Ncut,
//! Mcut} on the FABOP "country core area" instance with k = 32.
//!
//! ```text
//! cargo run -p ff-bench --release --bin table1 -- [--budget-secs 10] \
//!     [--k 32] [--sectors 762] [--seed 2006]
//! ```
//!
//! Deterministic methods run to completion; the three metaheuristics each
//! get the time budget (the paper gave them up to an hour on a 2006
//! Pentium 4 — a few seconds of a modern core explores a comparable
//! neighborhood count, and the budget is a flag). Cut is reported ÷1000
//! exactly as in the paper.

use ff_atc::{FabopConfig, FabopInstance, PAPER_K};
use ff_bench::{run_method, write_csv, Cell, MethodBudget, MethodId, Table};
use ff_partition::Objective;

struct Args {
    budget_secs: f64,
    k: usize,
    sectors: usize,
    seed: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        budget_secs: 10.0,
        k: PAPER_K,
        sectors: ff_atc::PAPER_SECTORS,
        seed: 2006,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().expect("flag needs a value");
        match flag.as_str() {
            "--budget-secs" => args.budget_secs = val().parse().expect("bad budget"),
            "--k" => args.k = val().parse().expect("bad k"),
            "--sectors" => args.sectors = val().parse().expect("bad sectors"),
            "--seed" => args.seed = val().parse().expect("bad seed"),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let cfg = FabopConfig {
        seed: args.seed,
        ..Default::default()
    };
    let inst = if args.sectors == ff_atc::PAPER_SECTORS {
        FabopInstance::paper_scale(&cfg)
    } else {
        FabopInstance::scaled(args.sectors, &cfg)
    };
    let g = &inst.graph;
    eprintln!(
        "FABOP instance: {} sectors, {} flows, k = {} (seed {})",
        g.num_vertices(),
        g.num_edges(),
        args.k,
        args.seed
    );
    eprintln!(
        "metaheuristic budget: {:.1}s each; deterministic methods run to completion\n",
        args.budget_secs
    );

    let budget = MethodBudget::seconds(args.budget_secs);
    let mut table = Table::new(&["Method", "Cut (/1000)", "Ncut", "Mcut", "time (s)"]);
    for method in MethodId::all() {
        // The paper's metaheuristics are tuned on the ATC objective (Mcut).
        let out = run_method(method, g, args.k, Objective::MCut, budget, args.seed);
        let p = &out.partition;
        let cut = Objective::Cut.evaluate(g, p);
        let ncut = Objective::NCut.evaluate(g, p);
        let mcut = Objective::MCut.evaluate(g, p);
        table.push_row(vec![
            Cell::Text(method.label().to_string()),
            Cell::Num(cut / 1000.0, 2),
            Cell::Num(ncut, 3),
            Cell::Num(mcut, 3),
            Cell::Num(out.elapsed.as_secs_f64(), 2),
        ]);
        eprintln!(
            "  done: {:<26} Cut/1000 {:8.2}  Ncut {:7.3}  Mcut {:9.3}  ({:.2}s)",
            method.label(),
            cut / 1000.0,
            ncut,
            mcut,
            out.elapsed.as_secs_f64()
        );
    }

    println!(
        "\nTable 1 — comparisons between algorithms (32-partition of the synthetic core area)\n"
    );
    println!("{}", table.render());
    match write_csv(&table, "table1.csv") {
        Ok(path) => eprintln!("CSV written to {}", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
    match ff_bench::write_json(&table, "table1.json") {
        Ok(path) => eprintln!("JSON written to {}", path.display()),
        Err(e) => eprintln!("could not write JSON: {e}"),
    }
}

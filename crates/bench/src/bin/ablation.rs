//! Ablation study over the design choices DESIGN.md calls out:
//!
//! * fusion–fission **energy scaling** on/off (§4.1's binding-energy curve),
//! * fusion–fission **law learning** on/off (§4.1's reinforcement memory),
//! * fusion–fission **fission splitter**: percolation vs random halves (§4.4),
//! * simulated-annealing **cooling schedule**: geometric vs linear (§3.1's
//!   ambiguous printed formula).
//!
//! ```text
//! cargo run -p ff-bench --release --bin ablation -- [--budget-secs 5] \
//!     [--sectors 381] [--k 16] [--seed 2006] [--trials 3]
//! ```

use ff_atc::{FabopConfig, FabopInstance};
use ff_bench::{write_csv, Cell, Table};
use ff_core::{ChoiceFunction, FissionSplitter, FusionFission, FusionFissionConfig};
use ff_metaheur::{Cooling, SimulatedAnnealing, SimulatedAnnealingConfig, StopCondition};
use ff_partition::Objective;
use std::time::Duration;

struct Args {
    budget_secs: f64,
    k: usize,
    sectors: usize,
    seed: u64,
    trials: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        budget_secs: 5.0,
        k: 16,
        sectors: 381,
        seed: 2006,
        trials: 3,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().expect("flag needs a value");
        match flag.as_str() {
            "--budget-secs" => args.budget_secs = val().parse().expect("bad budget"),
            "--k" => args.k = val().parse().expect("bad k"),
            "--sectors" => args.sectors = val().parse().expect("bad sectors"),
            "--seed" => args.seed = val().parse().expect("bad seed"),
            "--trials" => args.trials = val().parse().expect("bad trials"),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let inst = FabopInstance::scaled(
        args.sectors,
        &FabopConfig {
            seed: args.seed,
            ..Default::default()
        },
    );
    let g = &inst.graph;
    let stop = StopCondition::time(Duration::from_secs_f64(args.budget_secs));
    eprintln!(
        "instance: {} sectors, {} flows, k = {}, {:.1}s × {} trials per variant\n",
        g.num_vertices(),
        g.num_edges(),
        args.k,
        args.budget_secs,
        args.trials
    );

    let base = FusionFissionConfig {
        objective: Objective::MCut,
        stop,
        ..FusionFissionConfig::standard(args.k)
    };
    let ff_variants: Vec<(&str, FusionFissionConfig)> = vec![
        ("FF (paper: scaling+laws+percolation)", base),
        (
            "FF without energy scaling",
            FusionFissionConfig {
                use_energy_scaling: false,
                ..base
            },
        ),
        (
            "FF without law learning",
            FusionFissionConfig {
                learn_laws: false,
                ..base
            },
        ),
        (
            "FF with random-half fission",
            FusionFissionConfig {
                splitter: FissionSplitter::RandomHalf,
                ..base
            },
        ),
        (
            "FF with sigmoid choice",
            FusionFissionConfig {
                choice_fn: ChoiceFunction::Sigmoid,
                ..base
            },
        ),
        (
            "FF with hard-threshold choice",
            FusionFissionConfig {
                choice_fn: ChoiceFunction::Hard,
                ..base
            },
        ),
    ];

    let mut table = Table::new(&["Variant", "mean Mcut", "best Mcut", "worst Mcut"]);
    for (label, cfg) in &ff_variants {
        let mut values = Vec::new();
        for trial in 0..args.trials {
            let r = FusionFission::new(g, *cfg, args.seed + trial).run();
            values.push(r.best_value);
        }
        summarize(&mut table, label, &values);
        eprintln!("done: {label}");
    }

    // SA cooling-schedule ablation (the printed formula is degenerate for
    // t_min = 0; compare the two standard readings).
    for (label, cooling) in [
        (
            "SA geometric cooling (alpha 0.97)",
            Cooling::Geometric(0.97),
        ),
        (
            "SA linear cooling (400 steps)",
            Cooling::Linear { steps: 400 },
        ),
    ] {
        let mut values = Vec::new();
        for trial in 0..args.trials {
            let cfg = SimulatedAnnealingConfig {
                objective: Objective::MCut,
                stop,
                cooling,
                seed: args.seed + trial,
                ..Default::default()
            };
            let r = SimulatedAnnealing::new(g, args.k, cfg).run();
            values.push(r.best_value);
        }
        summarize(&mut table, label, &values);
        eprintln!("done: {label}");
    }

    println!("\nAblation study (Mcut, lower is better)\n");
    println!("{}", table.render());
    match write_csv(&table, "ablation.csv") {
        Ok(path) => eprintln!("CSV written to {}", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
    match ff_bench::write_json(&table, "ablation.json") {
        Ok(path) => eprintln!("JSON written to {}", path.display()),
        Err(e) => eprintln!("could not write JSON: {e}"),
    }
}

fn summarize(table: &mut Table, label: &str, values: &[f64]) {
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let best = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let worst = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    table.push_row(vec![
        Cell::Text(label.to_string()),
        Cell::Num(mean, 3),
        Cell::Num(best, 3),
        Cell::Num(worst, 3),
    ]);
}

//! Parameter exploration for the ant-colony adaptation: sweeps the four
//! paper tunables (ants per colony, evaporation, deposit, exploration)
//! plus the reinforcement bonus, reporting best Mcut per setting.
//!
//! ```text
//! cargo run -p ff-bench --release --bin tune_aco -- [--budget-secs 5] \
//!     [--sectors 762] [--k 32] [--seed 2006]
//! ```

use ff_atc::{FabopConfig, FabopInstance, PAPER_K};
use ff_bench::{write_csv, Cell, Table};
use ff_metaheur::{AntColony, AntColonyConfig, StopCondition};
use ff_partition::Objective;
use std::time::Duration;

struct Args {
    budget_secs: f64,
    k: usize,
    sectors: usize,
    seed: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        budget_secs: 5.0,
        k: PAPER_K,
        sectors: ff_atc::PAPER_SECTORS,
        seed: 2006,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().expect("flag needs a value");
        match flag.as_str() {
            "--budget-secs" => args.budget_secs = val().parse().expect("bad budget"),
            "--k" => args.k = val().parse().expect("bad k"),
            "--sectors" => args.sectors = val().parse().expect("bad sectors"),
            "--seed" => args.seed = val().parse().expect("bad seed"),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let cfg0 = FabopConfig {
        seed: args.seed,
        ..Default::default()
    };
    let inst = if args.sectors == ff_atc::PAPER_SECTORS {
        FabopInstance::paper_scale(&cfg0)
    } else {
        FabopInstance::scaled(args.sectors, &cfg0)
    };
    let g = &inst.graph;
    let stop = StopCondition::time(Duration::from_secs_f64(args.budget_secs));
    let base = AntColonyConfig {
        objective: Objective::MCut,
        stop,
        seed: args.seed,
        ..Default::default()
    };

    let mut variants: Vec<(String, AntColonyConfig)> = vec![("base".into(), base)];
    for ants in [2usize, 8, 16] {
        variants.push((
            format!("ants={ants}"),
            AntColonyConfig {
                ants_per_colony: ants,
                ..base
            },
        ));
    }
    for ev in [0.01f64, 0.08, 0.15] {
        variants.push((
            format!("evap={ev}"),
            AntColonyConfig {
                evaporation: ev,
                ..base
            },
        ));
    }
    for ex in [0.0f64, 0.25, 0.4] {
        variants.push((
            format!("explore={ex}"),
            AntColonyConfig {
                explore_prob: ex,
                ..base
            },
        ));
    }
    for rf in [0.0f64, 0.1, 1.0] {
        variants.push((
            format!("reinforce={rf}"),
            AntColonyConfig {
                reinforce: rf,
                ..base
            },
        ));
    }
    for dp in [0.1f64, 0.6, 1.5] {
        variants.push((
            format!("deposit={dp}"),
            AntColonyConfig {
                deposit: dp,
                ..base
            },
        ));
    }

    let mut table = Table::new(&["setting", "Mcut", "steps"]);
    for (name, cfg) in &variants {
        let res = AntColony::new(g, args.k, *cfg).run();
        println!(
            "{name:<16} Mcut {:8.3}  steps {}",
            res.best_value, res.steps
        );
        table.push_row(vec![
            Cell::Text(name.clone()),
            Cell::Num(res.best_value, 3),
            Cell::Num(res.steps as f64, 0),
        ]);
    }
    if let Ok(path) = write_csv(&table, "tune_aco.csv") {
        eprintln!("\nCSV written to {}", path.display());
    }
}

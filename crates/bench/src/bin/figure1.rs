//! Regenerates **Figure 1** of the paper: best-so-far Mcut of the three
//! metaheuristics as a function of wall-clock time (log-spaced
//! checkpoints), with the best spectral and multilevel results as
//! horizontal reference lines.
//!
//! ```text
//! cargo run -p ff-bench --release --bin figure1 -- [--budget-secs 20] \
//!     [--k 32] [--sectors 762] [--seed 2006]
//! ```
//!
//! The paper's x-axis spans 1 s … 60 m on a 3 GHz Pentium 4; here the
//! checkpoints are the same 1-2-6-20-60 pattern scaled into the supplied
//! budget, so the *shape* of the curves (ACO fastest start, FF worst start
//! / best finish) is directly comparable.

use ff_atc::{FabopConfig, FabopInstance, PAPER_K};
use ff_bench::{run_method, write_csv, Cell, MethodBudget, MethodId, Table};
use ff_core::{FusionFission, FusionFissionConfig};
use ff_metaheur::{
    AntColony, AntColonyConfig, AnytimeTrace, SimulatedAnnealing, SimulatedAnnealingConfig,
    StopCondition,
};
use ff_partition::Objective;
use std::time::Duration;

struct Args {
    budget_secs: f64,
    k: usize,
    sectors: usize,
    seed: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        budget_secs: 20.0,
        k: PAPER_K,
        sectors: ff_atc::PAPER_SECTORS,
        seed: 2006,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().expect("flag needs a value");
        match flag.as_str() {
            "--budget-secs" => args.budget_secs = val().parse().expect("bad budget"),
            "--k" => args.k = val().parse().expect("bad k"),
            "--sectors" => args.sectors = val().parse().expect("bad sectors"),
            "--seed" => args.seed = val().parse().expect("bad seed"),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// The paper's log-scale checkpoints (1s 10s 30s 1m 2m 6m 20m 60m), as
/// fractions of the 60-minute budget.
const CHECKPOINT_FRACTIONS: &[(&str, f64)] = &[
    ("1s", 1.0 / 3600.0),
    ("10s", 10.0 / 3600.0),
    ("30s", 30.0 / 3600.0),
    ("1m", 60.0 / 3600.0),
    ("2m", 120.0 / 3600.0),
    ("6m", 360.0 / 3600.0),
    ("20m", 1200.0 / 3600.0),
    ("60m", 1.0),
];

fn main() {
    let args = parse_args();
    let cfg = FabopConfig {
        seed: args.seed,
        ..Default::default()
    };
    let inst = if args.sectors == ff_atc::PAPER_SECTORS {
        FabopInstance::paper_scale(&cfg)
    } else {
        FabopInstance::scaled(args.sectors, &cfg)
    };
    let g = &inst.graph;
    let budget = Duration::from_secs_f64(args.budget_secs);
    let stop = StopCondition::time(budget);
    eprintln!(
        "FABOP instance: {} sectors, {} flows, k = {}; budget {:.1}s per metaheuristic\n",
        g.num_vertices(),
        g.num_edges(),
        args.k,
        args.budget_secs
    );

    // --- Reference lines: best spectral & multilevel Mcut ---------------
    let quick = MethodBudget::quick();
    let best_of = |ids: &[MethodId]| -> (f64, f64) {
        let mut best = f64::INFINITY;
        let mut secs = 0.0;
        for &id in ids {
            let out = run_method(id, g, args.k, Objective::MCut, quick, args.seed);
            let m = Objective::MCut.evaluate(g, &out.partition);
            secs += out.elapsed.as_secs_f64();
            if m < best {
                best = m;
            }
        }
        (best, secs)
    };
    let (spectral_best, spectral_secs) = best_of(&[
        MethodId::SpectralLancBi,
        MethodId::SpectralLancOctKl,
        MethodId::SpectralRqiBiKl,
        MethodId::SpectralRqiOctKl,
    ]);
    let (multilevel_best, multilevel_secs) =
        best_of(&[MethodId::MultilevelBi, MethodId::MultilevelOct]);
    eprintln!("reference: best spectral Mcut {spectral_best:.3} ({spectral_secs:.2}s total)");
    eprintln!(
        "reference: best multilevel Mcut {multilevel_best:.3} ({multilevel_secs:.2}s total)\n"
    );

    // --- Metaheuristic traces --------------------------------------------
    let sa_trace: AnytimeTrace = {
        let cfg = SimulatedAnnealingConfig {
            objective: Objective::MCut,
            stop,
            seed: args.seed,
            ..Default::default()
        };
        SimulatedAnnealing::new(g, args.k, cfg).run().trace
    };
    eprintln!("simulated annealing done");
    let aco_trace: AnytimeTrace = {
        let cfg = AntColonyConfig {
            objective: Objective::MCut,
            stop,
            seed: args.seed,
            ..Default::default()
        };
        AntColony::new(g, args.k, cfg).run().trace
    };
    eprintln!("ant colony done");
    let ff_trace: AnytimeTrace = {
        let cfg = FusionFissionConfig {
            objective: Objective::MCut,
            stop,
            ..FusionFissionConfig::standard(args.k)
        };
        FusionFission::new(g, cfg, args.seed).run().trace
    };
    eprintln!("fusion fission done\n");

    // --- Sampled series ---------------------------------------------------
    let mut table = Table::new(&[
        "checkpoint",
        "seconds",
        "simulated annealing",
        "ant colony",
        "fusion fission",
        "best spectral",
        "best multilevel",
    ]);
    let sample = |t: &AnytimeTrace, at: Duration| -> Cell {
        match t.value_at(at) {
            Some(v) => Cell::Num(v, 3),
            None => Cell::Text("-".into()),
        }
    };
    for &(label, frac) in CHECKPOINT_FRACTIONS {
        let at = budget.mul_f64(frac);
        table.push_row(vec![
            Cell::Text(label.to_string()),
            Cell::Num(at.as_secs_f64(), 2),
            sample(&sa_trace, at),
            sample(&aco_trace, at),
            sample(&ff_trace, at),
            Cell::Num(spectral_best, 3),
            Cell::Num(multilevel_best, 3),
        ]);
    }

    println!("\nFigure 1 — anytime Mcut (budget-scaled paper checkpoints)\n");
    println!("{}", table.render());
    println!(
        "final values: SA {:?}, ACO {:?}, FF {:?}",
        sa_trace.final_value(),
        aco_trace.final_value(),
        ff_trace.final_value()
    );
    match write_csv(&table, "figure1.csv") {
        Ok(path) => eprintln!("CSV written to {}", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
    match ff_bench::write_json(&table, "figure1.json") {
        Ok(path) => eprintln!("JSON written to {}", path.display()),
        Err(e) => eprintln!("could not write JSON: {e}"),
    }

    // Full improvement traces (every best-so-far event), plot-ready.
    let mut traces = Table::new(&["method", "seconds", "mcut", "step"]);
    for (name, trace) in [
        ("simulated annealing", &sa_trace),
        ("ant colony", &aco_trace),
        ("fusion fission", &ff_trace),
    ] {
        for p in trace.points() {
            traces.push_row(vec![
                Cell::Text(name.into()),
                Cell::Num(p.elapsed.as_secs_f64(), 4),
                Cell::Num(p.value, 4),
                Cell::Num(p.step as f64, 0),
            ]);
        }
    }
    match write_csv(&traces, "figure1_traces.csv") {
        Ok(path) => eprintln!("full traces written to {}", path.display()),
        Err(e) => eprintln!("could not write traces: {e}"),
    }
}

//! Parameter exploration for fusion–fission: sweeps the five paper
//! tunables (t_max, t_min, nbt, choice_k, choice_r) one axis at a time
//! around the defaults, reporting best Mcut per setting.
//!
//! ```text
//! cargo run -p ff-bench --release --bin tune -- [--budget-secs 5] \
//!     [--sectors 762] [--k 32] [--seed 2006] [--trials 2]
//! ```

use ff_atc::{FabopConfig, FabopInstance, PAPER_K};
use ff_bench::{write_csv, Cell, Table};
use ff_core::{FusionFission, FusionFissionConfig};
use ff_metaheur::StopCondition;
use ff_partition::Objective;
use std::time::Duration;

struct Args {
    budget_secs: f64,
    k: usize,
    sectors: usize,
    seed: u64,
    trials: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        budget_secs: 5.0,
        k: PAPER_K,
        sectors: ff_atc::PAPER_SECTORS,
        seed: 2006,
        trials: 2,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().expect("flag needs a value");
        match flag.as_str() {
            "--budget-secs" => args.budget_secs = val().parse().expect("bad budget"),
            "--k" => args.k = val().parse().expect("bad k"),
            "--sectors" => args.sectors = val().parse().expect("bad sectors"),
            "--seed" => args.seed = val().parse().expect("bad seed"),
            "--trials" => args.trials = val().parse().expect("bad trials"),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let cfg0 = FabopConfig {
        seed: args.seed,
        ..Default::default()
    };
    let inst = if args.sectors == ff_atc::PAPER_SECTORS {
        FabopInstance::paper_scale(&cfg0)
    } else {
        FabopInstance::scaled(args.sectors, &cfg0)
    };
    let g = &inst.graph;
    let stop = StopCondition::time(Duration::from_secs_f64(args.budget_secs));
    let base = FusionFissionConfig {
        objective: Objective::MCut,
        stop,
        ..FusionFissionConfig::standard(args.k)
    };
    eprintln!(
        "instance {}v/{}e, k={}, {:.1}s × {} trials per setting\n",
        g.num_vertices(),
        g.num_edges(),
        args.k,
        args.budget_secs,
        args.trials
    );

    let mut variants: Vec<(String, FusionFissionConfig)> = vec![("base".into(), base)];
    for nbt in [100u32, 200, 800, 1600, 3200] {
        variants.push((format!("nbt={nbt}"), FusionFissionConfig { nbt, ..base }));
    }
    for ck in [2.0f64, 4.0, 16.0, 32.0] {
        variants.push((
            format!("choice_k={ck}"),
            FusionFissionConfig {
                choice_k: ck,
                ..base
            },
        ));
    }
    for cr in [0.05f64, 0.5, 1.0] {
        variants.push((
            format!("choice_r={cr}"),
            FusionFissionConfig {
                choice_r: cr,
                ..base
            },
        ));
    }
    for lr in [0.01f64, 0.1] {
        variants.push((
            format!("law_rate={lr}"),
            FusionFissionConfig {
                law_rate: lr,
                ..base
            },
        ));
    }
    for sb in [0.0f64, 1.0] {
        variants.push((
            format!("size_bias={sb}"),
            FusionFissionConfig {
                size_bias: sb,
                ..base
            },
        ));
    }

    let mut table = Table::new(&["setting", "mean Mcut", "best Mcut"]);
    for (name, cfg) in &variants {
        let vals: Vec<f64> = (0..args.trials)
            .map(|t| FusionFission::new(g, *cfg, args.seed + t).run().best_value)
            .collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let best = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        println!("{name:<16} mean {mean:8.3}  best {best:8.3}");
        table.push_row(vec![
            Cell::Text(name.clone()),
            Cell::Num(mean, 3),
            Cell::Num(best, 3),
        ]);
    }
    if let Ok(path) = write_csv(&table, "tune.csv") {
        eprintln!("\nCSV written to {}", path.display());
    }
}

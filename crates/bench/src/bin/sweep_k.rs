//! Regenerates the paper's §6 observation that fusion–fission, targeted at
//! k = 32, "returns good solutions from 27 to 38 partitions".
//!
//! ```text
//! cargo run -p ff-bench --release --bin sweep_k -- [--budget-secs 20] \
//!     [--k 32] [--sectors 762] [--seed 2006]
//! ```
//!
//! One FF run is launched at the target k; the search itself visits
//! neighboring part counts, and the harness reports the best Mcut it held
//! at every realized k, alongside a fresh percolation baseline at that k
//! so "good" has a yardstick.

use ff_atc::{FabopConfig, FabopInstance, PAPER_K};
use ff_bench::{write_csv, Cell, Table};
use ff_core::{FusionFission, FusionFissionConfig};
use ff_metaheur::{percolation_partition, PercolationConfig, StopCondition};
use ff_partition::Objective;
use std::time::Duration;

struct Args {
    budget_secs: f64,
    k: usize,
    sectors: usize,
    seed: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        budget_secs: 20.0,
        k: PAPER_K,
        sectors: ff_atc::PAPER_SECTORS,
        seed: 2006,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().expect("flag needs a value");
        match flag.as_str() {
            "--budget-secs" => args.budget_secs = val().parse().expect("bad budget"),
            "--k" => args.k = val().parse().expect("bad k"),
            "--sectors" => args.sectors = val().parse().expect("bad sectors"),
            "--seed" => args.seed = val().parse().expect("bad seed"),
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let cfg = FabopConfig {
        seed: args.seed,
        ..Default::default()
    };
    let inst = if args.sectors == ff_atc::PAPER_SECTORS {
        FabopInstance::paper_scale(&cfg)
    } else {
        FabopInstance::scaled(args.sectors, &cfg)
    };
    let g = &inst.graph;
    eprintln!(
        "FABOP instance: {} sectors, {} flows; FF targeted at k = {} for {:.1}s\n",
        g.num_vertices(),
        g.num_edges(),
        args.k,
        args.budget_secs
    );

    let ff_cfg = FusionFissionConfig {
        objective: Objective::MCut,
        stop: StopCondition::time(Duration::from_secs_f64(args.budget_secs)),
        ..FusionFissionConfig::standard(args.k)
    };
    let result = FusionFission::new(g, ff_cfg, args.seed).run();
    eprintln!(
        "run finished: {} steps, best Mcut at k={}: {:.3}\n",
        result.steps, args.k, result.best_value
    );

    let lo = args.k.saturating_sub(5).max(2);
    let hi = args.k + 6;
    let mut table = Table::new(&["k", "FF best Mcut", "percolation Mcut", "FF / percolation"]);
    for k in lo..=hi {
        let Some(&ff_val) = result.best_value_per_k.get(&k) else {
            continue;
        };
        let perc = percolation_partition(
            g,
            k,
            &PercolationConfig {
                seed: args.seed,
                ..Default::default()
            },
        );
        let perc_val = Objective::MCut.evaluate(g, &perc);
        table.push_row(vec![
            Cell::Num(k as f64, 0),
            Cell::Num(ff_val, 3),
            Cell::Num(perc_val, 3),
            Cell::Num(ff_val / perc_val, 3),
        ]);
    }

    println!(
        "\nFusion–fission solution quality across realized part counts (target k = {})\n",
        args.k
    );
    println!("{}", table.render());
    let visited = result.best_value_per_k.len();
    let near: Vec<usize> = result
        .best_value_per_k
        .keys()
        .copied()
        .filter(|&k| (lo..=hi).contains(&k))
        .collect();
    println!(
        "part counts visited: {visited} distinct (initialization descends from n); near target: {near:?}"
    );
    match write_csv(&table, "sweep_k.csv") {
        Ok(path) => eprintln!("CSV written to {}", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
    match ff_bench::write_json(&table, "sweep_k.json") {
        Ok(path) => eprintln!("JSON written to {}", path.display()),
        Err(e) => eprintln!("could not write JSON: {e}"),
    }
}

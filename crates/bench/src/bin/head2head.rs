//! Multi-seed head-to-head of the three metaheuristics — the statistically
//! honest version of Table 1's bottom three rows (single runs can flip on
//! seed luck when two methods are within a percent).
//!
//! With `--islands N > 1`, every method gets the parallel ensemble
//! treatment (`ff-engine`'s `Solver`): fusion–fission runs N islands with
//! the chosen `--migration` policy (`replace`, `combine`, `adaptive`),
//! the baselines run N independent seeds and keep their best — so nobody
//! wins just by being handed more parallelism.
//!
//! ```text
//! cargo run -p ff-bench --release --bin head2head -- [--budget-secs 10] \
//!     [--seeds 5] [--sectors 762] [--k 32] [--islands 1] [--threads 0] \
//!     [--migration replace]
//! ```

use ff_atc::{FabopConfig, FabopInstance, PAPER_K};
use ff_bench::{
    run_method_ensemble, write_csv, Cell, MethodBudget, MethodId, MigrationPolicyId, Table,
};
use ff_partition::Objective;

struct Args {
    budget_secs: f64,
    k: usize,
    sectors: usize,
    seeds: u64,
    islands: usize,
    threads: usize,
    migration: MigrationPolicyId,
}

fn parse_args() -> Args {
    let mut args = Args {
        budget_secs: 10.0,
        k: PAPER_K,
        sectors: ff_atc::PAPER_SECTORS,
        seeds: 5,
        islands: 1,
        threads: 0,
        migration: MigrationPolicyId::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().expect("flag needs a value");
        match flag.as_str() {
            "--budget-secs" => args.budget_secs = val().parse().expect("bad budget"),
            "--k" => args.k = val().parse().expect("bad k"),
            "--sectors" => args.sectors = val().parse().expect("bad sectors"),
            "--seeds" => args.seeds = val().parse().expect("bad seeds"),
            "--islands" => args.islands = val().parse().expect("bad islands"),
            "--threads" => args.threads = val().parse().expect("bad threads"),
            "--migration" => {
                let name = val();
                args.migration = MigrationPolicyId::parse(&name)
                    .unwrap_or_else(|| panic!("unknown migration policy {name}"));
            }
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn stats(values: &[f64]) -> (f64, f64, f64) {
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let best = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
    (mean, best, var.sqrt())
}

fn main() {
    let args = parse_args();
    let inst = if args.sectors == ff_atc::PAPER_SECTORS {
        FabopInstance::paper_scale(&FabopConfig::default())
    } else {
        FabopInstance::scaled(args.sectors, &FabopConfig::default())
    };
    let g = &inst.graph;
    let budget = MethodBudget::seconds(args.budget_secs);
    eprintln!(
        "{}v/{}e, k = {}, {:.1}s × {} seeds per method, {} island(s)\n",
        g.num_vertices(),
        g.num_edges(),
        args.k,
        args.budget_secs,
        args.seeds,
        args.islands
    );

    let run_one = |method: MethodId, seed: u64| -> f64 {
        let out = run_method_ensemble(
            method,
            g,
            args.k,
            Objective::MCut,
            budget,
            seed,
            args.islands,
            args.threads,
            args.migration,
        );
        Objective::MCut.evaluate(g, &out.partition)
    };

    let mut sa_vals = Vec::new();
    let mut aco_vals = Vec::new();
    let mut ff_vals = Vec::new();
    for seed in 1..=args.seeds {
        let (sa, aco, ff) = if args.islands == 1 {
            // The three methods are time-budgeted and independent, so each
            // seed's trio runs on its own thread (one core per method keeps
            // the budgets honest and cuts wall time to a third).
            std::thread::scope(|scope| {
                let sa = scope.spawn(|| run_one(MethodId::SimulatedAnnealing, seed));
                let aco = scope.spawn(|| run_one(MethodId::AntColony, seed));
                let ff = scope.spawn(|| run_one(MethodId::FusionFission, seed));
                (
                    sa.join().expect("SA thread"),
                    aco.join().expect("ACO thread"),
                    ff.join().expect("FF thread"),
                )
            })
        } else {
            // Each ensemble is internally parallel; running the methods
            // sequentially avoids oversubscribing the machine.
            (
                run_one(MethodId::SimulatedAnnealing, seed),
                run_one(MethodId::AntColony, seed),
                run_one(MethodId::FusionFission, seed),
            )
        };
        sa_vals.push(sa);
        aco_vals.push(aco);
        ff_vals.push(ff);
        eprintln!("seed {seed}: SA {sa:.3}  ACO {aco:.3}  FF {ff:.3}");
    }

    let mut table = Table::new(&["method", "mean Mcut", "best Mcut", "stddev", "wins"]);
    let wins = |mine: &[f64]| -> usize {
        (0..mine.len())
            .filter(|&i| mine[i] <= sa_vals[i] && mine[i] <= aco_vals[i] && mine[i] <= ff_vals[i])
            .count()
    };
    for (name, vals) in [
        ("Simulated annealing", &sa_vals),
        ("Ant colony", &aco_vals),
        ("Fusion Fission", &ff_vals),
    ] {
        let (mean, best, sd) = stats(vals);
        table.push_row(vec![
            Cell::Text(name.into()),
            Cell::Num(mean, 3),
            Cell::Num(best, 3),
            Cell::Num(sd, 3),
            Cell::Num(wins(vals) as f64, 0),
        ]);
    }
    println!("\n{}", table.render());
    if let Ok(path) = write_csv(&table, "head2head.csv") {
        eprintln!("CSV written to {}", path.display());
    }
}

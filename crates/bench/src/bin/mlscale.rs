//! Multilevel scaling harness: does `Solver::multilevel` dominate flat
//! fusion–fission on quality-vs-wall-clock for 10^5–10^6-vertex graphs?
//!
//! Two modes:
//!
//! ```text
//! # Write a sparse planted-partition instance as a METIS file (for the
//! # CLI smoke and ad-hoc experiments):
//! cargo run -p ff-bench --release --bin mlscale -- gen out.graph \
//!     [--groups 100] [--group-size 1000] [--p-in 0.008] [--p-out 2e-5] \
//!     [--seed 1]
//!
//! # Head-to-head on the same in-memory instance: flat FF and multilevel
//! # FF get the *same* per-island step budget; report value + wall-clock
//! # for both. With --assert, fail unless multilevel matches flat's final
//! # energy in ≤ 25% of flat's wall-clock (the ISSUE acceptance bar):
//! cargo run -p ff-bench --release --bin mlscale -- compare \
//!     [--groups 100] [--group-size 1000] [--p-in 0.008] [--p-out 2e-5] \
//!     [--k 8] [--steps 20000] [--islands 2] [--seed 1] \
//!     [--coarsen-until 3000] [--objective cut] [--assert]
//! ```
//!
//! Both runs are purely step-bounded, so each side's *partition* is
//! deterministic; only the wall-clock ratio varies by machine.

use ff_engine::{MultilevelOpts, Solver};
use ff_graph::generators::planted_partition_sparse;
use ff_graph::Graph;
use ff_partition::Objective;
use std::time::Instant;

struct Params {
    groups: usize,
    group_size: usize,
    p_in: f64,
    p_out: f64,
    seed: u64,
    k: usize,
    steps: u64,
    islands: usize,
    coarsen_until: usize,
    objective: Objective,
    assert_bar: bool,
}

impl Default for Params {
    fn default() -> Params {
        Params {
            groups: 100,
            group_size: 1000,
            p_in: 0.008,
            p_out: 2e-5,
            seed: 1,
            k: 8,
            steps: 20_000,
            islands: 2,
            coarsen_until: 3000,
            objective: Objective::Cut,
            assert_bar: false,
        }
    }
}

fn parse_params(args: &[String]) -> Params {
    let mut p = Params::default();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || it.next().expect("flag needs a value");
        match flag.as_str() {
            "--groups" => p.groups = val().parse().expect("bad --groups"),
            "--group-size" => p.group_size = val().parse().expect("bad --group-size"),
            "--p-in" => p.p_in = val().parse().expect("bad --p-in"),
            "--p-out" => p.p_out = val().parse().expect("bad --p-out"),
            "--seed" => p.seed = val().parse().expect("bad --seed"),
            "--k" => p.k = val().parse().expect("bad --k"),
            "--steps" => p.steps = val().parse().expect("bad --steps"),
            "--islands" => p.islands = val().parse().expect("bad --islands"),
            "--coarsen-until" => p.coarsen_until = val().parse().expect("bad --coarsen-until"),
            "--objective" => {
                p.objective = match val().as_str() {
                    "cut" => Objective::Cut,
                    "ncut" => Objective::NCut,
                    "mcut" => Objective::MCut,
                    other => panic!("unknown objective {other}"),
                }
            }
            "--assert" => p.assert_bar = true,
            other => panic!("unknown flag {other}"),
        }
    }
    p
}

fn generate(p: &Params) -> Graph {
    let started = Instant::now();
    let g = planted_partition_sparse(p.groups, p.group_size, p.p_in, p.p_out, p.seed);
    eprintln!(
        "mlscale: generated {} vertices, {} edges in {:.2}s",
        g.num_vertices(),
        g.num_edges(),
        started.elapsed().as_secs_f64()
    );
    g
}

fn base_solver<'g>(g: &'g Graph, p: &Params) -> Solver<'g> {
    Solver::on(g)
        .k(p.k)
        .objective(p.objective)
        .islands(p.islands)
        .steps(p.steps)
        .seed(p.seed)
}

fn compare(p: &Params) -> bool {
    let g = generate(p);

    let started = Instant::now();
    let flat = base_solver(&g, p).run().expect("flat config");
    let t_flat = started.elapsed();
    println!(
        "flat:       value {:.6}  time {:.2}s  steps {}",
        flat.best_value,
        t_flat.as_secs_f64(),
        flat.steps
    );

    let started = Instant::now();
    let ml = base_solver(&g, p)
        .multilevel(MultilevelOpts {
            coarsen_until: p.coarsen_until,
            ..Default::default()
        })
        .run()
        .expect("multilevel config");
    let t_ml = started.elapsed();
    let info = ml.multilevel.as_ref().expect("multilevel pipeline ran");
    println!(
        "multilevel: value {:.6}  time {:.2}s  steps {}  ({} levels, coarse {} vertices)",
        ml.best_value,
        t_ml.as_secs_f64(),
        ml.steps,
        info.levels,
        info.coarse_vertices
    );
    let ratio = t_ml.as_secs_f64() / t_flat.as_secs_f64();
    println!(
        "speed ratio {:.3} (multilevel / flat wall-clock), quality delta {:+.6}",
        ratio,
        ml.best_value - flat.best_value
    );

    let quality_ok = ml.best_value <= flat.best_value;
    let time_ok = ratio <= 0.25;
    if p.assert_bar {
        if !quality_ok {
            eprintln!(
                "mlscale: FAIL — multilevel value {:.6} worse than flat {:.6}",
                ml.best_value, flat.best_value
            );
        }
        if !time_ok {
            eprintln!("mlscale: FAIL — wall-clock ratio {ratio:.3} > 0.25");
        }
    }
    quality_ok && time_ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("gen") => {
            let out = args.get(1).expect("gen needs an output path");
            let p = parse_params(&args[2..]);
            let g = generate(&p);
            let file = std::fs::File::create(out).expect("cannot create output file");
            let mut w = std::io::BufWriter::new(file);
            ff_graph::io::write_metis(&g, &mut w).expect("write failed");
            eprintln!("mlscale: wrote {out}");
        }
        Some("compare") => {
            let p = parse_params(&args[1..]);
            let ok = compare(&p);
            if p.assert_bar && !ok {
                std::process::exit(1);
            }
        }
        _ => {
            eprintln!("usage: mlscale gen <out.graph> [params] | mlscale compare [params]");
            std::process::exit(2);
        }
    }
}

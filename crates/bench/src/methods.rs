//! The 17 Table-1 methods behind one dispatch enum.

use ff_core::FusionFissionConfig;
use ff_graph::Graph;
use ff_metaheur::{AntColonyConfig, PercolationConfig, SimulatedAnnealingConfig, StopCondition};
use ff_multilevel::{multilevel_partition, MultilevelConfig, MultilevelMode};
use ff_partition::{Objective, Partition};
use ff_spectral::{
    linear_partition, spectral_partition, LinearMode, RefineMethod, SectionMode, SpectralConfig,
    SpectralSolver,
};
use std::time::{Duration, Instant};

/// Every method row of Table 1, in the paper's order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MethodId {
    /// `Linear (Bi)` — index-order recursive bisection, unrefined.
    LinearBi,
    /// `Linear (Bi, KL)`.
    LinearBiKl,
    /// `Linear (Oct, KL)` — index blocks + pairwise KL.
    LinearOctKl,
    /// `Spectral (Lanc, Bi)`.
    SpectralLancBi,
    /// `Spectral (Lanc, Bi, KL)`.
    SpectralLancBiKl,
    /// `Spectral (Lanc, Oct)`.
    SpectralLancOct,
    /// `Spectral (Lanc, Oct, KL)`.
    SpectralLancOctKl,
    /// `Spectral (RQI, Bi)`.
    SpectralRqiBi,
    /// `Spectral (RQI, Bi, KL)`.
    SpectralRqiBiKl,
    /// `Spectral (RQI, Oct)`.
    SpectralRqiOct,
    /// `Spectral (RQI, Oct, KL)`.
    SpectralRqiOctKl,
    /// `Multilevel (Bi)`.
    MultilevelBi,
    /// `Multilevel (Oct)` — direct k-way V-cycle.
    MultilevelOct,
    /// `Percolation`.
    Percolation,
    /// `Simulated annealing`.
    SimulatedAnnealing,
    /// `Ant colony`.
    AntColony,
    /// `Fusion Fission`.
    FusionFission,
}

impl MethodId {
    /// The paper's Table-1 ordering.
    pub fn all() -> [MethodId; 17] {
        use MethodId::*;
        [
            LinearBi,
            LinearBiKl,
            LinearOctKl,
            SpectralLancBi,
            SpectralLancBiKl,
            SpectralLancOct,
            SpectralLancOctKl,
            SpectralRqiBi,
            SpectralRqiBiKl,
            SpectralRqiOct,
            SpectralRqiOctKl,
            MultilevelBi,
            MultilevelOct,
            Percolation,
            SimulatedAnnealing,
            AntColony,
            FusionFission,
        ]
    }

    /// The paper's row label.
    pub fn label(&self) -> &'static str {
        use MethodId::*;
        match self {
            LinearBi => "Linear (Bi)",
            LinearBiKl => "Linear (Bi, KL)",
            LinearOctKl => "Linear (Oct, KL)",
            SpectralLancBi => "Spectral (Lanc, Bi)",
            SpectralLancBiKl => "Spectral (Lanc, Bi, KL)",
            SpectralLancOct => "Spectral (Lanc, Oct)",
            SpectralLancOctKl => "Spectral (Lanc, Oct, KL)",
            SpectralRqiBi => "Spectral (RQI, Bi)",
            SpectralRqiBiKl => "Spectral (RQI, Bi, KL)",
            SpectralRqiOct => "Spectral (RQI, Oct)",
            SpectralRqiOctKl => "Spectral (RQI, Oct, KL)",
            MultilevelBi => "Multilevel (Bi)",
            MultilevelOct => "Multilevel (Oct)",
            Percolation => "Percolation",
            SimulatedAnnealing => "Simulated annealing",
            AntColony => "Ant colony",
            FusionFission => "Fusion Fission",
        }
    }

    /// Whether this row is one of the three metaheuristics (which consume
    /// the time budget rather than running to a fixed point).
    pub fn is_metaheuristic(&self) -> bool {
        matches!(
            self,
            MethodId::SimulatedAnnealing | MethodId::AntColony | MethodId::FusionFission
        )
    }
}

/// Budget for the budget-driven (metaheuristic) methods.
#[derive(Clone, Copy, Debug)]
pub struct MethodBudget {
    /// Wall-clock cap per metaheuristic run.
    pub time: Duration,
    /// Step cap per metaheuristic run (safety net for tests).
    pub steps: u64,
}

impl MethodBudget {
    /// A small budget suitable for CI and tests.
    pub fn quick() -> Self {
        MethodBudget {
            time: Duration::from_millis(1500),
            steps: 60_000,
        }
    }

    /// Time-bounded budget.
    pub fn seconds(s: f64) -> Self {
        MethodBudget {
            time: Duration::from_secs_f64(s),
            steps: u64::MAX,
        }
    }

    fn stop(&self) -> StopCondition {
        StopCondition::new(self.steps, self.time)
    }
}

/// What one method run produced.
#[derive(Clone, Debug)]
pub struct MethodOutcome {
    /// The partition (k non-empty parts).
    pub partition: Partition,
    /// Wall-clock the run took.
    pub elapsed: Duration,
}

fn spectral_cfg(
    solver: SpectralSolver,
    mode: SectionMode,
    refine: RefineMethod,
    seed: u64,
) -> SpectralConfig {
    SpectralConfig {
        solver,
        mode,
        refine,
        seed,
        ..Default::default()
    }
}

/// Runs `method` on `g` targeting `k` parts.
///
/// Metaheuristics honor `budget`; constructive methods run to completion
/// (their wall-clock is reported in `elapsed`, Figure 1's reference
/// points). The paper tunes its metaheuristics on Mcut (§5); `objective`
/// parameterizes that.
pub fn run_method(
    method: MethodId,
    g: &Graph,
    k: usize,
    objective: Objective,
    budget: MethodBudget,
    seed: u64,
) -> MethodOutcome {
    use MethodId::*;
    let start = Instant::now();
    let partition = match method {
        LinearBi => linear_partition(g, k, LinearMode::Bisection, RefineMethod::None),
        LinearBiKl => linear_partition(g, k, LinearMode::Bisection, RefineMethod::Kl),
        LinearOctKl => linear_partition(g, k, LinearMode::Octasection, RefineMethod::Kl),
        SpectralLancBi => spectral_partition(
            g,
            k,
            &spectral_cfg(
                SpectralSolver::Lanczos,
                SectionMode::Bisection,
                RefineMethod::None,
                seed,
            ),
        ),
        SpectralLancBiKl => spectral_partition(
            g,
            k,
            &spectral_cfg(
                SpectralSolver::Lanczos,
                SectionMode::Bisection,
                RefineMethod::Kl,
                seed,
            ),
        ),
        SpectralLancOct => spectral_partition(
            g,
            k,
            &spectral_cfg(
                SpectralSolver::Lanczos,
                SectionMode::Octasection,
                RefineMethod::None,
                seed,
            ),
        ),
        SpectralLancOctKl => spectral_partition(
            g,
            k,
            &spectral_cfg(
                SpectralSolver::Lanczos,
                SectionMode::Octasection,
                RefineMethod::Kl,
                seed,
            ),
        ),
        SpectralRqiBi => spectral_partition(
            g,
            k,
            &spectral_cfg(
                SpectralSolver::Rqi,
                SectionMode::Bisection,
                RefineMethod::None,
                seed,
            ),
        ),
        SpectralRqiBiKl => spectral_partition(
            g,
            k,
            &spectral_cfg(
                SpectralSolver::Rqi,
                SectionMode::Bisection,
                RefineMethod::Kl,
                seed,
            ),
        ),
        SpectralRqiOct => spectral_partition(
            g,
            k,
            &spectral_cfg(
                SpectralSolver::Rqi,
                SectionMode::Octasection,
                RefineMethod::None,
                seed,
            ),
        ),
        SpectralRqiOctKl => spectral_partition(
            g,
            k,
            &spectral_cfg(
                SpectralSolver::Rqi,
                SectionMode::Octasection,
                RefineMethod::Kl,
                seed,
            ),
        ),
        MultilevelBi => multilevel_partition(
            g,
            k,
            &MultilevelConfig {
                mode: MultilevelMode::RecursiveBisection,
                seed,
                ..Default::default()
            },
        ),
        MultilevelOct => multilevel_partition(
            g,
            k,
            &MultilevelConfig {
                mode: MultilevelMode::KWay,
                seed,
                ..Default::default()
            },
        ),
        Percolation => ff_metaheur::percolation_partition(
            g,
            k,
            &PercolationConfig {
                seed,
                ..Default::default()
            },
        ),
        SimulatedAnnealing => {
            let cfg = SimulatedAnnealingConfig {
                objective,
                stop: budget.stop(),
                seed,
                ..Default::default()
            };
            ff_metaheur::SimulatedAnnealing::new(g, k, cfg).run().best
        }
        AntColony => {
            let cfg = AntColonyConfig {
                objective,
                stop: budget.stop(),
                seed,
                ..Default::default()
            };
            ff_metaheur::AntColony::new(g, k, cfg).run().best
        }
        FusionFission => {
            let cfg = FusionFissionConfig {
                objective,
                stop: budget.stop(),
                ..FusionFissionConfig::standard(k)
            };
            ff_core::FusionFission::new(g, cfg, seed).run().best
        }
    };
    MethodOutcome {
        partition,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_atc::{FabopConfig, FabopInstance};

    #[test]
    fn all_seventeen_methods_produce_k_parts() {
        // Small instance so the whole matrix stays fast.
        let inst = FabopInstance::scaled(120, &FabopConfig::default());
        let k = 8;
        for method in MethodId::all() {
            let out = run_method(
                method,
                &inst.graph,
                k,
                Objective::MCut,
                MethodBudget::quick(),
                1,
            );
            assert_eq!(
                out.partition.num_nonempty_parts(),
                k,
                "{} returned wrong k",
                method.label()
            );
            assert!(out.partition.validate(&inst.graph));
        }
    }

    #[test]
    fn labels_unique() {
        let mut labels: Vec<&str> = MethodId::all().iter().map(|m| m.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 17);
    }

    #[test]
    fn metaheuristic_flag() {
        assert!(MethodId::FusionFission.is_metaheuristic());
        assert!(!MethodId::MultilevelBi.is_metaheuristic());
    }
}

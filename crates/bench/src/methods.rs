//! The 17 Table-1 methods behind one dispatch enum, plus the ensemble
//! wrapper that gives any of them the multi-seed island treatment.

use ff_core::FusionFissionConfig;
use ff_engine::{derive_seeds, parallel_map, MigrationPolicyId, Solver};
use ff_graph::Graph;
use ff_metaheur::{AntColonyConfig, PercolationConfig, SimulatedAnnealingConfig, StopCondition};
use ff_multilevel::{multilevel_partition, MultilevelConfig, MultilevelMode};
use ff_partition::{Objective, Partition};
use ff_spectral::{
    linear_partition, spectral_partition, LinearMode, RefineMethod, SectionMode, SpectralConfig,
    SpectralSolver,
};
use std::time::{Duration, Instant};

/// Every method row of Table 1, in the paper's order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MethodId {
    /// `Linear (Bi)` — index-order recursive bisection, unrefined.
    LinearBi,
    /// `Linear (Bi, KL)`.
    LinearBiKl,
    /// `Linear (Oct, KL)` — index blocks + pairwise KL.
    LinearOctKl,
    /// `Spectral (Lanc, Bi)`.
    SpectralLancBi,
    /// `Spectral (Lanc, Bi, KL)`.
    SpectralLancBiKl,
    /// `Spectral (Lanc, Oct)`.
    SpectralLancOct,
    /// `Spectral (Lanc, Oct, KL)`.
    SpectralLancOctKl,
    /// `Spectral (RQI, Bi)`.
    SpectralRqiBi,
    /// `Spectral (RQI, Bi, KL)`.
    SpectralRqiBiKl,
    /// `Spectral (RQI, Oct)`.
    SpectralRqiOct,
    /// `Spectral (RQI, Oct, KL)`.
    SpectralRqiOctKl,
    /// `Multilevel (Bi)`.
    MultilevelBi,
    /// `Multilevel (Oct)` — direct k-way V-cycle.
    MultilevelOct,
    /// `Percolation`.
    Percolation,
    /// `Simulated annealing`.
    SimulatedAnnealing,
    /// `Ant colony`.
    AntColony,
    /// `Fusion Fission`.
    FusionFission,
}

impl MethodId {
    /// The paper's Table-1 ordering.
    pub fn all() -> [MethodId; 17] {
        use MethodId::*;
        [
            LinearBi,
            LinearBiKl,
            LinearOctKl,
            SpectralLancBi,
            SpectralLancBiKl,
            SpectralLancOct,
            SpectralLancOctKl,
            SpectralRqiBi,
            SpectralRqiBiKl,
            SpectralRqiOct,
            SpectralRqiOctKl,
            MultilevelBi,
            MultilevelOct,
            Percolation,
            SimulatedAnnealing,
            AntColony,
            FusionFission,
        ]
    }

    /// The paper's row label.
    pub fn label(&self) -> &'static str {
        use MethodId::*;
        match self {
            LinearBi => "Linear (Bi)",
            LinearBiKl => "Linear (Bi, KL)",
            LinearOctKl => "Linear (Oct, KL)",
            SpectralLancBi => "Spectral (Lanc, Bi)",
            SpectralLancBiKl => "Spectral (Lanc, Bi, KL)",
            SpectralLancOct => "Spectral (Lanc, Oct)",
            SpectralLancOctKl => "Spectral (Lanc, Oct, KL)",
            SpectralRqiBi => "Spectral (RQI, Bi)",
            SpectralRqiBiKl => "Spectral (RQI, Bi, KL)",
            SpectralRqiOct => "Spectral (RQI, Oct)",
            SpectralRqiOctKl => "Spectral (RQI, Oct, KL)",
            MultilevelBi => "Multilevel (Bi)",
            MultilevelOct => "Multilevel (Oct)",
            Percolation => "Percolation",
            SimulatedAnnealing => "Simulated annealing",
            AntColony => "Ant colony",
            FusionFission => "Fusion Fission",
        }
    }

    /// Whether this row is one of the three metaheuristics (which consume
    /// the time budget rather than running to a fixed point).
    pub fn is_metaheuristic(&self) -> bool {
        matches!(
            self,
            MethodId::SimulatedAnnealing | MethodId::AntColony | MethodId::FusionFission
        )
    }
}

/// Budget for the budget-driven (metaheuristic) methods.
#[derive(Clone, Copy, Debug)]
pub struct MethodBudget {
    /// Wall-clock cap per metaheuristic run.
    pub time: Duration,
    /// Step cap per metaheuristic run (safety net for tests).
    pub steps: u64,
}

impl MethodBudget {
    /// A small budget suitable for CI and tests.
    pub fn quick() -> Self {
        MethodBudget {
            time: Duration::from_millis(1500),
            steps: 60_000,
        }
    }

    /// Time-bounded budget.
    pub fn seconds(s: f64) -> Self {
        MethodBudget {
            time: Duration::from_secs_f64(s),
            steps: u64::MAX,
        }
    }

    fn stop(&self) -> StopCondition {
        StopCondition::new(self.steps, self.time)
    }
}

/// What one method run produced.
#[derive(Clone, Debug)]
pub struct MethodOutcome {
    /// The partition (k non-empty parts).
    pub partition: Partition,
    /// Wall-clock the run took.
    pub elapsed: Duration,
}

fn spectral_cfg(
    solver: SpectralSolver,
    mode: SectionMode,
    refine: RefineMethod,
    seed: u64,
) -> SpectralConfig {
    SpectralConfig {
        solver,
        mode,
        refine,
        seed,
        ..Default::default()
    }
}

/// Runs `method` on `g` targeting `k` parts.
///
/// Metaheuristics honor `budget`; constructive methods run to completion
/// (their wall-clock is reported in `elapsed`, Figure 1's reference
/// points). The paper tunes its metaheuristics on Mcut (§5); `objective`
/// parameterizes that.
pub fn run_method(
    method: MethodId,
    g: &Graph,
    k: usize,
    objective: Objective,
    budget: MethodBudget,
    seed: u64,
) -> MethodOutcome {
    use MethodId::*;
    let start = Instant::now();
    let partition = match method {
        LinearBi => linear_partition(g, k, LinearMode::Bisection, RefineMethod::None),
        LinearBiKl => linear_partition(g, k, LinearMode::Bisection, RefineMethod::Kl),
        LinearOctKl => linear_partition(g, k, LinearMode::Octasection, RefineMethod::Kl),
        SpectralLancBi => spectral_partition(
            g,
            k,
            &spectral_cfg(
                SpectralSolver::Lanczos,
                SectionMode::Bisection,
                RefineMethod::None,
                seed,
            ),
        ),
        SpectralLancBiKl => spectral_partition(
            g,
            k,
            &spectral_cfg(
                SpectralSolver::Lanczos,
                SectionMode::Bisection,
                RefineMethod::Kl,
                seed,
            ),
        ),
        SpectralLancOct => spectral_partition(
            g,
            k,
            &spectral_cfg(
                SpectralSolver::Lanczos,
                SectionMode::Octasection,
                RefineMethod::None,
                seed,
            ),
        ),
        SpectralLancOctKl => spectral_partition(
            g,
            k,
            &spectral_cfg(
                SpectralSolver::Lanczos,
                SectionMode::Octasection,
                RefineMethod::Kl,
                seed,
            ),
        ),
        SpectralRqiBi => spectral_partition(
            g,
            k,
            &spectral_cfg(
                SpectralSolver::Rqi,
                SectionMode::Bisection,
                RefineMethod::None,
                seed,
            ),
        ),
        SpectralRqiBiKl => spectral_partition(
            g,
            k,
            &spectral_cfg(
                SpectralSolver::Rqi,
                SectionMode::Bisection,
                RefineMethod::Kl,
                seed,
            ),
        ),
        SpectralRqiOct => spectral_partition(
            g,
            k,
            &spectral_cfg(
                SpectralSolver::Rqi,
                SectionMode::Octasection,
                RefineMethod::None,
                seed,
            ),
        ),
        SpectralRqiOctKl => spectral_partition(
            g,
            k,
            &spectral_cfg(
                SpectralSolver::Rqi,
                SectionMode::Octasection,
                RefineMethod::Kl,
                seed,
            ),
        ),
        MultilevelBi => multilevel_partition(
            g,
            k,
            &MultilevelConfig {
                mode: MultilevelMode::RecursiveBisection,
                seed,
                ..Default::default()
            },
        ),
        MultilevelOct => multilevel_partition(
            g,
            k,
            &MultilevelConfig {
                mode: MultilevelMode::KWay,
                seed,
                ..Default::default()
            },
        ),
        Percolation => ff_metaheur::percolation_partition(
            g,
            k,
            &PercolationConfig {
                seed,
                ..Default::default()
            },
        ),
        SimulatedAnnealing => {
            let cfg = SimulatedAnnealingConfig {
                objective,
                stop: budget.stop(),
                seed,
                ..Default::default()
            };
            ff_metaheur::SimulatedAnnealing::new(g, k, cfg).run().best
        }
        AntColony => {
            let cfg = AntColonyConfig {
                objective,
                stop: budget.stop(),
                seed,
                ..Default::default()
            };
            ff_metaheur::AntColony::new(g, k, cfg).run().best
        }
        FusionFission => {
            let cfg = FusionFissionConfig {
                objective,
                stop: budget.stop(),
                ..FusionFissionConfig::standard(k)
            };
            ff_core::FusionFission::new(g, cfg, seed).run().best
        }
    };
    MethodOutcome {
        partition,
        elapsed: start.elapsed(),
    }
}

/// Like [`run_method`], but as an `islands`-wide parallel ensemble rooted
/// at `seed` (per-island seeds are [`derive_seeds`]-derived, so results
/// are reproducible for any thread schedule; see the `ff-engine` docs).
///
/// * **Fusion–fission** runs as a true island ensemble through the
///   [`Solver`] builder, with `migration` choosing the exchange policy
///   (replace-if-better, KaFFPaE-style combine, or adaptive intervals),
/// * **every other method** runs `islands` independently seeded copies in
///   parallel and keeps the partition with the lowest `objective` (ties to
///   the lowest island index) — multi-start, the fair baseline treatment
///   (`migration` is ignored for them).
///
/// `max_threads` caps concurrency (`0` = one thread per island);
/// `islands <= 1` is exactly [`run_method`].
///
/// Fairness caveat: with a *time* budget and `max_threads < islands`, the
/// two branches budget differently — fusion–fission islands all start
/// their clocks together (late waves lose compute to waiting), while the
/// multi-start branch starts each island's clock when its wave runs (the
/// ensemble takes more wall-clock but every island gets the full budget).
/// For an apples-to-apples comparison use `max_threads = 0` or a
/// step-based budget, which are schedule-independent.
#[allow(clippy::too_many_arguments)]
pub fn run_method_ensemble(
    method: MethodId,
    g: &Graph,
    k: usize,
    objective: Objective,
    budget: MethodBudget,
    seed: u64,
    islands: usize,
    max_threads: usize,
    migration: MigrationPolicyId,
) -> MethodOutcome {
    if islands <= 1 {
        return run_method(method, g, k, objective, budget, seed);
    }
    let start = Instant::now();
    let partition = match method {
        MethodId::FusionFission => {
            let base = FusionFissionConfig {
                objective,
                stop: budget.stop(),
                ..FusionFissionConfig::standard(k)
            };
            Solver::on(g)
                .config(base)
                .islands(islands)
                .threads(max_threads)
                .migration(migration.build())
                .seed(seed)
                .run()
                .expect("validated budget/k")
                .best
        }
        _ => {
            let seeds = derive_seeds(seed, islands);
            let mut outs = parallel_map(islands, max_threads, |i| {
                run_method(method, g, k, objective, budget, seeds[i])
            });
            let values: Vec<f64> = outs
                .iter()
                .map(|o| objective.evaluate(g, &o.partition))
                .collect();
            let mut best = 0;
            for i in 1..islands {
                if values[i] < values[best] {
                    best = i;
                }
            }
            outs.swap_remove(best).partition
        }
    };
    MethodOutcome {
        partition,
        elapsed: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_atc::{FabopConfig, FabopInstance};

    #[test]
    fn all_seventeen_methods_produce_k_parts() {
        // Small instance so the whole matrix stays fast.
        let inst = FabopInstance::scaled(120, &FabopConfig::default());
        let k = 8;
        for method in MethodId::all() {
            let out = run_method(
                method,
                &inst.graph,
                k,
                Objective::MCut,
                MethodBudget::quick(),
                1,
            );
            assert_eq!(
                out.partition.num_nonempty_parts(),
                k,
                "{} returned wrong k",
                method.label()
            );
            assert!(out.partition.validate(&inst.graph));
        }
    }

    #[test]
    fn ensemble_treatment_for_metaheuristics_and_baselines() {
        let inst = FabopInstance::scaled(100, &FabopConfig::default());
        let budget = MethodBudget {
            time: std::time::Duration::MAX,
            steps: 2_000,
        };
        for method in [
            MethodId::FusionFission,
            MethodId::SimulatedAnnealing,
            MethodId::MultilevelBi,
        ] {
            let policy = MigrationPolicyId::default();
            let a = run_method_ensemble(
                method,
                &inst.graph,
                6,
                Objective::MCut,
                budget,
                3,
                3,
                2,
                policy,
            );
            let b = run_method_ensemble(
                method,
                &inst.graph,
                6,
                Objective::MCut,
                budget,
                3,
                3,
                2,
                policy,
            );
            assert_eq!(
                a.partition.assignment(),
                b.partition.assignment(),
                "{} ensemble not reproducible",
                method.label()
            );
            assert_eq!(a.partition.num_nonempty_parts(), 6);
            // For the multi-start branch (everything except fusion–
            // fission) best-of-N is a hard invariant: the ensemble keeps
            // the minimum over islands, one of which IS the solo run at
            // the first derived seed. Fusion–fission is excluded — its
            // migration perturbs island trajectories, so min-over-islands
            // is only guaranteed against its *own* islands, not against a
            // migration-free solo run.
            if method != MethodId::FusionFission {
                let solo_seed = ff_engine::derive_seeds(3, 3)[0];
                let solo = run_method(method, &inst.graph, 6, Objective::MCut, budget, solo_seed);
                assert!(
                    Objective::MCut.evaluate(&inst.graph, &a.partition)
                        <= Objective::MCut.evaluate(&inst.graph, &solo.partition) + 1e-9,
                    "{} ensemble lost to its own first island",
                    method.label()
                );
            }
        }
    }

    #[test]
    fn ensemble_with_one_island_is_run_method() {
        let inst = FabopInstance::scaled(100, &FabopConfig::default());
        let budget = MethodBudget {
            time: std::time::Duration::MAX,
            steps: 1_500,
        };
        let a = run_method_ensemble(
            MethodId::FusionFission,
            &inst.graph,
            5,
            Objective::MCut,
            budget,
            7,
            1,
            0,
            MigrationPolicyId::default(),
        );
        let b = run_method(
            MethodId::FusionFission,
            &inst.graph,
            5,
            Objective::MCut,
            budget,
            7,
        );
        assert_eq!(a.partition.assignment(), b.partition.assignment());
    }

    #[test]
    fn labels_unique() {
        let mut labels: Vec<&str> = MethodId::all().iter().map(|m| m.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 17);
    }

    #[test]
    fn metaheuristic_flag() {
        assert!(MethodId::FusionFission.is_metaheuristic());
        assert!(!MethodId::MultilevelBi.is_metaheuristic());
    }
}

//! End-to-end method benchmarks on a half-scale FABOP instance: how long
//! each Table-1 family takes to produce its partition (the wall-clock
//! dimension of Figure 1, in bench form).

use criterion::{criterion_group, criterion_main, Criterion};
use ff_atc::{FabopConfig, FabopInstance};
use ff_bench::{run_method, MethodBudget, MethodId};
use ff_partition::Objective;
use std::hint::black_box;
use std::time::Duration;

fn bench_methods(c: &mut Criterion) {
    let inst = FabopInstance::scaled(381, &FabopConfig::default());
    let g = &inst.graph;
    let k = 16;
    // Fixed small step budget so metaheuristic timing is comparable.
    let budget = MethodBudget {
        time: Duration::from_secs(30),
        steps: 3_000,
    };

    let mut group = c.benchmark_group("methods_381");
    group.sample_size(10);
    for method in [
        MethodId::LinearBiKl,
        MethodId::SpectralLancBi,
        MethodId::SpectralRqiBiKl,
        MethodId::SpectralLancOctKl,
        MethodId::MultilevelBi,
        MethodId::MultilevelOct,
        MethodId::Percolation,
        MethodId::SimulatedAnnealing,
        MethodId::AntColony,
        MethodId::FusionFission,
    ] {
        group.bench_function(method.label(), |b| {
            b.iter(|| black_box(run_method(method, g, k, Objective::MCut, budget, 1)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_methods);
criterion_main!(benches);

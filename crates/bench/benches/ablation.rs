//! Criterion ablation benches: throughput cost of fusion–fission's design
//! choices (quality ablation lives in the `ablation` binary; this measures
//! the *time* side — e.g. percolation splits cost more per step than
//! random halves, law learning is nearly free).

use criterion::{criterion_group, criterion_main, Criterion};
use ff_atc::{FabopConfig, FabopInstance};
use ff_core::{FissionSplitter, FusionFission, FusionFissionConfig};
use ff_metaheur::StopCondition;
use ff_partition::Objective;
use std::hint::black_box;

fn bench_ff_variants(c: &mut Criterion) {
    let inst = FabopInstance::scaled(200, &FabopConfig::default());
    let g = &inst.graph;
    let base = FusionFissionConfig {
        objective: Objective::MCut,
        stop: StopCondition::steps(800),
        ..FusionFissionConfig::standard(8)
    };

    let mut group = c.benchmark_group("ff_800_steps_200v");
    group.sample_size(10);
    for (name, cfg) in [
        ("paper_config", base),
        (
            "no_energy_scaling",
            FusionFissionConfig {
                use_energy_scaling: false,
                ..base
            },
        ),
        (
            "no_law_learning",
            FusionFissionConfig {
                learn_laws: false,
                ..base
            },
        ),
        (
            "random_half_fission",
            FusionFissionConfig {
                splitter: FissionSplitter::RandomHalf,
                ..base
            },
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| black_box(FusionFission::new(g, cfg, 1).run().best_value))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ff_variants);
criterion_main!(benches);

//! Criterion microbenchmarks for the substrate kernels every partitioner
//! is built on: spmv, Lanczos Fiedler solves, matching + coarsening, FM
//! passes, percolation, and incremental move bookkeeping.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ff_atc::{FabopConfig, FabopInstance};
use ff_graph::{coarsen, heavy_edge_matching};
use ff_linalg::{smallest_eigenpairs, LanczosOptions, LinearOperator};
use ff_metaheur::{percolation_partition, PercolationConfig};
use ff_partition::refine::fm::FmOptions;
use ff_partition::{fm_refine_bisection, CutState, Objective, Partition};
use ff_spectral::laplacian;
use std::hint::black_box;

fn instance() -> FabopInstance {
    FabopInstance::paper_scale(&FabopConfig::default())
}

fn bench_spmv(c: &mut Criterion) {
    let inst = instance();
    let l = laplacian(&inst.graph);
    let x = vec![1.0; l.n()];
    let mut y = vec![0.0; l.n()];
    c.bench_function("spmv_laplacian_762", |b| {
        b.iter(|| {
            l.apply(black_box(&x), &mut y);
            black_box(&y);
        })
    });
}

fn bench_fiedler(c: &mut Criterion) {
    let inst = instance();
    let l = laplacian(&inst.graph);
    let n = l.n();
    let deflate = vec![vec![1.0 / (n as f64).sqrt(); n]];
    c.bench_function("lanczos_fiedler_762", |b| {
        b.iter(|| {
            let opts = LanczosOptions {
                max_iter: 300,
                tol: 1e-6,
                seed: 1,
                deflate: deflate.clone(),
            };
            black_box(smallest_eigenpairs(&l, 1, &opts))
        })
    });
}

fn bench_matching_coarsen(c: &mut Criterion) {
    let inst = instance();
    c.bench_function("heavy_edge_matching_762", |b| {
        b.iter(|| black_box(heavy_edge_matching(&inst.graph, 1)))
    });
    let m = heavy_edge_matching(&inst.graph, 1);
    c.bench_function("coarsen_762", |b| {
        b.iter(|| black_box(coarsen(&inst.graph, &m)))
    });
}

fn bench_fm_pass(c: &mut Criterion) {
    let inst = instance();
    let g = &inst.graph;
    c.bench_function("fm_refine_bisection_762", |b| {
        b.iter_batched(
            || CutState::new(g, Partition::random(g, 2, 7)),
            |mut st| {
                fm_refine_bisection(&mut st, 0, 1, &FmOptions::default());
                black_box(st.cut())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_mincut(c: &mut Criterion) {
    // Stoer–Wagner is O(n³); bench at reduced scale.
    let inst = ff_atc::FabopInstance::scaled(150, &FabopConfig::default());
    c.bench_function("stoer_wagner_150", |b| {
        b.iter(|| black_box(ff_graph::stoer_wagner(&inst.graph)))
    });
}

fn bench_percolation(c: &mut Criterion) {
    let inst = instance();
    c.bench_function("percolation_k32_762", |b| {
        b.iter(|| {
            black_box(percolation_partition(
                &inst.graph,
                32,
                &PercolationConfig::default(),
            ))
        })
    });
}

fn bench_move_bookkeeping(c: &mut Criterion) {
    let inst = instance();
    let g = &inst.graph;
    c.bench_function("cutstate_move_delta_mcut", |b| {
        let st = CutState::new(g, Partition::random(g, 32, 3));
        let n = g.num_vertices() as u32;
        let mut v = 0u32;
        b.iter(|| {
            v = (v + 97) % n;
            black_box(st.move_delta(Objective::MCut, v, v % 32))
        })
    });
    c.bench_function("cutstate_apply_move", |b| {
        b.iter_batched(
            || CutState::new(g, Partition::random(g, 32, 3)),
            |mut st| {
                for v in (0..500u32).map(|i| (i * 131) % g.num_vertices() as u32) {
                    st.move_vertex(v, v % 32);
                }
                black_box(st.cut())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_ff_steps(c: &mut Criterion) {
    use ff_core::{FusionFission, FusionFissionConfig};
    use ff_metaheur::StopCondition;
    let inst = instance();
    let g = &inst.graph;
    let cfg = FusionFissionConfig {
        stop: StopCondition::steps(u64::MAX),
        ..FusionFissionConfig::standard(32)
    };
    // One persistent run with an unbounded budget: each iteration advances
    // the same search by 64 steps, so this measures the steady-state cost
    // of the step loop (atom pick, reaction, bookkeeping) — the hot path
    // the ROADMAP's `live_atoms` item targets.
    let mut run = FusionFission::new(g, cfg, 1).start();
    run.advance(5_000); // past agglomeration, into the core loop
    c.bench_function("ff_core_steps_x64_762", |b| {
        b.iter(|| {
            run.advance(64);
            black_box(run.steps())
        })
    });
}

criterion_group!(
    benches,
    bench_spmv,
    bench_fiedler,
    bench_matching_coarsen,
    bench_fm_pass,
    bench_mincut,
    bench_percolation,
    bench_move_bookkeeping,
    bench_ff_steps
);
criterion_main!(benches);

//! Percolation partitioning (§4.4 of the paper).
//!
//! k seed vertices release k "colored liquids" that drip through the graph.
//! The bond a color offers a vertex accumulates edge weights along the
//! flow path, attenuated by `1/2^d` with hop depth `d` — nearby, strongly
//! connected vertices bond strongly; distant ones barely at all. Each
//! vertex joins the color with the strongest bond; the flow is then re-run
//! with each color confined to its own territory, and the process repeats
//! until no vertex changes color (or a round cap).
//!
//! **Bond semantics.** The paper's printed formula sums `w(e)/2^d` along
//! "the path" but simultaneously says the *lowest* candidate bond is kept —
//! as printed, a sum-of-weights bond lets liquid cross a near-zero bridge
//! at full strength (the weight mass accumulated before the bridge is not
//! lost), which would defeat the operator's own use as a fission splitter.
//! This implementation resolves the ambiguity with a *gated decay* flow
//! that keeps all three ingredients the text insists on: per-hop `1/2^d`
//! attenuation, weakest-link gating ("the lowest bond … assigned to v"),
//! and highest-bond coloring:
//!
//! ```text
//! bond(cᵢ) = ∞,   bond(v) = max over neighbors u of
//!                            min(bond(u), w(u, v) / 2^{depth(u)})
//! ```
//!
//! A thin pipe throttles everything downstream of it — exactly how liquid
//! percolates through a porous medium. Max–min flows settle exactly with a
//! Dijkstra-style greedy, and the chosen path "is not always the shortest,
//! and can change during the process" (between confinement rounds), as the
//! paper notes.

use crate::anytime::StopCondition;
use ff_graph::{Graph, VertexId};
use ff_partition::Partition;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::collections::{BinaryHeap, VecDeque};
use std::time::Instant;

/// Options for [`percolation_partition`].
#[derive(Clone, Copy, Debug)]
pub struct PercolationConfig {
    /// Maximum recoloring rounds (default 16; convergence is usually < 5).
    pub max_rounds: usize,
    /// Seed for the initial seed-vertex spreading.
    pub seed: u64,
}

impl Default for PercolationConfig {
    fn default() -> Self {
        PercolationConfig {
            max_rounds: 16,
            seed: 1,
        }
    }
}

/// Non-negative f64 ordered by IEEE bits (no NaN by construction).
#[inline]
fn enc(x: f64) -> u64 {
    x.to_bits()
}

/// One color's gated-decay flow: the bond each vertex receives from
/// `source`, flowing only through vertices where `allowed` is true (the
/// endpoint being claimed need not be allowed — liquid can *reach* foreign
/// territory, it just cannot flow *through* it).
fn flow(g: &Graph, source: VertexId, allowed: impl Fn(VertexId) -> bool) -> Vec<f64> {
    let n = g.num_vertices();
    let mut bond = vec![-1.0f64; n]; // -1 = unreached
    let mut depth = vec![0u32; n];
    let mut heap: BinaryHeap<(u64, VertexId)> = BinaryHeap::new();
    bond[source as usize] = f64::MAX;
    heap.push((enc(f64::MAX), source));
    let mut settled = vec![false; n];
    while let Some((b, v)) = heap.pop() {
        if settled[v as usize] || enc(bond[v as usize].max(0.0)) != b {
            continue;
        }
        settled[v as usize] = true;
        // Liquid flows onward only through own/free territory.
        if v != source && !allowed(v) {
            continue;
        }
        let d = depth[v as usize];
        let atten = 0.5f64.powi(d as i32);
        for (u, w) in g.edges_of(v) {
            if settled[u as usize] {
                continue;
            }
            // Weakest link along the path, attenuated per hop.
            let cand = bond[v as usize].min(w * atten);
            if cand > bond[u as usize] {
                bond[u as usize] = cand;
                depth[u as usize] = d + 1;
                heap.push((enc(cand), u));
            }
        }
    }
    bond
}

/// Farthest-point seed spreading (BFS metric), deterministic under `seed`.
/// Public because fusion–fission's fission operator seeds its two-way
/// percolation splits with it.
pub fn spread_seeds(g: &Graph, k: usize, seed: u64) -> Vec<VertexId> {
    let n = g.num_vertices();
    assert!(k >= 1 && k <= n, "need 1 ≤ k ≤ n");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut seeds = vec![rng.gen_range(0..n) as VertexId];
    while seeds.len() < k {
        let mut dist = vec![usize::MAX; n];
        let mut q = VecDeque::new();
        for &s in &seeds {
            dist[s as usize] = 0;
            q.push_back(s);
        }
        while let Some(v) = q.pop_front() {
            for &u in g.neighbors(v) {
                if dist[u as usize] == usize::MAX {
                    dist[u as usize] = dist[v as usize] + 1;
                    q.push_back(u);
                }
            }
        }
        let far = (0..n as VertexId)
            .filter(|v| !seeds.contains(v))
            .max_by_key(|&v| {
                if dist[v as usize] == usize::MAX {
                    n + 1 // unreachable = farthest
                } else {
                    dist[v as usize]
                }
            })
            .expect("k ≤ n leaves an unseeded vertex");
        seeds.push(far);
    }
    seeds
}

/// Percolation with automatically spread seeds.
pub fn percolation_partition(g: &Graph, k: usize, cfg: &PercolationConfig) -> Partition {
    let seeds = spread_seeds(g, k, cfg.seed);
    percolation_with_seeds(g, &seeds, cfg)
}

/// Percolation from explicit seed vertices (one per color).
///
/// # Panics
///
/// Panics if `seeds` is empty, contains duplicates, or exceeds the vertex
/// count.
pub fn percolation_with_seeds(g: &Graph, seeds: &[VertexId], cfg: &PercolationConfig) -> Partition {
    let n = g.num_vertices();
    let k = seeds.len();
    assert!(k >= 1 && k <= n, "need 1 ≤ k ≤ n seeds");
    {
        let mut sorted = seeds.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), k, "duplicate seeds");
    }

    // Round 0: free flow everywhere.
    let mut color: Vec<u32> = vec![u32::MAX; n];
    let start = Instant::now();
    let stop = StopCondition::steps(cfg.max_rounds as u64);
    let mut round = 0u64;
    loop {
        let prev = color.clone();
        let mut best_bond = vec![-1.0f64; n];
        for (c, &s) in seeds.iter().enumerate() {
            let c32 = c as u32;
            let free_round = round == 0;
            let allowed =
                |v: VertexId| free_round || prev[v as usize] == c32 || prev[v as usize] == u32::MAX;
            let bond = flow(g, s, allowed);
            for v in 0..n {
                if bond[v] > best_bond[v] {
                    best_bond[v] = bond[v];
                    color[v] = c32;
                }
            }
        }
        // Unreached vertices (disconnected from every seed): nearest color
        // by round-robin to keep the partition total.
        for (v, c) in color.iter_mut().enumerate() {
            if *c == u32::MAX {
                *c = (v % k) as u32;
            }
        }
        // Seeds always keep their own color.
        for (c, &s) in seeds.iter().enumerate() {
            color[s as usize] = c as u32;
        }
        round += 1;
        if color == prev || stop.should_stop(round, start) {
            break;
        }
    }

    Partition::from_assignment(g, color, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_graph::generators::{grid2d, path, random_geometric, two_cliques_bridge};
    use ff_partition::{imbalance, Objective};

    #[test]
    fn covers_all_vertices() {
        let g = grid2d(8, 8);
        let p = percolation_partition(&g, 4, &PercolationConfig::default());
        assert_eq!(p.num_nonempty_parts(), 4);
        assert_eq!((0..4u32).map(|i| p.part_size(i)).sum::<usize>(), 64);
    }

    #[test]
    fn respects_two_clique_structure() {
        let g = two_cliques_bridge(8, 2.0, 0.1);
        // Seeds inside each clique.
        let p = percolation_with_seeds(&g, &[0, 12], &PercolationConfig::default());
        let cut = Objective::Cut.evaluate(&g, &p);
        assert!((cut - 0.1).abs() < 1e-9, "cut = {cut}");
    }

    #[test]
    fn path_split_roughly_half() {
        let g = path(20);
        let p = percolation_with_seeds(&g, &[0, 19], &PercolationConfig::default());
        // Two liquids from the ends meet near the middle.
        assert!(imbalance(&p) < 0.35, "imbalance {}", imbalance(&p));
        // Each side is an interval: part of v non-decreasing along the path.
        let a: Vec<u32> = (0..20).map(|v| p.part_of(v)).collect();
        let changes = a.windows(2).filter(|w| w[0] != w[1]).count();
        assert_eq!(changes, 1, "path parts must be contiguous: {a:?}");
    }

    #[test]
    fn seeds_keep_their_colors() {
        let g = grid2d(6, 6);
        let seeds = [0 as VertexId, 35, 5];
        let p = percolation_with_seeds(&g, &seeds, &PercolationConfig::default());
        for (c, &s) in seeds.iter().enumerate() {
            assert_eq!(p.part_of(s), c as u32);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let g = random_geometric(100, 0.2, 3);
        let cfg = PercolationConfig {
            seed: 11,
            ..Default::default()
        };
        let a = percolation_partition(&g, 5, &cfg);
        let b = percolation_partition(&g, 5, &cfg);
        assert_eq!(a.assignment(), b.assignment());
    }

    #[test]
    fn k_equals_one() {
        let g = grid2d(4, 4);
        let p = percolation_partition(&g, 1, &PercolationConfig::default());
        assert_eq!(p.num_nonempty_parts(), 1);
    }

    #[test]
    fn disconnected_graph_handled() {
        let mut b = ff_graph::GraphBuilder::new(6);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        b.add_edge(3, 4, 1.0);
        b.add_edge(4, 5, 1.0);
        let g = b.build();
        let p = percolation_with_seeds(&g, &[0, 3], &PercolationConfig::default());
        assert_eq!(p.num_nonempty_parts(), 2);
        assert_eq!(Objective::Cut.evaluate(&g, &p), 0.0);
    }

    #[test]
    #[should_panic(expected = "duplicate seeds")]
    fn duplicate_seeds_panic() {
        let g = path(5);
        percolation_with_seeds(&g, &[1, 1], &PercolationConfig::default());
    }
}

//! Competing ant colonies for k-way partitioning (§3.2 of the paper).
//!
//! The paper's adaptation (which it contrasts with Kuntz et al. and
//! Langham & Grant): **k colonies, one per part, competing for food**.
//! Each colony lays its own pheromone on edges; an ant only smells its own
//! colony's trail. A vertex belongs to the colony with the largest
//! pheromone mass on its incident edges. A local heuristic pushes ants
//! toward pheromone-free edges (exploration); trails evaporate over time
//! (forgetting); and when the emergent partition improves the best known
//! solution, each colony reinforces the edges inside its territory —
//! "updating backward the path that led to food".
//!
//! Colonies are seeded from the percolation partition, as the paper's
//! Figure 1 setup describes ("ant colony and simulated annealing start
//! with the result of percolation").

use crate::anytime::{AnytimeTrace, MetaheuristicResult, StopCondition};
use crate::percolation::{percolation_partition, PercolationConfig};
use ff_graph::{EdgeIndex, Graph, VertexId};
use ff_partition::{Objective, Partition};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// Configuration for [`AntColony`]. The paper counts four tunables for its
/// ant algorithm; they are `ants_per_colony`, `evaporation`, `deposit` and
/// `explore_prob`.
#[derive(Clone, Copy, Debug)]
pub struct AntColonyConfig {
    /// Objective to minimize.
    pub objective: Objective,
    /// Ants walking for each colony (default 4).
    pub ants_per_colony: usize,
    /// Trail evaporation rate ρ per evaluation sweep (default 0.03).
    pub evaporation: f64,
    /// Pheromone laid per traversal (default 0.25).
    pub deposit: f64,
    /// Probability an ant takes the least-marked incident edge instead of
    /// the roulette choice (default 0.12).
    pub explore_prob: f64,
    /// Extra deposit on territory-internal edges when the best solution
    /// improves (default 0.5).
    pub reinforce: f64,
    /// Rounds between ownership evaluations (default 8).
    pub eval_every: u64,
    /// Step/time budget (steps = ant move rounds).
    pub stop: StopCondition,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AntColonyConfig {
    fn default() -> Self {
        // Defaults from the tuning sweep in `results/tune_aco.csv`
        // (`cargo run -p ff-bench --release --bin tune_aco`): parameters
        // interact, and the single change that reliably helps over the
        // initial hand-tuned set is the stronger deposit.
        AntColonyConfig {
            objective: Objective::MCut,
            ants_per_colony: 4,
            evaporation: 0.03,
            deposit: 0.6,
            explore_prob: 0.12,
            reinforce: 0.5,
            eval_every: 8,
            stop: StopCondition::steps(4_000),
            seed: 1,
        }
    }
}

/// The competing-colonies runner.
pub struct AntColony<'g> {
    g: &'g Graph,
    k: usize,
    cfg: AntColonyConfig,
    init: Partition,
}

impl<'g> AntColony<'g> {
    /// Seeds colony territories from percolation, as in the paper.
    pub fn new(g: &'g Graph, k: usize, cfg: AntColonyConfig) -> Self {
        let init = percolation_partition(
            g,
            k,
            &PercolationConfig {
                seed: cfg.seed,
                ..Default::default()
            },
        );
        AntColony { g, k, cfg, init }
    }

    /// Seeds colony territories from an explicit partition.
    pub fn with_initial(g: &'g Graph, init: Partition, cfg: AntColonyConfig) -> Self {
        assert_eq!(init.num_vertices(), g.num_vertices());
        let k = init.num_parts();
        AntColony { g, k, cfg, init }
    }

    /// Runs the colony competition.
    pub fn run(&self) -> MetaheuristicResult {
        let g = self.g;
        let cfg = &self.cfg;
        let k = self.k;
        let n = g.num_vertices();
        let idx: EdgeIndex = g.edge_index();
        let m = idx.num_edges();
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let started = Instant::now();

        // τ[c][e]: colony c's pheromone on edge e, seeded from territory.
        let tau0 = 0.05;
        let mut tau = vec![vec![tau0; m]; k];
        for v in g.vertices() {
            let pv = self.init.part_of(v);
            let ids = idx.edge_ids_of(g, v);
            for (pos, (u, _)) in g.edges_of(v).enumerate() {
                if self.init.part_of(u) == pv {
                    tau[pv as usize][ids[pos] as usize] = 1.0;
                }
            }
        }

        // Ants: (colony, position); start on their territory.
        let mut ants: Vec<(u32, VertexId)> = Vec::with_capacity(k * cfg.ants_per_colony);
        for c in 0..k as u32 {
            let members = self.init.part_members(c);
            for a in 0..cfg.ants_per_colony {
                let v = if members.is_empty() {
                    rng.gen_range(0..n) as VertexId
                } else {
                    members[(a * 7 + 3) % members.len()]
                };
                ants.push((c, v));
            }
        }

        let mut best = self.init.clone();
        let mut best_value = cfg.objective.evaluate(g, &best);
        let mut trace = AnytimeTrace::with_tag(cfg.objective);
        trace.record(started.elapsed(), best_value, 0);

        let mut step = 0u64;
        while !cfg.stop.should_stop(step, started) {
            step += 1;
            // --- Ant motion + deposit -----------------------------------
            for (c, pos) in ants.iter_mut() {
                let v = *pos;
                let deg = g.degree(v);
                if deg == 0 {
                    *pos = rng.gen_range(0..n) as VertexId;
                    continue;
                }
                let ids = idx.edge_ids_of(g, v);
                let colony = &tau[*c as usize];
                let choice_pos = if rng.gen::<f64>() < cfg.explore_prob {
                    // Exploration: the least-marked incident edge.
                    (0..deg)
                        .min_by(|&a, &b| {
                            colony[ids[a] as usize]
                                .partial_cmp(&colony[ids[b] as usize])
                                .unwrap()
                        })
                        .unwrap()
                } else {
                    // Roulette ∝ pheromone × edge weight.
                    let weights = g.neighbor_weights(v);
                    let total: f64 = (0..deg).map(|p| colony[ids[p] as usize] * weights[p]).sum();
                    if total <= 0.0 {
                        rng.gen_range(0..deg)
                    } else {
                        let mut roll = rng.gen::<f64>() * total;
                        let mut pick = deg - 1;
                        for p in 0..deg {
                            roll -= colony[ids[p] as usize] * weights[p];
                            if roll <= 0.0 {
                                pick = p;
                                break;
                            }
                        }
                        pick
                    }
                };
                let edge = ids[choice_pos] as usize;
                tau[*c as usize][edge] += cfg.deposit;
                *pos = g.neighbors(v)[choice_pos];
            }

            // --- Evaluation sweep ----------------------------------------
            if step.is_multiple_of(cfg.eval_every) {
                // Evaporation.
                for colony in tau.iter_mut() {
                    for t in colony.iter_mut() {
                        *t = (*t * (1.0 - cfg.evaporation)).max(tau0 * 0.1);
                    }
                }
                let part = self.ownership_partition(&idx, &tau);
                let value = cfg.objective.evaluate(g, &part);
                if value < best_value {
                    best_value = value;
                    best = part;
                    trace.record(started.elapsed(), best_value, step);
                    // Food found: reinforce each colony's territory.
                    for v in g.vertices() {
                        let pv = best.part_of(v);
                        let ids = idx.edge_ids_of(g, v);
                        for (pos, (u, _)) in g.edges_of(v).enumerate() {
                            if u > v && best.part_of(u) == pv {
                                tau[pv as usize][ids[pos] as usize] += cfg.reinforce;
                            }
                        }
                    }
                }
            }
        }

        MetaheuristicResult {
            best,
            best_value,
            steps: step,
            trace,
        }
    }

    /// "A vertex is owned by a colony if the sum of its pheromones on
    /// adjacent edges is greater than for other colonies." Fixes empty
    /// colonies by granting them their strongest-claim vertex, so the
    /// result is always a k-part partition.
    fn ownership_partition(&self, idx: &EdgeIndex, tau: &[Vec<f64>]) -> Partition {
        let g = self.g;
        let k = self.k;
        let n = g.num_vertices();
        let mut assignment = vec![0u32; n];
        for v in g.vertices() {
            let ids = idx.edge_ids_of(g, v);
            let mut best_c = 0u32;
            let mut best_mass = f64::NEG_INFINITY;
            for (c, colony) in tau.iter().enumerate() {
                let mass: f64 = ids.iter().map(|&e| colony[e as usize]).sum();
                if mass > best_mass {
                    best_mass = mass;
                    best_c = c as u32;
                }
            }
            assignment[v as usize] = best_c;
        }
        // Guarantee non-empty colonies.
        let mut sizes = vec![0usize; k];
        for &a in &assignment {
            sizes[a as usize] += 1;
        }
        for c in 0..k as u32 {
            if sizes[c as usize] > 0 {
                continue;
            }
            // Strongest claim of colony c on any vertex in an over-full part.
            let victim = g
                .vertices()
                .filter(|&v| sizes[assignment[v as usize] as usize] > 1)
                .max_by(|&a, &b| {
                    let mass = |v: VertexId| -> f64 {
                        idx.edge_ids_of(g, v)
                            .iter()
                            .map(|&e| tau[c as usize][e as usize])
                            .sum()
                    };
                    mass(a).partial_cmp(&mass(b)).unwrap().then(b.cmp(&a))
                })
                .expect("some part has more than one vertex when k ≤ n");
            sizes[assignment[victim as usize] as usize] -= 1;
            assignment[victim as usize] = c;
            sizes[c as usize] += 1;
        }
        Partition::from_assignment(g, assignment, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_graph::generators::{planted_partition, random_geometric, two_cliques_bridge};

    fn quick_cfg(objective: Objective, seed: u64) -> AntColonyConfig {
        AntColonyConfig {
            objective,
            stop: StopCondition::steps(600),
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn holds_two_clique_split() {
        let g = two_cliques_bridge(8, 2.0, 0.2);
        let res = AntColony::new(&g, 2, quick_cfg(Objective::Cut, 3)).run();
        assert!(
            (res.best_value - 0.2).abs() < 1e-9,
            "cut = {}",
            res.best_value
        );
        assert_eq!(res.best.num_nonempty_parts(), 2);
    }

    #[test]
    fn never_worse_than_percolation_init() {
        let g = random_geometric(70, 0.24, 5);
        let colony = AntColony::new(&g, 4, quick_cfg(Objective::MCut, 7));
        let init_val = Objective::MCut.evaluate(&g, &colony.init);
        let res = colony.run();
        assert!(
            res.best_value <= init_val + 1e-9,
            "ACO worsened: {init_val} → {}",
            res.best_value
        );
    }

    #[test]
    fn keeps_k_colonies_alive() {
        let g = planted_partition(5, 10, 0.7, 0.05, 11);
        let res = AntColony::new(&g, 5, quick_cfg(Objective::Cut, 9)).run();
        assert_eq!(res.best.num_nonempty_parts(), 5);
        assert!(res.best.validate(&g));
    }

    #[test]
    fn trace_monotone_and_stamped() {
        let g = random_geometric(50, 0.3, 2);
        let res = AntColony::new(&g, 3, quick_cfg(Objective::NCut, 4)).run();
        let pts = res.trace.points();
        assert!(!pts.is_empty());
        for w in pts.windows(2) {
            assert!(w[1].value <= w[0].value + 1e-12);
            assert!(w[1].elapsed >= w[0].elapsed);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let g = random_geometric(40, 0.3, 8);
        let run = |seed| {
            AntColony::new(&g, 3, quick_cfg(Objective::Cut, seed))
                .run()
                .best_value
        };
        assert_eq!(run(5), run(5));
    }
}

//! # ff-metaheur — classical metaheuristics for graph partitioning
//!
//! The paper's §3 comparators plus the percolation heuristic of §4.4:
//!
//! * [`percolation`] — the seeded "colored liquid" flood partitioner. It is
//!   Table 1's `Percolation` row, the initializer the paper gives simulated
//!   annealing and ant colony, and the splitter fusion–fission's fission
//!   operator uses,
//! * [`sa`] — simulated annealing with the paper's perturbation (random
//!   vertex; at high temperature it migrates to the part with the lowest
//!   internal weight, at low temperature to a random *connected* part),
//! * [`ant`] — the k-competing-colonies ant algorithm (per-colony edge
//!   pheromone; a vertex belongs to the colony with the largest adjacent
//!   pheromone mass),
//! * [`anytime`] — best-so-far traces with wall-clock stamps, the data
//!   behind Figure 1, and the shared [`StopCondition`]/
//!   [`MetaheuristicResult`] types ([`AnytimeTrace::merged`] is the
//!   deterministic reduction the `ff-engine` island ensemble uses to
//!   combine per-island traces).
//!
//! Every runner here is a pure function of (graph, config, seed):
//!
//! ```
//! use ff_graph::generators::grid2d;
//! use ff_metaheur::{percolation_partition, PercolationConfig};
//!
//! let g = grid2d(4, 4);
//! let cfg = PercolationConfig::default();
//! let p = percolation_partition(&g, 2, &cfg);
//! assert_eq!(p.num_nonempty_parts(), 2);
//! assert_eq!(p.assignment(), percolation_partition(&g, 2, &cfg).assignment());
//! ```

pub mod ant;
pub mod anytime;
pub mod percolation;
pub mod sa;

pub use ant::{AntColony, AntColonyConfig};
pub use anytime::{AnytimeTrace, CancelToken, MetaheuristicResult, StopCondition, TracePoint};
pub use percolation::{percolation_partition, percolation_with_seeds, PercolationConfig};
pub use sa::{Cooling, SimulatedAnnealing, SimulatedAnnealingConfig};

//! Simulated annealing for k-way partitioning (§3.1 of the paper).
//!
//! The paper's adaptation (which it notes differs from Ercal et al. \[7\]):
//!
//! * the perturbation picks a **random vertex** and moves it to another
//!   part: at **high temperature**, to the part with the lowest internal
//!   edge weight (a mass-balancing exploration move); at low temperature,
//!   to a random part **connected** to the vertex ("connectivity between
//!   sectors is not forced" — but low-temperature moves follow edges),
//! * Boltzmann acceptance `exp((e(s) − e(s'))/T)`,
//! * **equilibrium** = a fixed number of refused moves at the current
//!   temperature, after which the temperature decreases,
//! * stopping when `T ≤ t_min`.
//!
//! The printed cooling formula `D(T) = T·(t_max − t_min)/t_max` is
//! degenerate for the paper's own `t_min = 0` (it would never cool), so —
//! as the surrounding text describes a schedule that "decreases during the
//! search" — this implementation offers the two standard readings:
//! geometric (`T ← αT`) and linear-by-span (`T ← T − (t_max − t_min)/n_t`,
//! the same schedule fusion–fission uses). Geometric with α = 0.97 is the
//! default; the choice is an explicit config knob so the ablation bench can
//! compare.

use crate::anytime::{AnytimeTrace, MetaheuristicResult, StopCondition};
use crate::percolation::{percolation_partition, PercolationConfig};
use ff_graph::{Graph, VertexId};
use ff_partition::{CutState, Objective, Partition};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// Cooling schedule.
#[derive(Clone, Copy, Debug)]
pub enum Cooling {
    /// `T ← α·T` (0 < α < 1).
    Geometric(f64),
    /// `T ← T − (t_max − t_min)/steps` — reaches `t_min` in `steps`
    /// decrements.
    Linear {
        /// Number of decrements from `t_max` to `t_min`.
        steps: u32,
    },
}

/// Configuration for [`SimulatedAnnealing`].
#[derive(Clone, Copy, Debug)]
pub struct SimulatedAnnealingConfig {
    /// Objective to minimize (the paper uses Mcut for the ATC problem).
    pub objective: Objective,
    /// Initial temperature (the paper's only tuned parameter).
    pub t_max: f64,
    /// Freezing point (paper: 0).
    pub t_min: f64,
    /// Cooling schedule.
    pub cooling: Cooling,
    /// Refused moves at one temperature that constitute equilibrium.
    pub refusals_per_level: u32,
    /// Fraction of `t_max` above which the "high temperature" perturbation
    /// is used (default 0.5).
    pub high_temp_fraction: f64,
    /// When the freezing point is reached with budget left, reheat to
    /// `t_max` and restart from the best solution (default true — this is
    /// what lets Figure 1 run SA "infinitely"; set false for the classic
    /// single-descent schedule).
    pub reheat: bool,
    /// Step/time budget.
    pub stop: StopCondition,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SimulatedAnnealingConfig {
    fn default() -> Self {
        SimulatedAnnealingConfig {
            objective: Objective::MCut,
            t_max: 1.0,
            t_min: 1e-4,
            cooling: Cooling::Geometric(0.97),
            refusals_per_level: 64,
            high_temp_fraction: 0.5,
            reheat: true,
            stop: StopCondition::steps(200_000),
            seed: 1,
        }
    }
}

/// The simulated-annealing runner.
pub struct SimulatedAnnealing<'g> {
    g: &'g Graph,
    cfg: SimulatedAnnealingConfig,
    init: Partition,
}

impl<'g> SimulatedAnnealing<'g> {
    /// Starts from the percolation partition, as the paper does.
    pub fn new(g: &'g Graph, k: usize, cfg: SimulatedAnnealingConfig) -> Self {
        let init = percolation_partition(
            g,
            k,
            &PercolationConfig {
                seed: cfg.seed,
                ..Default::default()
            },
        );
        SimulatedAnnealing { g, cfg, init }
    }

    /// Starts from an explicit partition.
    pub fn with_initial(g: &'g Graph, init: Partition, cfg: SimulatedAnnealingConfig) -> Self {
        assert_eq!(init.num_vertices(), g.num_vertices());
        SimulatedAnnealing { g, cfg, init }
    }

    /// Runs the annealing loop to completion.
    pub fn run(&self) -> MetaheuristicResult {
        let cfg = &self.cfg;
        let g = self.g;
        let n = g.num_vertices();
        let k = self.init.num_parts();
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut st = CutState::new(g, self.init.clone());
        let mut current = st.objective(cfg.objective);
        let mut best = self.init.clone();
        let mut best_value = current;
        let mut trace = AnytimeTrace::with_tag(cfg.objective);
        let started = Instant::now();
        trace.record(started.elapsed(), best_value, 0);

        let mut t = cfg.t_max;
        let mut refusals = 0u32;
        let mut step = 0u64;
        let high_threshold = cfg.t_max * cfg.high_temp_fraction;

        while !cfg.stop.should_stop(step, started) {
            if t <= cfg.t_min {
                if !cfg.reheat {
                    break;
                }
                // Freeze point reached with budget left: restart the
                // annealing cycle from the best solution found so far.
                t = cfg.t_max;
                st = CutState::new(g, best.clone());
                current = best_value;
            }
            step += 1;
            let v = rng.gen_range(0..n) as VertexId;
            let from = st.partition().part_of(v);
            // Never empty a part: the problem is a fixed-k partition.
            if st.partition().part_size(from) <= 1 {
                continue;
            }
            let to = if t > high_threshold {
                // Part with the lowest internal weight (excluding v's own).
                (0..k as u32)
                    .filter(|&p| p != from)
                    .min_by(|&a, &b| {
                        st.internal2(a)
                            .partial_cmp(&st.internal2(b))
                            .unwrap()
                            .then(a.cmp(&b))
                    })
                    .unwrap_or(from)
            } else {
                // Random part among those connected to v.
                // connection_weights is sorted by part id (deterministic).
                let cands: Vec<u32> = st
                    .connection_weights(v)
                    .into_iter()
                    .map(|(p, _)| p)
                    .filter(|&p| p != from)
                    .collect();
                match cands.len() {
                    0 => continue,
                    len => cands[rng.gen_range(0..len)],
                }
            };
            if to == from {
                continue;
            }

            let delta = st.move_delta(cfg.objective, v, to);
            let accept = if delta <= 0.0 {
                true
            } else if delta.is_finite() {
                // Boltzmann: exp(−Δ/T) > U(0,1).
                (-delta / t).exp() > rng.gen::<f64>()
            } else {
                false
            };
            if accept {
                st.move_vertex(v, to);
                current += delta;
                if current < best_value {
                    best_value = current;
                    best = st.partition().clone();
                    trace.record(started.elapsed(), best_value, step);
                }
            } else {
                refusals += 1;
                if refusals >= cfg.refusals_per_level {
                    refusals = 0;
                    t = match cfg.cooling {
                        Cooling::Geometric(alpha) => t * alpha,
                        Cooling::Linear { steps } => t - (cfg.t_max - cfg.t_min) / steps as f64,
                    };
                }
            }
        }

        // Guard against float drift in the accumulated `current`.
        let exact = Objective::evaluate(&cfg.objective, g, &best);
        MetaheuristicResult {
            best,
            best_value: exact,
            steps: step,
            trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_graph::generators::{planted_partition, random_geometric, two_cliques_bridge};

    fn quick_cfg(objective: Objective, seed: u64) -> SimulatedAnnealingConfig {
        SimulatedAnnealingConfig {
            objective,
            t_max: 0.5,
            stop: StopCondition::steps(30_000),
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn improves_over_initial() {
        let g = random_geometric(80, 0.22, 7);
        let sa = SimulatedAnnealing::new(&g, 4, quick_cfg(Objective::Cut, 3));
        let init_cut = Objective::Cut.evaluate(&g, &sa.init);
        let res = sa.run();
        assert!(
            res.best_value <= init_cut + 1e-9,
            "SA worsened: {init_cut} → {}",
            res.best_value
        );
        assert!(res.best.validate(&g));
        assert_eq!(res.best.num_nonempty_parts(), 4);
    }

    #[test]
    fn finds_two_clique_bisection() {
        let g = two_cliques_bridge(10, 2.0, 0.2);
        let sa = SimulatedAnnealing::new(&g, 2, quick_cfg(Objective::Cut, 5));
        let res = sa.run();
        assert!(
            (res.best_value - 0.2).abs() < 1e-9,
            "cut = {}",
            res.best_value
        );
    }

    #[test]
    fn mcut_run_produces_finite_value() {
        let g = planted_partition(4, 12, 0.7, 0.05, 9);
        let sa = SimulatedAnnealing::new(&g, 4, quick_cfg(Objective::MCut, 2));
        let res = sa.run();
        assert!(res.best_value.is_finite());
        assert!(res.best_value >= 0.0);
    }

    #[test]
    fn trace_is_monotone() {
        let g = random_geometric(60, 0.25, 1);
        let sa = SimulatedAnnealing::new(&g, 3, quick_cfg(Objective::NCut, 4));
        let res = sa.run();
        let pts = res.trace.points();
        assert!(!pts.is_empty());
        for w in pts.windows(2) {
            assert!(w[1].value <= w[0].value + 1e-12);
        }
    }

    #[test]
    fn keeps_k_parts() {
        let g = random_geometric(50, 0.3, 6);
        let sa = SimulatedAnnealing::new(&g, 6, quick_cfg(Objective::Cut, 8));
        let res = sa.run();
        assert_eq!(res.best.num_nonempty_parts(), 6);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = random_geometric(40, 0.3, 2);
        let run = |seed| {
            SimulatedAnnealing::new(&g, 3, quick_cfg(Objective::Cut, seed))
                .run()
                .best_value
        };
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn linear_cooling_works() {
        let g = random_geometric(40, 0.3, 11);
        let cfg = SimulatedAnnealingConfig {
            cooling: Cooling::Linear { steps: 200 },
            stop: StopCondition::steps(20_000),
            ..quick_cfg(Objective::Cut, 3)
        };
        let res = SimulatedAnnealing::new(&g, 3, cfg).run();
        assert!(res.best_value.is_finite());
    }
}

//! Anytime behaviour: best-so-far traces, stop conditions, result types.
//!
//! Figure 1 of the paper plots the best Mcut each metaheuristic holds as a
//! function of wall-clock time (log scale, 1 s → 60 m). Every metaheuristic
//! in this suite therefore records a [`TracePoint`] whenever its best
//! solution improves; the figure harness samples these traces at the
//! paper's checkpoints.

use ff_partition::{Objective, Partition};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One improvement event: after `elapsed`, the best objective was `value`.
#[derive(Clone, Copy, Debug)]
pub struct TracePoint {
    /// Wall-clock time since the run started.
    pub elapsed: Duration,
    /// Best objective value held at that moment.
    pub value: f64,
    /// Steps executed so far.
    pub step: u64,
    /// Which criterion `value` measures, when the producing trace was
    /// tagged ([`AnytimeTrace::with_tag`]) — how multi-objective
    /// ensembles keep provenance through [`AnytimeTrace::merged`].
    pub objective: Option<Objective>,
}

/// A best-so-far trace.
#[derive(Clone, Debug, Default)]
pub struct AnytimeTrace {
    points: Vec<TracePoint>,
    tag: Option<Objective>,
}

impl AnytimeTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty trace whose future points are all stamped with
    /// `objective` — used by runs inside a mixed-objective ensemble so a
    /// merged stream stays attributable.
    pub fn with_tag(objective: Objective) -> Self {
        AnytimeTrace {
            points: Vec::new(),
            tag: Some(objective),
        }
    }

    /// The objective this trace is tagged with, if any.
    pub fn tag(&self) -> Option<Objective> {
        self.tag
    }

    /// Appends an improvement event (stamped with the trace's tag).
    pub fn record(&mut self, elapsed: Duration, value: f64, step: u64) {
        debug_assert!(
            self.points.last().is_none_or(|p| value <= p.value),
            "trace must be non-increasing"
        );
        self.points.push(TracePoint {
            elapsed,
            value,
            step,
            objective: self.tag,
        });
    }

    /// All improvement events, chronological.
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// Number of improvement events recorded so far.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no improvement has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The events recorded at or after index `from` — the streaming tap:
    /// a consumer that remembers how many points it has already seen
    /// (`cursor = trace.len()` after each read) observes every improvement
    /// exactly once, as it happens, without the trace having to know who is
    /// listening. An out-of-range `from` yields an empty slice.
    pub fn points_since(&self, from: usize) -> &[TracePoint] {
        self.points.get(from..).unwrap_or(&[])
    }

    /// Best value held at time `t` (the last improvement at or before `t`),
    /// or `None` if nothing was recorded by then.
    pub fn value_at(&self, t: Duration) -> Option<f64> {
        self.points
            .iter()
            .take_while(|p| p.elapsed <= t)
            .last()
            .map(|p| p.value)
    }

    /// Final best value, or `None` for an empty trace.
    pub fn final_value(&self) -> Option<f64> {
        self.points.last().map(|p| p.value)
    }

    /// Merges best-so-far traces from parallel runs (ensemble islands)
    /// into the ensemble-level best-so-far trace.
    ///
    /// The reduction is deterministic for a fixed set of input points,
    /// independent of argument order and thread scheduling: all points are
    /// sorted by `(elapsed, step, value)` and only strictly-improving
    /// values are kept, so the result is non-increasing like any single
    /// trace. (The timestamps themselves are wall-clock, so two wall-clock
    /// *runs* still differ in `elapsed`; the value sequence is what the
    /// reduction pins down.)
    pub fn merged<'a, I>(traces: I) -> AnytimeTrace
    where
        I: IntoIterator<Item = &'a AnytimeTrace>,
    {
        let mut pts: Vec<TracePoint> = traces
            .into_iter()
            .flat_map(|t| t.points.iter().copied())
            .collect();
        pts.sort_by(|a, b| {
            a.elapsed
                .cmp(&b.elapsed)
                .then(a.step.cmp(&b.step))
                .then(a.value.total_cmp(&b.value))
        });
        let mut out = AnytimeTrace::new();
        let mut best = f64::INFINITY;
        for p in pts {
            if p.value < best {
                best = p.value;
                out.points.push(p);
            }
        }
        out
    }
}

/// A shared cooperative-cancellation flag.
///
/// Cloning yields another handle to the *same* flag, so one side (a
/// server, a supervisor thread, a signal handler) can hold a clone and
/// [`cancel`](CancelToken::cancel) while the search loop polls
/// [`is_cancelled`](CancelToken::is_cancelled) between steps. Cancellation
/// is sticky: once set it never resets. The flag composes with
/// [`StopCondition`] rather than replacing it — a run stops at whichever
/// of (steps, time, cancel) trips first — so step-budgeted runs that are
/// never cancelled keep their deterministic output.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; visible to every clone.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

/// When a metaheuristic run must stop (whichever limit hits first).
#[derive(Clone, Copy, Debug)]
pub struct StopCondition {
    /// Maximum number of steps (perturbations / iterations).
    pub max_steps: u64,
    /// Wall-clock budget.
    pub max_time: Duration,
}

impl StopCondition {
    /// Step-bounded only.
    pub fn steps(max_steps: u64) -> Self {
        StopCondition {
            max_steps,
            max_time: Duration::MAX,
        }
    }

    /// Time-bounded only.
    pub fn time(max_time: Duration) -> Self {
        StopCondition {
            max_steps: u64::MAX,
            max_time,
        }
    }

    /// Both limits.
    pub fn new(max_steps: u64, max_time: Duration) -> Self {
        StopCondition {
            max_steps,
            max_time,
        }
    }

    /// Whether the run should stop.
    #[inline]
    pub fn should_stop(&self, step: u64, started: Instant) -> bool {
        step >= self.max_steps
            || (self.max_time != Duration::MAX && started.elapsed() >= self.max_time)
    }
}

/// What every metaheuristic run returns.
#[derive(Clone, Debug)]
pub struct MetaheuristicResult {
    /// Best partition found.
    pub best: Partition,
    /// Its objective value (under the run's configured objective).
    pub best_value: f64,
    /// Steps executed.
    pub steps: u64,
    /// Best-so-far trace for anytime plots.
    pub trace: AnytimeTrace,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_records_and_queries() {
        let mut t = AnytimeTrace::new();
        t.record(Duration::from_millis(10), 5.0, 1);
        t.record(Duration::from_millis(30), 3.0, 8);
        t.record(Duration::from_millis(90), 2.5, 20);
        assert_eq!(t.points().len(), 3);
        assert_eq!(t.value_at(Duration::from_millis(5)), None);
        assert_eq!(t.value_at(Duration::from_millis(10)), Some(5.0));
        assert_eq!(t.value_at(Duration::from_millis(50)), Some(3.0));
        assert_eq!(t.value_at(Duration::from_secs(10)), Some(2.5));
        assert_eq!(t.final_value(), Some(2.5));
    }

    #[test]
    fn stop_condition_steps() {
        let s = StopCondition::steps(100);
        let now = Instant::now();
        assert!(!s.should_stop(99, now));
        assert!(s.should_stop(100, now));
    }

    #[test]
    fn stop_condition_time() {
        let s = StopCondition::time(Duration::from_millis(0));
        assert!(s.should_stop(0, Instant::now()));
        let s2 = StopCondition::time(Duration::from_secs(3600));
        assert!(!s2.should_stop(0, Instant::now()));
    }

    #[test]
    fn merged_is_order_independent_and_monotone() {
        let mut a = AnytimeTrace::new();
        a.record(Duration::from_millis(10), 5.0, 1);
        a.record(Duration::from_millis(40), 2.0, 9);
        let mut b = AnytimeTrace::new();
        b.record(Duration::from_millis(20), 4.0, 3);
        b.record(Duration::from_millis(30), 3.0, 5);
        b.record(Duration::from_millis(50), 2.5, 12); // worse than a's 2.0 — dropped

        let ab = AnytimeTrace::merged([&a, &b]);
        let ba = AnytimeTrace::merged([&b, &a]);
        let vals: Vec<f64> = ab.points().iter().map(|p| p.value).collect();
        assert_eq!(vals, vec![5.0, 4.0, 3.0, 2.0]);
        let vals_ba: Vec<f64> = ba.points().iter().map(|p| p.value).collect();
        assert_eq!(vals, vals_ba);
        for w in ab.points().windows(2) {
            assert!(w[1].value < w[0].value);
            assert!(w[1].elapsed >= w[0].elapsed);
        }
        assert_eq!(ab.final_value(), Some(2.0));
    }

    #[test]
    fn merged_of_nothing_is_empty() {
        assert!(AnytimeTrace::merged(std::iter::empty()).points().is_empty());
        let empty = AnytimeTrace::new();
        assert!(AnytimeTrace::merged([&empty]).points().is_empty());
    }

    #[test]
    fn points_since_is_an_exactly_once_tap() {
        let mut t = AnytimeTrace::new();
        let mut cursor = 0usize;
        assert!(t.points_since(cursor).is_empty());
        t.record(Duration::from_millis(1), 9.0, 1);
        t.record(Duration::from_millis(2), 7.0, 4);
        let seen = t.points_since(cursor);
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[1].value, 7.0);
        cursor = t.len();
        assert!(t.points_since(cursor).is_empty());
        t.record(Duration::from_millis(5), 6.0, 9);
        let seen = t.points_since(cursor);
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].step, 9);
        // Out-of-range cursors are harmless.
        assert!(t.points_since(t.len() + 10).is_empty());
    }

    #[test]
    fn cancel_token_is_shared_and_sticky() {
        let t = CancelToken::new();
        let clone = t.clone();
        assert!(!t.is_cancelled() && !clone.is_cancelled());
        clone.cancel();
        assert!(t.is_cancelled() && clone.is_cancelled());
        clone.cancel(); // idempotent
        assert!(t.is_cancelled());
        // A fresh token is independent.
        assert!(!CancelToken::new().is_cancelled());
    }

    #[test]
    fn empty_trace() {
        let t = AnytimeTrace::new();
        assert!(t.final_value().is_none());
        assert!(t.value_at(Duration::from_secs(1)).is_none());
    }

    #[test]
    fn tagged_points_keep_provenance_through_merge() {
        use ff_partition::Objective;
        let mut cut = AnytimeTrace::with_tag(Objective::Cut);
        cut.record(Duration::from_millis(10), 5.0, 1);
        let mut untagged = AnytimeTrace::new();
        untagged.record(Duration::from_millis(20), 4.0, 2);
        assert_eq!(cut.tag(), Some(Objective::Cut));
        assert_eq!(untagged.tag(), None);
        let merged = AnytimeTrace::merged([&cut, &untagged]);
        let objs: Vec<Option<Objective>> = merged.points().iter().map(|p| p.objective).collect();
        assert_eq!(objs, vec![Some(Objective::Cut), None]);
    }
}

//! `ffpart` — partition a graph file from the command line.
//!
//! ```text
//! ffpart <graph> -k <parts> [options]
//!
//! options:
//!   -k, --parts N            number of parts (required)
//!   -m, --method NAME        ff | sa | aco | percolation | multilevel |
//!                            multilevel-kway | spectral | spectral-rqi |
//!                            spectral-oct | linear | linear-kl  (default ff)
//!   -o, --objective NAME     cut | ncut | mcut                 (default mcut)
//!   -b, --budget-secs S      metaheuristic time budget         (default 10)
//!   --steps N                metaheuristic step budget per island; when
//!                            given without -b, the run is purely
//!                            step-bounded (deterministic output)
//!   -s, --seed N             root RNG seed                     (default 1)
//!   -j, --islands N          parallel ensemble width: N independently
//!                            seeded searches with periodic best-molecule
//!                            exchange (ff) or best-of-N (other methods)
//!                            (default 1)
//!   --threads N              concurrent OS threads for the ensemble
//!                            (default: one per island)
//!   -f, --format NAME        metis | edgelist                  (default metis)
//!   -w, --write PATH         write the partition (.part format)
//!   -r, --repair             repair disconnected parts before reporting
//!   -q, --quiet              suppress the per-part table
//!   --mincut                 also report the global minimum cut
//!                            (Stoer–Wagner) as an instance diagnostic
//!   -h, --help               this text
//! ```
//!
//! Exit codes: 0 success, 2 usage error, 3 input error.

use ff_bench::{run_method_ensemble, MethodBudget, MethodId};
use ff_graph::Graph;
use ff_partition::{analyze, imbalance, repair_connectivity, write_partition, Objective};
use std::fs::File;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: ffpart <graph> -k <parts> [-m method] [-o objective] \
[-b budget-secs] [--steps n] [-s seed] [-j islands] [--threads n] [-f metis|edgelist] \
[-w out.part] [-r] [-q]\nsee `ffpart --help`";

struct Args {
    graph_path: String,
    k: usize,
    method: MethodId,
    objective: Objective,
    budget_secs: Option<f64>,
    steps: Option<u64>,
    seed: u64,
    islands: usize,
    threads: usize,
    format: String,
    write: Option<String>,
    repair: bool,
    quiet: bool,
    mincut: bool,
}

fn parse_method(name: &str) -> Option<MethodId> {
    Some(match name {
        "ff" | "fusion-fission" => MethodId::FusionFission,
        "sa" | "annealing" => MethodId::SimulatedAnnealing,
        "aco" | "ants" => MethodId::AntColony,
        "percolation" => MethodId::Percolation,
        "multilevel" => MethodId::MultilevelBi,
        "multilevel-kway" => MethodId::MultilevelOct,
        "spectral" => MethodId::SpectralLancBiKl,
        "spectral-rqi" => MethodId::SpectralRqiBiKl,
        "spectral-oct" => MethodId::SpectralLancOctKl,
        "linear" => MethodId::LinearBi,
        "linear-kl" => MethodId::LinearBiKl,
        _ => return None,
    })
}

fn parse_objective(name: &str) -> Option<Objective> {
    Some(match name {
        "cut" => Objective::Cut,
        "ncut" => Objective::NCut,
        "mcut" => Objective::MCut,
        _ => return None,
    })
}

fn parse_args() -> Result<Args, String> {
    let mut graph_path: Option<String> = None;
    let mut k: Option<usize> = None;
    let mut method = MethodId::FusionFission;
    let mut objective = Objective::MCut;
    let mut budget_secs = None;
    let mut steps = None;
    let mut seed = 1u64;
    let mut islands = 1usize;
    let mut threads = 0usize;
    let mut format = "metis".to_string();
    let mut write = None;
    let mut repair = false;
    let mut quiet = false;
    let mut mincut = false;

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |flag: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "-h" | "--help" => {
                return Err("help".into());
            }
            "-k" | "--parts" => {
                k = Some(val("-k")?.parse().map_err(|_| "bad -k value".to_string())?)
            }
            "-m" | "--method" => {
                let name = val("-m")?;
                method = parse_method(&name).ok_or_else(|| format!("unknown method `{name}`"))?;
            }
            "-o" | "--objective" => {
                let name = val("-o")?;
                objective =
                    parse_objective(&name).ok_or_else(|| format!("unknown objective `{name}`"))?;
            }
            "-b" | "--budget-secs" => {
                budget_secs = Some(val("-b")?.parse().map_err(|_| "bad budget".to_string())?)
            }
            "--steps" => {
                steps = Some(
                    val("--steps")?
                        .parse()
                        .map_err(|_| "bad steps".to_string())?,
                )
            }
            "-s" | "--seed" => seed = val("-s")?.parse().map_err(|_| "bad seed".to_string())?,
            "-j" | "--islands" => {
                islands = val("-j")?.parse().map_err(|_| "bad islands".to_string())?
            }
            "--threads" => {
                threads = val("--threads")?
                    .parse()
                    .map_err(|_| "bad threads".to_string())?
            }
            "-f" | "--format" => format = val("-f")?,
            "-w" | "--write" => write = Some(val("-w")?),
            "-r" | "--repair" => repair = true,
            "-q" | "--quiet" => quiet = true,
            "--mincut" => mincut = true,
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            other => {
                if graph_path.is_some() {
                    return Err("multiple graph paths given".into());
                }
                graph_path = Some(other.to_string());
            }
        }
    }
    Ok(Args {
        graph_path: graph_path.ok_or("missing graph path")?,
        k: k.ok_or("missing -k")?,
        method,
        objective,
        budget_secs,
        steps,
        seed,
        islands,
        threads,
        format,
        write,
        repair,
        quiet,
        mincut,
    })
}

fn load_graph(path: &str, format: &str) -> Result<Graph, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    match format {
        "metis" => ff_graph::io::read_metis(file).map_err(|e| format!("{path}: {e}")),
        "edgelist" => ff_graph::io::read_edge_list(file).map_err(|e| format!("{path}: {e}")),
        other => Err(format!("unknown format `{other}` (metis|edgelist)")),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) if e == "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("ffpart: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let g = match load_graph(&args.graph_path, &args.format) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("ffpart: {e}");
            return ExitCode::from(3);
        }
    };
    if args.k == 0 || args.k > g.num_vertices() {
        eprintln!(
            "ffpart: -k must be in 1..={} for this graph",
            g.num_vertices()
        );
        return ExitCode::from(2);
    }
    if args.islands == 0 {
        eprintln!("ffpart: --islands must be at least 1");
        return ExitCode::from(2);
    }
    eprintln!(
        "ffpart: {} vertices, {} edges → k = {} via {}{}",
        g.num_vertices(),
        g.num_edges(),
        args.k,
        args.method.label(),
        if args.islands > 1 {
            format!(" × {} islands", args.islands)
        } else {
            String::new()
        }
    );
    if args.mincut && g.num_vertices() >= 2 {
        let cut = ff_graph::stoer_wagner(&g);
        println!(
            "global min cut: {:.4} (isolates {} of {} vertices)",
            cut.weight,
            cut.side.len().min(g.num_vertices() - cut.side.len()),
            g.num_vertices()
        );
    }

    // `--steps` without `-b` means purely step-bounded: the run's output
    // is then a pure function of (graph, config, seed) — byte-identical
    // across repeated invocations and island/thread counts.
    let budget = match (args.budget_secs, args.steps) {
        (Some(secs), Some(steps)) => MethodBudget {
            time: Duration::from_secs_f64(secs),
            steps,
        },
        (Some(secs), None) => MethodBudget::seconds(secs),
        (None, Some(steps)) => MethodBudget {
            time: Duration::MAX,
            steps,
        },
        (None, None) => MethodBudget::seconds(10.0),
    };
    let out = run_method_ensemble(
        args.method,
        &g,
        args.k,
        args.objective,
        budget,
        args.seed,
        args.islands,
        args.threads,
    );
    let mut partition = out.partition;
    if args.repair {
        let moved = repair_connectivity(&g, &mut partition, 16);
        if moved > 0 {
            eprintln!("ffpart: connectivity repair moved {moved} vertices");
        }
    }

    println!(
        "cut {:.4}  ncut {:.4}  mcut {:.4}  imbalance {:.2}%  time {:.2}s",
        Objective::Cut.evaluate(&g, &partition),
        Objective::NCut.evaluate(&g, &partition),
        Objective::MCut.evaluate(&g, &partition),
        100.0 * imbalance(&partition),
        out.elapsed.as_secs_f64()
    );
    if !args.quiet {
        let report = analyze(&g, &partition);
        println!(
            "{} parts ({} fragmented)",
            partition.num_nonempty_parts(),
            report.fragmented_parts
        );
        println!("part  size  weight  internal  external  components");
        for s in &report.parts {
            if s.size == 0 {
                continue;
            }
            println!(
                "{:>4}  {:>4}  {:>6.1}  {:>8.1}  {:>8.1}  {:>10}",
                s.part, s.size, s.weight, s.internal_weight, s.external_weight, s.components
            );
        }
    }
    if let Some(path) = args.write {
        match File::create(&path)
            .map_err(|e| e.to_string())
            .and_then(|f| write_partition(&partition, f).map_err(|e| e.to_string()))
        {
            Ok(()) => eprintln!("ffpart: partition written to {path}"),
            Err(e) => {
                eprintln!("ffpart: cannot write {path}: {e}");
                return ExitCode::from(3);
            }
        }
    }
    ExitCode::SUCCESS
}

//! `ffpart` — partition a graph file from the command line, or serve
//! partition jobs to many clients.
//!
//! ```text
//! ffpart <graph> -k <parts> [options]      one-shot partitioning
//! ffpart serve [serve-options]             run the NDJSON partition server
//! ffpart submit [submit-options]           submit a job to a running server
//! ffpart stats --connect ADDR              print a server statistics snapshot
//! ffpart worker [slots]                    distributed-islands worker on
//!                                          stdin/stdout (spawned by
//!                                          --workers; rarely run by hand)
//!
//! serve options:
//!   --listen ADDR            bind address          (default 127.0.0.1:7411;
//!                            use port 0 for an ephemeral port)
//!   --workers N              compute slots shared by all in-flight jobs
//!                            (default: one per core)
//!   --max-jobs N             admission bound on in-flight (queued+running)
//!                            jobs; overflow gets a typed `rejected` event
//!                            with a retry hint            (default: unlimited)
//!   --max-jobs-per-conn N    same bound per client connection
//!                            (default: unlimited)
//!   --cache-bytes N          instance-cache byte budget (CSR bytes); LRU
//!                            entries past it are evicted, pinned in-use
//!                            instances never               (default: unlimited)
//!   --http [ADDR]            also serve the HTTP/1.1 gateway on ADDR
//!                            (default 127.0.0.1:7412 when ADDR omitted):
//!                            POST /jobs, GET /jobs/:id/events (chunked
//!                            NDJSON), DELETE /jobs/:id, GET /stats,
//!                            GET /metrics (Prometheus text),
//!                            PUT /instances/:key
//!   --log-format FORMAT      structured job logs on stderr: json (one
//!                            object per line) or text (human-readable);
//!                            spans: load, submit, reject, epoch, done,
//!                            fault                  (default: no logging)
//!   --journal PATH           durable append-only job journal: every
//!                            instance load, submit, improvement and done
//!                            is logged; on restart the journal is
//!                            replayed — finished jobs are served from
//!                            history, jobs in flight at crash time are
//!                            re-executed (byte-identical when
//!                            step-budgeted)     (default: no durability)
//!   --stdio                  serve one client on stdin/stdout instead of TCP
//!
//! submit options:
//!   --connect ADDR           server address (required)
//!   <graph> -k N             instance file (server-side path) and part count
//!   -o, --objective LIST     cut | ncut | mcut, or a comma list like
//!                            cut,ncut,mcut — more than one distinct
//!                            objective runs a Pareto job: islands cycle
//!                            the list and the non-dominated front is
//!                            reported                          (default mcut)
//!   --steps N                step budget per island (deterministic output
//!                            when used without --deadline-ms)
//!   --deadline-ms N          wall-clock budget from job start
//!   -s, --seed N             root RNG seed                     (default 1)
//!   -j, --islands N          island-ensemble width (default 1; raised to
//!                            the objective count for Pareto jobs)
//!   --migration NAME         replace | combine | adaptive      (default replace)
//!   --chunk N                cooperative scheduling quantum    (default 512)
//!   --multilevel             coarsen→solve→uncoarsen+refine server-side
//!                            (engine default coarse target)
//!   --coarsen-until N        multilevel coarse target (implies --multilevel)
//!   --instance NAME          cache key                 (default: graph path)
//!   -f, --format NAME        metis | edgelist                  (default metis)
//!   -w, --write PATH         write the final partition (.part format)
//!   --cancel-after-ms N      send a cancel N ms after acceptance (the job
//!                            then returns its best-so-far partition)
//!   --retry-ms N             keep retrying for N ms on connection failure
//!                            or admission rejection: reconnect, reload,
//!                            resubmit — the client half of a journaled
//!                            server's crash-recovery story
//!   -q, --quiet              suppress streamed improvement lines
//!   --workers A,B,…          federate the job across several running
//!                            servers instead of submitting to one: this
//!                            process coordinates, each listed server
//!                            hosts a shard of the islands. Same bytes
//!                            out as a single-server submit with the
//!                            same seed/steps/chunk. Needs --steps (no
//!                            --deadline-ms/--multilevel); replaces
//!                            --connect
//!
//! stats options:
//!   --connect ADDR           server address (required); prints the
//!                            server's counters, gauges, and latency
//!                            histograms with human-readable bucket
//!                            bounds (same snapshot the NDJSON `stats`
//!                            event and `GET /stats` serve)
//!
//! one-shot options:
//!   -k, --parts N            number of parts (required)
//!   -m, --method NAME        ff | sa | aco | percolation | multilevel |
//!                            multilevel-kway | spectral | spectral-rqi |
//!                            spectral-oct | linear | linear-kl  (default ff)
//!   -o, --objective LIST     cut | ncut | mcut, or a comma list like
//!                            cut,ncut — more than one distinct objective
//!                            runs a mixed-objective Pareto ensemble
//!                            (method ff only): islands cycle the list and
//!                            the non-dominated front is printed
//!                            (default mcut)
//!   -b, --budget-secs S      metaheuristic time budget         (default 10)
//!   --steps N                metaheuristic step budget per island; when
//!                            given without -b, the run is purely
//!                            step-bounded (deterministic output)
//!   -s, --seed N             root RNG seed                     (default 1)
//!   -j, --islands N          parallel ensemble width: N independently
//!                            seeded searches with periodic best-molecule
//!                            exchange (ff) or best-of-N (other methods)
//!                            (default 1; raised to the objective count
//!                            for Pareto runs)
//!   --migration NAME         island-exchange policy for ff ensembles:
//!                            replace | combine | adaptive      (default replace)
//!   --threads N              concurrent OS threads for the ensemble
//!                            (default: one per island)
//!   --multilevel             accelerate ff on big graphs: coarsen by
//!                            heavy-edge matching, run the ensemble on the
//!                            coarse graph, uncoarsen with refinement
//!                            (method ff only; deterministic with --steps)
//!   --coarsen-until N        multilevel coarse-graph target size
//!                            (implies --multilevel; default 3000)
//!   --workers N|auto         distribute the islands across N spawned
//!                            worker processes (`auto` = one per core,
//!                            capped at the island count). Byte-identical
//!                            to the same run without --workers; needs
//!                            -m ff and a pure --steps budget
//!   -f, --format NAME        metis | edgelist                  (default metis)
//!   -w, --write PATH         write the partition (.part format)
//!   -r, --repair             repair disconnected parts before reporting
//!   -q, --quiet              suppress the per-part table
//!   --mincut                 also report the global minimum cut
//!                            (Stoer–Wagner) as an instance diagnostic
//!   -h, --help               this text
//! ```
//!
//! Exit codes: 0 success, 2 usage error, 3 input/connection error,
//! 4 submit rejected by admission control (retry later).

use ff_bench::{run_method_ensemble, MethodBudget, MethodId};
use ff_engine::{MigrationPolicyId, ParetoFront, ParetoResult, Solver};
use ff_graph::Graph;
use ff_metaheur::StopCondition;
use ff_partition::{analyze, imbalance, repair_connectivity, write_partition, Objective};
use std::fs::File;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "usage: ffpart <graph> -k <parts> [-m method] [-o objective[,objective…]] \
[-b budget-secs] [--steps n] [-s seed] [-j islands] [--migration replace|combine|adaptive] \
[--threads n] [--workers n|auto] [--multilevel] [--coarsen-until n] [-f metis|edgelist] \
[-w out.part] [-r] [-q]\n       \
ffpart serve [--listen addr] [--workers n] [--max-jobs n] \
[--max-jobs-per-conn n] [--cache-bytes n] [--http [addr]] [--log-format json|text] \
[--journal path] [--stdio]\n       \
ffpart submit --connect addr <graph> -k <parts> [--steps n] [--deadline-ms n] \
[--retry-ms n] …\n       \
ffpart submit --workers addr,addr… <graph> -k <parts> --steps n …\n       \
ffpart stats --connect addr\n       \
ffpart worker [slots]\n\
see `ffpart --help`";

struct Args {
    graph_path: String,
    k: usize,
    method: MethodId,
    objectives: Vec<Objective>,
    migration: MigrationPolicyId,
    budget_secs: Option<f64>,
    steps: Option<u64>,
    seed: u64,
    islands: usize,
    threads: usize,
    multilevel: bool,
    coarsen_until: Option<usize>,
    format: String,
    write: Option<String>,
    repair: bool,
    quiet: bool,
    mincut: bool,
    workers: Option<String>,
}

fn parse_method(name: &str) -> Option<MethodId> {
    Some(match name {
        "ff" | "fusion-fission" => MethodId::FusionFission,
        "sa" | "annealing" => MethodId::SimulatedAnnealing,
        "aco" | "ants" => MethodId::AntColony,
        "percolation" => MethodId::Percolation,
        "multilevel" => MethodId::MultilevelBi,
        "multilevel-kway" => MethodId::MultilevelOct,
        "spectral" => MethodId::SpectralLancBiKl,
        "spectral-rqi" => MethodId::SpectralRqiBiKl,
        "spectral-oct" => MethodId::SpectralLancOctKl,
        "linear" => MethodId::LinearBi,
        "linear-kl" => MethodId::LinearBiKl,
        _ => return None,
    })
}

fn parse_objective(name: &str) -> Option<Objective> {
    Some(match name {
        "cut" => Objective::Cut,
        "ncut" => Objective::NCut,
        "mcut" => Objective::MCut,
        _ => return None,
    })
}

/// Parses `-o`'s comma list (`cut`, `cut,ncut,mcut`, …). Order is kept —
/// the first objective is the primary one a Pareto run reports its
/// representative under.
fn parse_objective_list(list: &str) -> Option<Vec<Objective>> {
    let objectives: Option<Vec<Objective>> = list
        .split(',')
        .map(|name| parse_objective(name.trim()))
        .collect();
    objectives.filter(|l| !l.is_empty())
}

fn objective_label(o: Objective) -> &'static str {
    match o {
        Objective::Cut => "cut",
        Objective::NCut => "ncut",
        Objective::MCut => "mcut",
    }
}

/// One row of a rendered Pareto front:
/// `(island, its own objective, (objective, value) vector, parts)`.
type FrontRow = (usize, Objective, Vec<(Objective, f64)>, usize);

/// Renders a Pareto front, one deterministic line per point (pinned by
/// the CI smoke, so the format is part of the CLI contract).
fn print_front(front: &[FrontRow]) {
    println!("pareto front: {} point(s)", front.len());
    for (island, objective, values, parts) in front {
        let values: Vec<String> = values
            .iter()
            .map(|&(o, v)| format!("{} {:.6}", objective_label(o), v))
            .collect();
        println!(
            "  island {} [{}]  {}  parts {}",
            island,
            objective_label(*objective),
            values.join("  "),
            parts
        );
    }
}

fn parse_args() -> Result<Args, String> {
    let mut graph_path: Option<String> = None;
    let mut k: Option<usize> = None;
    let mut method = MethodId::FusionFission;
    let mut objectives = vec![Objective::MCut];
    let mut migration = MigrationPolicyId::default();
    let mut budget_secs = None;
    let mut steps = None;
    let mut seed = 1u64;
    let mut islands = 1usize;
    let mut threads = 0usize;
    let mut multilevel = false;
    let mut coarsen_until = None;
    let mut format = "metis".to_string();
    let mut write = None;
    let mut repair = false;
    let mut quiet = false;
    let mut mincut = false;
    let mut workers = None;

    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |flag: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "-h" | "--help" => {
                return Err("help".into());
            }
            "-k" | "--parts" => {
                k = Some(val("-k")?.parse().map_err(|_| "bad -k value".to_string())?)
            }
            "-m" | "--method" => {
                let name = val("-m")?;
                method = parse_method(&name).ok_or_else(|| format!("unknown method `{name}`"))?;
            }
            "-o" | "--objective" => {
                let name = val("-o")?;
                objectives = parse_objective_list(&name)
                    .ok_or_else(|| format!("unknown objective `{name}`"))?;
            }
            "--migration" => {
                let name = val("--migration")?;
                migration = MigrationPolicyId::parse(&name)
                    .ok_or_else(|| format!("unknown migration policy `{name}`"))?;
            }
            "-b" | "--budget-secs" => {
                budget_secs = Some(val("-b")?.parse().map_err(|_| "bad budget".to_string())?)
            }
            "--steps" => {
                steps = Some(
                    val("--steps")?
                        .parse()
                        .map_err(|_| "bad steps".to_string())?,
                )
            }
            "-s" | "--seed" => seed = val("-s")?.parse().map_err(|_| "bad seed".to_string())?,
            "-j" | "--islands" => {
                islands = val("-j")?.parse().map_err(|_| "bad islands".to_string())?
            }
            "--threads" => {
                threads = val("--threads")?
                    .parse()
                    .map_err(|_| "bad threads".to_string())?
            }
            "--multilevel" => multilevel = true,
            "--coarsen-until" => {
                multilevel = true;
                coarsen_until = Some(
                    val("--coarsen-until")?
                        .parse()
                        .map_err(|_| "bad --coarsen-until value".to_string())?,
                );
            }
            "-f" | "--format" => format = val("-f")?,
            "-w" | "--write" => write = Some(val("-w")?),
            "-r" | "--repair" => repair = true,
            "-q" | "--quiet" => quiet = true,
            "--mincut" => mincut = true,
            "--workers" => workers = Some(val("--workers")?),
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}`")),
            other => {
                if graph_path.is_some() {
                    return Err("multiple graph paths given".into());
                }
                graph_path = Some(other.to_string());
            }
        }
    }
    Ok(Args {
        graph_path: graph_path.ok_or("missing graph path")?,
        k: k.ok_or("missing -k")?,
        method,
        objectives,
        migration,
        budget_secs,
        steps,
        seed,
        islands,
        threads,
        multilevel,
        coarsen_until,
        format,
        write,
        repair,
        quiet,
        mincut,
        workers,
    })
}

fn load_graph(path: &str, format: &str) -> Result<Graph, String> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    match format {
        "metis" => ff_graph::io::read_metis(file).map_err(|e| format!("{path}: {e}")),
        "edgelist" => ff_graph::io::read_edge_list(file).map_err(|e| format!("{path}: {e}")),
        other => Err(format!("unknown format `{other}` (metis|edgelist)")),
    }
}

/// `ffpart serve`: run the ff-service partition server.
fn serve_main(args: &[String]) -> ExitCode {
    let mut listen = "127.0.0.1:7411".to_string();
    let mut config = ff_service::ServerConfig::default();
    let mut stdio = false;
    let usage_err = |msg: &str| {
        eprintln!("ffpart serve: {msg}\n{USAGE}");
        ExitCode::from(2)
    };
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        // Flags with a required value read args[i + 1].
        let mut val = |name: &str| -> Result<String, String> {
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg {
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--listen" => match val("--listen") {
                Ok(v) => listen = v,
                Err(e) => return usage_err(&e),
            },
            "--workers" => match val("--workers").map(|v| v.parse()) {
                Ok(Ok(v)) => config.workers = v,
                _ => return usage_err("bad --workers value"),
            },
            "--max-jobs" => match val("--max-jobs").map(|v| v.parse()) {
                Ok(Ok(v)) => config.max_jobs = v,
                _ => return usage_err("bad --max-jobs value"),
            },
            "--max-jobs-per-conn" => match val("--max-jobs-per-conn").map(|v| v.parse()) {
                Ok(Ok(v)) => config.max_jobs_per_conn = v,
                _ => return usage_err("bad --max-jobs-per-conn value"),
            },
            "--cache-bytes" => match val("--cache-bytes").map(|v| v.parse()) {
                Ok(Ok(v)) => config.cache_bytes = v,
                _ => return usage_err("bad --cache-bytes value"),
            },
            // `--http` takes an optional address: `--http 0.0.0.0:8080`
            // or bare `--http` for the default gateway port.
            "--http" => {
                let addr = match args.get(i + 1) {
                    Some(next) if !next.starts_with('-') => {
                        i += 1;
                        next.clone()
                    }
                    _ => "127.0.0.1:7412".to_string(),
                };
                config.http = Some(addr);
            }
            "--log-format" => match val("--log-format") {
                Ok(name) => match ff_service::LogFormat::parse(&name) {
                    Some(format) => config.log_format = Some(format),
                    None => return usage_err(&format!("unknown log format `{name}` (json|text)")),
                },
                Err(e) => return usage_err(&e),
            },
            "--journal" => match val("--journal") {
                Ok(v) => config.journal = Some(v),
                Err(e) => return usage_err(&e),
            },
            "--stdio" => stdio = true,
            other => return usage_err(&format!("unknown flag `{other}`")),
        }
        i += 1;
    }
    if stdio {
        config.http = None;
        ff_service::serve_stdio_with(config);
        return ExitCode::SUCCESS;
    }
    let server = match ff_service::Server::bind_with(&listen, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ffpart serve: cannot bind {listen}: {e}");
            return ExitCode::from(3);
        }
    };
    match server.local_addr() {
        // Scripts parse this line to learn the (possibly ephemeral) port.
        Ok(addr) => println!("ffpart: serving on {addr}"),
        Err(e) => {
            eprintln!("ffpart serve: {e}");
            return ExitCode::from(3);
        }
    }
    if let Some(http) = server.http_addr() {
        // Second banner line, same parseable shape.
        println!("ffpart: http on {http}");
    }
    if let Some(replay) = server.replay_summary() {
        // Third banner line: what the journal restored at boot.
        println!(
            "ffpart: journal replay: records={} finished={} resumed={} skipped={}",
            replay.records, replay.finished, replay.resumed, replay.skipped
        );
    }
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ffpart serve: {e}");
            ExitCode::from(3)
        }
    }
}

/// One `  <range> <count>` histogram row per bucket. `inclusive` picks
/// the bound style: job-duration buckets are `≤ bound` (ff-obs histogram
/// semantics), permit-wait buckets `< bound` (the gate's layout). The
/// last bucket is always unbounded.
fn print_histogram(counts: &[u64], bounds_ms: &[u64], inclusive: bool) {
    let (inner, last) = if inclusive { ("<=", ">") } else { ("<", ">=") };
    for (i, &count) in counts.iter().enumerate() {
        let label = match bounds_ms.get(i) {
            Some(&bound) => format!("{inner} {bound} ms"),
            None => format!("{last} {} ms", bounds_ms.last().copied().unwrap_or(0)),
        };
        println!("  {label:<14}{count:>10}");
    }
}

/// `ffpart stats`: fetch and pretty-print a server statistics snapshot —
/// the same [`ff_service::StatsInfo`] the NDJSON `stats` event and
/// `GET /stats` serve, with histogram buckets labelled from the wire's
/// own bound arrays rather than anything hard-coded here.
fn stats_main(args: &[String]) -> ExitCode {
    let mut connect: Option<String> = None;
    let usage_err = |msg: &str| {
        eprintln!("ffpart stats: {msg}\n{USAGE}");
        ExitCode::from(2)
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--connect" => match it.next() {
                Some(v) => connect = Some(v.clone()),
                None => return usage_err("--connect needs a value"),
            },
            other => return usage_err(&format!("unknown flag `{other}`")),
        }
    }
    let Some(connect) = connect else {
        return usage_err("missing --connect");
    };
    let mut client = match ff_service::Client::connect(&*connect) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("ffpart stats: cannot connect to {connect}: {e}");
            return ExitCode::from(3);
        }
    };
    let st = match client.stats() {
        Ok(ff_service::Event::Stats(st)) => st,
        Ok(_) => {
            eprintln!("ffpart stats: server sent an unexpected event");
            return ExitCode::from(3);
        }
        Err(e) => {
            eprintln!("ffpart stats: {e}");
            return ExitCode::from(3);
        }
    };
    // `0` means "unbounded" for both admission and cache budgets.
    let unlimited = |n: u64| {
        if n == 0 {
            "unlimited".to_string()
        } else {
            n.to_string()
        }
    };
    println!("server {connect}");
    println!("jobs");
    println!("  submitted   {:>10}", st.jobs_submitted);
    println!("  running     {:>10}", st.jobs_running);
    println!(
        "  done        {:>10}  ({} cancelled)",
        st.jobs_done, st.jobs_cancelled
    );
    println!(
        "  rejected    {:>10}  (max in-flight {})",
        st.jobs_rejected,
        unlimited(st.max_jobs)
    );
    println!("cache");
    println!("  instances   {:>10}", st.instances);
    println!("  hits        {:>10}", st.cache_hits);
    println!("  loads       {:>10}", st.cache_loads);
    println!("  evictions   {:>10}", st.cache_evictions);
    println!(
        "  bytes       {:>10}  (budget {})",
        st.cache_bytes,
        unlimited(st.cache_budget_bytes)
    );
    println!("compute");
    println!("  slots       {:>10}", st.workers);
    println!("  gate queued {:>10}", st.gate_queued);
    println!("permit wait (slot acquisitions)");
    print_histogram(&st.permit_wait_hist, &st.permit_wait_bucket_ms, false);
    println!("job duration (finished jobs)");
    print_histogram(&st.job_duration_hist, &st.job_duration_bucket_ms, true);
    ExitCode::SUCCESS
}

/// `ffpart submit`: run one job against a server, streaming improvements.
fn submit_main(args: &[String]) -> ExitCode {
    let mut connect: Option<String> = None;
    let mut graph_path: Option<String> = None;
    let mut k: Option<usize> = None;
    let mut objectives = vec![Objective::MCut];
    let mut migration = MigrationPolicyId::default();
    let mut steps: Option<u64> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut seed = 1u64;
    let mut islands = 1usize;
    let mut chunk = ff_service::DEFAULT_CHUNK;
    let mut multilevel = false;
    let mut coarsen_until: Option<u64> = None;
    let mut instance: Option<String> = None;
    let mut format = "metis".to_string();
    let mut write: Option<String> = None;
    let mut cancel_after_ms: Option<u64> = None;
    let mut quiet = false;
    let mut workers: Option<String> = None;
    let mut retry_ms: Option<u64> = None;

    let mut it = args.iter();
    let usage_err = |msg: &str| {
        eprintln!("ffpart submit: {msg}\n{USAGE}");
        ExitCode::from(2)
    };
    while let Some(arg) = it.next() {
        macro_rules! value_of {
            ($flag:literal) => {
                match it.next() {
                    Some(v) => v.clone(),
                    None => return usage_err(concat!($flag, " needs a value")),
                }
            };
        }
        macro_rules! parse_of {
            ($flag:literal) => {
                match value_of!($flag).parse() {
                    Ok(v) => v,
                    Err(_) => return usage_err(concat!("bad ", $flag, " value")),
                }
            };
        }
        match arg.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--connect" => connect = Some(value_of!("--connect")),
            "-k" | "--parts" => k = Some(parse_of!("-k")),
            "-o" | "--objective" => {
                let name = value_of!("-o");
                objectives = match parse_objective_list(&name) {
                    Some(list) => list,
                    None => return usage_err(&format!("unknown objective `{name}`")),
                };
            }
            "--migration" => {
                let name = value_of!("--migration");
                migration = match MigrationPolicyId::parse(&name) {
                    Some(policy) => policy,
                    None => return usage_err(&format!("unknown migration policy `{name}`")),
                };
            }
            "--steps" => steps = Some(parse_of!("--steps")),
            "--deadline-ms" => deadline_ms = Some(parse_of!("--deadline-ms")),
            "-s" | "--seed" => seed = parse_of!("-s"),
            "-j" | "--islands" => islands = parse_of!("-j"),
            "--chunk" => chunk = parse_of!("--chunk"),
            "--multilevel" => multilevel = true,
            "--coarsen-until" => {
                multilevel = true;
                coarsen_until = Some(parse_of!("--coarsen-until"));
            }
            "--instance" => instance = Some(value_of!("--instance")),
            "-f" | "--format" => format = value_of!("-f"),
            "-w" | "--write" => write = Some(value_of!("-w")),
            "--cancel-after-ms" => cancel_after_ms = Some(parse_of!("--cancel-after-ms")),
            "--retry-ms" => retry_ms = Some(parse_of!("--retry-ms")),
            "-q" | "--quiet" => quiet = true,
            "--workers" => workers = Some(value_of!("--workers")),
            other if other.starts_with('-') => {
                return usage_err(&format!("unknown flag `{other}`"))
            }
            other => {
                if graph_path.is_some() {
                    return usage_err("multiple graph paths given");
                }
                graph_path = Some(other.to_string());
            }
        }
    }
    let Some(graph_path) = graph_path else {
        return usage_err("missing graph path");
    };
    let Some(k) = k else {
        return usage_err("missing -k");
    };
    if steps.is_none() && deadline_ms.is_none() {
        return usage_err("need --steps and/or --deadline-ms");
    }
    let Some(format) = ff_service::GraphFormat::parse(&format) else {
        return usage_err("unknown format (metis|edgelist)");
    };
    if let Some(list) = workers {
        // Federated mode: this process is the coordinator, the listed
        // servers are the workers. The deterministic contract needs a
        // pure step budget and the flat solver path.
        if connect.is_some() {
            return usage_err("--workers and --connect are mutually exclusive");
        }
        if deadline_ms.is_some() || steps.is_none() {
            return usage_err("--workers needs a pure --steps budget (no --deadline-ms)");
        }
        if multilevel {
            return usage_err("--workers does not combine with --multilevel");
        }
        if cancel_after_ms.is_some() {
            return usage_err("--cancel-after-ms is not supported with --workers");
        }
        if retry_ms.is_some() {
            return usage_err("--retry-ms is not supported with --workers");
        }
        let addrs: Vec<String> = list
            .split(',')
            .map(|a| a.trim().to_string())
            .filter(|a| !a.is_empty())
            .collect();
        if addrs.is_empty() {
            return usage_err("--workers needs a comma list of host:port addresses");
        }
        return submit_federated(
            addrs,
            graph_path,
            instance,
            format,
            k,
            objectives,
            migration,
            steps.unwrap(),
            seed,
            islands,
            chunk,
            write,
            quiet,
        );
    }
    let Some(connect) = connect else {
        return usage_err("missing --connect");
    };
    let instance = instance.unwrap_or_else(|| graph_path.clone());
    let needed = ff_engine::islands_to_cover(&objectives);
    if ff_engine::distinct_objectives(&objectives).len() > 1 && islands < needed {
        eprintln!("ffpart: raising --islands {islands} → {needed} (covering every objective)");
        islands = needed;
    }
    let job = ff_service::JobRequest {
        instance,
        k,
        objective: objectives[0],
        objectives: (objectives.len() > 1).then(|| objectives.clone()),
        migration,
        seed,
        steps,
        deadline_ms,
        islands,
        chunk,
        assignment: true,
        // `0` asks the server for the engine's default coarse target.
        multilevel: multilevel.then(|| coarsen_until.unwrap_or(0)),
    };
    // With `--retry-ms`, transport failures and admission rejections
    // restart the whole attempt (connect → load → submit → stream) until
    // the budget elapses — the client half of the durability story: a
    // journaled server that was killed mid-job comes back, re-executes
    // the job, and a step-budgeted retry lands byte-identically.
    let deadline = retry_ms.map(|ms| std::time::Instant::now() + Duration::from_millis(ms));
    loop {
        let connect_budget = match deadline {
            Some(d) => d
                .saturating_duration_since(std::time::Instant::now())
                .min(Duration::from_secs(5)),
            None => Duration::ZERO,
        };
        let retry = match submit_attempt(
            &connect,
            connect_budget,
            &graph_path,
            format,
            &job,
            cancel_after_ms,
            write.as_deref(),
            quiet,
        ) {
            Ok(code) => return code,
            Err(retry) => retry,
        };
        let now = std::time::Instant::now();
        match (&retry, deadline) {
            (SubmitRetry::Transport(e), Some(d)) if now < d => {
                eprintln!("ffpart submit: {e}; retrying");
                std::thread::sleep(Duration::from_millis(300));
            }
            (
                SubmitRetry::Rejected {
                    message,
                    retry_after_ms,
                },
                Some(d),
            ) if now < d => {
                eprintln!("ffpart submit: {message}; retrying in {retry_after_ms} ms");
                let wait = Duration::from_millis(*retry_after_ms).min(d - now);
                std::thread::sleep(wait);
            }
            // Budget exhausted (or none given): the documented exit
            // codes — 3 for transport, 4 for admission rejection.
            (SubmitRetry::Transport(e), _) => {
                eprintln!("ffpart submit: {e}");
                return ExitCode::from(3);
            }
            (SubmitRetry::Rejected { message, .. }, _) => {
                eprintln!("ffpart submit: {message}");
                return ExitCode::from(4);
            }
        }
    }
}

/// A failed [`submit_attempt`] that `--retry-ms` may run again.
enum SubmitRetry {
    /// Connect/read/write failure — the server may be restarting.
    Transport(std::io::Error),
    /// Admission control said "later"; honor its hint.
    Rejected {
        message: String,
        retry_after_ms: u64,
    },
}

/// One full connected-mode submit: connect, load, submit, stream events
/// to `done`, write the partition. `Ok` is a final exit code (success
/// *or* a non-retryable failure like a usage error); `Err` is a failure
/// worth retrying against a restarted server.
#[allow(clippy::too_many_arguments)]
fn submit_attempt(
    connect: &str,
    connect_budget: Duration,
    graph_path: &str,
    format: ff_service::GraphFormat,
    job: &ff_service::JobRequest,
    cancel_after_ms: Option<u64>,
    write: Option<&str>,
    quiet: bool,
) -> Result<ExitCode, SubmitRetry> {
    let mut client =
        ff_service::Client::connect_with_retry(connect, connect_budget).map_err(|e| {
            SubmitRetry::Transport(std::io::Error::new(
                e.kind(),
                format!("cannot connect to {connect}: {e}"),
            ))
        })?;
    let loaded = client.load(
        &job.instance,
        ff_service::GraphSource::Path(graph_path.to_string()),
        format,
    );
    let (vertices, edges, cached) = match loaded {
        Ok(v) => v,
        // The server rejecting the graph (parse error, bad path) is
        // final; a dead connection is worth retrying.
        Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
            eprintln!("ffpart submit: load failed: {e}");
            return Ok(ExitCode::from(3));
        }
        Err(e) => return Err(SubmitRetry::Transport(e)),
    };
    eprintln!(
        "ffpart: instance `{}` {vertices} vertices, {edges} edges{}",
        job.instance,
        if cached { " (cached)" } else { "" }
    );
    let id = match client.try_submit(job) {
        Ok(ff_service::SubmitOutcome::Accepted(id)) => id,
        // Admission-control rejection: transient capacity. The caller
        // maps it to exit 4 or a retry, per `--retry-ms`.
        Ok(ff_service::SubmitOutcome::Rejected {
            reason,
            retry_after_ms,
        }) => {
            return Err(SubmitRetry::Rejected {
                message: format!("rejected: {reason} (retry after {retry_after_ms} ms)"),
                retry_after_ms,
            })
        }
        // The server refusing the request (bad k, unknown instance) is a
        // usage error (2); a dropped/failed connection is exit 3 or a
        // retry, matching the documented contract.
        Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
            eprintln!("ffpart submit: rejected: {e}");
            return Ok(ExitCode::from(2));
        }
        Err(e) => return Err(SubmitRetry::Transport(e)),
    };
    eprintln!("ffpart: job {id} accepted");
    if let Some(ms) = cancel_after_ms {
        // Cancel by the job handle we already hold, over this same
        // connection: `submit` has consumed the `accepted` event, so even
        // a 0 ms cancel targets a job the server definitely knows —
        // unlike a second connection racing the handshake.
        let mut canceller = client.canceller();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(ms));
            let _ = canceller.cancel(id);
        });
    }
    // Stream events as they arrive — printing an improvement the moment
    // the server finds it is the point of an anytime server.
    let done = loop {
        match client.next_event() {
            Ok(ff_service::Event::Improvement(imp)) if imp.job == id => {
                if !quiet {
                    let tag = imp
                        .objective
                        .map(|o| format!(" objective={}", objective_label(o)))
                        .unwrap_or_default();
                    println!(
                        "improvement job={} value={:.6} step={} t={}ms island={}{tag}",
                        imp.job, imp.value, imp.step, imp.elapsed_ms, imp.island
                    );
                }
            }
            Ok(ff_service::Event::Done(d)) if d.job == id => break d,
            Ok(ff_service::Event::Error { message, job }) if job == Some(id) || job.is_none() => {
                eprintln!("ffpart submit: job failed: {message}");
                return Ok(ExitCode::from(3));
            }
            Ok(_) => {} // another job's event on a shared connection
            Err(e) => return Err(SubmitRetry::Transport(e)),
        }
    };
    if let Some(front) = &done.pareto {
        let rows: Vec<FrontRow> = front
            .iter()
            .map(|p| (p.island, p.objective, p.values.clone(), p.parts))
            .collect();
        print_front(&rows);
    }
    println!(
        "done job={} status={} value={:.6} parts={} steps={} migrations={} time={}ms",
        done.job,
        match done.status {
            ff_service::JobStatus::Completed => "completed",
            ff_service::JobStatus::Cancelled => "cancelled",
            ff_service::JobStatus::Deadline => "deadline",
        },
        done.value,
        done.parts,
        done.steps,
        done.migrations,
        done.elapsed_ms
    );
    if let Some(path) = write {
        let Some(assignment) = &done.assignment else {
            eprintln!("ffpart submit: server sent no assignment to write");
            return Ok(ExitCode::from(3));
        };
        let mut text = String::new();
        for part in assignment {
            text.push_str(&part.to_string());
            text.push('\n');
        }
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("ffpart submit: cannot write {path}: {e}");
            return Ok(ExitCode::from(3));
        }
        eprintln!("ffpart: partition written to {path}");
    }
    Ok(ExitCode::SUCCESS)
}

/// `ffpart submit --workers`: run one job federated across several
/// already-running servers, this process acting as the coordinator.
/// Byte-identical to submitting the same job to a single server: the
/// coordinator fixes seeds and interval exactly as the server's job
/// driver would (`chunk` doubles as the migration interval, a single
/// island keeps the root seed).
#[allow(clippy::too_many_arguments)]
fn submit_federated(
    addrs: Vec<String>,
    graph_path: String,
    instance: Option<String>,
    format: ff_service::GraphFormat,
    k: usize,
    objectives: Vec<Objective>,
    migration: MigrationPolicyId,
    steps: u64,
    seed: u64,
    mut islands: usize,
    chunk: u64,
    write: Option<String>,
    quiet: bool,
) -> ExitCode {
    // The coordinator needs the graph locally (reduction, molecule
    // reconstruction) and the servers don't share our filesystem, so
    // read the file once and ship it inline.
    let data = match std::fs::read_to_string(&graph_path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("ffpart submit: cannot read {graph_path}: {e}");
            return ExitCode::from(3);
        }
    };
    let parsed = match format {
        ff_service::GraphFormat::Metis => ff_graph::io::read_metis(data.as_bytes()),
        ff_service::GraphFormat::EdgeList => ff_graph::io::read_edge_list(data.as_bytes()),
    };
    let g = match parsed {
        Ok(g) => g,
        Err(e) => {
            eprintln!("ffpart submit: {graph_path}: {e}");
            return ExitCode::from(3);
        }
    };
    if k == 0 || k > g.num_vertices() {
        eprintln!(
            "ffpart submit: -k must be in 1..={} for this graph",
            g.num_vertices()
        );
        return ExitCode::from(2);
    }
    if islands == 0 {
        eprintln!("ffpart submit: --islands must be at least 1");
        return ExitCode::from(2);
    }
    let needed = ff_engine::islands_to_cover(&objectives);
    let pareto = ff_engine::distinct_objectives(&objectives).len() > 1;
    if pareto && islands < needed {
        eprintln!("ffpart: raising --islands {islands} → {needed} (covering every objective)");
        islands = needed;
    }
    let spec = ff_service::DistSpec {
        instance: instance.unwrap_or_else(|| graph_path.clone()),
        source: ff_service::GraphSource::Data(data),
        format,
        k,
        steps,
        // Match the server's job driver: one island keeps the root
        // seed, ensembles derive per-island seeds from it.
        seeds: if islands == 1 {
            vec![seed]
        } else {
            ff_engine::derive_seeds(seed, islands)
        },
        objectives: (0..islands)
            .map(|i| objectives[i % objectives.len()])
            .collect(),
        interval: chunk,
        migration,
        pareto,
    };
    eprintln!(
        "ffpart: federating {islands} island(s) across {} server(s)",
        addrs.len()
    );
    let started = std::time::Instant::now();
    let result = ff_service::solve_distributed(
        &g,
        &spec,
        &ff_service::WorkerSet::Connect { addrs },
        &ff_service::DistOpts::default(),
        &mut |island, news| {
            if !quiet {
                println!(
                    "improvement value={:.6} step={} t={}ms island={island}",
                    news.value, news.step, news.elapsed_ms
                );
            }
        },
    );
    let result = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ffpart submit: {e}");
            return ExitCode::from(3);
        }
    };
    if let Some(front) = &result.pareto {
        let rows: Vec<FrontRow> = front
            .points
            .iter()
            .map(|p| {
                (
                    p.island,
                    p.objective,
                    front
                        .objectives
                        .iter()
                        .copied()
                        .zip(p.values.iter().copied())
                        .collect(),
                    p.parts,
                )
            })
            .collect();
        print_front(&rows);
    }
    println!(
        "done status=completed value={:.6} parts={} steps={} migrations={} time={}ms",
        result.best_value,
        result.best.num_nonempty_parts(),
        result.steps,
        result.migrations_adopted,
        started.elapsed().as_millis()
    );
    if let Some(path) = write {
        match File::create(&path)
            .map_err(|e| e.to_string())
            .and_then(|f| write_partition(&result.best, f).map_err(|e| e.to_string()))
        {
            Ok(()) => eprintln!("ffpart: partition written to {path}"),
            Err(e) => {
                eprintln!("ffpart submit: cannot write {path}: {e}");
                return ExitCode::from(3);
            }
        }
    }
    ExitCode::SUCCESS
}

/// One-shot `--workers`: shard the island ensemble across spawned
/// `ffpart worker` child processes. Byte-identical to the same run
/// without `--workers` — same seeds, same epoch schedule — which is why
/// it insists on the deterministic budget shape (`--steps`, no `-b`).
fn run_distributed_oneshot(
    g: &Graph,
    args: &Args,
    islands: usize,
    pareto_run: bool,
    workers_spec: &str,
) -> Result<(ff_partition::Partition, Duration), ExitCode> {
    let fail = |code: u8, msg: &str| {
        eprintln!("ffpart: {msg}");
        Err::<(ff_partition::Partition, Duration), ExitCode>(ExitCode::from(code))
    };
    if args.method != MethodId::FusionFission {
        return fail(
            2,
            "--workers needs -m ff (it distributes the fusion–fission ensemble)",
        );
    }
    if args.multilevel {
        return fail(2, "--workers does not combine with --multilevel");
    }
    let Some(steps) = args.steps else {
        return fail(2, "--workers needs a pure step budget (--steps without -b)");
    };
    if args.budget_secs.is_some() {
        return fail(2, "--workers needs a pure step budget (--steps without -b)");
    }
    let workers = if workers_spec == "auto" {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        match workers_spec.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                return fail(
                    2,
                    &format!("bad --workers value `{workers_spec}` (count or `auto`)"),
                )
            }
        }
    }
    .min(islands);
    let Some(format) = ff_service::GraphFormat::parse(&args.format) else {
        return fail(2, "unknown format (metis|edgelist)");
    };
    let exe = match std::env::current_exe() {
        Ok(p) => p.to_string_lossy().into_owned(),
        Err(e) => return fail(3, &format!("cannot locate own executable: {e}")),
    };
    let spec = ff_service::DistSpec {
        instance: args.graph_path.clone(),
        source: ff_service::GraphSource::Path(args.graph_path.clone()),
        format,
        k: args.k,
        steps,
        seeds: ff_engine::derive_seeds(args.seed, islands),
        objectives: (0..islands)
            .map(|i| args.objectives[i % args.objectives.len()])
            .collect(),
        // The Solver's default migration interval — what the run would
        // use in-process.
        interval: 1024,
        migration: args.migration,
        pareto: pareto_run,
    };
    eprintln!("ffpart: distributing {islands} island(s) across {workers} worker process(es)");
    let started = std::time::Instant::now();
    let result = ff_service::solve_distributed(
        g,
        &spec,
        &ff_service::WorkerSet::Spawn {
            cmd: vec![exe, "worker".into()],
            count: workers,
        },
        &ff_service::DistOpts::default(),
        &mut |_, _| {},
    );
    match result {
        Ok(result) => {
            if let Some(front) = &result.pareto {
                let rows: Vec<FrontRow> = front
                    .points
                    .iter()
                    .map(|p| {
                        (
                            p.island,
                            p.objective,
                            front
                                .objectives
                                .iter()
                                .copied()
                                .zip(p.values.iter().copied())
                                .collect(),
                            p.parts,
                        )
                    })
                    .collect();
                print_front(&rows);
            }
            Ok((result.best.clone(), started.elapsed()))
        }
        Err(e) => fail(3, &e),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("serve") => return serve_main(&argv[1..]),
        Some("submit") => return submit_main(&argv[1..]),
        Some("stats") => return stats_main(&argv[1..]),
        Some("worker") => {
            // Spawned by the `--workers` coordinator: the full NDJSON
            // server on stdin/stdout, one compute slot (island layout,
            // not host load, decides a worker's parallelism).
            let slots = match argv.get(1).map(|a| a.parse::<usize>()) {
                None => 1,
                Some(Ok(n)) => n,
                Some(Err(_)) => {
                    eprintln!("ffpart worker: expected a slot count\n{USAGE}");
                    return ExitCode::from(2);
                }
            };
            ff_service::serve_stdio(slots);
            return ExitCode::SUCCESS;
        }
        _ => {}
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) if e == "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(e) => {
            eprintln!("ffpart: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let g = match load_graph(&args.graph_path, &args.format) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("ffpart: {e}");
            return ExitCode::from(3);
        }
    };
    if args.k == 0 || args.k > g.num_vertices() {
        eprintln!(
            "ffpart: -k must be in 1..={} for this graph",
            g.num_vertices()
        );
        return ExitCode::from(2);
    }
    if args.islands == 0 {
        eprintln!("ffpart: --islands must be at least 1");
        return ExitCode::from(2);
    }
    let pareto_run = ff_engine::distinct_objectives(&args.objectives).len() > 1;
    if pareto_run && args.method != MethodId::FusionFission {
        eprintln!("ffpart: multi-objective runs need -m ff");
        return ExitCode::from(2);
    }
    if args.multilevel && args.method != MethodId::FusionFission {
        eprintln!("ffpart: --multilevel needs -m ff (it accelerates the fusion–fission engine)");
        return ExitCode::from(2);
    }
    let ml_opts = args.multilevel.then(|| {
        let mut opts = ff_engine::MultilevelOpts::default();
        if let Some(n) = args.coarsen_until {
            opts.coarsen_until = n;
        }
        opts
    });
    // Cycling the objective list needs enough islands that every
    // distinct objective gets one (duplicates in the list weight the
    // cycle, so this can exceed the distinct count).
    let needed = ff_engine::islands_to_cover(&args.objectives);
    let islands = if pareto_run && args.islands < needed {
        eprintln!(
            "ffpart: raising --islands {} → {needed} (covering every objective)",
            args.islands
        );
        needed
    } else {
        args.islands
    };
    eprintln!(
        "ffpart: {} vertices, {} edges → k = {} via {}{}",
        g.num_vertices(),
        g.num_edges(),
        args.k,
        args.method.label(),
        if islands > 1 {
            format!(" × {islands} islands")
        } else {
            String::new()
        }
    );
    if args.mincut && g.num_vertices() >= 2 {
        let cut = ff_graph::stoer_wagner(&g);
        println!(
            "global min cut: {:.4} (isolates {} of {} vertices)",
            cut.weight,
            cut.side.len().min(g.num_vertices() - cut.side.len()),
            g.num_vertices()
        );
    }

    // `--steps` without `-b` means purely step-bounded: the run's output
    // is then a pure function of (graph, config, seed) — byte-identical
    // across repeated invocations and island/thread counts.
    let budget = match (args.budget_secs, args.steps) {
        (Some(secs), Some(steps)) => MethodBudget {
            time: Duration::from_secs_f64(secs),
            steps,
        },
        (Some(secs), None) => MethodBudget::seconds(secs),
        (None, Some(steps)) => MethodBudget {
            time: Duration::MAX,
            steps,
        },
        (None, None) => MethodBudget::seconds(10.0),
    };
    let (mut partition, elapsed) = if let Some(spec) = &args.workers {
        match run_distributed_oneshot(&g, &args, islands, pareto_run, spec) {
            Ok(out) => out,
            Err(code) => return code,
        }
    } else if pareto_run {
        // Mixed objectives: drive the Solver directly, print the front,
        // continue with the representative (best under the primary —
        // first — objective) for the per-part report and -w.
        let started = std::time::Instant::now();
        let mut solver = Solver::on(&g)
            .k(args.k)
            .objectives(args.objectives.clone())
            .islands(islands)
            .threads(args.threads)
            .migration(args.migration.build())
            .reduction(ParetoFront)
            .stop(StopCondition::new(budget.steps, budget.time))
            .seed(args.seed);
        if let Some(opts) = ml_opts {
            solver = solver.multilevel(opts);
        }
        let result = match solver.run() {
            Ok(r) => r,
            Err(e) => {
                eprintln!("ffpart: invalid configuration: {e}");
                return ExitCode::from(2);
            }
        };
        if let Some(info) = &result.multilevel {
            eprintln!(
                "ffpart: multilevel: {} levels, coarse {} vertices",
                info.levels, info.coarse_vertices
            );
        }
        let front: &ParetoResult = result.pareto.as_ref().expect("pareto reduction ran");
        let rows: Vec<FrontRow> = front
            .points
            .iter()
            .map(|p| {
                (
                    p.island,
                    p.objective,
                    front
                        .objectives
                        .iter()
                        .copied()
                        .zip(p.values.iter().copied())
                        .collect(),
                    p.parts,
                )
            })
            .collect();
        print_front(&rows);
        (result.best.clone(), started.elapsed())
    } else if let Some(opts) = ml_opts {
        // Multilevel ff drives the Solver directly; `run_method_ensemble`
        // stays the flat path so existing pinned outputs are untouched.
        let started = std::time::Instant::now();
        let result = Solver::on(&g)
            .k(args.k)
            .objective(args.objectives[0])
            .islands(islands)
            .threads(args.threads)
            .migration(args.migration.build())
            .stop(StopCondition::new(budget.steps, budget.time))
            .seed(args.seed)
            .multilevel(opts)
            .run();
        let result = match result {
            Ok(r) => r,
            Err(e) => {
                eprintln!("ffpart: invalid configuration: {e}");
                return ExitCode::from(2);
            }
        };
        let info = result.multilevel.as_ref().expect("multilevel pipeline ran");
        eprintln!(
            "ffpart: multilevel: {} levels, coarse {} vertices",
            info.levels, info.coarse_vertices
        );
        (result.best.clone(), started.elapsed())
    } else {
        let out = run_method_ensemble(
            args.method,
            &g,
            args.k,
            args.objectives[0],
            budget,
            args.seed,
            islands,
            args.threads,
            args.migration,
        );
        (out.partition, out.elapsed)
    };
    if args.repair {
        let moved = repair_connectivity(&g, &mut partition, 16);
        if moved > 0 {
            eprintln!("ffpart: connectivity repair moved {moved} vertices");
        }
    }

    println!(
        "cut {:.4}  ncut {:.4}  mcut {:.4}  imbalance {:.2}%  time {:.2}s",
        Objective::Cut.evaluate(&g, &partition),
        Objective::NCut.evaluate(&g, &partition),
        Objective::MCut.evaluate(&g, &partition),
        100.0 * imbalance(&partition),
        elapsed.as_secs_f64()
    );
    if !args.quiet {
        let report = analyze(&g, &partition);
        println!(
            "{} parts ({} fragmented)",
            partition.num_nonempty_parts(),
            report.fragmented_parts
        );
        println!("part  size  weight  internal  external  components");
        for s in &report.parts {
            if s.size == 0 {
                continue;
            }
            println!(
                "{:>4}  {:>4}  {:>6.1}  {:>8.1}  {:>8.1}  {:>10}",
                s.part, s.size, s.weight, s.internal_weight, s.external_weight, s.components
            );
        }
    }
    if let Some(path) = args.write {
        match File::create(&path)
            .map_err(|e| e.to_string())
            .and_then(|f| write_partition(&partition, f).map_err(|e| e.to_string()))
        {
            Ok(()) => eprintln!("ffpart: partition written to {path}"),
            Err(e) => {
                eprintln!("ffpart: cannot write {path}: {e}");
                return ExitCode::from(3);
            }
        }
    }
    ExitCode::SUCCESS
}

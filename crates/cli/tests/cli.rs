//! End-to-end tests for the `ffpart` binary.

use std::io::Write;
use std::process::Command;

fn ffpart() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ffpart"))
}

fn write_sample_graph(dir: &std::path::Path) -> std::path::PathBuf {
    // Two triangles joined by one light edge — obvious 2-partition.
    let path = dir.join("sample.graph");
    let mut f = std::fs::File::create(&path).unwrap();
    // METIS: 6 vertices, 7 edges, edge weights (fmt 001)
    writeln!(f, "6 7 001").unwrap();
    writeln!(f, "2 5 3 5").unwrap(); // v1: -2 (5), -3 (5)
    writeln!(f, "1 5 3 5").unwrap();
    writeln!(f, "1 5 2 5 4 1").unwrap(); // bridge 3-4 weight 1
    writeln!(f, "3 1 5 5 6 5").unwrap();
    writeln!(f, "4 5 6 5").unwrap();
    writeln!(f, "4 5 5 5").unwrap();
    path
}

#[test]
fn partitions_sample_graph_and_writes_part_file() {
    let dir = std::env::temp_dir().join(format!("ffpart-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let graph = write_sample_graph(&dir);
    let part_out = dir.join("out.part");

    let output = ffpart()
        .args([
            graph.to_str().unwrap(),
            "-k",
            "2",
            "-m",
            "multilevel",
            "-w",
            part_out.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("cut 1.0000"), "stdout: {stdout}");

    let part = std::fs::read_to_string(&part_out).unwrap();
    let ids: Vec<&str> = part.lines().collect();
    assert_eq!(ids.len(), 6);
    // triangle {0,1,2} on one side, {3,4,5} on the other
    assert_eq!(ids[0], ids[1]);
    assert_eq!(ids[1], ids[2]);
    assert_eq!(ids[3], ids[4]);
    assert_ne!(ids[0], ids[3]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metaheuristic_with_tiny_budget() {
    let dir = std::env::temp_dir().join(format!("ffpart-test-ff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let graph = write_sample_graph(&dir);
    let output = ffpart()
        .args([
            graph.to_str().unwrap(),
            "-k",
            "2",
            "-m",
            "ff",
            "-b",
            "0.5",
            "-q",
        ])
        .output()
        .unwrap();
    assert!(output.status.success());
    assert!(String::from_utf8_lossy(&output.stdout).contains("mcut"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn island_ensemble_is_byte_identical_across_invocations() {
    let dir = std::env::temp_dir().join(format!("ffpart-test-islands-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let graph = write_sample_graph(&dir);
    let run = |out: &std::path::Path| {
        let output = ffpart()
            .args([
                graph.to_str().unwrap(),
                "-k",
                "2",
                "-m",
                "ff",
                "--steps",
                "4000",
                "-s",
                "5",
                "--islands",
                "3",
                "--threads",
                "2",
                "-q",
                "-w",
                out.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(
            output.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        assert!(
            String::from_utf8_lossy(&output.stderr).contains("3 islands"),
            "banner should mention the ensemble"
        );
    };
    let (a, b) = (dir.join("a.part"), dir.join("b.part"));
    run(&a);
    run(&b);
    let pa = std::fs::read(&a).unwrap();
    assert_eq!(
        pa,
        std::fs::read(&b).unwrap(),
        "output must be reproducible"
    );
    // The sample graph's optimal bisection is triangle vs triangle.
    let part = String::from_utf8(pa).unwrap();
    let ids: Vec<&str> = part.lines().collect();
    assert_eq!(ids.len(), 6);
    assert!(ids[0] == ids[1] && ids[1] == ids[2] && ids[3] == ids[4] && ids[4] == ids[5]);
    assert_ne!(ids[0], ids[3]);
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite: `--multilevel` one-shot runs are byte-identical across
/// reruns *and* thread caps, print the level banner, and refuse
/// non-ff methods with a usage error.
#[test]
fn multilevel_run_is_byte_identical_across_reruns_and_thread_caps() {
    let dir = std::env::temp_dir().join(format!("ffpart-test-ml-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    // 240 vertices — big enough to coarsen through real levels.
    let g = ff_graph::generators::planted_partition(4, 60, 0.2, 0.01, 9);
    let graph = dir.join("pp.graph");
    let mut f = std::fs::File::create(&graph).unwrap();
    ff_graph::io::write_metis(&g, &mut f).unwrap();
    drop(f);

    let run = |out: &std::path::Path, threads: &str| {
        let output = ffpart()
            .args([
                graph.to_str().unwrap(),
                "-k",
                "4",
                "-m",
                "ff",
                "--steps",
                "2000",
                "-s",
                "7",
                "--islands",
                "2",
                "--threads",
                threads,
                "--multilevel",
                "--coarsen-until",
                "60",
                "-q",
                "-w",
                out.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(
            output.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains("multilevel:") && stderr.contains("coarse"),
            "level banner missing: {stderr}"
        );
    };
    let (a, b, c) = (dir.join("a.part"), dir.join("b.part"), dir.join("c.part"));
    run(&a, "1");
    run(&b, "4");
    run(&c, "1");
    let pa = std::fs::read(&a).unwrap();
    assert_eq!(pa.len(), 240 * 2, "one digit + newline per vertex");
    assert_eq!(pa, std::fs::read(&b).unwrap(), "threads 1 vs 4 must agree");
    assert_eq!(pa, std::fs::read(&c).unwrap(), "rerun must agree");

    // --multilevel only accelerates the ff engine.
    let output = ffpart()
        .args([
            graph.to_str().unwrap(),
            "-k",
            "4",
            "-m",
            "sa",
            "--steps",
            "100",
            "--multilevel",
        ])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&output.stderr).contains("--multilevel needs -m ff"));
    std::fs::remove_dir_all(&dir).ok();
}

/// One deterministic front, printed identically on every invocation, for
/// a mixed-objective one-shot run — and the `done`-event front from a
/// served job with the same parameters must agree line for line (the
/// CLI ⇄ NDJSON ⇄ library acceptance check; chunk 1024 aligns the
/// service's migration interval with the one-shot solver default).
#[test]
fn mixed_objective_front_agrees_between_oneshot_and_server() {
    let dir = std::env::temp_dir().join(format!("ffpart-test-pareto-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let graph = write_sample_graph(&dir);

    let oneshot = |out: Option<&std::path::Path>| {
        let mut args = vec![
            graph.to_str().unwrap().to_string(),
            "-k".into(),
            "2".into(),
            "-o".into(),
            "cut,mcut".into(),
            "--islands".into(),
            "4".into(),
            "--steps".into(),
            "4000".into(),
            "-s".into(),
            "7".into(),
            "-q".into(),
        ];
        if let Some(out) = out {
            args.push("-w".into());
            args.push(out.to_str().unwrap().to_string());
        }
        let output = ffpart().args(&args).output().unwrap();
        assert!(
            output.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        String::from_utf8_lossy(&output.stdout).into_owned()
    };
    let front_lines = |stdout: &str| -> Vec<String> {
        stdout
            .lines()
            .skip_while(|l| !l.starts_with("pareto front:"))
            .take_while(|l| l.starts_with("pareto front:") || l.starts_with("  island"))
            .map(str::to_string)
            .collect()
    };

    let (a, b) = (dir.join("a.part"), dir.join("b.part"));
    let stdout_a = oneshot(Some(&a));
    let stdout_b = oneshot(Some(&b));
    let lines_a = front_lines(&stdout_a);
    assert!(!lines_a.is_empty(), "no front in: {stdout_a}");
    assert!(lines_a[0].starts_with("pareto front:"), "{stdout_a}");
    assert!(lines_a.len() >= 2, "front has no points: {stdout_a}");
    assert_eq!(lines_a, front_lines(&stdout_b), "front not deterministic");
    assert_eq!(
        std::fs::read(&a).unwrap(),
        std::fs::read(&b).unwrap(),
        "representative partition not byte-identical"
    );

    // The same job through the server: same front, rendered by the same
    // code path from the done event.
    let (guard, addr) = spawn_server();
    let output = ffpart()
        .args([
            "submit",
            "--connect",
            &addr,
            graph.to_str().unwrap(),
            "-k",
            "2",
            "-o",
            "cut,mcut",
            "--islands",
            "4",
            "--steps",
            "4000",
            "-s",
            "7",
            "--chunk",
            "1024",
            "-q",
        ])
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let submit_stdout = String::from_utf8_lossy(&output.stdout);
    assert_eq!(
        lines_a,
        front_lines(&submit_stdout),
        "served front disagrees with the one-shot front"
    );
    ff_service::Client::connect(&*addr)
        .unwrap()
        .shutdown()
        .unwrap();
    drop(guard);
    std::fs::remove_dir_all(&dir).ok();
}

/// The combine policy re-runs byte-identically (CI satellite).
#[test]
fn combine_policy_is_byte_identical_across_invocations() {
    let dir = std::env::temp_dir().join(format!("ffpart-test-combine-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let graph = write_sample_graph(&dir);
    let run = |out: &std::path::Path| {
        let output = ffpart()
            .args([
                graph.to_str().unwrap(),
                "-k",
                "2",
                "--migration",
                "combine",
                "--islands",
                "3",
                "--steps",
                "4000",
                "-s",
                "5",
                "-q",
                "-w",
                out.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(
            output.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&output.stderr)
        );
    };
    let (a, b) = (dir.join("a.part"), dir.join("b.part"));
    run(&a);
    run(&b);
    assert_eq!(std::fs::read(&a).unwrap(), std::fs::read(&b).unwrap());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_migration_policy_and_non_ff_pareto_exit_2() {
    let dir = std::env::temp_dir().join(format!("ffpart-test-badpol-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let graph = write_sample_graph(&dir);
    let g = graph.to_str().unwrap();
    let cases: &[&[&str]] = &[
        &[g, "-k", "2", "--migration", "osmosis"],
        &[g, "-k", "2", "-o", "cut,typo"],
        &[g, "-k", "2", "-o", "cut,mcut", "-m", "multilevel"],
    ];
    for args in cases {
        let output = ffpart().args(*args).output().unwrap();
        assert_eq!(output.status.code(), Some(2), "{args:?}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn zero_islands_is_a_usage_error() {
    let dir = std::env::temp_dir().join(format!("ffpart-test-islands0-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let graph = write_sample_graph(&dir);
    let output = ffpart()
        .args([graph.to_str().unwrap(), "-k", "2", "--islands", "0"])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(2));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn usage_errors_exit_2() {
    let output = ffpart().args(["-k", "2"]).output().unwrap(); // no graph
    assert_eq!(output.status.code(), Some(2));
    let output = ffpart().args(["nonexistent", "-k"]).output().unwrap();
    assert_eq!(output.status.code(), Some(2));
}

#[test]
fn missing_file_exits_3() {
    let output = ffpart()
        .args(["/nonexistent/graph.metis", "-k", "2"])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(3));
}

#[test]
fn help_exits_zero() {
    let output = ffpart().args(["--help"]).output().unwrap();
    assert!(output.status.success());
    assert!(String::from_utf8_lossy(&output.stdout).contains("usage"));
}

#[test]
fn malformed_graph_content_fails_cleanly_not_with_a_panic() {
    let dir = std::env::temp_dir().join(format!("ffpart-test-badgraph-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for (name, content) in [
        ("junk.graph", "this is not a METIS file\nat all\n"),
        ("truncated.graph", "6 7 001\n2 5\n"),
        ("badneighbor.graph", "2 1\n5\n1\n"),
        ("empty.graph", ""),
    ] {
        let path = dir.join(name);
        std::fs::write(&path, content).unwrap();
        let output = ffpart()
            .args([path.to_str().unwrap(), "-k", "2"])
            .output()
            .unwrap();
        assert_eq!(output.status.code(), Some(3), "{name} should exit 3");
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(stderr.contains("ffpart:"), "{name}: no message: {stderr}");
        assert!(
            !stderr.contains("panicked") && !stderr.contains("RUST_BACKTRACE"),
            "{name} panicked: {stderr}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn invalid_k_and_objective_combinations_exit_2() {
    let dir = std::env::temp_dir().join(format!("ffpart-test-badargs-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let graph = write_sample_graph(&dir);
    let g = graph.to_str().unwrap();
    // (args, fragment the error message must contain)
    let cases: &[(&[&str], &str)] = &[
        (&[g, "-k", "0"], "1..=6"),
        (&[g, "-k", "7"], "1..=6"),
        (&[g, "-k", "-3"], "bad -k"),
        (&[g, "-k", "2", "-o", "mincut"], "unknown objective"),
        (&[g, "-k", "2", "-m", "warp"], "unknown method"),
        (&[g, "-k", "2", "--steps", "lots"], "bad steps"),
        (&[g, "-k", "2", "-f", "dot"], "unknown format"),
    ];
    for (args, fragment) in cases {
        let output = ffpart().args(*args).output().unwrap();
        let code = output.status.code();
        assert!(
            code == Some(2) || code == Some(3),
            "{args:?}: expected nonzero exit, got {code:?}"
        );
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains(fragment),
            "{args:?}: message `{stderr}` lacks `{fragment}`"
        );
        assert!(!stderr.contains("panicked"), "{args:?} panicked: {stderr}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Kills the serve process if a test assertion unwinds first.
struct ServeGuard(std::process::Child);
impl Drop for ServeGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn_server_with(extra: &[&str]) -> (ServeGuard, String, Option<String>) {
    use std::io::BufRead;
    let mut args = vec!["serve", "--listen", "127.0.0.1:0", "--workers", "2"];
    args.extend_from_slice(extra);
    let mut child = ffpart()
        .args(&args)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("serve starts");
    let stdout = child.stdout.take().unwrap();
    let mut reader = std::io::BufReader::new(stdout);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("ffpart: serving on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line}"))
        .to_string();
    let http = if extra.contains(&"--http") {
        line.clear();
        reader.read_line(&mut line).unwrap();
        Some(
            line.trim()
                .strip_prefix("ffpart: http on ")
                .unwrap_or_else(|| panic!("unexpected http banner: {line}"))
                .to_string(),
        )
    } else {
        None
    };
    (ServeGuard(child), addr, http)
}

fn spawn_server() -> (ServeGuard, String) {
    let (guard, addr, _) = spawn_server_with(&[]);
    (guard, addr)
}

#[test]
fn serve_and_submit_roundtrip_deterministically_with_cancel() {
    let dir = std::env::temp_dir().join(format!("ffpart-test-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let graph = write_sample_graph(&dir);
    let (guard, addr) = spawn_server();

    let submit = |extra: &[&str], out: &std::path::Path| {
        let mut args = vec![
            "submit",
            "--connect",
            &addr,
            graph.to_str().unwrap(),
            "-k",
            "2",
            "-s",
            "5",
            "-w",
        ];
        args.push(out.to_str().unwrap());
        args.extend_from_slice(extra);
        ffpart().args(&args).output().unwrap()
    };

    // Two identical step-budgeted jobs against one cached instance:
    // byte-identical partitions.
    let (a, b) = (dir.join("a.part"), dir.join("b.part"));
    let out_a = submit(&["--steps", "4000"], &a);
    assert!(
        out_a.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out_a.stderr)
    );
    let stdout_a = String::from_utf8_lossy(&out_a.stdout);
    assert!(
        stdout_a.contains("improvement job="),
        "no stream: {stdout_a}"
    );
    assert!(stdout_a.contains("status=completed"), "{stdout_a}");
    let out_b = submit(&["--steps", "4000"], &b);
    assert!(out_b.status.success());
    assert!(
        String::from_utf8_lossy(&out_b.stderr).contains("(cached)"),
        "second submit must hit the instance cache"
    );
    assert_eq!(
        std::fs::read(&a).unwrap(),
        std::fs::read(&b).unwrap(),
        "same request + seed must reproduce byte-identically"
    );

    // A cancelled job still returns (and writes) its best-so-far result.
    let c = dir.join("c.part");
    let out_c = submit(
        &["--steps", "100000000000", "--cancel-after-ms", "300", "-q"],
        &c,
    );
    assert!(
        out_c.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out_c.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out_c.stdout).contains("status=cancelled"),
        "stdout: {}",
        String::from_utf8_lossy(&out_c.stdout)
    );
    assert_eq!(std::fs::read_to_string(&c).unwrap().lines().count(), 6);

    // Shut the server down cleanly over the protocol.
    ff_service::Client::connect(&*addr)
        .unwrap()
        .shutdown()
        .unwrap();
    drop(guard);
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite: `ffpart submit --multilevel` runs the coarsen→solve→refine
/// pipeline server-side and reproduces byte-identically on resubmit.
#[test]
fn submit_multilevel_job_reproduces_byte_identically() {
    let dir = std::env::temp_dir().join(format!("ffpart-test-submit-ml-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let g = ff_graph::generators::planted_partition(4, 60, 0.2, 0.01, 9);
    let graph = dir.join("pp.graph");
    let mut f = std::fs::File::create(&graph).unwrap();
    ff_graph::io::write_metis(&g, &mut f).unwrap();
    drop(f);
    let (guard, addr) = spawn_server();

    let submit = |out: &std::path::Path| {
        let output = ffpart()
            .args([
                "submit",
                "--connect",
                &addr,
                graph.to_str().unwrap(),
                "-k",
                "4",
                "-s",
                "3",
                "--steps",
                "2000",
                "-j",
                "2",
                "--multilevel",
                "--coarsen-until",
                "60",
                "-q",
                "-w",
                out.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(
            output.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        assert!(
            String::from_utf8_lossy(&output.stdout).contains("status=completed"),
            "stdout: {}",
            String::from_utf8_lossy(&output.stdout)
        );
    };
    let (a, b) = (dir.join("a.part"), dir.join("b.part"));
    submit(&a);
    submit(&b);
    let pa = std::fs::read(&a).unwrap();
    assert_eq!(
        pa.len(),
        240 * 2,
        "fine-graph partition, one line per vertex"
    );
    assert_eq!(pa, std::fs::read(&b).unwrap(), "resubmit must reproduce");

    ff_service::Client::connect(&*addr)
        .unwrap()
        .shutdown()
        .unwrap();
    drop(guard);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn submit_usage_errors_exit_2() {
    let output = ffpart().args(["submit", "-k", "2"]).output().unwrap();
    assert_eq!(output.status.code(), Some(2)); // no --connect
    let output = ffpart()
        .args(["submit", "--connect", "127.0.0.1:1", "g", "-k", "2"])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(2)); // no budget
    let output = ffpart().args(["serve", "--bogus"]).output().unwrap();
    assert_eq!(output.status.code(), Some(2));
}

#[test]
fn submit_to_unreachable_server_exits_3() {
    let output = ffpart()
        .args([
            "submit",
            "--connect",
            "127.0.0.1:1",
            "g.graph",
            "-k",
            "2",
            "--steps",
            "10",
        ])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&output.stderr).contains("cannot connect"));
}

#[test]
fn mincut_diagnostic() {
    let dir = std::env::temp_dir().join(format!("ffpart-test-mc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let graph = write_sample_graph(&dir);
    let output = ffpart()
        .args([
            graph.to_str().unwrap(),
            "-k",
            "2",
            "-m",
            "percolation",
            "--mincut",
            "-q",
        ])
        .output()
        .unwrap();
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    // The sample graph's weakest seam is the weight-1 bridge.
    assert!(
        stdout.contains("global min cut: 1.0000"),
        "stdout: {stdout}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The `--cancel-after-ms` race fix: a 0 ms cancel rides the same
/// connection as the submit and lands on a job the server already
/// acknowledged — the CLI still exits 0 with a best-so-far partition,
/// never an error.
#[test]
fn zero_ms_cancel_still_yields_best_so_far_partition() {
    let dir = std::env::temp_dir().join(format!("ffpart-test-cancel0-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let graph = write_sample_graph(&dir);
    let (guard, addr) = spawn_server();
    let out = dir.join("cancelled.part");
    let output = ffpart()
        .args([
            "submit",
            "--connect",
            &addr,
            graph.to_str().unwrap(),
            "-k",
            "2",
            "--steps",
            "100000000000",
            "--cancel-after-ms",
            "0",
            "-q",
            "-w",
            out.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("status=cancelled"), "stdout: {stdout}");
    assert_eq!(
        std::fs::read_to_string(&out).unwrap().lines().count(),
        6,
        "best-so-far partition written despite the immediate cancel"
    );
    ff_service::Client::connect(&*addr)
        .unwrap()
        .shutdown()
        .unwrap();
    drop(guard);
    std::fs::remove_dir_all(&dir).ok();
}

/// `ffpart serve` hardening flags: a saturated `--max-jobs 1` server
/// answers the overflow submit with a rejection (exit 4), and the
/// `--http` gateway banner + `GET /stats` work end to end.
#[test]
fn serve_hardening_flags_reject_overflow_and_serve_http() {
    use std::io::{Read, Write};
    let dir = std::env::temp_dir().join(format!("ffpart-test-harden-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let graph = write_sample_graph(&dir);
    let (guard, addr, http) = spawn_server_with(&["--max-jobs", "1", "--http", "127.0.0.1:0"]);
    let http = http.expect("--http must print a banner");

    // Fill the single admission slot with an effectively unbounded job.
    let mut filler = ffpart()
        .args([
            "submit",
            "--connect",
            &addr,
            graph.to_str().unwrap(),
            "-k",
            "2",
            "--steps",
            "100000000000",
            "-q",
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    // Wait until the server reports the job in flight.
    let mut admin = ff_service::Client::connect(&*addr).unwrap();
    for _ in 0..100 {
        match admin.stats().unwrap() {
            ff_service::Event::Stats(st) if st.jobs_running >= 1 => break,
            _ => std::thread::sleep(std::time::Duration::from_millis(50)),
        }
    }

    // Overflow submit: exit 4 with the retry hint on stderr.
    let output = ffpart()
        .args([
            "submit",
            "--connect",
            &addr,
            graph.to_str().unwrap(),
            "-k",
            "2",
            "--steps",
            "100",
            "-q",
        ])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(4), "rejection is exit 4");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("retry after"), "stderr: {stderr}");

    // The HTTP gateway answers GET /stats with the admission numbers.
    let mut stream = std::net::TcpStream::connect(&*http).unwrap();
    write!(
        stream,
        "GET /stats HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 200"), "raw: {raw}");
    assert!(raw.contains("\"max_jobs\":1"), "raw: {raw}");
    assert!(raw.contains("\"jobs_rejected\":1"), "raw: {raw}");

    // Cancel the filler via HTTP DELETE (job ids start at 1).
    let mut stream = std::net::TcpStream::connect(&*http).unwrap();
    write!(
        stream,
        "DELETE /jobs/1 HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    assert!(raw.contains("\"known\":true"), "raw: {raw}");
    assert!(filler.wait().unwrap().success(), "cancelled job exits 0");

    admin.shutdown().unwrap();
    drop(guard);
    std::fs::remove_dir_all(&dir).ok();
}

/// Tentpole at the CLI layer: `--workers N|auto` shards the island
/// ensemble across spawned worker processes, and the resulting `.part`
/// file (and the summary on stdout) is byte-identical to the plain
/// in-process run with the same seed and budget.
#[test]
fn one_shot_workers_flag_is_byte_identical_to_in_process() {
    let dir = std::env::temp_dir().join(format!("ffpart-test-dist-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let graph = write_sample_graph(&dir);
    let run = |out: &std::path::Path, extra: &[&str]| {
        let mut args = vec![
            graph.to_str().unwrap(),
            "-k",
            "2",
            "-m",
            "ff",
            "--steps",
            "4000",
            "-s",
            "5",
            "--islands",
            "4",
            "-q",
            "-w",
            out.to_str().unwrap(),
        ];
        args.extend_from_slice(extra);
        let output = ffpart().args(&args).output().unwrap();
        assert!(
            output.status.success(),
            "{extra:?} stderr: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        (output.stdout, output.stderr)
    };
    // Everything before the wall-clock field is deterministic.
    let metrics = |stdout: &[u8]| {
        let text = String::from_utf8(stdout.to_vec()).unwrap();
        text.split("  time").next().unwrap().to_string()
    };
    let base = dir.join("base.part");
    let (base_stdout, _) = run(&base, &[]);
    let base_part = std::fs::read(&base).unwrap();
    for workers in ["2", "4", "auto"] {
        let out = dir.join(format!("w{workers}.part"));
        let (stdout, stderr) = run(&out, &["--workers", workers]);
        assert_eq!(
            std::fs::read(&out).unwrap(),
            base_part,
            "--workers {workers} diverged from the in-process partition"
        );
        assert_eq!(
            metrics(&stdout),
            metrics(&base_stdout),
            "--workers {workers} summary diverged from the in-process one"
        );
        assert!(
            String::from_utf8_lossy(&stderr).contains("worker process"),
            "banner should mention the worker fan-out: {}",
            String::from_utf8_lossy(&stderr)
        );
    }

    // Distribution is ff-only and step-budgeted: anything else is usage.
    for extra in [
        &["--workers", "2", "-m", "multilevel"][..],
        &["--workers", "2", "--multilevel"][..],
        &["--workers", "2", "-b", "0.5"][..],
        &["--workers", "0"][..],
    ] {
        let mut args = vec![graph.to_str().unwrap(), "-k", "2", "-m", "ff", "-q"];
        if !extra.contains(&"-b") {
            args.extend_from_slice(&["--steps", "100"]);
        }
        args.extend_from_slice(extra);
        // `-m multilevel` after the earlier `-m ff` overrides it.
        let output = ffpart().args(&args).output().unwrap();
        assert_eq!(
            output.status.code(),
            Some(2),
            "{extra:?}: {}",
            String::from_utf8_lossy(&output.stderr)
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Federated mode: `submit --workers host1,host2` drives two live
/// servers as islands hosts and must write the same bytes as a plain
/// single-server `submit --connect` of the identical job.
#[test]
fn federated_submit_matches_single_server_submit() {
    let dir = std::env::temp_dir().join(format!("ffpart-test-fed-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let graph = write_sample_graph(&dir);

    let (guard_a, addr_a) = spawn_server();
    let (guard_b, addr_b) = spawn_server();
    let (guard_c, addr_c) = spawn_server();

    let common = |out: &std::path::Path| {
        vec![
            graph.to_str().unwrap().to_string(),
            "-k".into(),
            "2".into(),
            "-s".into(),
            "5".into(),
            "--steps".into(),
            "4000".into(),
            "--islands".into(),
            "4".into(),
            "-w".into(),
            out.to_str().unwrap().to_string(),
        ]
    };
    let single = dir.join("single.part");
    let mut args = vec!["submit".to_string(), "--connect".into(), addr_c.clone()];
    args.extend(common(&single));
    let output = ffpart().args(&args).output().unwrap();
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );

    let fed = dir.join("federated.part");
    let mut args = vec![
        "submit".to_string(),
        "--workers".into(),
        format!("{addr_a},{addr_b}"),
    ];
    args.extend(common(&fed));
    let output = ffpart().args(&args).output().unwrap();
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("status=completed"), "stdout: {stdout}");
    assert!(stdout.contains("improvement value="), "stdout: {stdout}");

    assert_eq!(
        std::fs::read(&fed).unwrap(),
        std::fs::read(&single).unwrap(),
        "federated two-server run diverged from the single-server job"
    );

    // `--workers` and `--connect` are mutually exclusive in submit.
    let output = ffpart()
        .args([
            "submit",
            "--connect",
            &addr_c,
            "--workers",
            &addr_a,
            graph.to_str().unwrap(),
            "-k",
            "2",
            "--steps",
            "100",
        ])
        .output()
        .unwrap();
    assert_eq!(
        output.status.code(),
        Some(2),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );

    for addr in [addr_a, addr_b, addr_c] {
        ff_service::Client::connect(&*addr)
            .unwrap()
            .shutdown()
            .unwrap();
    }
    drop((guard_a, guard_b, guard_c));
    std::fs::remove_dir_all(&dir).ok();
}

//! End-to-end tests for the `ffpart` binary.

use std::io::Write;
use std::process::Command;

fn ffpart() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ffpart"))
}

fn write_sample_graph(dir: &std::path::Path) -> std::path::PathBuf {
    // Two triangles joined by one light edge — obvious 2-partition.
    let path = dir.join("sample.graph");
    let mut f = std::fs::File::create(&path).unwrap();
    // METIS: 6 vertices, 7 edges, edge weights (fmt 001)
    writeln!(f, "6 7 001").unwrap();
    writeln!(f, "2 5 3 5").unwrap(); // v1: -2 (5), -3 (5)
    writeln!(f, "1 5 3 5").unwrap();
    writeln!(f, "1 5 2 5 4 1").unwrap(); // bridge 3-4 weight 1
    writeln!(f, "3 1 5 5 6 5").unwrap();
    writeln!(f, "4 5 6 5").unwrap();
    writeln!(f, "4 5 5 5").unwrap();
    path
}

#[test]
fn partitions_sample_graph_and_writes_part_file() {
    let dir = std::env::temp_dir().join(format!("ffpart-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let graph = write_sample_graph(&dir);
    let part_out = dir.join("out.part");

    let output = ffpart()
        .args([
            graph.to_str().unwrap(),
            "-k",
            "2",
            "-m",
            "multilevel",
            "-w",
            part_out.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("cut 1.0000"), "stdout: {stdout}");

    let part = std::fs::read_to_string(&part_out).unwrap();
    let ids: Vec<&str> = part.lines().collect();
    assert_eq!(ids.len(), 6);
    // triangle {0,1,2} on one side, {3,4,5} on the other
    assert_eq!(ids[0], ids[1]);
    assert_eq!(ids[1], ids[2]);
    assert_eq!(ids[3], ids[4]);
    assert_ne!(ids[0], ids[3]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn metaheuristic_with_tiny_budget() {
    let dir = std::env::temp_dir().join(format!("ffpart-test-ff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let graph = write_sample_graph(&dir);
    let output = ffpart()
        .args([
            graph.to_str().unwrap(),
            "-k",
            "2",
            "-m",
            "ff",
            "-b",
            "0.5",
            "-q",
        ])
        .output()
        .unwrap();
    assert!(output.status.success());
    assert!(String::from_utf8_lossy(&output.stdout).contains("mcut"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn island_ensemble_is_byte_identical_across_invocations() {
    let dir = std::env::temp_dir().join(format!("ffpart-test-islands-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let graph = write_sample_graph(&dir);
    let run = |out: &std::path::Path| {
        let output = ffpart()
            .args([
                graph.to_str().unwrap(),
                "-k",
                "2",
                "-m",
                "ff",
                "--steps",
                "4000",
                "-s",
                "5",
                "--islands",
                "3",
                "--threads",
                "2",
                "-q",
                "-w",
                out.to_str().unwrap(),
            ])
            .output()
            .unwrap();
        assert!(
            output.status.success(),
            "stderr: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        assert!(
            String::from_utf8_lossy(&output.stderr).contains("3 islands"),
            "banner should mention the ensemble"
        );
    };
    let (a, b) = (dir.join("a.part"), dir.join("b.part"));
    run(&a);
    run(&b);
    let pa = std::fs::read(&a).unwrap();
    assert_eq!(
        pa,
        std::fs::read(&b).unwrap(),
        "output must be reproducible"
    );
    // The sample graph's optimal bisection is triangle vs triangle.
    let part = String::from_utf8(pa).unwrap();
    let ids: Vec<&str> = part.lines().collect();
    assert_eq!(ids.len(), 6);
    assert!(ids[0] == ids[1] && ids[1] == ids[2] && ids[3] == ids[4] && ids[4] == ids[5]);
    assert_ne!(ids[0], ids[3]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn zero_islands_is_a_usage_error() {
    let dir = std::env::temp_dir().join(format!("ffpart-test-islands0-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let graph = write_sample_graph(&dir);
    let output = ffpart()
        .args([graph.to_str().unwrap(), "-k", "2", "--islands", "0"])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(2));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn usage_errors_exit_2() {
    let output = ffpart().args(["-k", "2"]).output().unwrap(); // no graph
    assert_eq!(output.status.code(), Some(2));
    let output = ffpart().args(["nonexistent", "-k"]).output().unwrap();
    assert_eq!(output.status.code(), Some(2));
}

#[test]
fn missing_file_exits_3() {
    let output = ffpart()
        .args(["/nonexistent/graph.metis", "-k", "2"])
        .output()
        .unwrap();
    assert_eq!(output.status.code(), Some(3));
}

#[test]
fn help_exits_zero() {
    let output = ffpart().args(["--help"]).output().unwrap();
    assert!(output.status.success());
    assert!(String::from_utf8_lossy(&output.stdout).contains("usage"));
}

#[test]
fn mincut_diagnostic() {
    let dir = std::env::temp_dir().join(format!("ffpart-test-mc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let graph = write_sample_graph(&dir);
    let output = ffpart()
        .args([
            graph.to_str().unwrap(),
            "-k",
            "2",
            "-m",
            "percolation",
            "--mincut",
            "-q",
        ])
        .output()
        .unwrap();
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    // The sample graph's weakest seam is the weight-1 bridge.
    assert!(
        stdout.contains("global min cut: 1.0000"),
        "stdout: {stdout}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

//! Binding-energy scaling (§4.1).
//!
//! Fusion–fission compares molecules with *different* numbers of atoms, but
//! every §1 objective grows with the part count (a 1-partition scores 0).
//! The paper's remedy: pass the objective through a scaling function shaped
//! like the nuclear **binding-energy curve** — binding per nucleon rises
//! fast for light elements, plateaus around the most stable size, then
//! decays slowly for heavy ones — so that "energies are the same for the
//! same quality of partitioning" across part counts.
//!
//! The paper gives the curve only qualitatively; this implementation makes
//! it concrete in two steps, both covered by the ablation bench:
//!
//! 1. **per-part normalization** — Ncut and Mcut are sums of k per-part
//!    ratios, so dividing by the live part count k′ measures average
//!    per-part quality; Cut grows like √k′ on mesh-like graphs (perimeter
//!    scaling), so it divides by √k′;
//! 2. **stability weighting** — divide by [`binding_factor`], a
//!    gamma-shaped curve `(s·e^{1−s})^q` of the mean atom size ratio
//!    `s = k_target/k_live` that equals 1 at the target size, falls off
//!    steeply for undersized atoms (s → 0, i.e. too many parts) and gently
//!    for oversized ones — precisely the asymmetry of the physical curve.

use ff_partition::Objective;

/// The binding-energy stability curve: `(s·e^{1−s})^q ∈ (0, 1]`, maximal
/// (= 1) at `s = 1`. `s` is the mean atom size relative to the target
/// (`k_target / k_live`); `q` controls sharpness (0.5 here — the gentle
/// plateau the paper describes).
///
/// # Panics
///
/// Panics when `s` is not positive.
pub fn binding_factor(s: f64) -> f64 {
    assert!(s > 0.0, "size ratio must be positive");
    let q = 0.5;
    (s * (1.0 - s).exp()).powf(q)
}

/// Scaled energy of a partition with objective value `value`, `k_live`
/// non-empty parts, and target `k_target`. With `use_scaling = false` the
/// raw objective value is returned (the ablation baseline; it makes the
/// search collapse toward few-part molecules).
pub fn scaled_energy(
    value: f64,
    objective: Objective,
    k_live: usize,
    k_target: usize,
    use_scaling: bool,
) -> f64 {
    if !use_scaling {
        return value;
    }
    let k_live = k_live.max(1) as f64;
    let normalized = match objective {
        Objective::Cut => value / k_live.sqrt(),
        Objective::NCut | Objective::MCut => value / k_live,
    };
    let s = k_target as f64 / k_live;
    normalized / binding_factor(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binding_peak_at_target() {
        assert!((binding_factor(1.0) - 1.0).abs() < 1e-12);
        assert!(binding_factor(0.5) < 1.0);
        assert!(binding_factor(2.0) < 1.0);
    }

    #[test]
    fn binding_asymmetric_like_nuclear_curve() {
        // Oversized atoms (s > 1, too few parts) are penalized *less*
        // than undersized ones (s < 1, too many parts) at equal distance.
        let over = binding_factor(1.5);
        let under = binding_factor(0.5);
        assert!(
            over > under,
            "decay must be slow for heavy atoms: b(1.5)={over} vs b(0.5)={under}"
        );
    }

    #[test]
    fn binding_monotone_on_each_side() {
        let mut prev = 0.0;
        for i in 1..=10 {
            let b = binding_factor(i as f64 / 10.0);
            assert!(b > prev);
            prev = b;
        }
        let mut prev = 1.0 + 1e-12;
        for i in 1..=10 {
            let b = binding_factor(1.0 + i as f64 / 2.0);
            assert!(b < prev);
            prev = b;
        }
    }

    #[test]
    fn equal_quality_equal_energy_for_mcut() {
        // Two molecules of "equal quality": Mcut sums k′ per-part ratios of
        // the same average, so values are 16·ρ and 32·ρ. At k_target = 32,
        // scaled energies should rank the 32-part molecule no worse.
        let rho = 2.0;
        let e16 = scaled_energy(16.0 * rho, Objective::MCut, 16, 32, true);
        let e32 = scaled_energy(32.0 * rho, Objective::MCut, 32, 32, true);
        assert!(
            e32 < e16,
            "at-target molecule must win: e32={e32} vs e16={e16}"
        );
        // And the per-part normalization alone equalizes the quality part:
        let n16 = 16.0 * rho / 16.0;
        let n32 = 32.0 * rho / 32.0;
        assert!((n16 - n32).abs() < 1e-12);
    }

    #[test]
    fn scaling_off_returns_raw() {
        assert_eq!(scaled_energy(7.5, Objective::Cut, 5, 32, false), 7.5);
    }

    #[test]
    fn infinite_objective_stays_infinite() {
        assert!(scaled_energy(f64::INFINITY, Objective::MCut, 4, 4, true).is_infinite());
    }

    #[test]
    fn cut_normalization_sqrt() {
        let e = scaled_energy(10.0, Objective::Cut, 4, 4, true);
        assert!((e - 5.0).abs() < 1e-12); // 10/√4 / b(1) = 5
    }
}

//! The fusion/fission choice function (§4.3).
//!
//! With `n = |V|/k` the ideal atom size and `x` the chosen atom's size, the
//! paper defines
//!
//! ```text
//! α(t) = k·(t_max − t)/(t_max − t_min) + r
//!
//! choice(x) = 1                  if x > n + 1/(2α(t))
//!             0                  if x < n − 1/(2α(t))
//!             α(t)·(x − n) + ½   otherwise
//! ```
//!
//! `choice` is the probability the atom undergoes **fission**: oversized
//! atoms always split, undersized ones always fuse, and in between the
//! decision is a coin whose bias sharpens as the system cools (α grows as
//! `t` falls, narrowing the linear band `n ± 1/(2α)`).
//!
//! One unit nuance: the paper's `k`, `r` are dimensionless user constants,
//! but `α·(x − n)` must be dimensionless while `x − n` is measured in
//! nucleons — so α here is expressed per ideal-atom-size, i.e. the
//! user constants are divided by `n`. This keeps one set of `choice_k`,
//! `choice_r` defaults meaningful across graph sizes.

/// The functional form of the fusion/fission decision.
///
/// The paper's conclusion: "This algorithm can be customized, especially
/// through \[the\] choice function. Other choice functions not presented
/// here give better results, but are much more complicated." This enum is
/// that customization point; the ablation harness compares the variants.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ChoiceFunction {
    /// The paper's §4.3 piecewise-linear ramp (default).
    #[default]
    Linear,
    /// Smooth logistic ramp with the same center and central slope —
    /// keeps a small escape probability outside the linear band even when
    /// cold, trading decisiveness for tail exploration.
    Sigmoid,
    /// Hard threshold at the ideal size (α → ∞): always split oversized
    /// atoms, always fuse undersized ones. The degenerate baseline.
    Hard,
}

/// The slope α(t), normalized per ideal atom size `n_ideal`.
///
/// # Panics
///
/// Panics if `t_max ≤ t_min` or `n_ideal ≤ 0`.
pub fn alpha(t: f64, t_max: f64, t_min: f64, choice_k: f64, choice_r: f64, n_ideal: f64) -> f64 {
    assert!(t_max > t_min, "t_max must exceed t_min");
    assert!(n_ideal > 0.0, "ideal atom size must be positive");
    let progress = ((t_max - t) / (t_max - t_min)).clamp(0.0, 1.0);
    (choice_k * progress + choice_r).max(1e-9) / n_ideal
}

/// Probability that an atom of size `x` undergoes fission (vs fusion),
/// using the paper's piecewise-linear form.
pub fn choice(x: f64, n_ideal: f64, alpha_t: f64) -> f64 {
    choice_with(ChoiceFunction::Linear, x, n_ideal, alpha_t)
}

/// [`choice`] generalized over [`ChoiceFunction`].
pub fn choice_with(f: ChoiceFunction, x: f64, n_ideal: f64, alpha_t: f64) -> f64 {
    match f {
        ChoiceFunction::Linear => {
            let half_band = 1.0 / (2.0 * alpha_t);
            if x > n_ideal + half_band {
                1.0
            } else if x < n_ideal - half_band {
                0.0
            } else {
                alpha_t * (x - n_ideal) + 0.5
            }
        }
        ChoiceFunction::Sigmoid => {
            // Central slope matches Linear's α: d/dx σ(4α·(x−n)) |_{ x=n } = α.
            let z = 4.0 * alpha_t * (x - n_ideal);
            1.0 / (1.0 + (-z).exp())
        }
        ChoiceFunction::Hard => {
            if x >= n_ideal {
                1.0
            } else {
                0.0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oversized_always_fissions() {
        let a = alpha(0.0, 1.0, 0.0, 8.0, 0.25, 10.0);
        assert_eq!(choice(100.0, 10.0, a), 1.0);
    }

    #[test]
    fn undersized_always_fuses() {
        let a = alpha(0.0, 1.0, 0.0, 8.0, 0.25, 10.0);
        assert_eq!(choice(1.0, 10.0, a), 0.0);
    }

    #[test]
    fn ideal_size_is_coin_flip() {
        let a = alpha(0.5, 1.0, 0.0, 8.0, 0.25, 10.0);
        assert!((choice(10.0, 10.0, a) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn probability_bounds_and_monotonicity() {
        let a = alpha(0.3, 1.0, 0.0, 8.0, 0.25, 24.0);
        let mut prev = -1.0;
        for x in 0..100 {
            let p = choice(x as f64, 24.0, a);
            assert!((0.0..=1.0).contains(&p));
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn cooling_sharpens_threshold() {
        // Hot: wide band (choices random); cold: narrow band (deterministic).
        let hot = alpha(1.0, 1.0, 0.0, 8.0, 0.25, 10.0);
        let cold = alpha(0.0, 1.0, 0.0, 8.0, 0.25, 10.0);
        assert!(cold > hot);
        let x = 12.0; // slightly oversized
        let p_hot = choice(x, 10.0, hot);
        let p_cold = choice(x, 10.0, cold);
        assert!(
            p_cold >= p_hot,
            "cold system must be more decisive about splitting oversized atoms"
        );
        assert!(p_hot < 1.0, "hot system must keep some randomness");
    }

    #[test]
    #[should_panic(expected = "t_max must exceed")]
    fn bad_temperature_panics() {
        alpha(0.5, 0.0, 1.0, 8.0, 0.25, 10.0);
    }

    #[test]
    fn sigmoid_matches_linear_at_center_and_slope() {
        let a = alpha(0.5, 1.0, 0.0, 8.0, 0.25, 12.0);
        let lin = |x: f64| choice_with(ChoiceFunction::Linear, x, 12.0, a);
        let sig = |x: f64| choice_with(ChoiceFunction::Sigmoid, x, 12.0, a);
        assert!((sig(12.0) - 0.5).abs() < 1e-12);
        // Central slopes agree (finite difference).
        let h = 1e-4;
        let slope_lin = (lin(12.0 + h) - lin(12.0 - h)) / (2.0 * h);
        let slope_sig = (sig(12.0 + h) - sig(12.0 - h)) / (2.0 * h);
        assert!(
            (slope_lin - slope_sig).abs() < 1e-6,
            "slopes: linear {slope_lin}, sigmoid {slope_sig}"
        );
    }

    #[test]
    fn sigmoid_keeps_tail_probability() {
        let a = alpha(0.0, 1.0, 0.0, 8.0, 0.25, 10.0); // cold: sharp
                                                       // Far below ideal size: Linear says never split; Sigmoid keeps a
                                                       // tiny but positive probability.
        let x = 2.0;
        assert_eq!(choice_with(ChoiceFunction::Linear, x, 10.0, a), 0.0);
        let p = choice_with(ChoiceFunction::Sigmoid, x, 10.0, a);
        assert!(p > 0.0 && p < 0.05);
    }

    #[test]
    fn hard_threshold() {
        let a = alpha(0.5, 1.0, 0.0, 8.0, 0.25, 10.0);
        assert_eq!(choice_with(ChoiceFunction::Hard, 9.99, 10.0, a), 0.0);
        assert_eq!(choice_with(ChoiceFunction::Hard, 10.0, 10.0, a), 1.0);
    }

    #[test]
    fn all_variants_monotone_in_x() {
        let a = alpha(0.3, 1.0, 0.0, 8.0, 0.25, 20.0);
        for f in [
            ChoiceFunction::Linear,
            ChoiceFunction::Sigmoid,
            ChoiceFunction::Hard,
        ] {
            let mut prev = -1.0;
            for x in 0..60 {
                let p = choice_with(f, x as f64, 20.0, a);
                assert!((0.0..=1.0).contains(&p), "{f:?} out of range");
                assert!(p >= prev, "{f:?} not monotone");
                prev = p;
            }
        }
    }
}

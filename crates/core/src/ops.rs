//! The fusion and fission operators (§4.2).

use crate::config::FissionSplitter;
use ff_graph::{induced_subgraph, Graph, VertexId};
use ff_metaheur::percolation::{percolation_with_seeds, spread_seeds, PercolationConfig};
use ff_partition::{CutState, Partition};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// Total connection weight from part `a` to every other part, sorted by
/// ascending part id (deterministic order). O(|a| · deg).
pub fn part_connections(st: &CutState, a: u32) -> Vec<(u32, f64)> {
    let mut conn: HashMap<u32, f64> = HashMap::new();
    for &v in st.partition().part_members_unordered(a) {
        for (u, w) in st.graph().edges_of(v) {
            let pu = st.partition().part_of(u);
            if pu != a {
                *conn.entry(pu).or_insert(0.0) += w;
            }
        }
    }
    let mut out: Vec<(u32, f64)> = conn.into_iter().collect();
    out.sort_unstable_by_key(|&(p, _)| p);
    out
}

/// Selects a fusion partner for atom `a`.
///
/// §4.2: "A second partition is selected according to its size, its
/// distance to the first one, and temperature." Distance is the inverse
/// connection weight, so the roulette weight is
/// `conn(a, b) / size(b)^size_bias`, sharpened as the system cools
/// (`weight^(1/τ)` with τ the normalized temperature): hot systems pick
/// almost uniformly among neighbors, cold ones almost always take the
/// closest small atom. Returns `None` when `a` has no neighboring atom.
pub fn select_partner(
    st: &CutState,
    a: u32,
    t_norm: f64,
    size_bias: f64,
    rng: &mut ChaCha8Rng,
) -> Option<u32> {
    let cands = part_connections(st, a); // sorted by part id
    if cands.is_empty() {
        return None;
    }
    let tau = t_norm.clamp(0.05, 1.0);
    let scores: Vec<f64> = cands
        .iter()
        .map(|&(b, w)| {
            let size = st.partition().part_size(b).max(1) as f64;
            (w / size.powf(size_bias)).powf(1.0 / tau)
        })
        .collect();
    let total: f64 = scores.iter().sum();
    if total <= 0.0 || !total.is_finite() {
        // Degenerate scores (all zero or overflow): uniform choice.
        return Some(cands[rng.gen_range(0..cands.len())].0);
    }
    let mut roll = rng.gen::<f64>() * total;
    for (i, &s) in scores.iter().enumerate() {
        roll -= s;
        if roll <= 0.0 {
            return Some(cands[i].0);
        }
    }
    Some(cands.last().unwrap().0)
}

/// Fuses atoms `a` and `b`: all nucleons of the smaller move into the
/// larger. Returns the surviving part id.
pub fn fuse(st: &mut CutState, a: u32, b: u32) -> u32 {
    assert_ne!(a, b, "cannot fuse an atom with itself");
    let (survivor, absorbed) = if st.partition().part_size(a) >= st.partition().part_size(b) {
        (a, b)
    } else {
        (b, a)
    };
    // Unordered member order is fine: the merged state is order-independent.
    for v in st.partition().part_members_unordered(absorbed).to_vec() {
        st.move_vertex(v, survivor);
    }
    survivor
}

/// The `count` least-bound nucleons of `part`: those with the smallest
/// internal-connection fraction of their weighted degree. Never selects
/// so many that the part would empty.
pub fn weakest_nucleons(st: &CutState, part: u32, count: usize) -> Vec<VertexId> {
    // Unordered is safe: the (binding, id) sort below fixes a total order.
    let members = st.partition().part_members_unordered(part).to_vec();
    if members.len() <= 1 || count == 0 {
        return Vec::new();
    }
    let take = count.min(members.len() - 1);
    let mut scored: Vec<(f64, VertexId)> = members
        .into_iter()
        .map(|v| {
            let degw = st.graph().degree_weight(v);
            let own: f64 = st
                .graph()
                .edges_of(v)
                .filter(|&(u, _)| st.partition().part_of(u) == part)
                .map(|(_, w)| w)
                .sum();
            let binding = if degw > 0.0 { own / degw } else { 0.0 };
            (binding, v)
        })
        .collect();
    // Partition the `take` smallest to the front, then order only that
    // prefix — same output as a full sort (the (binding, id) key is a total
    // order), O(n + take·log take) instead of O(n·log n).
    let cmp = |x: &(f64, VertexId), y: &(f64, VertexId)| {
        x.0.partial_cmp(&y.0).unwrap().then(x.1.cmp(&y.1))
    };
    if take < scored.len() {
        scored.select_nth_unstable_by(take, cmp);
        scored.truncate(take);
    }
    scored.sort_by(cmp);
    scored.into_iter().map(|(_, v)| v).collect()
}

/// Absorbs nucleon `v` into its best-connected *other* atom ("nfusion").
/// No-op for a nucleon with no external connections.
pub fn nfusion(st: &mut CutState, v: VertexId) {
    let own = st.partition().part_of(v);
    let mut best: Option<(u32, f64)> = None;
    // connection_weights is sorted by part id, so ties break low-id first.
    for (p, w) in st.connection_weights(v) {
        if p == own {
            continue;
        }
        if best.is_none_or(|(_, bw)| w > bw) {
            best = Some((p, w));
        }
    }
    if let Some((p, _)) = best {
        // Don't empty the source atom: a one-nucleon atom stays put (it
        // will be fused away by the main loop's choice function instead).
        if st.partition().part_size(own) > 1 {
            st.move_vertex(v, p);
        }
    }
}

/// Splits `part` in two. The new half gets a fresh part id, which is
/// returned; `None` when the atom has fewer than 2 nucleons.
pub fn fission_split(
    st: &mut CutState,
    part: u32,
    splitter: FissionSplitter,
    rng: &mut ChaCha8Rng,
) -> Option<u32> {
    let members = st.partition().part_members(part);
    if members.len() < 2 {
        return None;
    }
    let half: Vec<VertexId> = match splitter {
        FissionSplitter::Percolation => {
            let sub = induced_subgraph(st.graph(), &members);
            let seeds = spread_seeds(&sub.graph, 2, rng.gen());
            let p = percolation_with_seeds(
                &sub.graph,
                &seeds,
                &PercolationConfig {
                    max_rounds: 6,
                    seed: rng.gen(),
                },
            );
            (0..members.len())
                .filter(|&i| p.part_of(i as VertexId) == 1)
                .map(|i| members[i])
                .collect()
        }
        FissionSplitter::RandomHalf => {
            let mut shuffled = members.clone();
            shuffled.shuffle(rng);
            shuffled.truncate(members.len() / 2);
            shuffled
        }
    };
    if half.is_empty() || half.len() == members.len() {
        return None; // degenerate split
    }
    let new_part = st.add_part();
    for v in half {
        st.move_vertex(v, new_part);
    }
    Some(new_part)
}

/// KaFFPaE-style overlap crossover of two molecules.
///
/// The *overlap* of parents `a` and `b` groups vertices by their pair of
/// part ids `(a(v), b(v))`: inside one overlap class both parents agree
/// the vertices belong together; every boundary where they disagree stays
/// cut. The child is then agglomerated back down to at most `k` atoms
/// with the fusion operator itself — repeatedly fuse the smallest atom
/// into its strongest-connected neighbor (ties broken by lowest part id)
/// — so only the disagreement region gets re-fused and the consensus
/// structure survives.
///
/// Fully deterministic (no RNG): a pure function of `(g, a, b, k)`. The
/// result is compacted to dense part ids. Isolated atoms with no
/// neighboring atom cannot fuse; if only such atoms remain the child may
/// keep more than `k` parts (the caller's accept test rejects bad
/// children anyway).
///
/// # Panics
///
/// Panics if the parents disagree with `g` on the vertex count.
pub fn overlap_combine(g: &Graph, a: &Partition, b: &Partition, k: usize) -> Partition {
    assert_eq!(a.num_vertices(), g.num_vertices(), "parent size mismatch");
    assert_eq!(b.num_vertices(), g.num_vertices(), "parent size mismatch");
    // Overlap classes, numbered in first-seen vertex order.
    let mut class_of: HashMap<(u32, u32), u32> = HashMap::new();
    let mut assignment = Vec::with_capacity(g.num_vertices());
    for v in g.vertices() {
        let key = (a.part_of(v), b.part_of(v));
        let next = class_of.len() as u32;
        assignment.push(*class_of.entry(key).or_insert(next));
    }
    let classes = class_of.len();
    let mut st = CutState::new(g, Partition::from_assignment(g, assignment, classes));
    while st.partition().num_nonempty_parts() > k {
        // Smallest live atom first (ties → lowest id); the first one with
        // a neighbor fuses into its strongest connection.
        let part = st.partition();
        let mut order: Vec<(usize, u32)> = (0..part.num_parts() as u32)
            .filter(|&p| part.part_size(p) > 0)
            .map(|p| (part.part_size(p), p))
            .collect();
        order.sort_unstable();
        let mut fused = false;
        for &(_, p) in &order {
            let targets = part_connections(&st, p); // sorted by part id
            let best = targets
                .iter()
                .fold(None::<(u32, f64)>, |acc, &(q, w)| match acc {
                    Some((_, bw)) if bw >= w => acc,
                    _ => Some((q, w)),
                });
            if let Some((q, _)) = best {
                fuse(&mut st, p, q);
                fused = true;
                break;
            }
        }
        if !fused {
            break; // only isolated atoms remain
        }
    }
    let mut child = st.into_partition();
    child.compact();
    child
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_graph::generators::{grid2d, two_cliques_bridge};
    use ff_graph::Graph;
    use ff_partition::Partition;

    fn state(g: &Graph, asg: Vec<u32>, k: usize) -> CutState<'_> {
        CutState::new(g, Partition::from_assignment(g, asg, k))
    }

    #[test]
    fn part_connections_counts_boundary() {
        let g = ff_graph::generators::path(4); // 0-1-2-3
        let st = state(&g, vec![0, 0, 1, 2], 3);
        let conn = part_connections(&st, 0);
        assert_eq!(conn, vec![(1, 1.0)]);
    }

    #[test]
    fn fuse_merges_into_larger() {
        let g = grid2d(2, 3);
        let mut st = state(&g, vec![0, 0, 0, 1, 1, 2], 3);
        let survivor = fuse(&mut st, 0, 1);
        assert_eq!(survivor, 0);
        assert_eq!(st.partition().part_size(0), 5);
        assert_eq!(st.partition().part_size(1), 0);
        assert!(st.drift() < 1e-9);
    }

    #[test]
    fn weakest_nucleons_are_boundary_ones() {
        let g = two_cliques_bridge(5, 2.0, 0.5);
        // Part 0 = clique A plus one vertex of clique B (vertex 5).
        let mut asg = vec![0u32; 10];
        for item in asg.iter_mut().skip(6) {
            *item = 1;
        }
        let st = state(&g, asg, 2);
        let weak = weakest_nucleons(&st, 0, 1);
        assert_eq!(weak, vec![5], "the stray clique-B vertex is least bound");
    }

    #[test]
    fn weakest_never_empties_part() {
        let g = grid2d(2, 2);
        let st = state(&g, vec![0, 0, 1, 1], 2);
        assert_eq!(weakest_nucleons(&st, 0, 10).len(), 1);
    }

    #[test]
    fn nfusion_moves_to_best_connected() {
        let g = two_cliques_bridge(5, 2.0, 0.5);
        let mut asg = vec![0u32; 10];
        for item in asg.iter_mut().skip(6) {
            *item = 1;
        }
        let mut st = state(&g, asg, 2);
        nfusion(&mut st, 5); // stray vertex rejoins clique B
        assert_eq!(st.partition().part_of(5), 1);
        assert!(st.drift() < 1e-9);
    }

    #[test]
    fn fission_splits_along_bridge() {
        let g = two_cliques_bridge(6, 2.0, 0.1);
        let mut st = state(&g, vec![0u32; 12], 1);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let new = fission_split(&mut st, 0, FissionSplitter::Percolation, &mut rng)
            .expect("split must succeed");
        // The percolation split should cut only the bridge.
        assert!((st.cut() - 0.1).abs() < 1e-9, "cut = {}", st.cut());
        assert_eq!(
            st.partition().part_size(0) + st.partition().part_size(new),
            12
        );
    }

    #[test]
    fn fission_of_singleton_fails() {
        let g = grid2d(2, 2);
        let mut st = state(&g, vec![0, 1, 1, 1], 2);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert!(fission_split(&mut st, 0, FissionSplitter::Percolation, &mut rng).is_none());
    }

    #[test]
    fn random_half_splitter_works() {
        let g = grid2d(4, 4);
        let mut st = state(&g, vec![0u32; 16], 1);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let new = fission_split(&mut st, 0, FissionSplitter::RandomHalf, &mut rng).unwrap();
        assert_eq!(st.partition().part_size(new), 8);
        assert!(st.drift() < 1e-9);
    }

    #[test]
    fn partner_selection_prefers_connected() {
        let g = ff_graph::generators::path(6); // 0-1-2-3-4-5
        let st = state(&g, vec![0, 0, 1, 1, 2, 2], 3);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        // Cold system: part 0 must pick part 1 (its only neighbor).
        for _ in 0..20 {
            assert_eq!(select_partner(&st, 0, 0.05, 0.5, &mut rng), Some(1));
        }
    }

    #[test]
    fn overlap_combine_keeps_consensus_and_hits_k() {
        let g = two_cliques_bridge(6, 2.0, 0.1);
        // Parent a: the ideal bisection. Parent b: one clique-A vertex
        // defected to the B side — the disagreement region is {5}.
        let a_asg: Vec<u32> = (0..12).map(|v| u32::from(v >= 6)).collect();
        let mut b_asg = a_asg.clone();
        b_asg[5] = 1;
        let a = Partition::from_assignment(&g, a_asg, 2);
        let b = Partition::from_assignment(&g, b_asg, 2);
        let child = overlap_combine(&g, &a, &b, 2);
        assert!(child.validate(&g));
        assert_eq!(child.num_nonempty_parts(), 2);
        // The disagreement vertex re-fuses into its strongest connection:
        // clique A (5 internal edges of weight 2 vs a 0.1 bridge).
        assert_eq!(child.part_of(5), child.part_of(0));
        // Consensus vertices never split.
        for v in 0..5 {
            assert_eq!(child.part_of(v), child.part_of(0));
        }
        for v in 6..12 {
            assert_eq!(child.part_of(v), child.part_of(6));
        }
    }

    #[test]
    fn overlap_combine_is_deterministic_and_order_sensitive_only_to_parents() {
        let g = grid2d(5, 5);
        let a = Partition::random(&g, 3, 7);
        let b = Partition::random(&g, 3, 8);
        let x = overlap_combine(&g, &a, &b, 3);
        let y = overlap_combine(&g, &a, &b, 3);
        assert_eq!(x.assignment(), y.assignment());
        assert_eq!(x.num_nonempty_parts(), 3); // connected grid: always reaches k
    }

    #[test]
    fn overlap_combine_identical_parents_is_the_parent() {
        let g = grid2d(4, 4);
        let a = Partition::from_assignment(&g, (0..16).map(|v| u32::from(v >= 8)).collect(), 2);
        let child = overlap_combine(&g, &a, &a, 2);
        assert_eq!(child.assignment(), a.assignment());
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn overlap_combine_size_mismatch_panics() {
        let g = grid2d(2, 2);
        let h = grid2d(3, 3);
        let a = Partition::singletons(&g);
        let b = Partition::singletons(&h);
        overlap_combine(&g, &a, &b, 2);
    }

    #[test]
    fn partner_none_for_isolated_atom() {
        let mut b = ff_graph::GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        let g = b.build();
        let st = state(&g, vec![0, 0, 1], 2);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        assert_eq!(select_partner(&st, 1, 0.5, 0.5, &mut rng), None);
    }
}

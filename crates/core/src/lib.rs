//! # ff-core — the fusion–fission metaheuristic
//!
//! The paper's contribution (§4): a partitioning metaheuristic built on a
//! nuclear-physics analogy. A **nucleon** is a vertex, an **atom** is a
//! part, and the whole partition is a molecule. The search repeatedly:
//!
//! 1. picks an atom and decides — via the temperature-dependent
//!    [`choice`](mod@choice) function — whether it should **fuse** with a neighbor
//!    atom or undergo **fission** (split in two by percolation),
//! 2. applies the operator; learned **laws** ([`laws`]) decide how many
//!    loose nucleons the reaction ejects, and ejected nucleons are either
//!    absorbed by neighboring atoms or (at high temperature) trigger
//!    secondary fissions,
//! 3. scores the new molecule with a **binding-energy scaled** objective
//!    ([`energy`]) that makes partitions with different part counts
//!    comparable — the number of atoms is *not* fixed; it drifts around
//!    the target k,
//! 4. reinforces or weakens the law it used, cools the temperature, and
//!    restarts from the best molecule when frozen.
//!
//! Initialization (§4.2, Algorithm 2) is a simplified loop run from the
//! all-singletons molecule with a fusion-dominated choice heuristic.
//!
//! ## The analogy, term by term
//!
//! | paper term | code |
//! |---|---|
//! | nucleon | a vertex ([`ff_graph::VertexId`]) |
//! | atom | a part id (`u32`) within a [`ff_partition::Partition`] |
//! | molecule | the whole [`ff_partition::Partition`] |
//! | fusion / fission reaction | [`ops::fuse`] / [`ops::fission_split`] |
//! | ejected nucleons | [`ops::weakest_nucleons`] + [`ops::nfusion`] |
//! | physical laws | [`LawTable`] (learned ejection-count distributions) |
//! | binding energy | [`scaled_energy`] (part-count-comparable objective) |
//! | temperature | `t_max`/`t_min`/`nbt` in [`FusionFissionConfig`] |
//!
//! For parallel multi-seed runs of this search with best-molecule
//! exchange, see the `ff-engine` crate, which drives the resumable
//! [`FusionFissionRun`] handle.
//!
//! ```
//! use ff_core::{FusionFission, FusionFissionConfig};
//! use ff_graph::generators::two_cliques_bridge;
//! use ff_partition::Objective;
//!
//! let g = two_cliques_bridge(8, 2.0, 0.1);
//! let result = FusionFission::new(&g, FusionFissionConfig::fast(2), 42).run();
//! assert_eq!(result.best.num_nonempty_parts(), 2);
//! let mcut = Objective::MCut.evaluate(&g, &result.best);
//! assert!(mcut < 0.1, "only the bridge should be cut, got Mcut = {mcut}");
//! ```
//!
//! ## Invariants
//!
//! This crate is under the byte-identical determinism contract: no wall
//! clock, no `HashMap` iteration, no unseeded RNG. `ff-lint`
//! (`crates/lint`) enforces it statically on every CI run — see
//! `INVARIANTS.md` at the repo root for the full contract.

pub mod algorithm;
pub mod choice;
pub mod config;
pub mod energy;
pub mod laws;
pub mod ops;

pub use algorithm::{FusionFission, FusionFissionResult, FusionFissionRun};
pub use choice::{alpha, choice, choice_with, ChoiceFunction};
pub use config::{ConfigError, FissionSplitter, FusionFissionConfig};
pub use energy::{binding_factor, scaled_energy};
pub use laws::LawTable;
pub use ops::overlap_combine;

//! Fusion–fission configuration.
//!
//! The paper (§6) counts five tunables: `t_max`, `t_min`, `nbt` for the
//! temperature, and `k`, `r` in the choice function α(t). This config
//! exposes exactly those (as `t_max`/`t_min`/`nbt`/`choice_k`/`choice_r`)
//! plus the mechanical knobs the paper fixes implicitly (law learning
//! rate, ejection cap), ablation switches, and the stop condition.

use crate::choice::ChoiceFunction;
use ff_metaheur::StopCondition;
use ff_partition::Objective;

/// A configuration invariant violation, as a typed value instead of a
/// panic — servers map it to a typed `error` event, CLIs to a usage-error
/// exit code. Produced by [`FusionFissionConfig::try_validate`] and the
/// `ff-engine` solver builder (which adds the ensemble-level variants).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// `k` was 0 (or never set on a builder).
    NonPositiveK,
    /// `t_max` did not exceed `t_min`.
    BadTemperatureRange,
    /// `nbt` was 0.
    ZeroNbt,
    /// `choice_k` or `choice_r` was negative.
    NegativeChoice,
    /// `law_rate` was outside `[0, 1)`.
    BadLawRate,
    /// An ensemble was configured with 0 islands.
    ZeroIslands,
    /// A per-island objective override list was empty.
    NoObjectives,
    /// An explicit island-seed list did not match the island count.
    SeedCountMismatch {
        /// Configured island count.
        islands: usize,
        /// Seeds supplied.
        seeds: usize,
    },
    /// Too few islands to cycle the per-island objective list: some
    /// distinct objective would never get an island.
    UncoveredObjectives {
        /// Configured island count.
        islands: usize,
        /// Minimum islands so every distinct objective gets one.
        needed: usize,
    },
    /// A multilevel coarsening target of 0 vertices.
    ZeroCoarsenTarget,
    /// Multilevel mode combined with a warm-start partition: the initial
    /// partition lives on the fine graph, but the search runs on the
    /// coarse one.
    MultilevelWithInitial,
    /// Multilevel mode requested on the resumable `start()` path: the
    /// V-cycle owns the epoch loop, so only `run()` supports it.
    MultilevelNotResumable,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::NonPositiveK => write!(f, "k must be positive"),
            ConfigError::BadTemperatureRange => write!(f, "t_max must exceed t_min"),
            ConfigError::ZeroNbt => write!(f, "nbt must be positive"),
            ConfigError::NegativeChoice => {
                write!(f, "choice_k and choice_r must be non-negative")
            }
            ConfigError::BadLawRate => write!(f, "law_rate in [0,1)"),
            ConfigError::ZeroIslands => write!(f, "need at least one island"),
            ConfigError::NoObjectives => write!(f, "need at least one objective"),
            ConfigError::SeedCountMismatch { islands, seeds } => write!(
                f,
                "island seed count mismatch: {islands} islands but {seeds} seeds"
            ),
            ConfigError::UncoveredObjectives { islands, needed } => write!(
                f,
                "the objective list needs at least {needed} islands so every \
                 distinct objective gets an island (got {islands})"
            ),
            ConfigError::ZeroCoarsenTarget => {
                write!(f, "multilevel coarsening target must be positive")
            }
            ConfigError::MultilevelWithInitial => {
                write!(
                    f,
                    "multilevel cannot be combined with a warm-start partition"
                )
            }
            ConfigError::MultilevelNotResumable => {
                write!(
                    f,
                    "multilevel runs are not resumable; use run() instead of start()"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// How fission splits an atom in two (ablation switch; the paper uses
/// percolation, §4.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FissionSplitter {
    /// The §4.4 percolation flood from two spread seeds.
    Percolation,
    /// Random half/half split (ablation baseline).
    RandomHalf,
}

/// Configuration for [`crate::FusionFission`].
#[derive(Clone, Copy, Debug)]
pub struct FusionFissionConfig {
    /// Target number of parts k (the result is reported at this k; the
    /// search itself roams k−…k+).
    pub k: usize,
    /// Objective to minimize (the paper's ATC study uses Mcut).
    pub objective: Objective,
    /// Maximal temperature (annealing restarts reheat to this).
    pub t_max: f64,
    /// Minimal temperature (the freeze point triggering a restart).
    pub t_min: f64,
    /// Temperature steps per annealing cycle: the paper's
    /// `decrease(t) = t − (t_max − t_min)/nbt`.
    pub nbt: u32,
    /// `k` in the paper's `α(t) = k·(t_max − t)/(t_max − t_min) + r`
    /// (slope of the fusion/fission threshold when frozen).
    pub choice_k: f64,
    /// `r` in α(t) (residual slope when hot).
    pub choice_r: f64,
    /// Shape of the fusion/fission decision (the paper's announced
    /// customization point; `Linear` is the published form).
    pub choice_fn: ChoiceFunction,
    /// Law reinforcement step (§4.1's "input value").
    pub law_rate: f64,
    /// Exponent biasing fusion-partner selection toward small atoms.
    pub size_bias: f64,
    /// Scale of the probability that an ejected nucleon triggers a
    /// secondary fission at high temperature.
    pub secondary_fission: f64,
    /// Stop condition for the whole run (initialization included).
    pub stop: StopCondition,
    /// Ablation: apply the binding-energy scaling (true = paper's method).
    pub use_energy_scaling: bool,
    /// Ablation: update laws from outcomes (true = paper's method).
    pub learn_laws: bool,
    /// Ablation: fission splitting mechanism.
    pub splitter: FissionSplitter,
}

impl FusionFissionConfig {
    /// The paper-faithful default for target `k`.
    pub fn standard(k: usize) -> Self {
        FusionFissionConfig {
            k,
            objective: Objective::MCut,
            // Defaults from the tuning sweep in `results/tune.csv`
            // (`cargo run -p ff-bench --release --bin tune`): long
            // annealing cycles and a strong small-partner bias dominate.
            t_max: 1.0,
            t_min: 0.0,
            nbt: 1600,
            choice_k: 8.0,
            choice_r: 0.25,
            choice_fn: ChoiceFunction::Linear,
            law_rate: 0.08,
            size_bias: 1.0,
            secondary_fission: 0.5,
            stop: StopCondition::steps(20_000),
            use_energy_scaling: true,
            learn_laws: true,
            splitter: FissionSplitter::Percolation,
        }
    }

    /// A small-budget preset for tests, examples and doctests.
    pub fn fast(k: usize) -> Self {
        FusionFissionConfig {
            nbt: 80,
            stop: StopCondition::steps(1_500),
            ..Self::standard(k)
        }
    }

    /// Validates invariants, returning a typed [`ConfigError`] instead of
    /// panicking. Called by the runner (which panics on `Err` to preserve
    /// the historical contract for in-process misuse) and by the
    /// `ff-engine` solver builder (which propagates the error).
    pub fn try_validate(&self) -> Result<(), ConfigError> {
        if self.k < 1 {
            return Err(ConfigError::NonPositiveK);
        }
        if self.t_max <= self.t_min {
            return Err(ConfigError::BadTemperatureRange);
        }
        if self.nbt < 1 {
            return Err(ConfigError::ZeroNbt);
        }
        if self.choice_k < 0.0 || self.choice_r < 0.0 {
            return Err(ConfigError::NegativeChoice);
        }
        if !(0.0..1.0).contains(&self.law_rate) {
            return Err(ConfigError::BadLawRate);
        }
        Ok(())
    }

    /// Validates invariants, panicking on violation.
    #[deprecated(
        since = "0.2.0",
        note = "use `try_validate` and handle the ConfigError"
    )]
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        FusionFissionConfig::standard(32).try_validate().unwrap();
        FusionFissionConfig::fast(2).try_validate().unwrap();
    }

    #[test]
    fn bad_temperatures_are_typed() {
        let cfg = FusionFissionConfig {
            t_max: 0.0,
            t_min: 0.5,
            ..FusionFissionConfig::standard(4)
        };
        assert_eq!(cfg.try_validate(), Err(ConfigError::BadTemperatureRange));
        assert_eq!(
            cfg.try_validate().unwrap_err().to_string(),
            "t_max must exceed t_min"
        );
    }

    #[test]
    fn zero_k_is_typed() {
        assert_eq!(
            FusionFissionConfig::standard(0).try_validate(),
            Err(ConfigError::NonPositiveK)
        );
    }

    #[test]
    fn bad_law_rate_is_typed() {
        let cfg = FusionFissionConfig {
            law_rate: 1.0,
            ..FusionFissionConfig::standard(4)
        };
        assert_eq!(cfg.try_validate(), Err(ConfigError::BadLawRate));
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn deprecated_validate_still_panics() {
        #[allow(deprecated)]
        FusionFissionConfig::standard(0).validate();
    }
}

//! Fusion–fission configuration.
//!
//! The paper (§6) counts five tunables: `t_max`, `t_min`, `nbt` for the
//! temperature, and `k`, `r` in the choice function α(t). This config
//! exposes exactly those (as `t_max`/`t_min`/`nbt`/`choice_k`/`choice_r`)
//! plus the mechanical knobs the paper fixes implicitly (law learning
//! rate, ejection cap), ablation switches, and the stop condition.

use crate::choice::ChoiceFunction;
use ff_metaheur::StopCondition;
use ff_partition::Objective;

/// How fission splits an atom in two (ablation switch; the paper uses
/// percolation, §4.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FissionSplitter {
    /// The §4.4 percolation flood from two spread seeds.
    Percolation,
    /// Random half/half split (ablation baseline).
    RandomHalf,
}

/// Configuration for [`crate::FusionFission`].
#[derive(Clone, Copy, Debug)]
pub struct FusionFissionConfig {
    /// Target number of parts k (the result is reported at this k; the
    /// search itself roams k−…k+).
    pub k: usize,
    /// Objective to minimize (the paper's ATC study uses Mcut).
    pub objective: Objective,
    /// Maximal temperature (annealing restarts reheat to this).
    pub t_max: f64,
    /// Minimal temperature (the freeze point triggering a restart).
    pub t_min: f64,
    /// Temperature steps per annealing cycle: the paper's
    /// `decrease(t) = t − (t_max − t_min)/nbt`.
    pub nbt: u32,
    /// `k` in the paper's `α(t) = k·(t_max − t)/(t_max − t_min) + r`
    /// (slope of the fusion/fission threshold when frozen).
    pub choice_k: f64,
    /// `r` in α(t) (residual slope when hot).
    pub choice_r: f64,
    /// Shape of the fusion/fission decision (the paper's announced
    /// customization point; `Linear` is the published form).
    pub choice_fn: ChoiceFunction,
    /// Law reinforcement step (§4.1's "input value").
    pub law_rate: f64,
    /// Exponent biasing fusion-partner selection toward small atoms.
    pub size_bias: f64,
    /// Scale of the probability that an ejected nucleon triggers a
    /// secondary fission at high temperature.
    pub secondary_fission: f64,
    /// Stop condition for the whole run (initialization included).
    pub stop: StopCondition,
    /// Ablation: apply the binding-energy scaling (true = paper's method).
    pub use_energy_scaling: bool,
    /// Ablation: update laws from outcomes (true = paper's method).
    pub learn_laws: bool,
    /// Ablation: fission splitting mechanism.
    pub splitter: FissionSplitter,
}

impl FusionFissionConfig {
    /// The paper-faithful default for target `k`.
    pub fn standard(k: usize) -> Self {
        FusionFissionConfig {
            k,
            objective: Objective::MCut,
            // Defaults from the tuning sweep in `results/tune.csv`
            // (`cargo run -p ff-bench --release --bin tune`): long
            // annealing cycles and a strong small-partner bias dominate.
            t_max: 1.0,
            t_min: 0.0,
            nbt: 1600,
            choice_k: 8.0,
            choice_r: 0.25,
            choice_fn: ChoiceFunction::Linear,
            law_rate: 0.08,
            size_bias: 1.0,
            secondary_fission: 0.5,
            stop: StopCondition::steps(20_000),
            use_energy_scaling: true,
            learn_laws: true,
            splitter: FissionSplitter::Percolation,
        }
    }

    /// A small-budget preset for tests, examples and doctests.
    pub fn fast(k: usize) -> Self {
        FusionFissionConfig {
            nbt: 80,
            stop: StopCondition::steps(1_500),
            ..Self::standard(k)
        }
    }

    /// Validates invariants; called by the runner.
    pub fn validate(&self) {
        assert!(self.k >= 1, "k must be positive");
        assert!(self.t_max > self.t_min, "t_max must exceed t_min");
        assert!(self.nbt >= 1, "nbt must be positive");
        assert!(self.choice_k >= 0.0 && self.choice_r >= 0.0);
        assert!((0.0..1.0).contains(&self.law_rate), "law_rate in [0,1)");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        FusionFissionConfig::standard(32).validate();
        FusionFissionConfig::fast(2).validate();
    }

    #[test]
    #[should_panic(expected = "t_max must exceed")]
    fn bad_temperatures_panic() {
        let cfg = FusionFissionConfig {
            t_max: 0.0,
            t_min: 0.5,
            ..FusionFissionConfig::standard(4)
        };
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn zero_k_panics() {
        FusionFissionConfig::standard(0).validate();
    }
}

//! Algorithm 1 (the fusion–fission loop) and Algorithm 2 (initialization).

use crate::choice::{alpha, choice_with};
use crate::config::FusionFissionConfig;
use crate::energy::scaled_energy;
use crate::laws::{LawTable, Reaction};
use crate::ops::{fission_split, fuse, nfusion, select_partner, weakest_nucleons};
use ff_graph::Graph;
use ff_metaheur::{AnytimeTrace, MetaheuristicResult};
use ff_partition::{CutState, Partition};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;
use std::time::Instant;

/// The fusion–fission runner.
pub struct FusionFission<'g> {
    g: &'g Graph,
    cfg: FusionFissionConfig,
    seed: u64,
    warm_start: Option<Partition>,
}

/// Result of a fusion–fission run.
#[derive(Clone, Debug)]
pub struct FusionFissionResult {
    /// Best partition observed with exactly the target k non-empty parts
    /// (compacted to dense ids).
    pub best: Partition,
    /// Objective value of [`FusionFissionResult::best`].
    pub best_value: f64,
    /// Lowest scaled energy seen across *all* part counts.
    pub best_energy: f64,
    /// Steps executed (initialization included).
    pub steps: u64,
    /// Best-at-target-k trace (feeds Figure 1).
    pub trace: AnytimeTrace,
    /// Best objective value seen at every visited part count — the data
    /// behind the paper's "returns good solutions from 27 to 38
    /// partitions" observation.
    pub best_value_per_k: BTreeMap<usize, f64>,
}

impl FusionFissionResult {
    /// Converts into the common metaheuristic result shape.
    pub fn into_metaheuristic_result(self) -> MetaheuristicResult {
        MetaheuristicResult {
            best: self.best,
            best_value: self.best_value,
            steps: self.steps,
            trace: self.trace,
        }
    }
}

/// Per-run mutable search state shared by both phases.
struct Search<'g> {
    st: CutState<'g>,
    laws: LawTable,
    rng: ChaCha8Rng,
    step: u64,
    started: Instant,
    trace: AnytimeTrace,
    best_at_k: Option<(f64, Partition)>,
    best_energy: f64,
    best_molecule: Partition,
    best_value_per_k: BTreeMap<usize, f64>,
}

impl<'g> FusionFission<'g> {
    /// Prepares a run on `g` with configuration `cfg` and RNG `seed`.
    pub fn new(g: &'g Graph, cfg: FusionFissionConfig, seed: u64) -> Self {
        FusionFission {
            g,
            cfg,
            seed,
            warm_start: None,
        }
    }

    /// Prepares a warm-started run: Algorithm 2's singleton agglomeration
    /// is skipped and the core loop starts from `initial` (e.g. a
    /// multilevel partition). This is the hybridization Bichot's follow-up
    /// work explores; the paper's own protocol is [`FusionFission::new`].
    ///
    /// # Panics
    ///
    /// Panics if `initial` is for a different vertex count.
    pub fn with_initial(
        g: &'g Graph,
        cfg: FusionFissionConfig,
        seed: u64,
        initial: Partition,
    ) -> Self {
        assert_eq!(
            initial.num_vertices(),
            g.num_vertices(),
            "initial partition size mismatch"
        );
        FusionFission {
            g,
            cfg,
            seed,
            warm_start: Some(initial),
        }
    }

    fn energy_of(&self, st: &CutState) -> f64 {
        scaled_energy(
            st.objective(self.cfg.objective),
            self.cfg.objective,
            st.partition().num_nonempty_parts(),
            self.cfg.k,
            self.cfg.use_energy_scaling,
        )
    }

    fn live_atoms(st: &CutState) -> Vec<u32> {
        (0..st.partition().num_parts() as u32)
            .filter(|&p| st.partition().part_size(p) > 0)
            .collect()
    }

    /// Records the current molecule into best-trackers and the trace.
    fn observe(&self, s: &mut Search) {
        let live = s.st.partition().num_nonempty_parts();
        let value = s.st.objective(self.cfg.objective);
        let entry = s.best_value_per_k.entry(live).or_insert(f64::INFINITY);
        if value < *entry {
            *entry = value;
        }
        let energy = scaled_energy(
            value,
            self.cfg.objective,
            live,
            self.cfg.k,
            self.cfg.use_energy_scaling,
        );
        if energy < s.best_energy {
            s.best_energy = energy;
            s.best_molecule = s.st.partition().clone();
        }
        if live == self.cfg.k && s.best_at_k.as_ref().is_none_or(|(bv, _)| value < *bv) {
            s.best_at_k = Some((value, s.st.partition().clone()));
            s.trace.record(s.started.elapsed(), value, s.step);
        }
    }

    /// One fusion of `atom`, with law-driven nucleon ejection.
    /// Returns `(law_size, chosen_ejection)` when a fusion happened.
    fn do_fusion(&self, s: &mut Search, atom: u32, t_norm: f64) -> Option<(usize, usize)> {
        let partner = select_partner(&s.st, atom, t_norm, self.cfg.size_bias, &mut s.rng)?;
        let merged = fuse(&mut s.st, atom, partner);
        let size = s.st.partition().part_size(merged);
        let law = s.laws.law(Reaction::Fusion, size);
        let eject = law.sample(&mut s.rng, size.saturating_sub(1));
        for v in weakest_nucleons(&s.st, merged, eject) {
            nfusion(&mut s.st, v);
        }
        Some((size, eject))
    }

    /// One fission of `atom` (§4.2), optionally with secondary fissions at
    /// high temperature. Returns `(law_size, chosen_ejection)`.
    fn do_fission(
        &self,
        s: &mut Search,
        atom: u32,
        t_norm: f64,
        allow_secondary: bool,
    ) -> Option<(usize, usize)> {
        let size_before = s.st.partition().part_size(atom);
        let new_half = fission_split(&mut s.st, atom, self.cfg.splitter, &mut s.rng)?;
        let law = s.laws.law(Reaction::Fission, size_before);
        // Ejection from the larger half, which has the loosest nucleons.
        let bigger = if s.st.partition().part_size(atom) >= s.st.partition().part_size(new_half) {
            atom
        } else {
            new_half
        };
        let avail = s.st.partition().part_size(bigger).saturating_sub(1);
        let eject = law.sample(&mut s.rng, avail);
        for v in weakest_nucleons(&s.st, bigger, eject) {
            let high_energy =
                allow_secondary && s.rng.gen::<f64>() < self.cfg.secondary_fission * t_norm;
            if high_energy {
                // §4.2: the hot nucleon triggers a simple fission (no
                // ejection) of an atom connected to it, then settles.
                let conn = s.st.connection_weights(v);
                let mut targets: Vec<(u32, f64)> = conn.into_iter().collect();
                targets.sort_unstable_by_key(|&(p, _)| p);
                if let Some(&(target, _)) =
                    targets.iter().max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                {
                    let _ = fission_split(&mut s.st, target, self.cfg.splitter, &mut s.rng);
                }
            }
            nfusion(&mut s.st, v);
        }
        Some((size_before, eject))
    }

    /// Compacts away accumulated empty part slots when they dominate.
    fn maybe_compact(&self, s: &mut Search<'g>) {
        let total = s.st.partition().num_parts();
        let live = s.st.partition().num_nonempty_parts();
        if total > 2 * live + 64 {
            let g = self.g;
            let old = std::mem::replace(&mut s.st, CutState::new(g, Partition::singletons(g)));
            let mut p = old.into_partition();
            p.compact();
            s.st = CutState::new(g, p);
        }
    }

    /// Runs initialization (Algorithm 2) followed by the core loop
    /// (Algorithm 1).
    pub fn run(&self) -> FusionFissionResult {
        let cfg = &self.cfg;
        cfg.validate();
        let g = self.g;
        let n = g.num_vertices();
        assert!(n >= 1, "graph must have vertices");
        assert!(cfg.k <= n, "more parts than vertices");
        let ideal = n as f64 / cfg.k as f64;

        let init_part = match &self.warm_start {
            Some(p) => p.clone(),
            None => Partition::singletons(g),
        };
        let skip_agglomeration = self.warm_start.is_some();
        let mut s = Search {
            st: CutState::new(g, init_part.clone()),
            laws: LawTable::new(n),
            rng: ChaCha8Rng::seed_from_u64(self.seed),
            step: 0,
            started: Instant::now(),
            trace: AnytimeTrace::new(),
            best_at_k: None,
            best_energy: f64::INFINITY,
            best_molecule: init_part,
            best_value_per_k: BTreeMap::new(),
        };
        self.observe(&mut s);

        // --- Phase 1: initialization (Algorithm 2) -----------------------
        // No temperature, no secondary fissions, fusion-dominated choice:
        // the sharpest α makes every undersized atom fuse. Skipped entirely
        // for warm-started runs.
        let sharp = alpha(
            cfg.t_min,
            cfg.t_max,
            cfg.t_min,
            cfg.choice_k,
            cfg.choice_r,
            ideal,
        );
        while !skip_agglomeration
            && s.st.partition().num_nonempty_parts() > cfg.k
            && !cfg.stop.should_stop(s.step, s.started)
        {
            s.step += 1;
            let atoms = Self::live_atoms(&s.st);
            let atom = atoms[s.rng.gen_range(0..atoms.len())];
            let x = s.st.partition().part_size(atom) as f64;
            let e_before = self.energy_of(&s.st);
            let outcome = if s.rng.gen::<f64>() < choice_with(cfg.choice_fn, x, ideal, sharp) {
                self.do_fission(&mut s, atom, 0.0, false)
                    .map(|o| (Reaction::Fission, o))
            } else {
                self.do_fusion(&mut s, atom, 0.25)
                    .map(|o| (Reaction::Fusion, o))
            };
            if let Some((reaction, (law_size, eject))) = outcome {
                let improved = self.energy_of(&s.st) < e_before;
                if cfg.learn_laws {
                    s.laws
                        .law_mut(reaction, law_size)
                        .update(eject, improved, cfg.law_rate);
                }
            }
            self.observe(&mut s);
            self.maybe_compact(&mut s);
        }

        // --- Phase 2: the core loop (Algorithm 1) ------------------------
        let mut t = cfg.t_max;
        let dt = (cfg.t_max - cfg.t_min) / cfg.nbt as f64;
        while !cfg.stop.should_stop(s.step, s.started) {
            s.step += 1;
            let t_norm = (t - cfg.t_min) / (cfg.t_max - cfg.t_min);
            let atoms = Self::live_atoms(&s.st);
            let atom = atoms[s.rng.gen_range(0..atoms.len())];
            let x = s.st.partition().part_size(atom) as f64;
            let a = alpha(t, cfg.t_max, cfg.t_min, cfg.choice_k, cfg.choice_r, ideal);
            let e_before = self.energy_of(&s.st);

            let wants_fission = s.rng.gen::<f64>() < choice_with(cfg.choice_fn, x, ideal, a);
            let outcome = if wants_fission {
                self.do_fission(&mut s, atom, t_norm, true)
                    .map(|o| (Reaction::Fission, o))
                    // Unsplittable singleton: fuse it away instead.
                    .or_else(|| {
                        self.do_fusion(&mut s, atom, t_norm)
                            .map(|o| (Reaction::Fusion, o))
                    })
            } else {
                self.do_fusion(&mut s, atom, t_norm)
                    .map(|o| (Reaction::Fusion, o))
                    .or_else(|| {
                        self.do_fission(&mut s, atom, t_norm, true)
                            .map(|o| (Reaction::Fission, o))
                    })
            };
            if let Some((reaction, (law_size, eject))) = outcome {
                let improved = self.energy_of(&s.st) < e_before;
                if cfg.learn_laws {
                    s.laws
                        .law_mut(reaction, law_size)
                        .update(eject, improved, cfg.law_rate);
                }
            }
            self.observe(&mut s);
            self.maybe_compact(&mut s);

            // Cool; reheat-restart from the best molecule when frozen.
            t -= dt;
            if t <= cfg.t_min {
                t = cfg.t_max;
                s.st = CutState::new(g, s.best_molecule.clone());
            }
        }

        // --- Harvest ------------------------------------------------------
        let (best_value, mut best) = match s.best_at_k {
            Some((v, p)) => (v, p),
            None => {
                // Target k never visited (tiny budgets): fall back to the
                // best molecule regardless of its part count.
                let v = self.cfg.objective.evaluate(g, &s.best_molecule);
                (v, s.best_molecule.clone())
            }
        };
        best.compact();
        FusionFissionResult {
            best,
            best_value,
            best_energy: s.best_energy,
            steps: s.step,
            trace: s.trace,
            best_value_per_k: s.best_value_per_k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FissionSplitter;
    use ff_graph::generators::{planted_partition, random_geometric, two_cliques_bridge};
    use ff_metaheur::StopCondition;
    use ff_partition::Objective;

    #[test]
    fn finds_two_clique_bisection() {
        let g = two_cliques_bridge(8, 2.0, 0.1);
        let res = FusionFission::new(&g, FusionFissionConfig::fast(2), 42).run();
        assert_eq!(res.best.num_nonempty_parts(), 2);
        // Optimal bisection cuts only the bridge: each K8 side has
        // W(A) = 2 × 28 edges × 2.0 = 112, so Mcut = 2 × 0.1/112.
        assert!(
            (res.best_value - 2.0 * (0.1 / 112.0)).abs() < 1e-9,
            "Mcut = {}",
            res.best_value
        );
    }

    #[test]
    fn partition_stays_valid() {
        let g = random_geometric(60, 0.25, 3);
        let res = FusionFission::new(&g, FusionFissionConfig::fast(4), 7).run();
        assert!(res.best.validate(&g));
        assert_eq!(res.best.num_nonempty_parts(), 4);
    }

    #[test]
    fn recovers_planted_communities_under_cut() {
        let g = planted_partition(4, 10, 0.85, 0.03, 5);
        let cfg = FusionFissionConfig {
            objective: Objective::Cut,
            stop: StopCondition::steps(3_000),
            ..FusionFissionConfig::fast(4)
        };
        let res = FusionFission::new(&g, cfg, 11).run();
        assert!(
            res.best_value < 0.15 * g.total_edge_weight(),
            "cut {} too large",
            res.best_value
        );
    }

    #[test]
    fn roams_neighboring_part_counts() {
        let g = random_geometric(80, 0.22, 9);
        let res = FusionFission::new(&g, FusionFissionConfig::fast(6), 3).run();
        // The search must have visited the target and at least one
        // neighboring k (that is its defining feature).
        assert!(res.best_value_per_k.contains_key(&6));
        assert!(
            res.best_value_per_k.len() >= 3,
            "visited only {:?}",
            res.best_value_per_k.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn trace_monotone() {
        let g = random_geometric(50, 0.3, 2);
        let res = FusionFission::new(&g, FusionFissionConfig::fast(3), 8).run();
        let pts = res.trace.points();
        assert!(!pts.is_empty());
        for w in pts.windows(2) {
            assert!(w[1].value <= w[0].value + 1e-12);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let g = random_geometric(40, 0.3, 6);
        let run = |seed| {
            FusionFission::new(&g, FusionFissionConfig::fast(3), seed)
                .run()
                .best_value
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn ablation_variants_run() {
        let g = random_geometric(40, 0.3, 12);
        for (scaling, learn, splitter) in [
            (false, true, FissionSplitter::Percolation),
            (true, false, FissionSplitter::Percolation),
            (true, true, FissionSplitter::RandomHalf),
        ] {
            let cfg = FusionFissionConfig {
                use_energy_scaling: scaling,
                learn_laws: learn,
                splitter,
                ..FusionFissionConfig::fast(3)
            };
            let res = FusionFission::new(&g, cfg, 4).run();
            assert!(res.best.validate(&g));
            assert!(res.best_value.is_finite());
        }
    }

    #[test]
    fn k_equals_one() {
        // Deterministically connected graph: fusion only merges atoms that
        // exchange flow, so a disconnected instance can never collapse to
        // a single part.
        let g = ff_graph::generators::grid2d(4, 5);
        let res = FusionFission::new(&g, FusionFissionConfig::fast(1), 2).run();
        assert_eq!(res.best.num_nonempty_parts(), 1);
        assert_eq!(res.best_value, 0.0);
    }

    #[test]
    fn respects_step_budget() {
        let g = random_geometric(30, 0.35, 4);
        let cfg = FusionFissionConfig {
            stop: StopCondition::steps(100),
            ..FusionFissionConfig::fast(3)
        };
        let res = FusionFission::new(&g, cfg, 3).run();
        assert!(res.steps <= 100);
    }

    #[test]
    fn warm_start_skips_agglomeration_and_improves() {
        let g = random_geometric(60, 0.25, 15);
        let init = Partition::random(&g, 4, 9);
        let init_val = Objective::MCut.evaluate(&g, &init);
        let res =
            FusionFission::with_initial(&g, FusionFissionConfig::fast(4), 7, init.clone()).run();
        assert!(res.best.validate(&g));
        assert_eq!(res.best.num_nonempty_parts(), 4);
        assert!(
            res.best_value <= init_val + 1e-9,
            "warm start worsened: {init_val} → {}",
            res.best_value
        );
        // A warm-started run must not visit the singleton-count regime.
        assert!(
            res.best_value_per_k.keys().all(|&k| k <= 4 + 10),
            "visited {:?}",
            res.best_value_per_k.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn warm_start_wrong_size_panics() {
        let g = random_geometric(20, 0.4, 1);
        let h = random_geometric(10, 0.4, 1);
        let p = Partition::random(&h, 2, 1);
        FusionFission::with_initial(&g, FusionFissionConfig::fast(2), 1, p);
    }
}

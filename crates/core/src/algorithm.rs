//! Algorithm 1 (the fusion–fission loop) and Algorithm 2 (initialization).
//!
//! Two ways to drive the search:
//!
//! * [`FusionFission::run`] — one-shot: runs to the stop condition and
//!   harvests, exactly the paper's protocol;
//! * [`FusionFission::start`] → [`FusionFissionRun`] — a resumable handle
//!   that advances in bounded step chunks ([`FusionFissionRun::advance`])
//!   and accepts foreign best molecules between chunks
//!   ([`FusionFissionRun::inject`]). This is the seam the `ff-engine`
//!   island ensemble drives: both paths consume the RNG stream
//!   identically, so a chunked run is bit-equal to a one-shot run.

use crate::choice::{alpha, choice_with};
use crate::config::FusionFissionConfig;
use crate::energy::scaled_energy;
use crate::laws::{LawTable, Reaction};
use crate::ops::{fission_split, fuse, nfusion, select_partner, weakest_nucleons};
use ff_graph::Graph;
use ff_metaheur::{AnytimeTrace, CancelToken, MetaheuristicResult};
use ff_partition::{CutState, Partition};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;
use std::time::Instant;

/// The fusion–fission runner.
pub struct FusionFission<'g> {
    g: &'g Graph,
    cfg: FusionFissionConfig,
    seed: u64,
    warm_start: Option<Partition>,
}

/// Result of a fusion–fission run.
#[derive(Clone, Debug)]
pub struct FusionFissionResult {
    /// Best partition observed with exactly the target k non-empty parts
    /// (compacted to dense ids).
    pub best: Partition,
    /// Objective value of [`FusionFissionResult::best`].
    pub best_value: f64,
    /// Lowest scaled energy seen across *all* part counts.
    pub best_energy: f64,
    /// Steps executed (initialization included).
    pub steps: u64,
    /// Best-at-target-k trace (feeds Figure 1).
    pub trace: AnytimeTrace,
    /// Best objective value seen at every visited part count — the data
    /// behind the paper's "returns good solutions from 27 to 38
    /// partitions" observation.
    pub best_value_per_k: BTreeMap<usize, f64>,
}

impl FusionFissionResult {
    /// Converts into the common metaheuristic result shape.
    pub fn into_metaheuristic_result(self) -> MetaheuristicResult {
        MetaheuristicResult {
            best: self.best,
            best_value: self.best_value,
            steps: self.steps,
            trace: self.trace,
        }
    }
}

/// Per-run mutable search state shared by both phases.
struct Search<'g> {
    st: CutState<'g>,
    laws: LawTable,
    rng: ChaCha8Rng,
    step: u64,
    started: Instant,
    trace: AnytimeTrace,
    best_at_k: Option<(f64, Partition)>,
    best_energy: f64,
    best_molecule: Partition,
    best_value_per_k: BTreeMap<usize, f64>,
    /// Scratch buffer for the live-atom scan; reused every step so the
    /// hot loop performs no per-step allocation.
    atoms_scratch: Vec<u32>,
}

impl<'g> FusionFission<'g> {
    /// Prepares a run on `g` with configuration `cfg` and RNG `seed`.
    pub fn new(g: &'g Graph, cfg: FusionFissionConfig, seed: u64) -> Self {
        FusionFission {
            g,
            cfg,
            seed,
            warm_start: None,
        }
    }

    /// Prepares a warm-started run: Algorithm 2's singleton agglomeration
    /// is skipped and the core loop starts from `initial` (e.g. a
    /// multilevel partition). This is the hybridization Bichot's follow-up
    /// work explores; the paper's own protocol is [`FusionFission::new`].
    ///
    /// # Panics
    ///
    /// Panics if `initial` is for a different vertex count.
    pub fn with_initial(
        g: &'g Graph,
        cfg: FusionFissionConfig,
        seed: u64,
        initial: Partition,
    ) -> Self {
        assert_eq!(
            initial.num_vertices(),
            g.num_vertices(),
            "initial partition size mismatch"
        );
        FusionFission {
            g,
            cfg,
            seed,
            warm_start: Some(initial),
        }
    }

    /// Runs initialization (Algorithm 2) followed by the core loop
    /// (Algorithm 1) to the stop condition, then harvests.
    pub fn run(&self) -> FusionFissionResult {
        self.start().run_to_completion()
    }

    /// Builds the live, resumable search state. Drive it with
    /// [`FusionFissionRun::advance`] (or [`FusionFissionRun::run_to_completion`]);
    /// a chunked drive consumes the RNG stream exactly like [`FusionFission::run`].
    pub fn start(&self) -> FusionFissionRun<'g> {
        let cfg = self.cfg;
        if let Err(e) = cfg.try_validate() {
            panic!("{e}");
        }
        let g = self.g;
        let n = g.num_vertices();
        assert!(n >= 1, "graph must have vertices");
        assert!(cfg.k <= n, "more parts than vertices");
        let ideal = n as f64 / cfg.k as f64;

        let init_part = match &self.warm_start {
            Some(p) => p.clone(),
            None => Partition::singletons(g),
        };
        let skip_agglomeration = self.warm_start.is_some();
        let s = Search {
            st: CutState::new(g, init_part.clone()),
            laws: LawTable::new(n),
            rng: ChaCha8Rng::seed_from_u64(self.seed),
            step: 0,
            started: Instant::now(),
            trace: AnytimeTrace::with_tag(cfg.objective),
            best_at_k: None,
            best_energy: f64::INFINITY,
            best_molecule: init_part,
            best_value_per_k: BTreeMap::new(),
            atoms_scratch: Vec::new(),
        };
        // Phase 1 uses no temperature, no secondary fissions, and the
        // sharpest (frozen) α, so every undersized atom fuses.
        let sharp = alpha(
            cfg.t_min,
            cfg.t_max,
            cfg.t_min,
            cfg.choice_k,
            cfg.choice_r,
            ideal,
        );
        let dt = (cfg.t_max - cfg.t_min) / cfg.nbt as f64;
        let mut run = FusionFissionRun {
            g,
            cfg,
            s,
            ideal,
            sharp,
            dt,
            t: cfg.t_max,
            agglomerating: !skip_agglomeration,
            cancel: None,
        };
        run.observe();
        run
    }
}

/// A live fusion–fission search that can be advanced in bounded chunks.
///
/// Produced by [`FusionFission::start`]. Between chunks the owner may
/// [`inject`](FusionFissionRun::inject) a foreign molecule — the hook the
/// `ff-engine` island ensemble uses for KaFFPaE-style best-molecule
/// migration — and finally [`harvest`](FusionFissionRun::harvest) the
/// result. The search is a pure function of (graph, config, seed, injected
/// molecules): wall-clock only enters through time-based stop conditions.
pub struct FusionFissionRun<'g> {
    g: &'g Graph,
    cfg: FusionFissionConfig,
    s: Search<'g>,
    ideal: f64,
    sharp: f64,
    dt: f64,
    t: f64,
    agglomerating: bool,
    cancel: Option<CancelToken>,
}

impl<'g> FusionFissionRun<'g> {
    fn energy_of_current(&self) -> f64 {
        scaled_energy(
            self.s.st.objective(self.cfg.objective),
            self.cfg.objective,
            self.s.st.partition().num_nonempty_parts(),
            self.cfg.k,
            self.cfg.use_energy_scaling,
        )
    }

    /// Picks a uniformly random live (non-empty) atom, reusing the
    /// per-run scratch buffer — the step loop's former top allocation.
    fn pick_live_atom(&mut self) -> u32 {
        let Search {
            st,
            rng,
            atoms_scratch,
            ..
        } = &mut self.s;
        atoms_scratch.clear();
        let part = st.partition();
        atoms_scratch.extend((0..part.num_parts() as u32).filter(|&p| part.part_size(p) > 0));
        atoms_scratch[rng.gen_range(0..atoms_scratch.len())]
    }

    /// Records the current molecule into best-trackers and the trace.
    fn observe(&mut self) {
        let s = &mut self.s;
        let live = s.st.partition().num_nonempty_parts();
        let value = s.st.objective(self.cfg.objective);
        let entry = s.best_value_per_k.entry(live).or_insert(f64::INFINITY);
        if value < *entry {
            *entry = value;
        }
        let energy = scaled_energy(
            value,
            self.cfg.objective,
            live,
            self.cfg.k,
            self.cfg.use_energy_scaling,
        );
        if energy < s.best_energy {
            s.best_energy = energy;
            s.best_molecule = s.st.partition().clone();
        }
        if live == self.cfg.k && s.best_at_k.as_ref().is_none_or(|(bv, _)| value < *bv) {
            s.best_at_k = Some((value, s.st.partition().clone()));
            s.trace.record(s.started.elapsed(), value, s.step);
        }
    }

    /// One fusion of `atom`, with law-driven nucleon ejection.
    /// Returns `(law_size, chosen_ejection)` when a fusion happened.
    fn do_fusion(&mut self, atom: u32, t_norm: f64) -> Option<(usize, usize)> {
        let s = &mut self.s;
        let partner = select_partner(&s.st, atom, t_norm, self.cfg.size_bias, &mut s.rng)?;
        let merged = fuse(&mut s.st, atom, partner);
        let size = s.st.partition().part_size(merged);
        let law = s.laws.law(Reaction::Fusion, size);
        let eject = law.sample(&mut s.rng, size.saturating_sub(1));
        for v in weakest_nucleons(&s.st, merged, eject) {
            nfusion(&mut s.st, v);
        }
        Some((size, eject))
    }

    /// One fission of `atom` (§4.2), optionally with secondary fissions at
    /// high temperature. Returns `(law_size, chosen_ejection)`.
    fn do_fission(
        &mut self,
        atom: u32,
        t_norm: f64,
        allow_secondary: bool,
    ) -> Option<(usize, usize)> {
        let s = &mut self.s;
        let size_before = s.st.partition().part_size(atom);
        let new_half = fission_split(&mut s.st, atom, self.cfg.splitter, &mut s.rng)?;
        let law = s.laws.law(Reaction::Fission, size_before);
        // Ejection from the larger half, which has the loosest nucleons.
        let bigger = if s.st.partition().part_size(atom) >= s.st.partition().part_size(new_half) {
            atom
        } else {
            new_half
        };
        let avail = s.st.partition().part_size(bigger).saturating_sub(1);
        let eject = law.sample(&mut s.rng, avail);
        for v in weakest_nucleons(&s.st, bigger, eject) {
            let high_energy =
                allow_secondary && s.rng.gen::<f64>() < self.cfg.secondary_fission * t_norm;
            if high_energy {
                // §4.2: the hot nucleon triggers a simple fission (no
                // ejection) of an atom connected to it, then settles.
                let targets = s.st.connection_weights(v); // sorted by part id
                if let Some(&(target, _)) =
                    targets.iter().max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                {
                    let _ = fission_split(&mut s.st, target, self.cfg.splitter, &mut s.rng);
                }
            }
            nfusion(&mut s.st, v);
        }
        Some((size_before, eject))
    }

    /// Compacts away accumulated empty part slots when they dominate.
    fn maybe_compact(&mut self) {
        let s = &mut self.s;
        let total = s.st.partition().num_parts();
        let live = s.st.partition().num_nonempty_parts();
        if total > 2 * live + 64 {
            let g = self.g;
            let old = std::mem::replace(&mut s.st, CutState::new(g, Partition::singletons(g)));
            let mut p = old.into_partition();
            p.compact();
            s.st = CutState::new(g, p);
        }
    }

    /// Reinforces or weakens the law a reaction used, based on whether the
    /// molecule's scaled energy improved.
    fn learn(&mut self, outcome: Option<(Reaction, (usize, usize))>, e_before: f64) {
        if let Some((reaction, (law_size, eject))) = outcome {
            let improved = self.energy_of_current() < e_before;
            if self.cfg.learn_laws {
                self.s
                    .laws
                    .law_mut(reaction, law_size)
                    .update(eject, improved, self.cfg.law_rate);
            }
        }
    }

    /// One step of Algorithm 2 (fusion-dominated agglomeration).
    fn init_step(&mut self) {
        let cfg = self.cfg;
        self.s.step += 1;
        let atom = self.pick_live_atom();
        let x = self.s.st.partition().part_size(atom) as f64;
        let e_before = self.energy_of_current();
        let wants_fission =
            self.s.rng.gen::<f64>() < choice_with(cfg.choice_fn, x, self.ideal, self.sharp);
        let outcome = if wants_fission {
            self.do_fission(atom, 0.0, false)
                .map(|o| (Reaction::Fission, o))
        } else {
            self.do_fusion(atom, 0.25).map(|o| (Reaction::Fusion, o))
        };
        self.learn(outcome, e_before);
        self.observe();
        self.maybe_compact();
    }

    /// One step of Algorithm 1 (the temperature-driven core loop),
    /// including cooling and the freeze-reheat restart.
    fn core_step(&mut self) {
        let cfg = self.cfg;
        self.s.step += 1;
        let t_norm = (self.t - cfg.t_min) / (cfg.t_max - cfg.t_min);
        let atom = self.pick_live_atom();
        let x = self.s.st.partition().part_size(atom) as f64;
        let a = alpha(
            self.t,
            cfg.t_max,
            cfg.t_min,
            cfg.choice_k,
            cfg.choice_r,
            self.ideal,
        );
        let e_before = self.energy_of_current();

        let wants_fission = self.s.rng.gen::<f64>() < choice_with(cfg.choice_fn, x, self.ideal, a);
        let outcome = if wants_fission {
            self.do_fission(atom, t_norm, true)
                .map(|o| (Reaction::Fission, o))
                // Unsplittable singleton: fuse it away instead.
                .or_else(|| self.do_fusion(atom, t_norm).map(|o| (Reaction::Fusion, o)))
        } else {
            self.do_fusion(atom, t_norm)
                .map(|o| (Reaction::Fusion, o))
                .or_else(|| {
                    self.do_fission(atom, t_norm, true)
                        .map(|o| (Reaction::Fission, o))
                })
        };
        self.learn(outcome, e_before);
        self.observe();
        self.maybe_compact();

        // Cool; reheat-restart from the best molecule when frozen.
        self.t -= self.dt;
        if self.t <= cfg.t_min {
            self.t = cfg.t_max;
            self.s.st = CutState::new(self.g, self.s.best_molecule.clone());
        }
    }

    /// Binds a cooperative cancellation token: once `token.cancel()` is
    /// called (from any clone, any thread), the next [`step_once`]
    /// (equivalently the current [`advance`] chunk) stops and the run
    /// behaves as finished, with every best-so-far accessor and
    /// [`harvest`] still valid. This is the per-job cancel hook the
    /// serving layer plumbs through; it composes with — never replaces —
    /// the configured [`ff_metaheur::StopCondition`].
    ///
    /// [`step_once`]: FusionFissionRun::step_once
    /// [`advance`]: FusionFissionRun::advance
    /// [`harvest`]: FusionFissionRun::harvest
    pub fn bind_cancel(&mut self, token: CancelToken) {
        self.cancel = Some(token);
    }

    /// Whether a bound [`CancelToken`] has been triggered.
    pub fn cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(|c| c.is_cancelled())
    }

    /// Executes one search step. Returns `false` (doing nothing) once the
    /// stop condition is met or a bound [`CancelToken`] fires.
    pub fn step_once(&mut self) -> bool {
        if self.cancelled() || self.cfg.stop.should_stop(self.s.step, self.s.started) {
            return false;
        }
        if self.agglomerating {
            if self.s.st.partition().num_nonempty_parts() > self.cfg.k {
                self.init_step();
                return true;
            }
            self.agglomerating = false;
        }
        self.core_step();
        true
    }

    /// Executes up to `max_steps` steps. Returns `true` while the stop
    /// condition has not been reached (i.e. there is more work to do).
    pub fn advance(&mut self, max_steps: u64) -> bool {
        for _ in 0..max_steps {
            if !self.step_once() {
                return false;
            }
        }
        !self.finished()
    }

    /// Whether the stop condition has been reached or the run cancelled.
    pub fn finished(&self) -> bool {
        self.cancelled() || self.cfg.stop.should_stop(self.s.step, self.s.started)
    }

    /// Steps executed so far (initialization included).
    pub fn steps(&self) -> u64 {
        self.s.step
    }

    /// Lowest scaled energy seen so far, across all part counts.
    pub fn best_energy(&self) -> f64 {
        self.s.best_energy
    }

    /// The molecule holding [`FusionFissionRun::best_energy`] — the
    /// reheat-restart point.
    pub fn best_molecule(&self) -> &Partition {
        &self.s.best_molecule
    }

    /// Best `(value, partition)` seen with exactly the target k parts.
    pub fn best_at_target(&self) -> Option<(f64, &Partition)> {
        self.s.best_at_k.as_ref().map(|(v, p)| (*v, p))
    }

    /// The live best-at-target-k trace. Combined with
    /// [`ff_metaheur::AnytimeTrace::points_since`] this is the streaming
    /// tap: read between [`advance`](FusionFissionRun::advance) chunks to
    /// observe each improvement exactly once, as it happens.
    pub fn trace(&self) -> &AnytimeTrace {
        &self.s.trace
    }

    /// The configuration this run was started with.
    pub fn config(&self) -> &FusionFissionConfig {
        &self.cfg
    }

    /// Offers a foreign molecule (an island-migration candidate). It is
    /// adopted as the new best molecule — hence the next freeze-reheat
    /// restart point — iff its scaled energy strictly beats the current
    /// best. The in-flight walk is not interrupted, mirroring the paper's
    /// reheat-from-best rule. Returns whether the molecule was adopted.
    ///
    /// # Panics
    ///
    /// Panics if `molecule` is for a different vertex count.
    pub fn inject(&mut self, molecule: &Partition) -> bool {
        assert_eq!(
            molecule.num_vertices(),
            self.g.num_vertices(),
            "molecule size mismatch"
        );
        // An offered molecule is adopted by assignment only: rebuild it
        // vertex-ascending so the verdict, the cached part weights, and
        // the stored reheat point are all independent of the donor's
        // internal move history. This is what lets a migration cross a
        // process boundary (serialized as its assignment) and land
        // bit-identically to the in-process exchange.
        let molecule = Partition::from_assignment(
            self.g,
            molecule.assignment().to_vec(),
            molecule.num_parts(),
        );
        let value = self.cfg.objective.evaluate(self.g, &molecule);
        let energy = scaled_energy(
            value,
            self.cfg.objective,
            molecule.num_nonempty_parts(),
            self.cfg.k,
            self.cfg.use_energy_scaling,
        );
        if energy < self.s.best_energy {
            self.s.best_energy = energy;
            self.s.best_molecule = molecule;
            true
        } else {
            false
        }
    }

    /// KaFFPaE-style *combine* migration hook: crosses the foreign
    /// molecule with this island's current best via
    /// [`ops::overlap_combine`](crate::ops::overlap_combine) and offers
    /// both the child and the raw foreign molecule through
    /// [`inject`](FusionFissionRun::inject) (each adopted only if
    /// strictly better than the best held at the time). Deterministic —
    /// no RNG is consumed, so the island's own stream is untouched.
    /// Returns whether anything was adopted.
    ///
    /// # Panics
    ///
    /// Panics if `foreign` is for a different vertex count.
    pub fn inject_crossover(&mut self, foreign: &Partition) -> bool {
        assert_eq!(
            foreign.num_vertices(),
            self.g.num_vertices(),
            "molecule size mismatch"
        );
        let child = crate::ops::overlap_combine(self.g, &self.s.best_molecule, foreign, self.cfg.k);
        let adopted_child = self.inject(&child);
        let adopted_foreign = self.inject(foreign);
        adopted_child || adopted_foreign
    }

    /// Steps to the stop condition, then harvests.
    pub fn run_to_completion(mut self) -> FusionFissionResult {
        while self.step_once() {}
        self.harvest()
    }

    /// Consumes the run, producing the final result.
    pub fn harvest(self) -> FusionFissionResult {
        let s = self.s;
        let (best_value, mut best) = match s.best_at_k {
            Some((v, p)) => (v, p),
            None => {
                // Target k never visited (tiny budgets): fall back to the
                // best molecule regardless of its part count.
                let v = self.cfg.objective.evaluate(self.g, &s.best_molecule);
                (v, s.best_molecule.clone())
            }
        };
        best.compact();
        FusionFissionResult {
            best,
            best_value,
            best_energy: s.best_energy,
            steps: s.step,
            trace: s.trace,
            best_value_per_k: s.best_value_per_k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FissionSplitter;
    use ff_graph::generators::{planted_partition, random_geometric, two_cliques_bridge};
    use ff_metaheur::StopCondition;
    use ff_partition::Objective;

    #[test]
    fn finds_two_clique_bisection() {
        let g = two_cliques_bridge(8, 2.0, 0.1);
        let res = FusionFission::new(&g, FusionFissionConfig::fast(2), 42).run();
        assert_eq!(res.best.num_nonempty_parts(), 2);
        // Optimal bisection cuts only the bridge: each K8 side has
        // W(A) = 2 × 28 edges × 2.0 = 112, so Mcut = 2 × 0.1/112.
        assert!(
            (res.best_value - 2.0 * (0.1 / 112.0)).abs() < 1e-9,
            "Mcut = {}",
            res.best_value
        );
    }

    #[test]
    fn partition_stays_valid() {
        let g = random_geometric(60, 0.25, 3);
        let res = FusionFission::new(&g, FusionFissionConfig::fast(4), 7).run();
        assert!(res.best.validate(&g));
        assert_eq!(res.best.num_nonempty_parts(), 4);
    }

    #[test]
    fn recovers_planted_communities_under_cut() {
        let g = planted_partition(4, 10, 0.85, 0.03, 5);
        let cfg = FusionFissionConfig {
            objective: Objective::Cut,
            stop: StopCondition::steps(3_000),
            ..FusionFissionConfig::fast(4)
        };
        let res = FusionFission::new(&g, cfg, 11).run();
        assert!(
            res.best_value < 0.15 * g.total_edge_weight(),
            "cut {} too large",
            res.best_value
        );
    }

    #[test]
    fn roams_neighboring_part_counts() {
        let g = random_geometric(80, 0.22, 9);
        let res = FusionFission::new(&g, FusionFissionConfig::fast(6), 3).run();
        // The search must have visited the target and at least one
        // neighboring k (that is its defining feature).
        assert!(res.best_value_per_k.contains_key(&6));
        assert!(
            res.best_value_per_k.len() >= 3,
            "visited only {:?}",
            res.best_value_per_k.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn trace_monotone() {
        let g = random_geometric(50, 0.3, 2);
        let res = FusionFission::new(&g, FusionFissionConfig::fast(3), 8).run();
        let pts = res.trace.points();
        assert!(!pts.is_empty());
        for w in pts.windows(2) {
            assert!(w[1].value <= w[0].value + 1e-12);
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let g = random_geometric(40, 0.3, 6);
        let run = |seed| {
            FusionFission::new(&g, FusionFissionConfig::fast(3), seed)
                .run()
                .best_value
        };
        assert_eq!(run(5), run(5));
    }

    #[test]
    fn ablation_variants_run() {
        let g = random_geometric(40, 0.3, 12);
        for (scaling, learn, splitter) in [
            (false, true, FissionSplitter::Percolation),
            (true, false, FissionSplitter::Percolation),
            (true, true, FissionSplitter::RandomHalf),
        ] {
            let cfg = FusionFissionConfig {
                use_energy_scaling: scaling,
                learn_laws: learn,
                splitter,
                ..FusionFissionConfig::fast(3)
            };
            let res = FusionFission::new(&g, cfg, 4).run();
            assert!(res.best.validate(&g));
            assert!(res.best_value.is_finite());
        }
    }

    #[test]
    fn k_equals_one() {
        // Deterministically connected graph: fusion only merges atoms that
        // exchange flow, so a disconnected instance can never collapse to
        // a single part.
        let g = ff_graph::generators::grid2d(4, 5);
        let res = FusionFission::new(&g, FusionFissionConfig::fast(1), 2).run();
        assert_eq!(res.best.num_nonempty_parts(), 1);
        assert_eq!(res.best_value, 0.0);
    }

    #[test]
    fn respects_step_budget() {
        let g = random_geometric(30, 0.35, 4);
        let cfg = FusionFissionConfig {
            stop: StopCondition::steps(100),
            ..FusionFissionConfig::fast(3)
        };
        let res = FusionFission::new(&g, cfg, 3).run();
        assert!(res.steps <= 100);
    }

    #[test]
    fn warm_start_skips_agglomeration_and_improves() {
        let g = random_geometric(60, 0.25, 15);
        let init = Partition::random(&g, 4, 9);
        let init_val = Objective::MCut.evaluate(&g, &init);
        let res =
            FusionFission::with_initial(&g, FusionFissionConfig::fast(4), 7, init.clone()).run();
        assert!(res.best.validate(&g));
        assert_eq!(res.best.num_nonempty_parts(), 4);
        assert!(
            res.best_value <= init_val + 1e-9,
            "warm start worsened: {init_val} → {}",
            res.best_value
        );
        // A warm-started run must not visit the singleton-count regime.
        assert!(
            res.best_value_per_k.keys().all(|&k| k <= 4 + 10),
            "visited {:?}",
            res.best_value_per_k.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn chunked_advance_matches_one_shot() {
        let g = random_geometric(50, 0.25, 3);
        let cfg = FusionFissionConfig::fast(4);
        let oneshot = FusionFission::new(&g, cfg, 9).run();
        let mut run = FusionFission::new(&g, cfg, 9).start();
        while run.advance(97) {}
        assert!(run.finished());
        let chunked = run.harvest();
        assert_eq!(oneshot.best.assignment(), chunked.best.assignment());
        assert_eq!(oneshot.best_value, chunked.best_value);
        assert_eq!(oneshot.best_energy, chunked.best_energy);
        assert_eq!(oneshot.steps, chunked.steps);
        assert_eq!(oneshot.best_value_per_k, chunked.best_value_per_k);
    }

    #[test]
    fn inject_adopts_only_strictly_better_molecules() {
        let g = two_cliques_bridge(8, 2.0, 0.1);
        let mut run = FusionFission::new(&g, FusionFissionConfig::fast(2), 1).start();
        run.advance(2);
        // The optimal bisection (cut only the bridge) beats anything a
        // 2-step-old search holds (still mid-agglomeration, mostly
        // singleton atoms).
        let optimal = Partition::from_assignment(
            &g,
            (0..16).map(|v| u32::from(v >= 8)).collect::<Vec<_>>(),
            2,
        );
        assert!(run.inject(&optimal), "optimal molecule must be adopted");
        assert_eq!(run.best_molecule().assignment(), optimal.assignment());
        let adopted_energy = run.best_energy();
        // Re-offering the same molecule is not *strictly* better.
        assert!(!run.inject(&optimal));
        // A much worse molecule (all singletons) is rejected.
        assert!(!run.inject(&Partition::singletons(&g)));
        assert_eq!(run.best_energy(), adopted_energy);
        // The run keeps working and still harvests the target k.
        let res = run.run_to_completion();
        assert_eq!(res.best.num_nonempty_parts(), 2);
    }

    #[test]
    fn inject_crossover_adopts_improving_children_without_touching_rng() {
        let g = two_cliques_bridge(8, 2.0, 0.1);
        let cfg = FusionFissionConfig::fast(2);
        // Two runs, same seed: one receives a crossover offer mid-flight,
        // the other doesn't. The offer must not consume RNG, so both
        // walk identical step streams afterward.
        let mut with = FusionFission::new(&g, cfg, 3).start();
        let mut without = FusionFission::new(&g, cfg, 3).start();
        // Only a couple of steps in, the searches are still mid-
        // agglomeration, so the optimal bisection strictly beats them.
        with.advance(2);
        without.advance(2);
        let optimal = Partition::from_assignment(
            &g,
            (0..16).map(|v| u32::from(v >= 8)).collect::<Vec<_>>(),
            2,
        );
        assert!(with.inject_crossover(&optimal), "optimal offer adopted");
        assert_eq!(with.best_molecule().assignment(), optimal.assignment());
        // Re-offering is not strictly better.
        assert!(!with.inject_crossover(&optimal));
        while with.advance(64) {}
        while without.advance(64) {}
        assert_eq!(with.steps(), without.steps(), "no RNG consumed by offer");
        let res = with.harvest();
        assert_eq!(res.best.num_nonempty_parts(), 2);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn inject_crossover_wrong_size_panics() {
        let g = random_geometric(20, 0.4, 1);
        let h = random_geometric(10, 0.4, 1);
        let mut run = FusionFission::new(&g, FusionFissionConfig::fast(2), 1).start();
        run.inject_crossover(&Partition::random(&h, 2, 1));
    }

    #[test]
    fn trace_is_tagged_with_the_objective() {
        let g = random_geometric(40, 0.3, 2);
        let cfg = FusionFissionConfig {
            objective: Objective::Cut,
            ..FusionFissionConfig::fast(3)
        };
        let res = FusionFission::new(&g, cfg, 5).run();
        assert_eq!(res.trace.tag(), Some(Objective::Cut));
        assert!(res
            .trace
            .points()
            .iter()
            .all(|p| p.objective == Some(Objective::Cut)));
    }

    #[test]
    fn cancel_stops_promptly_and_keeps_best_so_far() {
        use ff_metaheur::CancelToken;
        let g = random_geometric(50, 0.25, 3);
        let cfg = FusionFissionConfig {
            stop: StopCondition::steps(u64::MAX),
            ..FusionFissionConfig::fast(4)
        };
        let mut run = FusionFission::new(&g, cfg, 9).start();
        let token = CancelToken::new();
        run.bind_cancel(token.clone());
        assert!(run.advance(5_000), "not cancelled yet");
        let steps_before = run.steps();
        let energy_before = run.best_energy();
        token.cancel();
        assert!(run.cancelled());
        assert!(run.finished());
        assert!(!run.step_once(), "cancelled run must not step");
        assert!(!run.advance(1_000));
        assert_eq!(run.steps(), steps_before, "no work after cancellation");
        // Best-so-far state survives and harvests cleanly.
        assert_eq!(run.best_energy(), energy_before);
        let res = run.harvest();
        assert!(res.best.validate(&g));
        assert!(res.best_value.is_finite());
        assert_eq!(res.steps, steps_before);
    }

    #[test]
    fn trace_tap_sees_every_improvement_exactly_once() {
        let g = random_geometric(50, 0.3, 2);
        let cfg = FusionFissionConfig::fast(3);
        let mut run = FusionFission::new(&g, cfg, 8).start();
        let mut cursor = 0usize;
        let mut streamed = Vec::new();
        loop {
            let more = run.advance(37);
            for p in run.trace().points_since(cursor) {
                streamed.push((p.step, p.value));
            }
            cursor = run.trace().len();
            if !more {
                break;
            }
        }
        let res = run.harvest();
        let all: Vec<(u64, f64)> = res
            .trace
            .points()
            .iter()
            .map(|p| (p.step, p.value))
            .collect();
        assert_eq!(streamed, all, "tap must equal the final trace");
        assert!(!streamed.is_empty());
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn inject_wrong_size_panics() {
        let g = random_geometric(20, 0.4, 1);
        let h = random_geometric(10, 0.4, 1);
        let mut run = FusionFission::new(&g, FusionFissionConfig::fast(2), 1).start();
        run.inject(&Partition::random(&h, 2, 1));
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn warm_start_wrong_size_panics() {
        let g = random_geometric(20, 0.4, 1);
        let h = random_geometric(10, 0.4, 1);
        let p = Partition::random(&h, 2, 1);
        FusionFission::with_initial(&g, FusionFissionConfig::fast(2), 1, p);
    }
}

//! Learned fusion/fission laws (§4.1).
//!
//! "In nature, fusion and fission obey to laws. Some fissions … leave
//! nucleons alone … fusion of two atoms can make a new atom and eject one
//! or more nucleons. The algorithm includes these laws, but with a memory
//! which updates laws."
//!
//! For every atom size there are **two laws** (one for fusion, one for
//! fission) — "the number of laws is twice the number of vertices". Each
//! law is a probability simplex over ejecting 0, 1, 2 or 3 nucleons
//! ("less if the sum of nucleons is lower"). After an operation, the law
//! entry that was used is reinforced when the move lowered the energy
//! (`+δ` to the chosen probability, `−δ/3` to the three others) and
//! weakened symmetrically when it raised it, with every probability kept
//! strictly inside (0, 1).

use rand::Rng;

/// Maximum nucleons a single reaction may eject.
pub const MAX_EJECT: usize = 3;

/// Which operator a law belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reaction {
    /// Merging two atoms.
    Fusion,
    /// Splitting one atom.
    Fission,
}

/// One law: a probability simplex over ejection counts `0..=MAX_EJECT`.
#[derive(Clone, Debug, PartialEq)]
pub struct Law {
    p: [f64; MAX_EJECT + 1],
}

impl Default for Law {
    fn default() -> Self {
        // Mildly biased toward ejecting nothing, as young laws should be.
        Law {
            p: [0.55, 0.25, 0.12, 0.08],
        }
    }
}

impl Law {
    /// Probabilities (always a simplex).
    pub fn probabilities(&self) -> &[f64; MAX_EJECT + 1] {
        &self.p
    }

    /// Samples an ejection count, capped at `available` nucleons.
    pub fn sample<R: Rng>(&self, rng: &mut R, available: usize) -> usize {
        let cap = available.min(MAX_EJECT);
        if cap == 0 {
            return 0;
        }
        let total: f64 = self.p[..=cap].iter().sum();
        let mut roll = rng.gen::<f64>() * total;
        for (e, &pe) in self.p[..=cap].iter().enumerate() {
            roll -= pe;
            if roll <= 0.0 {
                return e;
            }
        }
        cap
    }

    /// Reinforces (`improved = true`) or weakens the `chosen` entry by
    /// `rate`, redistributing `rate/3` across the other entries, clamping
    /// everything strictly inside (0, 1), then renormalizing.
    pub fn update(&mut self, chosen: usize, improved: bool, rate: f64) {
        assert!(chosen <= MAX_EJECT, "ejection count out of range");
        assert!((0.0..1.0).contains(&rate), "rate must be in [0,1)");
        let delta = if improved { rate } else { -rate };
        let spread = delta / MAX_EJECT as f64;
        for (e, pe) in self.p.iter_mut().enumerate() {
            if e == chosen {
                *pe += delta;
            } else {
                *pe -= spread;
            }
            *pe = pe.clamp(1e-3, 1.0 - 1e-3);
        }
        let total: f64 = self.p.iter().sum();
        for pe in &mut self.p {
            *pe /= total;
        }
    }

    /// Simplex sanity: entries in (0, 1), summing to 1.
    pub fn is_valid(&self) -> bool {
        let total: f64 = self.p.iter().sum();
        (total - 1.0).abs() < 1e-9 && self.p.iter().all(|&pe| pe > 0.0 && pe < 1.0)
    }
}

/// The full table: a fusion law and a fission law per atom size `1..=n`.
#[derive(Clone, Debug)]
pub struct LawTable {
    fusion: Vec<Law>,
    fission: Vec<Law>,
}

impl LawTable {
    /// Laws for atoms of size up to `n` (sizes clamp into range).
    pub fn new(n: usize) -> Self {
        let n = n.max(1);
        LawTable {
            fusion: vec![Law::default(); n],
            fission: vec![Law::default(); n],
        }
    }

    fn index(&self, size: usize) -> usize {
        size.clamp(1, self.fusion.len()) - 1
    }

    /// The law for a `reaction` on an atom of `size` nucleons.
    pub fn law(&self, reaction: Reaction, size: usize) -> &Law {
        let i = self.index(size);
        match reaction {
            Reaction::Fusion => &self.fusion[i],
            Reaction::Fission => &self.fission[i],
        }
    }

    /// Mutable access for updates.
    pub fn law_mut(&mut self, reaction: Reaction, size: usize) -> &mut Law {
        let i = self.index(size);
        match reaction {
            Reaction::Fusion => &mut self.fusion[i],
            Reaction::Fission => &mut self.fission[i],
        }
    }

    /// Number of laws in the table (2 × sizes).
    pub fn len(&self) -> usize {
        self.fusion.len() + self.fission.len()
    }

    /// Always false — tables are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn default_law_is_simplex() {
        assert!(Law::default().is_valid());
    }

    #[test]
    fn update_preserves_simplex() {
        let mut law = Law::default();
        for i in 0..200 {
            law.update(i % 4, i % 3 == 0, 0.05);
            assert!(law.is_valid(), "broken after update {i}: {law:?}");
        }
    }

    #[test]
    fn reinforcement_raises_choice() {
        let mut law = Law::default();
        let before = law.probabilities()[2];
        law.update(2, true, 0.05);
        assert!(law.probabilities()[2] > before);
    }

    #[test]
    fn weakening_lowers_choice() {
        let mut law = Law::default();
        let before = law.probabilities()[0];
        law.update(0, false, 0.05);
        assert!(law.probabilities()[0] < before);
    }

    #[test]
    fn sample_respects_cap() {
        let law = Law::default();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(law.sample(&mut rng, 0), 0);
            assert!(law.sample(&mut rng, 1) <= 1);
            assert!(law.sample(&mut rng, 2) <= 2);
            assert!(law.sample(&mut rng, 100) <= MAX_EJECT);
        }
    }

    #[test]
    fn sample_distribution_tracks_probabilities() {
        let mut law = Law::default();
        // Push hard toward "eject 3".
        for _ in 0..100 {
            law.update(3, true, 0.05);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let hits = (0..1000).filter(|_| law.sample(&mut rng, 10) == 3).count();
        assert!(hits > 700, "expected mostly 3s, got {hits}/1000");
    }

    #[test]
    fn table_indexing_clamps() {
        let mut t = LawTable::new(10);
        assert_eq!(t.len(), 20);
        // Out-of-range sizes clamp instead of panicking.
        t.law_mut(Reaction::Fusion, 0).update(1, true, 0.02);
        t.law_mut(Reaction::Fission, 999).update(2, false, 0.02);
        assert!(t.law(Reaction::Fusion, 0).is_valid());
        assert!(t.law(Reaction::Fission, 999).is_valid());
    }

    #[test]
    fn fusion_and_fission_laws_independent() {
        let mut t = LawTable::new(5);
        let before = t.law(Reaction::Fission, 3).clone();
        t.law_mut(Reaction::Fusion, 3).update(1, true, 0.05);
        assert_eq!(*t.law(Reaction::Fission, 3), before);
    }
}

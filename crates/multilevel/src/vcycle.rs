//! The multilevel V-cycle: coarsen → initial partition → refined
//! uncoarsening.

use crate::initial::{initial_partition, InitialMethod};
use crate::MultilevelConfig;
use ff_graph::{Graph, Hierarchy, VertexId};
use ff_partition::refine::fm::FmOptions;
use ff_partition::refine::greedy::GreedyOptions;
use ff_partition::refine::pairwise::{pairwise_refine_kway, PairwiseMethod, PairwiseOptions};
use ff_partition::{
    fm_refine_bisection, greedy_refine_kway, BalanceConstraint, CutState, Objective, Partition,
};

/// Multilevel bisection of `g` (the Table 1 `Multilevel (Bi)` building
/// block): coarsen, bisect the coarsest graph, uncoarsen with FM
/// refinement at every level.
pub fn multilevel_bisection(g: &Graph, cfg: &MultilevelConfig) -> Partition {
    assert!(g.num_vertices() >= 2, "bisection needs ≥ 2 vertices");
    let h = Hierarchy::build(g, cfg.coarsen_until.max(4), cfg.seed);
    let coarsest = h.coarsest(g);
    let mut part = initial_partition(coarsest, 2, cfg.initial, cfg.seed);

    // Uncoarsen with per-level FM refinement.
    for lvl in (0..h.num_levels()).rev() {
        let fine = h.graph_at(g, lvl);
        let fine_assignment = h.levels()[lvl].project(part.assignment());
        part = Partition::from_assignment(fine, fine_assignment, 2);
        let ideal = fine.total_vertex_weight() / 2.0;
        let mut st = CutState::new(fine, part);
        fm_refine_bisection(
            &mut st,
            0,
            1,
            &FmOptions {
                balance: BalanceConstraint {
                    lo: ideal * (1.0 - cfg.balance_eps),
                    hi: ideal * (1.0 + cfg.balance_eps),
                },
                ..Default::default()
            },
        );
        part = st.into_partition();
    }
    part
}

/// Recursive multilevel bisection to `k` parts (`Multilevel (Bi)`).
pub fn multilevel_recursive_bisection(g: &Graph, k: usize, cfg: &MultilevelConfig) -> Partition {
    let n = g.num_vertices();
    let mut assignment = vec![0u32; n];
    let members: Vec<VertexId> = g.vertices().collect();
    recurse_bisect(g, &members, k, 0, cfg, &mut assignment);
    Partition::from_assignment(g, assignment, k)
}

fn recurse_bisect(
    g: &Graph,
    members: &[VertexId],
    k: usize,
    base: u32,
    cfg: &MultilevelConfig,
    assignment: &mut [u32],
) {
    if k <= 1 || members.len() <= 1 {
        for &v in members {
            assignment[v as usize] = base;
        }
        return;
    }
    let sub = ff_graph::induced_subgraph(g, members);
    let k_left = k / 2;
    let k_right = k - k_left;

    let side: Vec<u32> = if sub.graph.num_vertices() >= 2 && sub.graph.num_edges() > 0 {
        let p = multilevel_bisection(&sub.graph, cfg);
        (0..members.len())
            .map(|i| p.part_of(i as VertexId))
            .collect()
    } else {
        // Edgeless fragment: alternate.
        (0..members.len()).map(|i| (i % 2) as u32).collect()
    };
    // Guarantee each side can host its parts.
    let mut side = side;
    let zeros = side.iter().filter(|&&s| s == 0).count();
    let ones = side.len() - zeros;
    if zeros < k_left || ones < k_right {
        for (i, s) in side.iter_mut().enumerate() {
            *s = if i * k < members.len() * k_left { 0 } else { 1 };
        }
    }
    let left: Vec<VertexId> = members
        .iter()
        .zip(&side)
        .filter(|&(_, &s)| s == 0)
        .map(|(&v, _)| v)
        .collect();
    let right: Vec<VertexId> = members
        .iter()
        .zip(&side)
        .filter(|&(_, &s)| s == 1)
        .map(|(&v, _)| v)
        .collect();
    recurse_bisect(g, &left, k_left, base, cfg, assignment);
    recurse_bisect(g, &right, k_right, base + k_left as u32, cfg, assignment);
}

/// Direct k-way multilevel V-cycle (`Multilevel (Oct)`): one hierarchy,
/// coarsest graph partitioned into all `k` parts at once (spectral
/// octasection by default), greedy k-way + pairwise FM refinement during
/// uncoarsening.
pub fn multilevel_kway(g: &Graph, k: usize, cfg: &MultilevelConfig) -> Partition {
    let coarsen_until = cfg.coarsen_until.max(3 * k);
    let h = Hierarchy::build(g, coarsen_until, cfg.seed);
    let coarsest = h.coarsest(g);
    let k_eff = k.min(coarsest.num_vertices());
    let mut part = match cfg.initial {
        InitialMethod::Spectral => {
            let scfg = ff_spectral::SpectralConfig {
                mode: ff_spectral::SectionMode::Octasection,
                refine: ff_spectral::RefineMethod::Kl,
                seed: cfg.seed,
                ..Default::default()
            };
            ff_spectral::spectral_partition(coarsest, k_eff, &scfg)
        }
        InitialMethod::GreedyGrowing => {
            crate::initial::region_growing_kway(coarsest, k_eff, cfg.seed)
        }
    };

    for lvl in (0..h.num_levels()).rev() {
        let fine = h.graph_at(g, lvl);
        let fine_assignment = h.levels()[lvl].project(part.assignment());
        part = Partition::from_assignment(fine, fine_assignment, k_eff);
        let ideal = fine.total_vertex_weight() / k_eff as f64;
        let balance = BalanceConstraint {
            lo: ideal * (1.0 - 3.0 * cfg.balance_eps).max(0.0),
            hi: ideal * (1.0 + 3.0 * cfg.balance_eps),
        };
        let mut st = CutState::new(fine, part);
        greedy_refine_kway(
            &mut st,
            Objective::Cut,
            &GreedyOptions {
                max_passes: 6,
                balance,
                seed: cfg.seed,
                keep_parts_nonempty: true,
            },
        );
        part = st.into_partition();
    }
    // Final pairwise polish on the full graph.
    let ideal = g.total_vertex_weight() / k_eff as f64;
    let mut st = CutState::new(g, part);
    pairwise_refine_kway(
        &mut st,
        &PairwiseOptions {
            method: PairwiseMethod::Fm,
            max_rounds: 2,
            balance: BalanceConstraint {
                lo: ideal * (1.0 - 3.0 * cfg.balance_eps).max(0.0),
                hi: ideal * (1.0 + 3.0 * cfg.balance_eps),
            },
        },
    );
    st.into_partition()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{multilevel_partition, MultilevelMode};
    use ff_graph::generators::{grid2d, planted_partition, random_geometric, two_cliques_bridge};
    use ff_partition::imbalance;

    #[test]
    fn bisection_finds_bridge() {
        let g = two_cliques_bridge(20, 2.0, 0.3);
        let p = multilevel_bisection(&g, &MultilevelConfig::default());
        let cut = Objective::Cut.evaluate(&g, &p);
        assert!((cut - 0.3).abs() < 1e-9, "cut = {cut}");
    }

    #[test]
    fn bisection_on_grid_near_optimal() {
        let g = grid2d(16, 16);
        let p = multilevel_bisection(&g, &MultilevelConfig::default());
        let cut = Objective::Cut.evaluate(&g, &p);
        // Optimal straight cut is 16; allow modest slack.
        assert!(cut <= 24.0, "cut = {cut}");
        assert!(imbalance(&p) < 0.10);
    }

    #[test]
    fn recursive_bisection_k_parts() {
        let g = random_geometric(200, 0.14, 4);
        for k in [2usize, 4, 7] {
            let p = multilevel_partition(&g, k, &MultilevelConfig::default());
            assert_eq!(p.num_nonempty_parts(), k, "k = {k}");
        }
    }

    #[test]
    fn kway_mode_works() {
        let g = random_geometric(300, 0.12, 8);
        let p = multilevel_partition(
            &g,
            8,
            &MultilevelConfig {
                mode: MultilevelMode::KWay,
                ..Default::default()
            },
        );
        assert_eq!(p.num_nonempty_parts(), 8);
    }

    #[test]
    fn recovers_planted_communities() {
        let g = planted_partition(4, 25, 0.5, 0.01, 13);
        let p = multilevel_partition(&g, 4, &MultilevelConfig::default());
        // Planted cut: only inter-community edges. Internal heavy edges
        // must not be cut: check the cut is much smaller than the total.
        let cut = Objective::Cut.evaluate(&g, &p);
        assert!(
            cut < 0.12 * g.total_edge_weight(),
            "cut {cut} vs total {}",
            g.total_edge_weight()
        );
    }

    #[test]
    fn greedy_initial_variant() {
        let g = random_geometric(150, 0.15, 3);
        let p = multilevel_partition(
            &g,
            4,
            &MultilevelConfig {
                initial: InitialMethod::GreedyGrowing,
                ..Default::default()
            },
        );
        assert_eq!(p.num_nonempty_parts(), 4);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = random_geometric(120, 0.16, 5);
        let cfg = MultilevelConfig {
            seed: 77,
            ..Default::default()
        };
        let a = multilevel_partition(&g, 4, &cfg);
        let b = multilevel_partition(&g, 4, &cfg);
        assert_eq!(a.assignment(), b.assignment());
    }

    #[test]
    fn hierarchy_respects_floor() {
        let g = grid2d(20, 20);
        let h = Hierarchy::build(&g, 50, 1);
        assert!(h.coarsest(&g).num_vertices() <= 400);
        assert!(h.num_levels() >= 1, "400-vertex grid must coarsen");
        // weights preserved through every level
        for lvl in h.levels() {
            assert!((lvl.graph.total_vertex_weight() - 400.0).abs() < 1e-9);
        }
    }

    #[test]
    fn small_graph_skips_coarsening() {
        let g = grid2d(3, 3);
        let p = multilevel_bisection(&g, &MultilevelConfig::default());
        assert_eq!(p.num_nonempty_parts(), 2);
    }
}

//! Reusable V-cycle driver with a *pluggable* coarse-level optimizer.
//!
//! [`multilevel_partition`](crate::multilevel_partition) hard-wires its
//! coarsest-graph partitioner (spectral / region growing). [`Vcycle`]
//! instead splits the cycle open: it owns only the coarsening stack and
//! the refined uncoarsening, and the caller runs *any* optimizer — a
//! fusion–fission ensemble, simulated annealing, an oracle — on
//! [`Vcycle::coarsest`], then hands the coarse partition to
//! [`Vcycle::refine_up`]. This is the memetic-multilevel shape: a global
//! metaheuristic where it is cheap (the coarse graph), local refinement
//! where it is effective (every uncoarsening level).

use ff_graph::{Graph, Hierarchy};
use ff_partition::refine::greedy::GreedyOptions;
use ff_partition::{greedy_refine_kway, CutState, Objective, Partition};

/// Options for [`Vcycle`].
#[derive(Clone, Copy, Debug)]
pub struct VcycleOpts {
    /// Stop coarsening at this many vertices (default 3000 — small enough
    /// that per-step reaction costs stop mattering, large enough that the
    /// coarse optimum projects well).
    pub coarsen_until: usize,
    /// Greedy refinement sweeps per uncoarsening level (default 8).
    pub refine_passes: usize,
    /// Seed for matching order and refinement sweep shuffles.
    pub seed: u64,
    /// Coarsest levels with fewer vertices than this are dropped, so the
    /// coarse optimizer always has room for its parts (default 2).
    pub min_coarse_vertices: usize,
}

impl Default for VcycleOpts {
    fn default() -> Self {
        VcycleOpts {
            coarsen_until: 3000,
            refine_passes: 8,
            seed: 1,
            min_coarse_vertices: 2,
        }
    }
}

/// What one uncoarsening level did, coarsest-first in
/// [`Vcycle::refine_up`]'s return (so the last report's `value_after` is
/// the final objective value on the input graph).
#[derive(Clone, Copy, Debug)]
pub struct LevelReport {
    /// Level index: 0 is the input graph, higher is coarser.
    pub level: usize,
    /// Vertices of the graph refined at this level.
    pub vertices: usize,
    /// Objective value right after projection, before refinement.
    pub value_before: f64,
    /// Objective value after refinement. Never worse than `value_before`:
    /// the greedy refiner applies only strictly improving moves.
    pub value_after: f64,
    /// Moves the refiner applied.
    pub moves: usize,
    /// Wall-clock milliseconds this level spent projecting + refining.
    /// Observability only — never feeds back into the algorithm.
    pub refine_ms: u64,
}

/// A prepared V-cycle over a fine graph: coarsening stack plus refined
/// uncoarsening, with the coarse-level optimization left to the caller.
///
/// Deterministic: the stack and every refinement sweep are pure functions
/// of `(graph, opts)`, so equal inputs (plus a deterministic coarse
/// optimizer) give byte-identical fine partitions.
#[derive(Clone, Debug)]
pub struct Vcycle<'g> {
    fine: &'g Graph,
    hierarchy: Hierarchy,
    opts: VcycleOpts,
}

impl<'g> Vcycle<'g> {
    /// Builds the coarsening stack for `g`.
    pub fn new(g: &'g Graph, opts: VcycleOpts) -> Self {
        let mut hierarchy = Hierarchy::build(g, opts.coarsen_until.max(1), opts.seed);
        hierarchy.trim_to_min_vertices(opts.min_coarse_vertices);
        Vcycle {
            fine: g,
            hierarchy,
            opts,
        }
    }

    /// The graph the coarse optimizer should run on. The input graph
    /// itself when it was already at or below the coarsening target.
    pub fn coarsest(&self) -> &Graph {
        self.hierarchy.coarsest(self.fine)
    }

    /// Number of coarse levels (0 means no coarsening happened).
    pub fn num_levels(&self) -> usize {
        self.hierarchy.num_levels()
    }

    /// The input graph this V-cycle was built over.
    pub fn fine(&self) -> &'g Graph {
        self.fine
    }

    /// Projects a partition of [`coarsest`](Self::coarsest) down the stack,
    /// greedily refining under `objective` at every level. Returns the fine
    /// partition plus one [`LevelReport`] per level, coarsest-first.
    ///
    /// The part count (and non-emptiness of every part) is preserved end
    /// to end: projection cannot empty a part, and the refiner runs with
    /// `keep_parts_nonempty`.
    ///
    /// # Panics
    ///
    /// Panics if `coarse` is not a partition of the coarsest graph.
    pub fn refine_up(
        &self,
        coarse: &Partition,
        objective: Objective,
    ) -> (Partition, Vec<LevelReport>) {
        assert_eq!(
            coarse.num_vertices(),
            self.coarsest().num_vertices(),
            "partition must cover the coarsest graph"
        );
        let k = coarse.num_parts();
        let mut cur = coarse.clone();
        let mut reports = Vec::with_capacity(self.hierarchy.num_levels());
        for lvl in (0..self.hierarchy.num_levels()).rev() {
            let level_start = std::time::Instant::now();
            let fine = self.hierarchy.graph_at(self.fine, lvl);
            let fine_asg = self.hierarchy.levels()[lvl].project(cur.assignment());
            let mut st = CutState::new(fine, Partition::from_assignment(fine, fine_asg, k));
            let value_before = st.objective(objective);
            let moves = greedy_refine_kway(
                &mut st,
                objective,
                &GreedyOptions {
                    max_passes: self.opts.refine_passes,
                    seed: self.opts.seed.wrapping_add(lvl as u64),
                    ..Default::default()
                },
            );
            let value_after = st.objective(objective);
            reports.push(LevelReport {
                level: lvl,
                vertices: fine.num_vertices(),
                value_before,
                value_after,
                moves,
                refine_ms: level_start.elapsed().as_millis() as u64,
            });
            cur = st.into_partition();
        }
        (cur, reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_graph::generators::{grid2d, planted_partition, random_geometric};

    fn random_coarse_partition(g: &Graph, k: usize, seed: u64) -> Partition {
        Partition::random(g, k, seed)
    }

    #[test]
    fn refine_up_preserves_part_count() {
        let g = random_geometric(300, 0.12, 4);
        let vc = Vcycle::new(
            &g,
            VcycleOpts {
                coarsen_until: 40,
                ..Default::default()
            },
        );
        assert!(vc.num_levels() >= 1);
        let coarse = random_coarse_partition(vc.coarsest(), 5, 3);
        let k_before = coarse.num_nonempty_parts();
        let (fine, reports) = vc.refine_up(&coarse, Objective::Cut);
        assert_eq!(fine.num_vertices(), 300);
        assert_eq!(fine.num_nonempty_parts(), k_before);
        assert_eq!(reports.len(), vc.num_levels());
        assert_eq!(reports.last().unwrap().level, 0);
        assert_eq!(reports.last().unwrap().vertices, 300);
    }

    #[test]
    fn refinement_is_monotone_per_level_for_all_objectives() {
        let g = planted_partition(4, 60, 0.25, 0.01, 9);
        let vc = Vcycle::new(
            &g,
            VcycleOpts {
                coarsen_until: 30,
                ..Default::default()
            },
        );
        for obj in Objective::all() {
            let coarse = random_coarse_partition(vc.coarsest(), 4, 17);
            let (fine, reports) = vc.refine_up(&coarse, obj);
            for r in &reports {
                assert!(
                    r.value_after <= r.value_before,
                    "{obj} level {}: {} → {}",
                    r.level,
                    r.value_before,
                    r.value_after
                );
            }
            // The last report's value_after is the fine objective value.
            let final_v = reports.last().unwrap().value_after;
            let fresh = obj.evaluate(&g, &fine);
            assert!(
                (final_v - fresh).abs() < 1e-6 || (final_v.is_infinite() && fresh.is_infinite()),
                "{obj}: reported {final_v} vs fresh {fresh}"
            );
        }
    }

    #[test]
    fn projection_without_refinement_keeps_cut() {
        // With 0 refinement passes the fine cut equals the coarse cut:
        // matched pairs share a part, so no intra-pair edge is cut.
        let g = random_geometric(250, 0.13, 6);
        let vc = Vcycle::new(
            &g,
            VcycleOpts {
                coarsen_until: 35,
                refine_passes: 0,
                ..Default::default()
            },
        );
        let coarse = random_coarse_partition(vc.coarsest(), 3, 8);
        let coarse_cut = Objective::Cut.evaluate(vc.coarsest(), &coarse);
        let (fine, _) = vc.refine_up(&coarse, Objective::Cut);
        let fine_cut = Objective::Cut.evaluate(&g, &fine);
        assert!(
            (coarse_cut - fine_cut).abs() < 1e-9,
            "coarse {coarse_cut} vs fine {fine_cut}"
        );
    }

    #[test]
    fn no_coarsening_passes_partition_through() {
        let g = grid2d(4, 4);
        let vc = Vcycle::new(&g, VcycleOpts::default());
        assert_eq!(vc.num_levels(), 0);
        let p = Partition::block(&g, 2);
        let (out, reports) = vc.refine_up(&p, Objective::Cut);
        assert!(reports.is_empty());
        assert_eq!(out.assignment(), p.assignment());
    }

    #[test]
    fn deterministic_refine_up() {
        let g = random_geometric(200, 0.14, 2);
        let run = || {
            let vc = Vcycle::new(
                &g,
                VcycleOpts {
                    coarsen_until: 25,
                    seed: 42,
                    ..Default::default()
                },
            );
            let coarse = random_coarse_partition(vc.coarsest(), 4, 5);
            vc.refine_up(&coarse, Objective::NCut).0
        };
        assert_eq!(run().assignment(), run().assignment());
    }
}

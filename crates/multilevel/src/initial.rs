//! Coarsest-graph initial partitioners.
//!
//! By the time coarsening stops, the graph has a few dozen vertices, so
//! the initial partition can afford to be careful. Two options, as in
//! Chaco: a spectral partition of the coarse graph (Hendrickson–Leland's
//! choice) and greedy graph growing (METIS's cheap alternative, useful in
//! ablations).

use ff_graph::{Graph, VertexId};
use ff_partition::Partition;
use ff_spectral::{spectral_partition, SpectralConfig, SpectralSolver};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;
use std::collections::VecDeque;

/// Coarsest-graph partitioner choice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InitialMethod {
    /// Spectral recursive bisection of the coarse graph.
    Spectral,
    /// Greedy BFS-based graph growing.
    GreedyGrowing,
}

/// Greedy graph growing bisection: BFS-grow a region from a seed vertex,
/// preferring the frontier vertex with the strongest connection into the
/// region, until half the vertex weight is absorbed.
pub fn greedy_graph_growing(g: &Graph, seed: u64) -> Partition {
    let n = g.num_vertices();
    assert!(n >= 2, "bisection needs at least 2 vertices");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let start = rng.gen_range(0..n) as VertexId;
    let half = g.total_vertex_weight() / 2.0;

    let mut in_region = vec![false; n];
    let mut gain = vec![0.0f64; n]; // connection weight into region
    let mut frontier: Vec<VertexId> = Vec::new();
    let mut grown = 0.0;
    let grow = |v: VertexId,
                in_region: &mut Vec<bool>,
                gain: &mut Vec<f64>,
                frontier: &mut Vec<VertexId>| {
        in_region[v as usize] = true;
        for (u, w) in g.edges_of(v) {
            if !in_region[u as usize] {
                if gain[u as usize] == 0.0 {
                    frontier.push(u);
                }
                gain[u as usize] += w;
            }
        }
    };
    grow(start, &mut in_region, &mut gain, &mut frontier);
    grown += g.vertex_weight(start);

    while grown < half {
        // strongest-connected frontier vertex
        frontier.retain(|&v| !in_region[v as usize]);
        let Some(&best) = frontier.iter().max_by(|&&a, &&b| {
            gain[a as usize]
                .partial_cmp(&gain[b as usize])
                .unwrap()
                .then(b.cmp(&a))
        }) else {
            // Disconnected: jump to any unabsorbed vertex.
            match (0..n as VertexId).find(|&v| !in_region[v as usize]) {
                Some(v) => {
                    grow(v, &mut in_region, &mut gain, &mut frontier);
                    grown += g.vertex_weight(v);
                    continue;
                }
                None => break,
            }
        };
        grow(best, &mut in_region, &mut gain, &mut frontier);
        grown += g.vertex_weight(best);
    }

    let assignment: Vec<u32> = in_region.iter().map(|&r| u32::from(!r)).collect();
    let p = Partition::from_assignment(g, assignment, 2);
    debug_assert!(p.part_size(0) > 0 && p.part_size(1) > 0);
    p
}

/// k-way region growing: pick k spread-out seeds (iterated farthest-point
/// BFS), then grow all regions simultaneously, always absorbing the
/// frontier vertex most strongly connected to its region.
pub fn region_growing_kway(g: &Graph, k: usize, seed: u64) -> Partition {
    let n = g.num_vertices();
    assert!(k >= 1 && k <= n, "need 1 ≤ k ≤ n");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    // Farthest-point seed spreading.
    let mut seeds: Vec<VertexId> = vec![rng.gen_range(0..n) as VertexId];
    while seeds.len() < k {
        let mut dist = vec![usize::MAX; n];
        let mut q = VecDeque::new();
        for &s in &seeds {
            dist[s as usize] = 0;
            q.push_back(s);
        }
        while let Some(v) = q.pop_front() {
            for &u in g.neighbors(v) {
                if dist[u as usize] == usize::MAX {
                    dist[u as usize] = dist[v as usize] + 1;
                    q.push_back(u);
                }
            }
        }
        let far = (0..n as VertexId)
            .filter(|&v| !seeds.contains(&v))
            .max_by_key(|&v| {
                if dist[v as usize] == usize::MAX {
                    n + 1
                } else {
                    dist[v as usize]
                }
            })
            .expect("k ≤ n guarantees an unseeded vertex");
        seeds.push(far);
    }

    let mut assignment = vec![u32::MAX; n];
    // One max-heap of frontier candidates per region; regions take turns
    // absorbing their best candidate, which keeps sizes within ±1 on
    // connected graphs. Gains are non-negative finite f64, so IEEE bit
    // patterns order correctly as u64.
    fn enc(x: f64) -> u64 {
        x.max(0.0).to_bits()
    }
    let mut heaps: Vec<std::collections::BinaryHeap<(u64, VertexId)>> =
        (0..k).map(|_| Default::default()).collect();

    for (r, &s) in seeds.iter().enumerate() {
        assignment[s as usize] = r as u32;
    }
    for (r, &s) in seeds.iter().enumerate() {
        for (u, w) in g.edges_of(s) {
            if assignment[u as usize] == u32::MAX {
                heaps[r].push((enc(w), u));
            }
        }
    }
    let mut remaining = n - k;
    while remaining > 0 {
        let mut grew_any = false;
        for (r, heap) in heaps.iter_mut().enumerate() {
            // Pop until a still-unassigned candidate appears.
            let grabbed = loop {
                match heap.pop() {
                    Some((_, v)) if assignment[v as usize] == u32::MAX => break Some(v),
                    Some(_) => continue,
                    None => break None,
                }
            };
            if let Some(v) = grabbed {
                assignment[v as usize] = r as u32;
                remaining -= 1;
                grew_any = true;
                for (u, w) in g.edges_of(v) {
                    if assignment[u as usize] == u32::MAX {
                        heap.push((enc(w), u));
                    }
                }
                if remaining == 0 {
                    break;
                }
            }
        }
        if !grew_any {
            // Disconnected leftovers: round-robin.
            let mut r = 0u32;
            for a in assignment.iter_mut() {
                if *a == u32::MAX {
                    *a = r % k as u32;
                    r += 1;
                    remaining -= 1;
                }
            }
        }
    }
    Partition::from_assignment(g, assignment, k)
}

/// Partitions the coarsest graph into `k` parts with the chosen method.
pub fn initial_partition(g: &Graph, k: usize, method: InitialMethod, seed: u64) -> Partition {
    match method {
        InitialMethod::Spectral => {
            let cfg = SpectralConfig {
                solver: SpectralSolver::Lanczos,
                refine: ff_spectral::RefineMethod::Kl,
                seed,
                ..Default::default()
            };
            spectral_partition(g, k, &cfg)
        }
        InitialMethod::GreedyGrowing => {
            if k == 2 {
                greedy_graph_growing(g, seed)
            } else {
                region_growing_kway(g, k, seed)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_graph::generators::{grid2d, two_cliques_bridge};
    use ff_partition::{imbalance, Objective};

    #[test]
    fn greedy_growing_balanced_halves() {
        let g = grid2d(8, 8);
        let p = greedy_graph_growing(&g, 3);
        assert_eq!(p.num_nonempty_parts(), 2);
        assert!(imbalance(&p) < 0.15, "imbalance {}", imbalance(&p));
    }

    #[test]
    fn greedy_growing_respects_structure() {
        let g = two_cliques_bridge(10, 3.0, 0.2);
        let p = greedy_graph_growing(&g, 1);
        let cut = Objective::Cut.evaluate(&g, &p);
        // Growing from any seed should stop at the bridge.
        assert!(cut <= 3.0 * 2.0, "cut = {cut}");
    }

    #[test]
    fn region_growing_covers_all() {
        let g = grid2d(9, 9);
        let p = region_growing_kway(&g, 5, 7);
        assert_eq!(p.num_nonempty_parts(), 5);
        assert_eq!((0..5u32).map(|i| p.part_size(i)).sum::<usize>(), 81);
    }

    #[test]
    fn region_growing_seeds_spread() {
        let g = grid2d(10, 10);
        let p = region_growing_kway(&g, 4, 2);
        // All four parts should be non-trivial.
        for part in 0..4u32 {
            assert!(p.part_size(part) >= 10, "part {part} too small");
        }
    }

    #[test]
    fn k_equals_n_region_growing() {
        let g = grid2d(3, 3);
        let p = region_growing_kway(&g, 9, 1);
        assert_eq!(p.num_nonempty_parts(), 9);
    }

    #[test]
    fn initial_dispatch_both_methods() {
        let g = grid2d(7, 7);
        for m in [InitialMethod::Spectral, InitialMethod::GreedyGrowing] {
            let p = initial_partition(&g, 4, m, 5);
            assert_eq!(p.num_nonempty_parts(), 4, "{m:?}");
        }
    }
}

//! # ff-multilevel — multilevel graph partitioning
//!
//! Implements §2.2 of the paper (the Hendrickson–Leland / Karypis–Kumar
//! scheme behind Chaco and METIS):
//!
//! 1. **Coarsen** — contract randomized heavy-edge matchings until the
//!    graph is small ([`ff_graph::matching`], [`ff_graph::coarsen`](fn@ff_graph::coarsen)),
//! 2. **Partition** the coarsest graph — spectral or greedy graph growing
//!    ([`initial`]),
//! 3. **Uncoarsen** — project the partition level by level, locally
//!    refining at each level ([`vcycle`]): FM for bisections, greedy
//!    k-way + pairwise FM for direct k-way.
//!
//! Two drivers mirror the paper's Table 1 rows:
//! * `Multilevel (Bi)` — [`multilevel_partition`] with
//!   [`MultilevelMode::RecursiveBisection`],
//! * `Multilevel (Oct)` — [`MultilevelMode::KWay`] (direct k-way V-cycle
//!   seeded by spectral octasection on the coarsest graph).
//!
//! A third entry point, [`Vcycle`], opens the cycle up for a *pluggable*
//! coarse optimizer: build the stack, run any search (`ff-engine`'s
//! fusion–fission ensemble uses this for `Solver::multilevel`) on
//! [`Vcycle::coarsest`], then [`Vcycle::refine_up`] the result:
//!
//! ```
//! use ff_graph::generators::random_geometric;
//! use ff_multilevel::{Vcycle, VcycleOpts};
//! use ff_partition::{Objective, Partition};
//!
//! let g = random_geometric(400, 0.1, 7);
//! let vc = Vcycle::new(&g, VcycleOpts { coarsen_until: 50, ..Default::default() });
//! // Any optimizer goes here — even a plain random partition:
//! let coarse = Partition::random(vc.coarsest(), 4, 1);
//! let (fine, reports) = vc.refine_up(&coarse, Objective::Cut);
//! assert_eq!(fine.num_vertices(), 400);
//! // Refinement never worsens the objective at any level:
//! assert!(reports.iter().all(|r| r.value_after <= r.value_before));
//! ```

pub mod driver;
pub mod initial;
pub mod vcycle;

use ff_graph::Graph;
use ff_partition::Partition;

pub use driver::{LevelReport, Vcycle, VcycleOpts};
pub use initial::{greedy_graph_growing, region_growing_kway, InitialMethod};
pub use vcycle::{multilevel_bisection, multilevel_kway};

/// How the k-way partition is assembled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MultilevelMode {
    /// Recursive multilevel bisection (Table 1 `Multilevel (Bi)`).
    RecursiveBisection,
    /// One direct k-way V-cycle (Table 1 `Multilevel (Oct)`).
    KWay,
}

/// Configuration for the multilevel drivers.
#[derive(Clone, Copy, Debug)]
pub struct MultilevelConfig {
    /// Stop coarsening when the graph has at most this many vertices
    /// (also stops when a level shrinks < 10 %). Default: 48.
    pub coarsen_until: usize,
    /// Coarsest-graph partitioner.
    pub initial: InitialMethod,
    /// Assembly mode.
    pub mode: MultilevelMode,
    /// Balance tolerance for refinement (relative). Default 0.05.
    pub balance_eps: f64,
    /// Seed driving matching order, initial partition, refinement sweeps.
    pub seed: u64,
}

impl Default for MultilevelConfig {
    fn default() -> Self {
        MultilevelConfig {
            coarsen_until: 48,
            initial: InitialMethod::Spectral,
            mode: MultilevelMode::RecursiveBisection,
            balance_eps: 0.05,
            seed: 1,
        }
    }
}

/// Multilevel k-way partitioning.
///
/// # Panics
///
/// Panics if `k` is 0 or exceeds the vertex count.
pub fn multilevel_partition(g: &Graph, k: usize, cfg: &MultilevelConfig) -> Partition {
    assert!(k >= 1, "k must be positive");
    assert!(k <= g.num_vertices().max(1), "more parts than vertices");
    match cfg.mode {
        MultilevelMode::RecursiveBisection => vcycle::multilevel_recursive_bisection(g, k, cfg),
        MultilevelMode::KWay => vcycle::multilevel_kway(g, k, cfg),
    }
}

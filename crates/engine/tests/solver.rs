//! The refactor-safety net for the pluggable solver:
//!
//! 1. **Golden pins** — `Solver` with `ReplaceIfBetter` + `MinEnergy`
//!    must reproduce outputs captured from the pre-refactor
//!    `Ensemble::run` bit-for-bit (hashes recorded before the refactor).
//! 2. **Reference model** — a property test drives random graphs/seeds
//!    through both the builder and an independent reimplementation of
//!    the historical epoch loop.
//! 3. **Pareto properties** — the front is mutually non-dominated and
//!    insensitive to island harvest order.
//! 4. **Policy determinism** — byte-identical output across re-runs and
//!    thread caps for *every* migration policy.

use ff_core::{FusionFission, FusionFissionConfig, FusionFissionRun};
use ff_engine::{
    derive_seeds, Adaptive, Combine, MigrationPolicyId, ParetoFront, ReplaceIfBetter, Solver,
};
use ff_graph::generators::{planted_partition, random_geometric};
use ff_graph::Graph;
use ff_metaheur::StopCondition;
use ff_partition::{dominates, Objective};
use proptest::prelude::*;

fn fnv1a(bytes: impl Iterator<Item = u8>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn golden_base() -> FusionFissionConfig {
    FusionFissionConfig {
        stop: StopCondition::steps(2_000),
        nbt: 80,
        ..FusionFissionConfig::standard(4)
    }
}

/// Outputs of the pre-refactor `Ensemble::run`, captured on this exact
/// code base immediately before `ensemble.rs` was split into
/// solver/migration/reduction. The builder path must keep reproducing
/// them bit-for-bit.
#[test]
fn golden_pre_refactor_ensemble_outputs() {
    /// `(graph, islands, interval, seed, value, steps, migrations, hash)`.
    type GoldenCase = (&'static str, usize, u64, u64, f64, u64, u64, u64);
    let cases: [GoldenCase; 6] = [
        (
            "rg60",
            1,
            300,
            99,
            0.436_207_740_344_556_67,
            2_000,
            0,
            0xbbdb_45fd_27f0_5085,
        ),
        (
            "rg60",
            4,
            300,
            99,
            0.436_207_740_344_556_67,
            8_000,
            0,
            0xbbdb_45fd_27f0_5085,
        ),
        (
            "rg60",
            3,
            200,
            5,
            0.416_233_749_777_767_6,
            6_000,
            2,
            0x5e7f_23bd_1e14_b297,
        ),
        (
            "pp4",
            1,
            300,
            99,
            0.212_957_487_041_947_92,
            2_000,
            0,
            0x71ae_7404_ec20_98e5,
        ),
        (
            "pp4",
            4,
            300,
            99,
            0.212_957_487_041_947_92,
            8_000,
            0,
            0x71ae_7404_ec20_98e5,
        ),
        (
            "pp4",
            3,
            200,
            5,
            0.212_957_487_041_947_92,
            6_000,
            1,
            0x4636_b6a6_b9d9_20e5,
        ),
    ];
    let rg60 = random_geometric(60, 0.25, 7);
    let pp4 = planted_partition(4, 12, 0.8, 0.05, 3);
    for (name, islands, interval, seed, value, steps, migrations, hash) in cases {
        let g = if name == "rg60" { &rg60 } else { &pp4 };
        let res = Solver::on(g)
            .config(golden_base())
            .islands(islands)
            .migration_interval(interval)
            .seed(seed)
            .run()
            .unwrap();
        assert_eq!(res.best_value, value, "{name}/{islands}/{seed}: value");
        assert_eq!(res.steps, steps, "{name}/{islands}/{seed}: steps");
        assert_eq!(
            res.migrations_adopted, migrations,
            "{name}/{islands}/{seed}: migrations"
        );
        let got = fnv1a(res.best.assignment().iter().flat_map(|p| p.to_le_bytes()));
        assert_eq!(got, hash, "{name}/{islands}/{seed}: assignment hash");
    }
}

/// An independent reimplementation of the pre-refactor epoch loop — the
/// spec the builder's default path must match: lockstep epochs of
/// `interval` steps, then the globally-lowest-energy molecule offered to
/// every island, adopted iff strictly better.
fn reference_ensemble(
    g: &Graph,
    base: FusionFissionConfig,
    islands: usize,
    interval: u64,
    root_seed: u64,
) -> (Vec<u32>, f64, u64, u64) {
    let seeds = derive_seeds(root_seed, islands);
    let mut runs: Vec<FusionFissionRun<'_>> = seeds
        .iter()
        .map(|&s| FusionFission::new(g, base, s).start())
        .collect();
    let chunk = if interval == 0 { u64::MAX } else { interval };
    let mut adopted = 0u64;
    loop {
        let mut more = false;
        for run in &mut runs {
            more |= run.advance(chunk);
        }
        if !more {
            break;
        }
        if islands > 1 && interval > 0 {
            let donor = (0..islands)
                .reduce(|a, b| {
                    if runs[b].best_energy() < runs[a].best_energy() {
                        b
                    } else {
                        a
                    }
                })
                .unwrap();
            let donor_energy = runs[donor].best_energy();
            let molecule = runs[donor].best_molecule().clone();
            for (i, run) in runs.iter_mut().enumerate() {
                if i != donor && run.best_energy() > donor_energy && run.inject(&molecule) {
                    adopted += 1;
                }
            }
        }
    }
    let harvested: Vec<_> = runs.into_iter().map(|r| r.harvest()).collect();
    let best = (0..harvested.len())
        .reduce(|a, b| {
            if harvested[b].best_value < harvested[a].best_value {
                b
            } else {
                a
            }
        })
        .unwrap();
    let steps = harvested.iter().map(|r| r.steps).sum();
    (
        harvested[best].best.assignment().to_vec(),
        harvested[best].best_value,
        steps,
        adopted,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// ISSUE acceptance: `ReplaceIfBetter` through the `Solver` builder
    /// is byte-identical to the pre-refactor `Ensemble::run` semantics on
    /// random graphs and seeds.
    #[test]
    fn replace_if_better_matches_pre_refactor_reference(
        gseed in 0u64..1_000,
        root in 0u64..1_000,
        islands in 1usize..4,
        interval_idx in 0usize..3,
    ) {
        let interval = [0u64, 150, 300][interval_idx];
        let g = random_geometric(40, 0.3, gseed);
        let base = FusionFissionConfig {
            stop: StopCondition::steps(900),
            ..FusionFissionConfig::fast(3)
        };
        let (ref_asg, ref_value, ref_steps, ref_adopted) =
            reference_ensemble(&g, base, islands, interval, root);
        let res = Solver::on(&g)
            .config(base)
            .islands(islands)
            .migration_interval(interval)
            .migration(ReplaceIfBetter)
            .seed(root)
            .run()
            .unwrap();
        prop_assert_eq!(res.best.assignment(), &ref_asg[..]);
        prop_assert_eq!(res.best_value, ref_value);
        prop_assert_eq!(res.steps, ref_steps);
        prop_assert_eq!(res.migrations_adopted, ref_adopted);
    }

    /// ISSUE acceptance: the Pareto front is mutually non-dominated and
    /// insensitive to the order islands are harvested in.
    #[test]
    fn pareto_front_is_non_dominated_and_order_insensitive(
        gseed in 0u64..1_000,
        root in 0u64..1_000,
        rotation in 0usize..4,
    ) {
        use ff_engine::{Reduction, ParetoResult};
        let g = random_geometric(40, 0.3, gseed);
        let solver = |seed| {
            Solver::on(&g)
                .k(3)
                .islands(4)
                .objectives([Objective::Cut, Objective::NCut, Objective::MCut])
                .reduction(ParetoFront)
                .steps(900)
                .migration_interval(300)
                .seed(seed)
        };
        let res = solver(root).run().unwrap();
        let front: &ParetoResult = res.pareto.as_ref().expect("front present");
        prop_assert!(!front.points.is_empty());
        for a in &front.points {
            for b in &front.points {
                prop_assert!(
                    a.island == b.island || !dominates(&a.values, &b.values),
                    "dominated point survived"
                );
            }
        }
        // Harvest-order insensitivity: re-reduce the same island results
        // in a rotated order; the surviving molecules must be the same
        // set (original indices recovered through the rotation).
        let islands = &res.islands;
        let mut rotated: Vec<_> = islands.to_vec();
        rotated.rotate_left(rotation % islands.len());
        let objectives = [Objective::Cut, Objective::NCut, Objective::MCut];
        let re = ParetoFront.reduce(&g, &rotated, &objectives);
        let refront = re.pareto.unwrap();
        let n = islands.len();
        let mut original: Vec<usize> = refront
            .points
            .iter()
            .map(|p| (p.island + rotation % n) % n)
            .collect();
        original.sort_unstable();
        let base_front: Vec<usize> = front.points.iter().map(|p| p.island).collect();
        // Equal objective vectors may swap which duplicate survives under
        // rotation; compare by vector multiset instead of raw index when
        // duplicates exist, and by index otherwise.
        let mut base_vecs: Vec<Vec<u64>> = front
            .points
            .iter()
            .map(|p| p.values.iter().map(|v| v.to_bits()).collect())
            .collect();
        let mut re_vecs: Vec<Vec<u64>> = refront
            .points
            .iter()
            .map(|p| p.values.iter().map(|v| v.to_bits()).collect())
            .collect();
        base_vecs.sort();
        re_vecs.sort();
        prop_assert_eq!(base_vecs, re_vecs);
        prop_assert_eq!(original.len(), base_front.len());
    }
}

/// Byte-identical output across re-runs and thread caps, for every
/// migration policy (the solver determinism contract).
#[test]
fn every_policy_is_byte_identical_across_reruns_and_thread_caps() {
    let g = random_geometric(50, 0.28, 11);
    for id in [
        MigrationPolicyId::ReplaceIfBetter,
        MigrationPolicyId::Combine,
        MigrationPolicyId::Adaptive,
    ] {
        let run = |threads: usize| {
            let mut solver = Solver::on(&g)
                .k(4)
                .islands(4)
                .migration_interval(200)
                .steps(1_200)
                .seed(21)
                .threads(threads);
            solver = match id {
                MigrationPolicyId::ReplaceIfBetter => solver.migration(ReplaceIfBetter),
                MigrationPolicyId::Combine => solver.migration(Combine),
                MigrationPolicyId::Adaptive => solver.migration(Adaptive::new(2, 8)),
            };
            solver.run().unwrap()
        };
        let base = run(0);
        for threads in [1usize, 2, 3] {
            let other = run(threads);
            assert_eq!(
                base.best.assignment(),
                other.best.assignment(),
                "{id:?} differs at {threads} threads"
            );
            assert_eq!(base.best_value, other.best_value, "{id:?}");
            assert_eq!(base.steps, other.steps, "{id:?}");
            assert_eq!(base.migrations_adopted, other.migrations_adopted, "{id:?}");
        }
    }
}

/// The adaptive policy's interval stretching must not break the lockstep
/// step accounting: total steps stay a pure function of the budget.
#[test]
fn adaptive_policy_reruns_are_byte_identical() {
    let g = planted_partition(3, 12, 0.8, 0.05, 9);
    let run = || {
        Solver::on(&g)
            .k(3)
            .islands(3)
            .migration(Adaptive::new(1, 4))
            .migration_interval(100)
            .steps(1_000)
            .seed(5)
            .run()
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.best.assignment(), b.best.assignment());
    assert_eq!(a.steps, b.steps);
    assert_eq!(a.migrations_adopted, b.migrations_adopted);
}

/// A mixed-objective ensemble end-to-end at the library layer: the front
/// is deterministic and each point's own-objective value is the best of
/// its group.
#[test]
fn mixed_objective_front_is_deterministic_end_to_end() {
    let g = planted_partition(4, 10, 0.85, 0.03, 5);
    let run = || {
        Solver::on(&g)
            .k(4)
            .islands(4)
            .objectives([Objective::Cut, Objective::MCut])
            .reduction(ParetoFront)
            .migration(Combine)
            .migration_interval(250)
            .steps(1_500)
            .seed(13)
            .run()
            .unwrap()
    };
    let a = run();
    let b = run();
    let fa = a.pareto.as_ref().unwrap();
    let fb = b.pareto.as_ref().unwrap();
    assert_eq!(fa.points.len(), fb.points.len());
    for (x, y) in fa.points.iter().zip(&fb.points) {
        assert_eq!(x.island, y.island);
        assert_eq!(x.values, y.values);
        assert_eq!(x.partition.assignment(), y.partition.assignment());
    }
    // Islands cycle objectives: 0 and 2 run Cut, 1 and 3 run MCut.
    assert_eq!(a.islands[0].trace.tag(), Some(Objective::Cut));
    assert_eq!(a.islands[1].trace.tag(), Some(Objective::MCut));
    assert_eq!(a.islands[2].trace.tag(), Some(Objective::Cut));
    assert_eq!(a.islands[3].trace.tag(), Some(Objective::MCut));
    // The representative is the front's best under the first objective.
    let rep = fa.best_under(Objective::Cut).unwrap();
    assert_eq!(a.best_island, rep.island);
    assert_eq!(a.best.assignment(), rep.partition.assignment());
}

/// Builder validation returns typed errors instead of panicking.
#[test]
fn builder_validation_is_typed() {
    use ff_core::ConfigError;
    let g = random_geometric(10, 0.5, 1);
    assert_eq!(
        Solver::on(&g).islands(2).run().err(),
        Some(ConfigError::NonPositiveK)
    );
    assert_eq!(
        Solver::on(&g).k(2).islands(0).run().err(),
        Some(ConfigError::ZeroIslands)
    );
    assert_eq!(
        Solver::on(&g)
            .k(2)
            .islands(3)
            .island_seeds(vec![1, 2])
            .run()
            .err(),
        Some(ConfigError::SeedCountMismatch {
            islands: 3,
            seeds: 2
        })
    );
    assert_eq!(
        Solver::on(&g)
            .k(2)
            .objectives(Vec::<Objective>::new())
            .run()
            .err(),
        Some(ConfigError::NoObjectives)
    );
    // Cycling [Cut, Cut, MCut] over 2 islands would silently never
    // optimize MCut — rejected, with the coverage bound (3), not the
    // distinct count (2).
    assert_eq!(
        Solver::on(&g)
            .k(2)
            .islands(2)
            .objectives([Objective::Cut, Objective::Cut, Objective::MCut])
            .run()
            .err(),
        Some(ConfigError::UncoveredObjectives {
            islands: 2,
            needed: 3
        })
    );
    assert!(Solver::on(&g)
        .k(2)
        .islands(3)
        .objectives([Objective::Cut, Objective::Cut, Objective::MCut])
        .steps(200)
        .run()
        .is_ok());
}

/// The objective-list helpers the CLI, wire schema and builder share.
#[test]
fn objective_list_helpers() {
    use ff_engine::{distinct_objectives, islands_to_cover};
    use Objective::*;
    assert_eq!(distinct_objectives(&[Cut, Cut, MCut]), vec![Cut, MCut]);
    assert_eq!(distinct_objectives(&[]), vec![]);
    assert_eq!(islands_to_cover(&[Cut, NCut, MCut]), 3);
    assert_eq!(islands_to_cover(&[Cut, Cut, MCut]), 3);
    assert_eq!(islands_to_cover(&[Cut, MCut, Cut, Cut]), 2);
    assert_eq!(islands_to_cover(&[Cut]), 1);
    assert_eq!(islands_to_cover(&[]), 0);
}

/// `island_seeds` lets a single-island solver reproduce a plain
/// `FusionFission` run bit-for-bit — the bridge the serving layer uses.
#[test]
fn island_seeds_reproduce_a_direct_run() {
    let g = random_geometric(40, 0.3, 4);
    let cfg = FusionFissionConfig::fast(3);
    let direct = FusionFission::new(&g, cfg, 77).run();
    let via_solver = Solver::on(&g)
        .config(cfg)
        .islands(1)
        .island_seeds(vec![77])
        .run()
        .unwrap();
    assert_eq!(direct.best.assignment(), via_solver.best.assignment());
    assert_eq!(direct.best_value, via_solver.best_value);
    assert_eq!(direct.steps, via_solver.steps);
}

/// The warm-start path (`Solver::initial`) mirrors
/// `FusionFission::with_initial`.
#[test]
fn warm_start_matches_with_initial() {
    use ff_partition::Partition;
    let g = random_geometric(40, 0.3, 6);
    let cfg = FusionFissionConfig::fast(3);
    let init = Partition::random(&g, 3, 42);
    let direct = FusionFission::with_initial(&g, cfg, 9, init.clone()).run();
    let via_solver = Solver::on(&g)
        .config(cfg)
        .initial(init)
        .islands(1)
        .island_seeds(vec![9])
        .run()
        .unwrap();
    assert_eq!(direct.best.assignment(), via_solver.best.assignment());
}

/// A single objective through `objectives([o])` is exactly
/// `objective(o)`.
#[test]
fn singleton_objectives_list_equals_objective() {
    let g = random_geometric(30, 0.35, 8);
    let a = Solver::on(&g)
        .k(3)
        .objective(Objective::Cut)
        .islands(2)
        .steps(800)
        .seed(2)
        .run()
        .unwrap();
    let b = Solver::on(&g)
        .k(3)
        .objectives([Objective::Cut])
        .islands(2)
        .steps(800)
        .seed(2)
        .run()
        .unwrap();
    assert_eq!(a.best.assignment(), b.best.assignment());
    assert_eq!(a.best_value, b.best_value);
}

// ---------------------------------------------------------------------------
// Multilevel: Solver::multilevel(…) — determinism, monotonicity, validation.
// ---------------------------------------------------------------------------

#[test]
fn multilevel_byte_identical_across_reruns_and_thread_caps() {
    use ff_engine::MultilevelOpts;
    let g = planted_partition(4, 120, 0.12, 0.004, 21);
    let run = |threads: usize| {
        Solver::on(&g)
            .k(4)
            .islands(3)
            .threads(threads)
            .steps(2_500)
            .seed(77)
            .multilevel(MultilevelOpts {
                coarsen_until: 80,
                ..Default::default()
            })
            .run()
            .unwrap()
    };
    let base = run(0);
    let info = base.multilevel.as_ref().expect("multilevel info attached");
    assert!(info.levels >= 1, "480 vertices must coarsen below 80");
    assert!(info.coarse_vertices <= 480);
    assert_eq!(base.best.num_vertices(), 480, "best is a fine partition");
    for threads in [1usize, 4] {
        let r = run(threads);
        assert_eq!(r.best.assignment(), base.best.assignment());
        assert_eq!(r.best_value, base.best_value);
        assert_eq!(r.steps, base.steps);
    }
}

#[test]
fn multilevel_refinement_monotone_for_every_objective() {
    use ff_engine::MultilevelOpts;
    let g = planted_partition(3, 100, 0.15, 0.005, 5);
    for obj in Objective::all() {
        let res = Solver::on(&g)
            .k(3)
            .objective(obj)
            .steps(2_000)
            .seed(13)
            .multilevel(MultilevelOpts {
                coarsen_until: 60,
                ..Default::default()
            })
            .run()
            .unwrap();
        let info = res.multilevel.expect("multilevel info");
        assert!(!info.reports.is_empty());
        for r in &info.reports {
            assert!(
                r.value_after <= r.value_before,
                "{obj} level {}: {} → {}",
                r.level,
                r.value_before,
                r.value_after
            );
        }
        // Reported final value matches the result and a fresh evaluation.
        let last = info.reports.last().unwrap();
        assert_eq!(last.level, 0);
        assert_eq!(last.value_after, res.best_value);
        let fresh = obj.evaluate(&g, &res.best);
        assert!((fresh - res.best_value).abs() < 1e-6);
    }
}

#[test]
fn multilevel_validation_and_start_rejection() {
    use ff_core::ConfigError;
    use ff_engine::MultilevelOpts;
    use ff_partition::Partition;
    let g = random_geometric(30, 0.3, 1);
    assert_eq!(
        Solver::on(&g)
            .k(2)
            .multilevel(MultilevelOpts {
                coarsen_until: 0,
                ..Default::default()
            })
            .run()
            .err(),
        Some(ConfigError::ZeroCoarsenTarget)
    );
    assert_eq!(
        Solver::on(&g)
            .k(2)
            .initial(Partition::block(&g, 2))
            .multilevel(MultilevelOpts::default())
            .run()
            .err(),
        Some(ConfigError::MultilevelWithInitial)
    );
    assert!(matches!(
        Solver::on(&g)
            .k(2)
            .multilevel(MultilevelOpts::default())
            .start()
            .err(),
        Some(ConfigError::MultilevelNotResumable)
    ));
}

#[test]
fn multilevel_small_graph_equals_flat_run() {
    use ff_engine::MultilevelOpts;
    // Input below the coarsening target: the pipeline degenerates to the
    // flat ensemble (zero levels), bit-for-bit.
    let g = random_geometric(50, 0.25, 3);
    let flat = Solver::on(&g).k(4).steps(1_500).seed(9).run().unwrap();
    let ml = Solver::on(&g)
        .k(4)
        .steps(1_500)
        .seed(9)
        .multilevel(MultilevelOpts::default())
        .run()
        .unwrap();
    let info = ml.multilevel.as_ref().unwrap();
    assert_eq!(info.levels, 0);
    assert_eq!(info.coarse_vertices, 50);
    assert_eq!(ml.best.assignment(), flat.best.assignment());
    assert_eq!(ml.best_value, flat.best_value);
    assert_eq!(ml.steps, flat.steps);
}

#[test]
fn multilevel_pareto_points_are_fine_and_non_dominated() {
    use ff_engine::MultilevelOpts;
    let g = planted_partition(3, 90, 0.15, 0.006, 11);
    let objs = [Objective::Cut, Objective::MCut];
    let res = Solver::on(&g)
        .k(3)
        .islands(4)
        .objectives(objs)
        .reduction(ParetoFront)
        .steps(2_000)
        .seed(31)
        .multilevel(MultilevelOpts {
            coarsen_until: 60,
            ..Default::default()
        })
        .run()
        .unwrap();
    let front = res.pareto.as_ref().expect("pareto front");
    assert_eq!(front.objectives, objs.to_vec());
    assert!(!front.points.is_empty());
    for a in &front.points {
        assert_eq!(a.partition.num_vertices(), 270, "fine-graph point");
        // values re-scored on the fine graph
        for (axis, &o) in front.objectives.iter().enumerate() {
            let fresh = o.evaluate(&g, &a.partition);
            assert!(
                (fresh - a.values[axis]).abs() < 1e-9
                    || (fresh.is_infinite() && a.values[axis].is_infinite())
            );
        }
        for b in &front.points {
            assert!(!dominates(&a.values, &b.values) || a.island == b.island);
        }
    }
    // Representative is the front's best under the first objective.
    let rep = front.best_under(objs[0]).unwrap();
    assert_eq!(res.best_island, rep.island);
    assert_eq!(res.best.assignment(), rep.partition.assignment());
    // Determinism of the whole pareto-multilevel pipeline.
    let rerun = Solver::on(&g)
        .k(3)
        .islands(4)
        .objectives(objs)
        .reduction(ParetoFront)
        .steps(2_000)
        .seed(31)
        .multilevel(MultilevelOpts {
            coarsen_until: 60,
            ..Default::default()
        })
        .run()
        .unwrap();
    assert_eq!(rerun.best.assignment(), res.best.assignment());
    assert_eq!(
        rerun.pareto.as_ref().unwrap().points.len(),
        front.points.len()
    );
}

#[test]
fn multilevel_polish_never_worsens_and_stays_deterministic() {
    use ff_engine::MultilevelOpts;
    let g = planted_partition(4, 80, 0.15, 0.005, 17);
    let run = |polish: u64| {
        Solver::on(&g)
            .k(4)
            .steps(1_500)
            .seed(23)
            .multilevel(MultilevelOpts {
                coarsen_until: 50,
                polish_steps: polish,
                ..Default::default()
            })
            .run()
            .unwrap()
    };
    let plain = run(0);
    let polished = run(1_000);
    assert!(polished.best_value <= plain.best_value);
    assert!(polished.steps > plain.steps, "polish steps are counted");
    let polished2 = run(1_000);
    assert_eq!(polished2.best.assignment(), polished.best.assignment());
    assert_eq!(polished2.best_value, polished.best_value);
}

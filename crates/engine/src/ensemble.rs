//! The island ensemble: N fusion–fission searches, lockstep epochs,
//! best-molecule migration, deterministic reduction.

use crate::seeds::derive_seeds;
use ff_core::{FusionFission, FusionFissionConfig, FusionFissionResult, FusionFissionRun};
use ff_graph::Graph;
use ff_metaheur::{AnytimeTrace, CancelToken, MetaheuristicResult};
use ff_partition::Partition;
use std::collections::BTreeMap;

/// Configuration for [`Ensemble`].
#[derive(Clone, Copy, Debug)]
pub struct EnsembleConfig {
    /// Number of independently seeded island searches (≥ 1).
    pub islands: usize,
    /// Concurrent OS threads per epoch; `0` means one per island. With
    /// fewer threads than islands, each epoch runs the islands in waves —
    /// results are identical for any cap when the stop condition is
    /// step-based (time-based budgets tick while later waves wait).
    pub max_threads: usize,
    /// Steps each island advances between barriers; at each barrier the
    /// globally best molecule is offered to every island. `0` disables
    /// migration (pure independent multi-start).
    pub migration_interval: u64,
    /// The per-island search configuration, including the per-island stop
    /// condition (a steps budget is per island, so total work scales with
    /// `islands`; a wall-clock budget runs the islands concurrently).
    pub base: FusionFissionConfig,
}

impl EnsembleConfig {
    /// Ensemble of `islands` searches over `base`, migrating every 1024
    /// steps, one thread per island.
    pub fn new(base: FusionFissionConfig, islands: usize) -> Self {
        EnsembleConfig {
            islands,
            max_threads: 0,
            migration_interval: 1024,
            base,
        }
    }

    /// Validates invariants; called by [`Ensemble::run`].
    pub fn validate(&self) {
        assert!(self.islands >= 1, "need at least one island");
        self.base.validate();
    }
}

/// Result of an ensemble run.
#[derive(Clone, Debug)]
pub struct EnsembleResult {
    /// Best partition across all islands (ties go to the lowest island
    /// index). It has exactly the target k non-empty parts whenever the
    /// winning island visited k at all; under a budget too tiny for that,
    /// it falls back to that island's best molecule at whatever part count
    /// it holds (same contract as [`FusionFissionResult::best`]).
    pub best: Partition,
    /// Objective value of [`EnsembleResult::best`]; always equal to the
    /// minimum of the islands' `best_value`s.
    pub best_value: f64,
    /// Index of the island that holds [`EnsembleResult::best`].
    pub best_island: usize,
    /// Every island's own result, in island order.
    pub islands: Vec<FusionFissionResult>,
    /// Ensemble-level best-so-far trace
    /// ([`AnytimeTrace::merged`] over the island traces).
    pub trace: AnytimeTrace,
    /// Total steps executed across all islands.
    pub steps: u64,
    /// How many migration offers were adopted (a foreign molecule strictly
    /// beat an island's own best).
    pub migrations_adopted: u64,
    /// Best value seen at every visited part count, min-merged across
    /// islands.
    pub best_value_per_k: BTreeMap<usize, f64>,
}

impl EnsembleResult {
    /// Converts into the common metaheuristic result shape.
    pub fn into_metaheuristic_result(self) -> MetaheuristicResult {
        MetaheuristicResult {
            best: self.best,
            best_value: self.best_value,
            steps: self.steps,
            trace: self.trace,
        }
    }
}

/// The parallel multi-seed ensemble runner. See the crate docs for the
/// execution model and determinism guarantees.
pub struct Ensemble<'g> {
    g: &'g Graph,
    cfg: EnsembleConfig,
    root_seed: u64,
}

/// Index of the minimum of `key(0..n)`, ties to the lowest index (strict
/// `<` never replaces on equality; NaN never wins).
fn argmin_by(n: usize, key: impl Fn(usize) -> f64) -> usize {
    let mut best = 0;
    for i in 1..n {
        if key(i) < key(best) {
            best = i;
        }
    }
    best
}

impl<'g> Ensemble<'g> {
    /// Prepares an ensemble on `g`. Island seeds are derived from
    /// `root_seed` with [`derive_seeds`].
    pub fn new(g: &'g Graph, cfg: EnsembleConfig, root_seed: u64) -> Self {
        Ensemble { g, cfg, root_seed }
    }

    /// Runs all islands to their stop conditions and reduces. Equivalent
    /// to [`Ensemble::start`] + [`EnsembleRun::advance_epoch`] to
    /// exhaustion + [`EnsembleRun::harvest`] — bit-equal, because both
    /// paths drive the same epoch code.
    pub fn run(&self) -> EnsembleResult {
        let mut run = self.start();
        while run.advance_epoch() {}
        run.harvest()
    }

    /// Builds the live, resumable ensemble. Drive it with
    /// [`EnsembleRun::advance_epoch`] — the seam that lets a serving
    /// layer interleave many ensembles cooperatively on a bounded worker
    /// pool instead of blocking a thread per ensemble until completion.
    pub fn start(&self) -> EnsembleRun<'g> {
        let cfg = &self.cfg;
        cfg.validate();
        let n = cfg.islands;
        let seeds = derive_seeds(self.root_seed, n);
        let runs: Vec<FusionFissionRun<'g>> = seeds
            .iter()
            .map(|&seed| FusionFission::new(self.g, cfg.base, seed).start())
            .collect();
        EnsembleRun {
            runs,
            cfg: *cfg,
            migrations_adopted: 0,
        }
    }
}

/// A live island ensemble that can be advanced one migration epoch at a
/// time. Produced by [`Ensemble::start`]; the epoch layout, migration
/// reduction and determinism guarantees are exactly those of
/// [`Ensemble::run`] (which is implemented on top of this type).
pub struct EnsembleRun<'g> {
    runs: Vec<FusionFissionRun<'g>>,
    cfg: EnsembleConfig,
    migrations_adopted: u64,
}

impl<'g> EnsembleRun<'g> {
    /// One epoch: every island advances `migration_interval` steps (in
    /// waves of at most `max_threads` scoped threads), then the globally
    /// best molecule is offered to every island. Returns `true` while at
    /// least one island has work left (i.e. call again), `false` once all
    /// islands hit their stop conditions or a bound [`CancelToken`] fired.
    pub fn advance_epoch(&mut self) -> bool {
        let cfg = &self.cfg;
        let n = self.runs.len();
        let chunk = if cfg.migration_interval == 0 {
            u64::MAX
        } else {
            cfg.migration_interval
        };
        let cap = if cfg.max_threads == 0 {
            n
        } else {
            cfg.max_threads.max(1)
        };
        // One epoch: every island advances `chunk` steps, in waves of at
        // most `cap` threads. Each island's state evolution depends only
        // on its own seed and past injections, so wave layout cannot
        // change results.
        let mut more = vec![false; n];
        for (wave, flags) in self.runs.chunks_mut(cap).zip(more.chunks_mut(cap)) {
            std::thread::scope(|scope| {
                for (run, flag) in wave.iter_mut().zip(flags.iter_mut()) {
                    scope.spawn(move || {
                        *flag = run.advance(chunk);
                    });
                }
            });
        }
        if !more.iter().any(|&b| b) {
            return false;
        }
        // Barrier reached: migrate the globally best molecule. Islands
        // already at or below the donor's energy would reject the offer,
        // so skip them up front and spare the O(m) re-scoring `inject`
        // performs for candidates it actually considers.
        if n > 1 && cfg.migration_interval > 0 {
            let donor = argmin_by(n, |i| self.runs[i].best_energy());
            let donor_energy = self.runs[donor].best_energy();
            let molecule = self.runs[donor].best_molecule().clone();
            for (i, run) in self.runs.iter_mut().enumerate() {
                if i != donor && run.best_energy() > donor_energy && run.inject(&molecule) {
                    self.migrations_adopted += 1;
                }
            }
        }
        true
    }

    /// Binds one cooperative cancellation token to every island: when it
    /// fires, the in-flight epoch ends at each island's next step check
    /// and [`advance_epoch`](EnsembleRun::advance_epoch) returns `false`.
    pub fn bind_cancel(&mut self, token: CancelToken) {
        for run in &mut self.runs {
            run.bind_cancel(token.clone());
        }
    }

    /// The live island runs, in island order — read-only access for
    /// streaming taps (each island's
    /// [`trace`](FusionFissionRun::trace) is the per-island improvement
    /// stream).
    pub fn islands(&self) -> &[FusionFissionRun<'g>] {
        &self.runs
    }

    /// Whether every island has finished (stop condition or cancellation).
    pub fn finished(&self) -> bool {
        self.runs.iter().all(|r| r.finished())
    }

    /// Total steps executed so far across all islands.
    pub fn total_steps(&self) -> u64 {
        self.runs.iter().map(|r| r.steps()).sum()
    }

    /// Migration offers adopted so far.
    pub fn migrations_adopted(&self) -> u64 {
        self.migrations_adopted
    }

    /// Best objective value held at the target k so far, minimized across
    /// islands (`None` until some island first visits the target k).
    pub fn best_value_at_target(&self) -> Option<f64> {
        self.runs
            .iter()
            .filter_map(|r| r.best_at_target().map(|(v, _)| v))
            .min_by(f64::total_cmp)
    }

    /// Consumes the ensemble, harvesting every island and reducing.
    pub fn harvest(self) -> EnsembleResult {
        let n = self.runs.len();
        let islands: Vec<FusionFissionResult> =
            self.runs.into_iter().map(|r| r.harvest()).collect();
        let best_island = argmin_by(n, |i| islands[i].best_value);
        let trace = AnytimeTrace::merged(islands.iter().map(|r| &r.trace));
        let mut best_value_per_k = BTreeMap::new();
        for r in &islands {
            for (&k, &v) in &r.best_value_per_k {
                let entry = best_value_per_k.entry(k).or_insert(f64::INFINITY);
                if v < *entry {
                    *entry = v;
                }
            }
        }
        EnsembleResult {
            best: islands[best_island].best.clone(),
            best_value: islands[best_island].best_value,
            best_island,
            steps: islands.iter().map(|r| r.steps).sum(),
            migrations_adopted: self.migrations_adopted,
            trace,
            best_value_per_k,
            islands,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_graph::generators::{planted_partition, random_geometric, two_cliques_bridge};
    use ff_metaheur::StopCondition;

    fn fast_cfg(k: usize, islands: usize) -> EnsembleConfig {
        let mut cfg = EnsembleConfig::new(FusionFissionConfig::fast(k), islands);
        cfg.migration_interval = 300;
        cfg
    }

    #[test]
    fn single_island_matches_plain_fusion_fission() {
        let g = random_geometric(50, 0.25, 3);
        let cfg = fast_cfg(4, 1);
        let ens = Ensemble::new(&g, cfg, 11).run();
        let seed = derive_seeds(11, 1)[0];
        let solo = FusionFission::new(&g, cfg.base, seed).run();
        assert_eq!(ens.best.assignment(), solo.best.assignment());
        assert_eq!(ens.best_value, solo.best_value);
        assert_eq!(ens.steps, solo.steps);
        assert_eq!(ens.migrations_adopted, 0);
    }

    #[test]
    fn byte_identical_across_runs_and_thread_caps() {
        let g = random_geometric(60, 0.25, 7);
        for islands in [1usize, 4] {
            let mut results = Vec::new();
            for max_threads in [0usize, 1, 2] {
                let mut cfg = fast_cfg(4, islands);
                cfg.max_threads = max_threads;
                results.push(Ensemble::new(&g, cfg, 99).run());
            }
            for r in &results[1..] {
                assert_eq!(r.best.assignment(), results[0].best.assignment());
                assert_eq!(r.best_value, results[0].best_value);
                assert_eq!(r.steps, results[0].steps);
                assert_eq!(r.migrations_adopted, results[0].migrations_adopted);
                assert_eq!(r.best_value_per_k, results[0].best_value_per_k);
            }
        }
    }

    #[test]
    fn best_is_min_over_islands() {
        let g = planted_partition(4, 10, 0.85, 0.03, 5);
        let res = Ensemble::new(&g, fast_cfg(4, 4), 2).run();
        assert_eq!(res.islands.len(), 4);
        let min = res
            .islands
            .iter()
            .map(|r| r.best_value)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(res.best_value, min);
        assert_eq!(res.best_value, res.islands[res.best_island].best_value);
        assert!(res.best.validate(&g));
        assert_eq!(res.best.num_nonempty_parts(), 4);
        assert_eq!(res.steps, res.islands.iter().map(|r| r.steps).sum::<u64>());
    }

    #[test]
    fn ensemble_never_loses_to_its_worst_island() {
        let g = two_cliques_bridge(8, 2.0, 0.1);
        let res = Ensemble::new(&g, fast_cfg(2, 3), 5).run();
        for island in &res.islands {
            assert!(res.best_value <= island.best_value);
        }
        // On this instance every island should find the bridge-only cut.
        assert!((res.best_value - 2.0 * (0.1 / 112.0)).abs() < 1e-9);
    }

    #[test]
    fn migration_disabled_is_pure_multistart() {
        let g = random_geometric(50, 0.25, 3);
        let mut cfg = fast_cfg(3, 3);
        cfg.migration_interval = 0;
        let ens = Ensemble::new(&g, cfg, 8).run();
        assert_eq!(ens.migrations_adopted, 0);
        // Each island must equal its own independent run.
        for (i, &seed) in derive_seeds(8, 3).iter().enumerate() {
            let solo = FusionFission::new(&g, cfg.base, seed).run();
            assert_eq!(ens.islands[i].best.assignment(), solo.best.assignment());
        }
    }

    #[test]
    fn merged_trace_is_monotone_and_reaches_best() {
        let g = random_geometric(60, 0.25, 4);
        let res = Ensemble::new(&g, fast_cfg(4, 4), 3).run();
        let pts = res.trace.points();
        assert!(!pts.is_empty());
        for w in pts.windows(2) {
            assert!(w[1].value < w[0].value);
        }
        assert_eq!(res.trace.final_value(), Some(res.best_value));
    }

    #[test]
    fn respects_per_island_step_budget() {
        let g = random_geometric(40, 0.3, 2);
        let mut cfg = fast_cfg(3, 3);
        cfg.base.stop = StopCondition::steps(500);
        let res = Ensemble::new(&g, cfg, 1).run();
        for island in &res.islands {
            assert!(island.steps <= 500);
        }
        assert!(res.steps <= 1500);
    }

    #[test]
    fn manual_epoch_drive_matches_run() {
        let g = random_geometric(60, 0.25, 7);
        let cfg = fast_cfg(4, 3);
        let oneshot = Ensemble::new(&g, cfg, 99).run();
        let mut run = Ensemble::new(&g, cfg, 99).start();
        let mut epochs = 0;
        while run.advance_epoch() {
            epochs += 1;
            assert!(run.total_steps() > 0);
        }
        assert!(epochs > 1, "budget should span several epochs");
        assert!(run.finished());
        let manual = run.harvest();
        assert_eq!(manual.best.assignment(), oneshot.best.assignment());
        assert_eq!(manual.best_value, oneshot.best_value);
        assert_eq!(manual.steps, oneshot.steps);
        assert_eq!(manual.migrations_adopted, oneshot.migrations_adopted);
        assert_eq!(manual.best_value_per_k, oneshot.best_value_per_k);
    }

    #[test]
    fn cancel_stops_every_island_and_harvests_best_so_far() {
        use ff_metaheur::CancelToken;
        let g = random_geometric(60, 0.25, 4);
        let mut cfg = fast_cfg(4, 3);
        cfg.base.stop = StopCondition::steps(u64::MAX); // unbounded: only cancel stops it
        cfg.max_threads = 1;
        let mut run = Ensemble::new(&g, cfg, 3).start();
        let token = CancelToken::new();
        run.bind_cancel(token.clone());
        assert!(run.advance_epoch(), "not cancelled yet");
        let steps_before = run.total_steps();
        token.cancel();
        assert!(!run.advance_epoch(), "cancelled ensemble must stop");
        assert!(run.finished());
        assert_eq!(run.total_steps(), steps_before);
        let res = run.harvest();
        assert!(res.best.validate(&g));
        assert!(res.best_value.is_finite());
        assert_eq!(res.steps, steps_before);
    }

    #[test]
    fn best_value_at_target_tracks_the_min_island() {
        let g = two_cliques_bridge(8, 2.0, 0.1);
        let mut run = Ensemble::new(&g, fast_cfg(2, 2), 5).start();
        while run.advance_epoch() {}
        let live_best = run.best_value_at_target().expect("target k visited");
        let res = run.harvest();
        assert_eq!(live_best, res.best_value);
    }

    #[test]
    #[should_panic(expected = "at least one island")]
    fn zero_islands_panics() {
        let g = random_geometric(10, 0.5, 1);
        Ensemble::new(&g, fast_cfg(2, 0), 1).run();
    }
}

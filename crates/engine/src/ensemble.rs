//! The historical ensemble entry points, now thin shims over the
//! [`Solver`] builder, plus the shared [`EnsembleResult`] type.
//!
//! [`Ensemble`]/[`EnsembleConfig`] predate the pluggable
//! [`MigrationPolicy`](crate::MigrationPolicy)/
//! [`Reduction`](crate::Reduction) seams: they hard-wire replace-if-better
//! migration and the min-energy reduction. They are kept (deprecated) so
//! existing callers keep compiling, and their output is bit-equal to the
//! equivalent `Solver` chain — asserted by the tests below.

use crate::migration::ReplaceIfBetter;
use crate::reduction::{MinEnergy, ParetoResult};
use crate::solver::{Solver, SolverRun};
use ff_core::{ConfigError, FusionFissionConfig, FusionFissionResult};
use ff_graph::Graph;
use ff_metaheur::{AnytimeTrace, MetaheuristicResult};
use ff_partition::Partition;
use std::collections::BTreeMap;

/// Configuration for the deprecated [`Ensemble`] shim. New code states
/// the same things fluently on [`Solver`].
#[derive(Clone, Copy, Debug)]
pub struct EnsembleConfig {
    /// Number of independently seeded island searches (≥ 1).
    pub islands: usize,
    /// Concurrent OS threads per epoch; `0` means one per island. With
    /// fewer threads than islands, each epoch runs the islands in waves —
    /// results are identical for any cap when the stop condition is
    /// step-based (time-based budgets tick while later waves wait).
    pub max_threads: usize,
    /// Steps each island advances between barriers; at each barrier the
    /// globally best molecule is offered to every island. `0` disables
    /// migration (pure independent multi-start).
    pub migration_interval: u64,
    /// The per-island search configuration, including the per-island stop
    /// condition (a steps budget is per island, so total work scales with
    /// `islands`; a wall-clock budget runs the islands concurrently).
    pub base: FusionFissionConfig,
}

impl EnsembleConfig {
    /// Ensemble of `islands` searches over `base`, migrating every 1024
    /// steps, one thread per island.
    pub fn new(base: FusionFissionConfig, islands: usize) -> Self {
        EnsembleConfig {
            islands,
            max_threads: 0,
            migration_interval: 1024,
            base,
        }
    }

    /// Validates invariants as a typed result.
    pub fn try_validate(&self) -> Result<(), ConfigError> {
        if self.islands < 1 {
            return Err(ConfigError::ZeroIslands);
        }
        self.base.try_validate()
    }

    /// Validates invariants, panicking on violation.
    #[deprecated(
        since = "0.2.0",
        note = "use `try_validate` and handle the ConfigError"
    )]
    pub fn validate(&self) {
        if let Err(e) = self.try_validate() {
            panic!("{e}");
        }
    }

    /// The equivalent [`Solver`] chain (replace-if-better migration,
    /// min-energy reduction — exactly the behavior this type hard-wired).
    pub fn solver<'g>(&self, g: &'g Graph, root_seed: u64) -> Solver<'g> {
        Solver::on(g)
            .config(self.base)
            .islands(self.islands)
            .threads(self.max_threads)
            .migration_interval(self.migration_interval)
            .migration(ReplaceIfBetter)
            .reduction(MinEnergy)
            .seed(root_seed)
    }
}

/// Result of an ensemble / solver run.
#[derive(Clone, Debug)]
pub struct EnsembleResult {
    /// Best partition across all islands per the configured reduction
    /// (min-energy: lowest value, ties to the lowest island index;
    /// Pareto: the front's representative under the first objective). It
    /// has exactly the target k non-empty parts whenever the winning
    /// island visited k at all; under a budget too tiny for that, it
    /// falls back to that island's best molecule at whatever part count
    /// it holds (same contract as [`FusionFissionResult::best`]).
    pub best: Partition,
    /// Objective value of [`EnsembleResult::best`] under the winning
    /// island's own objective.
    pub best_value: f64,
    /// Index of the island that holds [`EnsembleResult::best`].
    pub best_island: usize,
    /// Every island's own result, in island order.
    pub islands: Vec<FusionFissionResult>,
    /// Ensemble-level best-so-far trace
    /// ([`AnytimeTrace::merged`] over the island traces of the primary —
    /// first — objective).
    pub trace: AnytimeTrace,
    /// Total steps executed across all islands.
    pub steps: u64,
    /// How many migration offers were adopted (a foreign molecule strictly
    /// beat an island's own best).
    pub migrations_adopted: u64,
    /// Best value seen at every visited part count, min-merged across the
    /// primary objective's islands.
    pub best_value_per_k: BTreeMap<usize, f64>,
    /// The deterministic non-dominated front, when the run used the
    /// [`ParetoFront`](crate::ParetoFront) reduction. Under
    /// [`Solver::multilevel`](crate::Solver::multilevel) the points are
    /// fine-graph partitions (each refined under its own objective and
    /// re-scored on the input graph).
    pub pareto: Option<ParetoResult>,
    /// What the multilevel pipeline did, when the run used
    /// [`Solver::multilevel`](crate::Solver::multilevel). `best`,
    /// `best_value` and `pareto` are then fine-graph quantities, while
    /// `islands`, `trace` and `best_value_per_k` describe the coarse
    /// search.
    pub multilevel: Option<crate::MultilevelInfo>,
}

impl EnsembleResult {
    /// Converts into the common metaheuristic result shape.
    pub fn into_metaheuristic_result(self) -> MetaheuristicResult {
        MetaheuristicResult {
            best: self.best,
            best_value: self.best_value,
            steps: self.steps,
            trace: self.trace,
        }
    }
}

/// The pre-builder ensemble runner: hard-wired replace-if-better
/// migration and min-energy reduction.
#[deprecated(
    since = "0.2.0",
    note = "use the `Solver` builder: `Solver::on(g).k(…).islands(…).seed(…)`"
)]
pub struct Ensemble<'g> {
    g: &'g Graph,
    cfg: EnsembleConfig,
    root_seed: u64,
}

/// The live ensemble run. [`SolverRun`] is the same type; the alias is
/// kept for source compatibility.
#[deprecated(since = "0.2.0", note = "use `SolverRun`")]
pub type EnsembleRun<'g> = SolverRun<'g>;

#[allow(deprecated)]
impl<'g> Ensemble<'g> {
    /// Prepares an ensemble on `g`. Island seeds are derived from
    /// `root_seed` with [`crate::derive_seeds`].
    pub fn new(g: &'g Graph, cfg: EnsembleConfig, root_seed: u64) -> Self {
        Ensemble { g, cfg, root_seed }
    }

    /// Runs all islands to their stop conditions and reduces.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration (the historical contract; the
    /// `Solver` path returns the error instead).
    pub fn run(&self) -> EnsembleResult {
        let mut run = self.start();
        while run.advance_epoch() {}
        run.harvest()
    }

    /// Builds the live, resumable ensemble.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration.
    pub fn start(&self) -> SolverRun<'g> {
        match self.cfg.solver(self.g, self.root_seed).start() {
            Ok(run) => run,
            Err(e) => panic!("{e}"),
        }
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::seeds::derive_seeds;
    use ff_core::FusionFission;
    use ff_graph::generators::{planted_partition, random_geometric, two_cliques_bridge};
    use ff_metaheur::StopCondition;

    fn fast_cfg(k: usize, islands: usize) -> EnsembleConfig {
        let mut cfg = EnsembleConfig::new(FusionFissionConfig::fast(k), islands);
        cfg.migration_interval = 300;
        cfg
    }

    #[test]
    fn single_island_matches_plain_fusion_fission() {
        let g = random_geometric(50, 0.25, 3);
        let cfg = fast_cfg(4, 1);
        let ens = Ensemble::new(&g, cfg, 11).run();
        let seed = derive_seeds(11, 1)[0];
        let solo = FusionFission::new(&g, cfg.base, seed).run();
        assert_eq!(ens.best.assignment(), solo.best.assignment());
        assert_eq!(ens.best_value, solo.best_value);
        assert_eq!(ens.steps, solo.steps);
        assert_eq!(ens.migrations_adopted, 0);
        assert!(ens.pareto.is_none());
    }

    #[test]
    fn byte_identical_across_runs_and_thread_caps() {
        let g = random_geometric(60, 0.25, 7);
        for islands in [1usize, 4] {
            let mut results = Vec::new();
            for max_threads in [0usize, 1, 2] {
                let mut cfg = fast_cfg(4, islands);
                cfg.max_threads = max_threads;
                results.push(Ensemble::new(&g, cfg, 99).run());
            }
            for r in &results[1..] {
                assert_eq!(r.best.assignment(), results[0].best.assignment());
                assert_eq!(r.best_value, results[0].best_value);
                assert_eq!(r.steps, results[0].steps);
                assert_eq!(r.migrations_adopted, results[0].migrations_adopted);
                assert_eq!(r.best_value_per_k, results[0].best_value_per_k);
            }
        }
    }

    #[test]
    fn best_is_min_over_islands() {
        let g = planted_partition(4, 10, 0.85, 0.03, 5);
        let res = Ensemble::new(&g, fast_cfg(4, 4), 2).run();
        assert_eq!(res.islands.len(), 4);
        let min = res
            .islands
            .iter()
            .map(|r| r.best_value)
            .fold(f64::INFINITY, f64::min);
        assert_eq!(res.best_value, min);
        assert_eq!(res.best_value, res.islands[res.best_island].best_value);
        assert!(res.best.validate(&g));
        assert_eq!(res.best.num_nonempty_parts(), 4);
        assert_eq!(res.steps, res.islands.iter().map(|r| r.steps).sum::<u64>());
    }

    #[test]
    fn ensemble_never_loses_to_its_worst_island() {
        let g = two_cliques_bridge(8, 2.0, 0.1);
        let res = Ensemble::new(&g, fast_cfg(2, 3), 5).run();
        for island in &res.islands {
            assert!(res.best_value <= island.best_value);
        }
        // On this instance every island should find the bridge-only cut.
        assert!((res.best_value - 2.0 * (0.1 / 112.0)).abs() < 1e-9);
    }

    #[test]
    fn migration_disabled_is_pure_multistart() {
        let g = random_geometric(50, 0.25, 3);
        let mut cfg = fast_cfg(3, 3);
        cfg.migration_interval = 0;
        let ens = Ensemble::new(&g, cfg, 8).run();
        assert_eq!(ens.migrations_adopted, 0);
        // Each island must equal its own independent run.
        for (i, &seed) in derive_seeds(8, 3).iter().enumerate() {
            let solo = FusionFission::new(&g, cfg.base, seed).run();
            assert_eq!(ens.islands[i].best.assignment(), solo.best.assignment());
        }
    }

    #[test]
    fn merged_trace_is_monotone_and_reaches_best() {
        let g = random_geometric(60, 0.25, 4);
        let res = Ensemble::new(&g, fast_cfg(4, 4), 3).run();
        let pts = res.trace.points();
        assert!(!pts.is_empty());
        for w in pts.windows(2) {
            assert!(w[1].value < w[0].value);
        }
        assert_eq!(res.trace.final_value(), Some(res.best_value));
    }

    #[test]
    fn respects_per_island_step_budget() {
        let g = random_geometric(40, 0.3, 2);
        let mut cfg = fast_cfg(3, 3);
        cfg.base.stop = StopCondition::steps(500);
        let res = Ensemble::new(&g, cfg, 1).run();
        for island in &res.islands {
            assert!(island.steps <= 500);
        }
        assert!(res.steps <= 1500);
    }

    #[test]
    fn manual_epoch_drive_matches_run() {
        let g = random_geometric(60, 0.25, 7);
        let cfg = fast_cfg(4, 3);
        let oneshot = Ensemble::new(&g, cfg, 99).run();
        let mut run = Ensemble::new(&g, cfg, 99).start();
        let mut epochs = 0;
        while run.advance_epoch() {
            epochs += 1;
            assert!(run.total_steps() > 0);
        }
        assert!(epochs > 1, "budget should span several epochs");
        assert!(run.finished());
        let manual = run.harvest();
        assert_eq!(manual.best.assignment(), oneshot.best.assignment());
        assert_eq!(manual.best_value, oneshot.best_value);
        assert_eq!(manual.steps, oneshot.steps);
        assert_eq!(manual.migrations_adopted, oneshot.migrations_adopted);
        assert_eq!(manual.best_value_per_k, oneshot.best_value_per_k);
    }

    #[test]
    fn cancel_stops_every_island_and_harvests_best_so_far() {
        use ff_metaheur::CancelToken;
        let g = random_geometric(60, 0.25, 4);
        let mut cfg = fast_cfg(4, 3);
        cfg.base.stop = StopCondition::steps(u64::MAX); // unbounded: only cancel stops it
        cfg.max_threads = 1;
        let mut run = Ensemble::new(&g, cfg, 3).start();
        let token = CancelToken::new();
        run.bind_cancel(token.clone());
        assert!(run.advance_epoch(), "not cancelled yet");
        let steps_before = run.total_steps();
        token.cancel();
        assert!(!run.advance_epoch(), "cancelled ensemble must stop");
        assert!(run.finished());
        assert_eq!(run.total_steps(), steps_before);
        let res = run.harvest();
        assert!(res.best.validate(&g));
        assert!(res.best_value.is_finite());
        assert_eq!(res.steps, steps_before);
    }

    #[test]
    fn best_value_at_target_tracks_the_min_island() {
        let g = two_cliques_bridge(8, 2.0, 0.1);
        let mut run = Ensemble::new(&g, fast_cfg(2, 2), 5).start();
        while run.advance_epoch() {}
        let live_best = run.best_value_at_target().expect("target k visited");
        let res = run.harvest();
        assert_eq!(live_best, res.best_value);
    }

    #[test]
    #[should_panic(expected = "at least one island")]
    fn zero_islands_panics() {
        let g = random_geometric(10, 0.5, 1);
        Ensemble::new(&g, fast_cfg(2, 0), 1).run();
    }
}

//! Engine-side observability: registry handles and the observing
//! migration-policy wrapper behind [`Solver::observe`](crate::Solver::observe).
//!
//! Everything here is **observation-only**: the wrapper delegates
//! `name`/`interval`/`plan` verbatim and relies on the trait-default
//! `exchange` body (which no in-repo policy overrides), so the decision
//! stream — and therefore every partition byte — is identical with and
//! without observation. The test suite pins that contract.

use crate::migration::{IslandStatus, MigrationOffer, MigrationPolicy};
use ff_core::FusionFissionRun;
use ff_multilevel::LevelReport;
use ff_obs::{Counter, Histogram, Registry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Upper bounds (ms) for epoch-advance and per-level refine timings.
const TIMING_BUCKET_MS: [f64; 5] = [1.0, 10.0, 100.0, 1000.0, 10000.0];

/// Upper bounds for trace-point improvement deltas (objective units).
const IMPROVEMENT_BUCKETS: [f64; 5] = [1e-4, 1e-3, 1e-2, 1e-1, 1.0];

/// Per-run registry handles plus the trace cursors that turn each
/// island's improvement stream into observed deltas exactly once.
pub(crate) struct EngineObs {
    epochs: Counter,
    epoch_ms: Histogram,
    accepts: Counter,
    rejects: Counter,
    improvement: Histogram,
    /// Receiver pairs planned by the policy since the last epoch record;
    /// shared with the [`ObservedPolicy`] that fills it during `plan`.
    planned: Arc<AtomicU64>,
    /// Per-island count of trace points already observed.
    cursors: Vec<usize>,
    /// Per-island last trace value, the minuend of the next delta.
    last_value: Vec<Option<f64>>,
}

impl EngineObs {
    /// Registers the engine metric families on `registry` (idempotent —
    /// several runs may share one registry) and returns fresh handles.
    pub(crate) fn new(registry: &Registry, policy: &'static str, islands: usize) -> EngineObs {
        let labels = [("policy", policy)];
        EngineObs {
            epochs: registry.counter("ff_engine_epochs_total", "Epoch barriers crossed"),
            epoch_ms: registry.histogram(
                "ff_engine_epoch_ms",
                "Wall-clock milliseconds per epoch (island waves + exchange)",
                &TIMING_BUCKET_MS,
            ),
            accepts: registry.counter_with(
                "ff_engine_migration_accepts_total",
                "Planned migration injections the receiver adopted",
                &labels,
            ),
            rejects: registry.counter_with(
                "ff_engine_migration_rejects_total",
                "Planned migration injections the receiver declined",
                &labels,
            ),
            improvement: registry.histogram(
                "ff_engine_improvement_delta",
                "Objective improvement per island trace point",
                &IMPROVEMENT_BUCKETS,
            ),
            planned: Arc::new(AtomicU64::new(0)),
            cursors: vec![0; islands],
            last_value: vec![None; islands],
        }
    }

    /// Wraps `inner` so its `plan` calls feed the offer/pair counters.
    pub(crate) fn wrap(
        &self,
        registry: &Registry,
        inner: Box<dyn MigrationPolicy>,
    ) -> Box<dyn MigrationPolicy> {
        let offers = registry.counter_with(
            "ff_engine_migration_offers_total",
            "Migration offers the policy planned at exchange barriers",
            &[("policy", inner.name())],
        );
        Box::new(ObservedPolicy {
            inner,
            offers,
            planned: self.planned.clone(),
        })
    }

    /// Records one epoch: timing, accept/reject accounting against the
    /// pairs planned since the last record, and any new trace points.
    pub(crate) fn record_epoch(
        &mut self,
        elapsed: Duration,
        adopted: u64,
        runs: &[FusionFissionRun<'_>],
    ) {
        self.epochs.inc();
        self.epoch_ms.observe(elapsed.as_secs_f64() * 1e3);
        let planned = self.planned.swap(0, Ordering::Relaxed);
        self.accepts.add(adopted);
        self.rejects.add(planned.saturating_sub(adopted));
        for (i, run) in runs.iter().enumerate() {
            let fresh = run.trace().points_since(self.cursors[i]);
            for pt in fresh {
                if let Some(prev) = self.last_value[i] {
                    let delta = prev - pt.value;
                    if delta.is_finite() && delta >= 0.0 {
                        self.improvement.observe(delta);
                    }
                }
                self.last_value[i] = Some(pt.value);
            }
            self.cursors[i] += fresh.len();
        }
    }
}

/// Records per-level V-cycle refinement work from [`LevelReport`]s.
pub(crate) fn record_level_reports(registry: &Registry, reports: &[LevelReport]) {
    let refine_ms = registry.histogram(
        "ff_engine_level_refine_ms",
        "Wall-clock milliseconds per uncoarsening level (projection + refinement)",
        &TIMING_BUCKET_MS,
    );
    let moves = registry.counter(
        "ff_engine_refine_moves_total",
        "Vertex moves applied by the per-level greedy refiner",
    );
    for r in reports {
        refine_ms.observe(r.refine_ms as f64);
        moves.add(r.moves as u64);
    }
}

/// Counts offers/pairs during `plan` and otherwise delegates. The
/// trait-default `exchange` routes through this `plan`, so execution is
/// bit-identical to the unwrapped policy's.
struct ObservedPolicy {
    inner: Box<dyn MigrationPolicy>,
    offers: Counter,
    planned: Arc<AtomicU64>,
}

impl MigrationPolicy for ObservedPolicy {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn interval(&mut self, base: u64) -> u64 {
        self.inner.interval(base)
    }

    fn plan(&mut self, islands: &[IslandStatus]) -> Vec<MigrationOffer> {
        let offers = self.inner.plan(islands);
        self.offers.add(offers.len() as u64);
        let pairs: u64 = offers.iter().map(|o| o.receivers.len() as u64).sum();
        self.planned.fetch_add(pairs, Ordering::Relaxed);
        offers
    }
}

//! # ff-engine — the pluggable fusion–fission solver engine
//!
//! The paper's search is restart-friendly by construction: it reheats from
//! the best molecule whenever the temperature freezes, so it loses nothing
//! by being told, mid-run, about a better molecule someone *else* found.
//! This crate exploits that with island/ensemble parallelism in the style
//! of KaFFPaE (Sanders & Schulz, *Distributed Evolutionary Graph
//! Partitioning*), configured through one front door — the [`Solver`]
//! builder — with two strategy seams:
//!
//! * a [`MigrationPolicy`] decides *what* moves between islands at each
//!   epoch barrier and *when* the next barrier happens —
//!   [`ReplaceIfBetter`] (offer the best molecule, adopt if strictly
//!   better), [`Combine`] (KaFFPaE-style overlap crossover via
//!   [`ff_core::overlap_combine`]), [`Adaptive`] (stagnation-driven
//!   interval stretching);
//! * a [`Reduction`] turns harvested islands into one result —
//!   [`MinEnergy`] (lowest value wins) or [`ParetoFront`] (islands may
//!   optimize *different* objectives; the deterministic non-dominated
//!   front survives as a [`ParetoResult`]).
//!
//! In the paper's vocabulary, an **island** is a separate beaker running
//! its own reaction chain; **migration** pours the most stable molecule
//! found so far into every other beaker (or, under [`Combine`], titrates
//! the two molecules together first).
//!
//! ## Determinism
//!
//! Results are reproducible regardless of thread scheduling, for every
//! policy:
//!
//! * per-island seeds are derived from one root seed with SplitMix64
//!   ([`derive_seeds`]), so island i's stream never depends on how many
//!   threads executed it,
//! * islands advance in lockstep **epochs** with a barrier between them;
//!   policies act only on barrier-time island state and consume no RNG,
//!   wall-clock or thread identity,
//! * reductions are deterministic functions of the harvested islands
//!   (ties broken by island index), insensitive to harvest order.
//!
//! With a step-based [`ff_metaheur::StopCondition`] the solver's output is
//! therefore byte-identical across repeated runs and across any
//! [`Solver::threads`] cap. Wall-clock stop conditions keep every
//! *structural* guarantee but naturally cut each island at a
//! machine-dependent step count.
//!
//! ## Replace-if-better (the default)
//!
//! ```
//! use ff_engine::Solver;
//! use ff_graph::generators::planted_partition;
//!
//! let g = planted_partition(4, 10, 0.85, 0.03, 5);
//! let a = Solver::on(&g).k(4).islands(4).steps(1_500).seed(42).run().unwrap();
//! let b = Solver::on(&g).k(4).islands(4).steps(1_500).seed(42).run().unwrap();
//! assert_eq!(a.best.assignment(), b.best.assignment());
//! // The min-energy reduction keeps the best island.
//! let island_min = a.islands.iter().map(|r| r.best_value).fold(f64::INFINITY, f64::min);
//! assert_eq!(a.best_value, island_min);
//! ```
//!
//! ## Combine (KaFFPaE-style crossover)
//!
//! ```
//! use ff_engine::{Combine, Solver};
//! use ff_graph::generators::planted_partition;
//!
//! let g = planted_partition(4, 10, 0.85, 0.03, 5);
//! let run = |threads| {
//!     Solver::on(&g)
//!         .k(4)
//!         .islands(3)
//!         .migration(Combine)
//!         .migration_interval(300)
//!         .steps(1_500)
//!         .seed(7)
//!         .threads(threads)
//!         .run()
//!         .unwrap()
//! };
//! // Byte-identical across thread caps, crossover included.
//! assert_eq!(run(0).best.assignment(), run(1).best.assignment());
//! ```
//!
//! ## Adaptive migration intervals
//!
//! ```
//! use ff_engine::{Adaptive, Solver};
//! use ff_graph::generators::planted_partition;
//!
//! let g = planted_partition(4, 10, 0.85, 0.03, 5);
//! let res = Solver::on(&g)
//!     .k(4)
//!     .islands(3)
//!     .migration(Adaptive::new(2, 8)) // patience 2 barriers, ≤ 8× interval
//!     .migration_interval(200)
//!     .steps(1_500)
//!     .seed(3)
//!     .run()
//!     .unwrap();
//! assert_eq!(res.best.num_nonempty_parts(), 4);
//! ```
//!
//! ## Multi-objective Pareto ensembles
//!
//! ```
//! use ff_engine::{ParetoFront, Solver};
//! use ff_graph::generators::planted_partition;
//! use ff_partition::{dominates, Objective};
//!
//! let g = planted_partition(4, 10, 0.85, 0.03, 5);
//! let res = Solver::on(&g)
//!     .k(4)
//!     .islands(4) // cycles over the objective list: cut, ncut, cut, ncut
//!     .objectives([Objective::Cut, Objective::NCut])
//!     .reduction(ParetoFront)
//!     .steps(1_500)
//!     .seed(11)
//!     .run()
//!     .unwrap();
//! let front = res.pareto.expect("pareto reduction ran");
//! assert!(!front.points.is_empty());
//! for a in &front.points {
//!     for b in &front.points {
//!         assert!(a.island == b.island || !dominates(&a.values, &b.values));
//!     }
//! }
//! ```
//!
//! ## Multilevel acceleration (the big-graph path)
//!
//! [`Solver::multilevel`] coarsens the input by heavy-edge matching, runs
//! the unchanged ensemble on the coarse graph, then uncoarsens level by
//! level with greedy refinement ([`ff_multilevel::Vcycle`]). Same
//! determinism contract; steps cost a fraction of their flat price:
//!
//! ```
//! use ff_engine::{MultilevelOpts, Solver};
//! use ff_graph::generators::planted_partition;
//!
//! let g = planted_partition(4, 100, 0.1, 0.005, 5); // 400 vertices
//! let run = |threads| {
//!     Solver::on(&g)
//!         .k(4)
//!         .islands(2)
//!         .steps(1_500)
//!         .seed(42)
//!         .threads(threads)
//!         .multilevel(MultilevelOpts { coarsen_until: 64, ..Default::default() })
//!         .run()
//!         .unwrap()
//! };
//! let res = run(0);
//! let info = res.multilevel.as_ref().expect("multilevel pipeline ran");
//! assert!(info.levels >= 1 && info.coarse_vertices <= 400);
//! // Refinement never worsens the objective at any uncoarsening level,
//! // and the result is byte-identical across thread caps.
//! assert!(info.reports.iter().all(|r| r.value_after <= r.value_before));
//! assert_eq!(run(4).best.assignment(), res.best.assignment());
//! ```

pub mod ensemble;
pub mod migration;
pub mod multilevel;
mod obs;
pub mod pool;
pub mod reduction;
pub mod seeds;
pub mod solver;

#[allow(deprecated)]
pub use ensemble::{Ensemble, EnsembleConfig, EnsembleResult, EnsembleRun};
pub use migration::{
    Adaptive, Combine, IslandStatus, MigrationOffer, MigrationPolicy, MigrationPolicyId,
    ReplaceIfBetter,
};
pub use multilevel::{LevelReport, MultilevelInfo, MultilevelOpts};
pub use pool::parallel_map;
pub use reduction::{MinEnergy, ParetoFront, ParetoPoint, ParetoResult, Reduced, Reduction};
pub use seeds::derive_seeds;
pub use solver::{distinct_objectives, islands_to_cover, Solver, SolverRun};

//! # ff-engine — parallel multi-seed ensemble over fusion–fission
//!
//! The paper's search is restart-friendly by construction: it reheats from
//! the best molecule whenever the temperature freezes, so it loses nothing
//! by being told, mid-run, about a better molecule someone *else* found.
//! This crate exploits that with island/ensemble parallelism in the style
//! of KaFFPaE (Sanders & Schulz, *Distributed Evolutionary Graph
//! Partitioning*): N independently seeded fusion–fission searches run on
//! their own OS threads, and every `migration_interval` steps the globally
//! best molecule (lowest scaled binding energy) is offered to every island
//! as its new reheat-restart point.
//!
//! In the paper's vocabulary, an **island** is a separate beaker running
//! its own reaction chain; **migration** pours the most stable molecule
//! found so far into every other beaker.
//!
//! ## Determinism
//!
//! Results are reproducible regardless of thread scheduling:
//!
//! * per-island seeds are derived from one root seed with SplitMix64
//!   ([`derive_seeds`]), so island i's stream never depends on how many
//!   threads executed it,
//! * islands advance in lockstep **epochs** of `migration_interval` steps
//!   with a barrier between epochs; the exchanged molecule is chosen by a
//!   deterministic reduction (lowest energy, ties to the lowest island
//!   index), never by which thread finished first,
//! * the merged anytime trace uses
//!   [`ff_metaheur::AnytimeTrace::merged`]'s deterministic reduction.
//!
//! With a step-based [`ff_metaheur::StopCondition`] the ensemble's best
//! partition and objective are therefore byte-identical across repeated
//! runs and across any `max_threads` setting. Wall-clock stop conditions
//! keep every *structural* guarantee (same reduction, same invariants) but
//! naturally cut each island at a machine-dependent step count.
//!
//! ```
//! use ff_engine::{Ensemble, EnsembleConfig};
//! use ff_core::FusionFissionConfig;
//! use ff_graph::generators::planted_partition;
//!
//! let g = planted_partition(4, 10, 0.85, 0.03, 5);
//! let cfg = EnsembleConfig::new(FusionFissionConfig::fast(4), 4);
//! let a = Ensemble::new(&g, cfg, 42).run();
//! let b = Ensemble::new(&g, cfg, 42).run();
//! assert_eq!(a.best.assignment(), b.best.assignment());
//! // The ensemble best is the min over island bests.
//! let island_min = a.islands.iter().map(|r| r.best_value).fold(f64::INFINITY, f64::min);
//! assert_eq!(a.best_value, island_min);
//! ```

pub mod ensemble;
pub mod pool;
pub mod seeds;

pub use ensemble::{Ensemble, EnsembleConfig, EnsembleResult, EnsembleRun};
pub use pool::parallel_map;
pub use seeds::derive_seeds;

//! Deterministic scoped-thread fan-out.

/// Runs `f(0..jobs)` on scoped OS threads, at most `max_threads` at a time
/// (`0` = all at once), and returns the results **in job order** — the
/// output is independent of thread scheduling. Panics in a job propagate.
///
/// This is the generic fan-out used to give non-fusion-fission methods
/// (simulated annealing, ant colony, the constructive baselines) the same
/// multi-seed ensemble treatment: run N independently seeded jobs, reduce
/// deterministically.
///
/// ```
/// let squares = ff_engine::parallel_map(5, 2, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, F>(jobs: usize, max_threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let cap = if max_threads == 0 {
        jobs.max(1)
    } else {
        max_threads
    };
    let mut out: Vec<Option<T>> = std::iter::repeat_with(|| None).take(jobs).collect();
    let fref = &f;
    let mut base = 0;
    for wave in out.chunks_mut(cap) {
        let wave_len = wave.len();
        std::thread::scope(|scope| {
            for (j, slot) in wave.iter_mut().enumerate() {
                let i = base + j;
                scope.spawn(move || {
                    *slot = Some(fref(i));
                });
            }
        });
        base += wave_len;
    }
    out.into_iter().map(|o| o.expect("job completed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_job_order_for_any_thread_cap() {
        let expected: Vec<usize> = (0..17).map(|i| i * 3).collect();
        for cap in [0, 1, 2, 5, 17, 64] {
            assert_eq!(parallel_map(17, cap, |i| i * 3), expected, "cap {cap}");
        }
    }

    #[test]
    fn zero_jobs() {
        let out: Vec<u8> = parallel_map(0, 4, |_| 0);
        assert!(out.is_empty());
    }

    #[test]
    fn actually_runs_concurrently_within_a_wave() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let in_flight = AtomicUsize::new(0);
        let peak = AtomicUsize::new(0);
        parallel_map(4, 4, |_| {
            let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
            peak.fetch_max(now, Ordering::SeqCst);
            std::thread::sleep(std::time::Duration::from_millis(30));
            in_flight.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(peak.load(Ordering::SeqCst) > 1, "no overlap observed");
    }
}

//! Pluggable ensemble reductions: how harvested islands become one
//! result.
//!
//! [`MinEnergy`] is the historical rule — keep the island with the lowest
//! objective value. [`ParetoFront`] is the multi-objective rule: islands
//! may optimize different criteria, every island's best molecule is
//! re-scored under *all* of the run's objectives, and the deterministic
//! non-dominated front survives (dominance from
//! [`ff_partition::dominance`], ties broken by island index).

use ff_core::FusionFissionResult;
use ff_graph::Graph;
use ff_partition::{pareto_front_indices, Objective, Partition};

/// One non-dominated point of a [`ParetoResult`].
#[derive(Clone, Debug)]
pub struct ParetoPoint {
    /// Island that produced the molecule.
    pub island: usize,
    /// The objective that island itself was minimizing.
    pub objective: Objective,
    /// The molecule scored under every objective of
    /// [`ParetoResult::objectives`], in that order.
    pub values: Vec<f64>,
    /// Non-empty parts of [`ParetoPoint::partition`].
    pub parts: usize,
    /// The molecule itself.
    pub partition: Partition,
}

/// The deterministic non-dominated front of a mixed-objective ensemble.
#[derive(Clone, Debug)]
pub struct ParetoResult {
    /// The distinct objectives the ensemble ran, in island order of first
    /// appearance; every point's `values` aligns with this.
    pub objectives: Vec<Objective>,
    /// Front points in ascending island order (the index is also the
    /// tie-break: of two equal objective vectors only the lower island
    /// survives).
    pub points: Vec<ParetoPoint>,
}

impl ParetoResult {
    /// The front point minimizing `objective` (ties → lowest island), or
    /// `None` when the objective wasn't part of the run or the front is
    /// empty.
    pub fn best_under(&self, objective: Objective) -> Option<&ParetoPoint> {
        let axis = self.objectives.iter().position(|&o| o == objective)?;
        self.points.iter().min_by(|a, b| {
            a.values[axis]
                .total_cmp(&b.values[axis])
                .then(a.island.cmp(&b.island))
        })
    }
}

/// What a reduction decided.
#[derive(Clone, Debug)]
pub struct Reduced {
    /// The representative island whose molecule becomes
    /// `EnsembleResult::best`.
    pub best_island: usize,
    /// The non-dominated front, when the reduction computes one.
    pub pareto: Option<ParetoResult>,
}

/// An ensemble reduction plugged into the solver
/// ([`Solver::reduction`](crate::Solver::reduction)).
pub trait Reduction: Send {
    /// Stable display name (also the wire/CLI spelling).
    fn name(&self) -> &'static str;

    /// Reduces harvested islands. `objectives` is the run's distinct
    /// objective list in island order of first appearance; `islands` is
    /// in island order. Must be deterministic and insensitive to any
    /// reordering the caller could have observed the islands in.
    fn reduce(
        &self,
        g: &Graph,
        islands: &[FusionFissionResult],
        objectives: &[Objective],
    ) -> Reduced;
}

/// The historical reduction: lowest `best_value`, ties to the lowest
/// island index (NaN never wins). With mixed objectives the comparison is
/// apples-to-oranges — prefer [`ParetoFront`] there.
#[derive(Clone, Copy, Debug, Default)]
pub struct MinEnergy;

impl Reduction for MinEnergy {
    fn name(&self) -> &'static str {
        "min"
    }

    fn reduce(
        &self,
        _g: &Graph,
        islands: &[FusionFissionResult],
        _objectives: &[Objective],
    ) -> Reduced {
        let mut best = 0;
        for i in 1..islands.len() {
            if islands[i].best_value < islands[best].best_value {
                best = i;
            }
        }
        Reduced {
            best_island: best,
            pareto: None,
        }
    }
}

/// The multi-objective reduction: every island's best molecule is scored
/// under all objectives and the non-dominated front is returned. The
/// representative island (`best_island`) is the front point minimizing
/// the *first* objective, ties to the lowest island index.
#[derive(Clone, Copy, Debug, Default)]
pub struct ParetoFront;

impl Reduction for ParetoFront {
    fn name(&self) -> &'static str {
        "pareto"
    }

    fn reduce(
        &self,
        g: &Graph,
        islands: &[FusionFissionResult],
        objectives: &[Objective],
    ) -> Reduced {
        let vectors: Vec<Vec<f64>> = islands
            .iter()
            .map(|r| objectives.iter().map(|o| o.evaluate(g, &r.best)).collect())
            .collect();
        let front = pareto_front_indices(&vectors);
        let points: Vec<ParetoPoint> = front
            .iter()
            .map(|&i| ParetoPoint {
                island: i,
                objective: islands[i].trace.tag().unwrap_or(objectives[0]),
                values: vectors[i].clone(),
                parts: islands[i].best.num_nonempty_parts(),
                partition: islands[i].best.clone(),
            })
            .collect();
        let result = ParetoResult {
            objectives: objectives.to_vec(),
            points,
        };
        let best_island = result
            .best_under(objectives[0])
            .map(|p| p.island)
            .unwrap_or(0);
        Reduced {
            best_island,
            pareto: Some(result),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_core::{FusionFission, FusionFissionConfig};
    use ff_graph::generators::two_cliques_bridge;
    use ff_metaheur::StopCondition;

    fn harvests(objs: &[Objective]) -> (Graph, Vec<FusionFissionResult>) {
        let g = two_cliques_bridge(6, 2.0, 0.1);
        let islands = objs
            .iter()
            .enumerate()
            .map(|(i, &objective)| {
                FusionFission::new(
                    &g,
                    FusionFissionConfig {
                        objective,
                        stop: StopCondition::steps(1_200),
                        ..FusionFissionConfig::fast(2)
                    },
                    7 + i as u64,
                )
                .run()
            })
            .collect();
        (g, islands)
    }

    #[test]
    fn min_energy_matches_manual_argmin() {
        let (g, islands) = harvests(&[Objective::MCut, Objective::MCut, Objective::MCut]);
        let red = MinEnergy.reduce(&g, &islands, &[Objective::MCut]);
        let manual = (0..islands.len())
            .min_by(|&a, &b| islands[a].best_value.total_cmp(&islands[b].best_value))
            .unwrap();
        assert_eq!(red.best_island, manual);
        assert!(red.pareto.is_none());
    }

    #[test]
    fn pareto_front_is_mutually_non_dominated_and_tagged() {
        use ff_partition::dominates;
        let objs = [Objective::Cut, Objective::NCut, Objective::MCut];
        let (g, islands) = harvests(&objs);
        let red = ParetoFront.reduce(&g, &islands, &objs);
        let front = red.pareto.expect("pareto reduction returns a front");
        assert_eq!(front.objectives, objs.to_vec());
        assert!(!front.points.is_empty());
        for a in &front.points {
            assert_eq!(a.values.len(), 3);
            assert_eq!(a.objective, islands[a.island].trace.tag().unwrap());
            for b in &front.points {
                assert!(
                    !dominates(&a.values, &b.values) || a.island == b.island,
                    "front not mutually non-dominated"
                );
            }
        }
        // Ascending island order, and the representative minimizes the
        // first objective.
        for w in front.points.windows(2) {
            assert!(w[0].island < w[1].island);
        }
        let rep = front.best_under(Objective::Cut).unwrap();
        assert_eq!(red.best_island, rep.island);
    }

    #[test]
    fn best_under_unknown_objective_is_none() {
        let objs = [Objective::Cut];
        let (g, islands) = harvests(&objs);
        let red = ParetoFront.reduce(&g, &islands, &objs);
        let front = red.pareto.unwrap();
        assert!(front.best_under(Objective::NCut).is_none());
    }
}

//! Pluggable island-migration policies: *what* moves between islands at
//! an epoch barrier, and *when* the next barrier happens.
//!
//! The engine advances all islands in lockstep epochs; at each barrier it
//! hands the policy mutable access to every island run. A policy must be
//! a deterministic function of the island states it observes — it may
//! keep its own state across barriers (the adaptive policy does), but it
//! must not consult wall-clock time, thread identity, or an unseeded RNG,
//! or the engine's byte-identical reproducibility contract breaks.
//!
//! Islands optimizing **different objectives** (a Pareto ensemble) are
//! grouped by objective before any exchange: binding energies are only
//! comparable within one criterion, so each objective group elects its
//! own donor. Single-objective ensembles form one group, which makes
//! [`ReplaceIfBetter`] bit-equal to the historical hard-coded rule.

use ff_core::FusionFissionRun;
use ff_partition::Objective;

/// A migration strategy plugged into the solver
/// ([`Solver::migration`](crate::Solver::migration)).
pub trait MigrationPolicy: Send {
    /// Stable display name (also the wire/CLI spelling).
    fn name(&self) -> &'static str;

    /// Steps every island advances before the next exchange barrier,
    /// given the configured base interval. The default keeps the base;
    /// [`Adaptive`] stretches it under stagnation. Called once per epoch,
    /// before the islands advance.
    fn interval(&mut self, base: u64) -> u64 {
        base
    }

    /// Exchange molecules at a barrier. Returns how many offers were
    /// adopted. Only called when at least two islands are live and
    /// migration is enabled.
    fn exchange(&mut self, islands: &mut [FusionFissionRun<'_>]) -> u64;
}

impl MigrationPolicy for Box<dyn MigrationPolicy> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn interval(&mut self, base: u64) -> u64 {
        (**self).interval(base)
    }

    fn exchange(&mut self, islands: &mut [FusionFissionRun<'_>]) -> u64 {
        (**self).exchange(islands)
    }
}

/// Indices grouped by objective, each group in ascending island order;
/// groups ordered by first appearance. Exchange never crosses groups.
fn objective_groups(islands: &[FusionFissionRun<'_>]) -> Vec<(Objective, Vec<usize>)> {
    let mut groups: Vec<(Objective, Vec<usize>)> = Vec::new();
    for (i, run) in islands.iter().enumerate() {
        let obj = run.config().objective;
        match groups.iter_mut().find(|(o, _)| *o == obj) {
            Some((_, members)) => members.push(i),
            None => groups.push((obj, vec![i])),
        }
    }
    groups
}

/// Donor = lowest best-energy island of the group (ties → lowest index).
fn donor_of(group: &[usize], islands: &[FusionFissionRun<'_>]) -> usize {
    let mut best = group[0];
    for &i in &group[1..] {
        if islands[i].best_energy() < islands[best].best_energy() {
            best = i;
        }
    }
    best
}

/// The historical rule: the group's best molecule is offered to every
/// other island, adopted iff strictly better (bit-equal to the
/// pre-builder `Ensemble::run`, which is test-asserted).
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplaceIfBetter;

impl MigrationPolicy for ReplaceIfBetter {
    fn name(&self) -> &'static str {
        "replace"
    }

    fn exchange(&mut self, islands: &mut [FusionFissionRun<'_>]) -> u64 {
        let mut adopted = 0;
        for (_, group) in objective_groups(islands) {
            if group.len() < 2 {
                continue;
            }
            let donor = donor_of(&group, islands);
            let donor_energy = islands[donor].best_energy();
            let molecule = islands[donor].best_molecule().clone();
            for &i in &group {
                // Islands already at or below the donor's energy would
                // reject the offer; skip them up front and spare the O(m)
                // re-scoring `inject` performs.
                if i != donor
                    && islands[i].best_energy() > donor_energy
                    && islands[i].inject(&molecule)
                {
                    adopted += 1;
                }
            }
        }
        adopted
    }
}

/// KaFFPaE-style *combine*: each receiving island crosses the donor's
/// molecule with its own best via
/// [`ff_core::overlap_combine`] (consensus
/// structure kept, disagreement region re-fused by the fusion operator)
/// and adopts whichever of {child, donor molecule} strictly improves it.
#[derive(Clone, Copy, Debug, Default)]
pub struct Combine;

impl MigrationPolicy for Combine {
    fn name(&self) -> &'static str {
        "combine"
    }

    fn exchange(&mut self, islands: &mut [FusionFissionRun<'_>]) -> u64 {
        let mut adopted = 0;
        for (_, group) in objective_groups(islands) {
            if group.len() < 2 {
                continue;
            }
            let donor = donor_of(&group, islands);
            let molecule = islands[donor].best_molecule().clone();
            for &i in &group {
                if i != donor && islands[i].inject_crossover(&molecule) {
                    adopted += 1;
                }
            }
        }
        adopted
    }
}

/// Stagnation-driven interval scaling around [`ReplaceIfBetter`]: while
/// the ensemble keeps improving, barriers stay at the base interval
/// (frequent mixing); after `patience` consecutive barriers with no group
/// improving its best energy, the interval doubles — up to
/// `max_scale`× — so stagnating islands get longer independent walks
/// before the next exchange. Any improvement snaps the interval back to
/// the base. Entirely a function of barrier-time island energies, so the
/// byte-identical contract holds.
#[derive(Clone, Debug)]
pub struct Adaptive {
    /// Stagnant barriers tolerated before the interval doubles.
    pub patience: u32,
    /// Hard cap on the interval multiplier.
    pub max_scale: u64,
    inner: ReplaceIfBetter,
    scale: u64,
    stagnant: u32,
    last_energies: Vec<f64>,
}

impl Default for Adaptive {
    fn default() -> Self {
        Adaptive {
            patience: 3,
            max_scale: 8,
            inner: ReplaceIfBetter,
            scale: 1,
            stagnant: 0,
            last_energies: Vec::new(),
        }
    }
}

impl Adaptive {
    /// An adaptive policy with explicit knobs.
    pub fn new(patience: u32, max_scale: u64) -> Self {
        Adaptive {
            patience: patience.max(1),
            max_scale: max_scale.max(1),
            ..Adaptive::default()
        }
    }

    /// The current interval multiplier (1 until stagnation kicks in).
    pub fn scale(&self) -> u64 {
        self.scale
    }
}

impl MigrationPolicy for Adaptive {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn interval(&mut self, base: u64) -> u64 {
        base.saturating_mul(self.scale)
    }

    fn exchange(&mut self, islands: &mut [FusionFissionRun<'_>]) -> u64 {
        // Per-group minimum best energy, in deterministic group order.
        let energies: Vec<f64> = objective_groups(islands)
            .iter()
            .map(|(_, group)| {
                group
                    .iter()
                    .map(|&i| islands[i].best_energy())
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let improved = self.last_energies.is_empty()
            || energies
                .iter()
                .zip(&self.last_energies)
                .any(|(now, before)| now < before);
        if improved {
            self.stagnant = 0;
            self.scale = 1;
        } else {
            self.stagnant += 1;
            if self.stagnant >= self.patience {
                self.stagnant = 0;
                self.scale = (self.scale * 2).min(self.max_scale);
            }
        }
        self.last_energies = energies;
        self.inner.exchange(islands)
    }
}

/// The built-in policies by name — the CLI/wire spelling used by
/// `ffpart --migration` and the service job schema.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum MigrationPolicyId {
    /// [`ReplaceIfBetter`] (the default, spelled `replace`).
    #[default]
    ReplaceIfBetter,
    /// [`Combine`] (spelled `combine`).
    Combine,
    /// [`Adaptive`] with default knobs (spelled `adaptive`).
    Adaptive,
}

impl MigrationPolicyId {
    /// The wire/CLI spelling.
    pub fn name(&self) -> &'static str {
        match self {
            MigrationPolicyId::ReplaceIfBetter => "replace",
            MigrationPolicyId::Combine => "combine",
            MigrationPolicyId::Adaptive => "adaptive",
        }
    }

    /// Parses the wire/CLI spelling.
    pub fn parse(name: &str) -> Option<MigrationPolicyId> {
        match name {
            "replace" | "replace-if-better" => Some(MigrationPolicyId::ReplaceIfBetter),
            "combine" => Some(MigrationPolicyId::Combine),
            "adaptive" => Some(MigrationPolicyId::Adaptive),
            _ => None,
        }
    }

    /// Instantiates the policy with default knobs.
    pub fn build(&self) -> Box<dyn MigrationPolicy> {
        match self {
            MigrationPolicyId::ReplaceIfBetter => Box::new(ReplaceIfBetter),
            MigrationPolicyId::Combine => Box::new(Combine),
            MigrationPolicyId::Adaptive => Box::new(Adaptive::default()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_core::{FusionFission, FusionFissionConfig};
    use ff_graph::generators::random_geometric;

    #[test]
    fn policy_ids_round_trip() {
        for id in [
            MigrationPolicyId::ReplaceIfBetter,
            MigrationPolicyId::Combine,
            MigrationPolicyId::Adaptive,
        ] {
            assert_eq!(MigrationPolicyId::parse(id.name()), Some(id));
            assert_eq!(id.build().name(), id.name());
        }
        assert_eq!(MigrationPolicyId::parse("osmosis"), None);
    }

    #[test]
    fn groups_split_by_objective_in_island_order() {
        let g = random_geometric(30, 0.35, 1);
        let mk = |obj| {
            FusionFission::new(
                &g,
                FusionFissionConfig {
                    objective: obj,
                    ..FusionFissionConfig::fast(2)
                },
                1,
            )
            .start()
        };
        let runs = vec![
            mk(Objective::Cut),
            mk(Objective::MCut),
            mk(Objective::Cut),
            mk(Objective::NCut),
        ];
        let groups = objective_groups(&runs);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0], (Objective::Cut, vec![0, 2]));
        assert_eq!(groups[1], (Objective::MCut, vec![1]));
        assert_eq!(groups[2], (Objective::NCut, vec![3]));
    }

    #[test]
    fn adaptive_scales_on_stagnation_and_resets_on_improvement() {
        let mut pol = Adaptive::new(2, 8);
        assert_eq!(pol.interval(100), 100);
        // Fake the state machine directly: no islands needed to check
        // the scaling arithmetic, which is what determinism rests on.
        pol.last_energies = vec![1.0];
        let g = random_geometric(20, 0.4, 1);
        let mut runs = vec![
            FusionFission::new(&g, FusionFissionConfig::fast(2), 1).start(),
            FusionFission::new(&g, FusionFissionConfig::fast(2), 2).start(),
        ];
        // Fresh runs hold +inf best energy: never an improvement on 1.0.
        for _ in 0..2 {
            pol.exchange(&mut runs);
        }
        assert_eq!(pol.scale(), 2);
        for _ in 0..2 {
            pol.exchange(&mut runs);
        }
        assert_eq!(pol.scale(), 4);
        assert_eq!(pol.interval(100), 400);
        // An improvement (advance the runs so they hold finite energy
        // below the fake previous best) snaps back to the base.
        pol.last_energies = vec![f64::INFINITY];
        for run in &mut runs {
            run.advance(500);
        }
        pol.exchange(&mut runs);
        assert_eq!(pol.scale(), 1);
        assert_eq!(pol.interval(100), 100);
    }
}

//! Pluggable island-migration policies: *what* moves between islands at
//! an epoch barrier, and *when* the next barrier happens.
//!
//! The engine advances all islands in lockstep epochs; at each barrier it
//! hands the policy mutable access to every island run. A policy must be
//! a deterministic function of the island states it observes — it may
//! keep its own state across barriers (the adaptive policy does), but it
//! must not consult wall-clock time, thread identity, or an unseeded RNG,
//! or the engine's byte-identical reproducibility contract breaks.
//!
//! Islands optimizing **different objectives** (a Pareto ensemble) are
//! grouped by objective before any exchange: binding energies are only
//! comparable within one criterion, so each objective group elects its
//! own donor. Single-objective ensembles form one group, which makes
//! [`ReplaceIfBetter`] bit-equal to the historical hard-coded rule.

use ff_core::FusionFissionRun;
use ff_partition::Objective;

/// What a policy sees of one island at an exchange barrier — the full
/// decision input. Keeping this a plain value (no borrow of the run) is
/// what lets a coordinator evaluate the same policy over island state
/// reported by worker *processes* and still land on the identical plan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IslandStatus {
    /// The objective this island optimizes (exchange never crosses
    /// objective groups).
    pub objective: Objective,
    /// The island's best scaled energy so far.
    pub best_energy: f64,
}

/// One planned migration: the donor's best molecule is offered to each
/// receiver, in order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MigrationOffer {
    /// Island whose best molecule is cloned and offered.
    pub donor: usize,
    /// Islands the molecule is offered to, in execution order.
    pub receivers: Vec<usize>,
    /// `false` → offer via [`FusionFissionRun::inject`]; `true` → via
    /// [`FusionFissionRun::inject_crossover`] (KaFFPaE-style combine).
    pub crossover: bool,
}

/// A migration strategy plugged into the solver
/// ([`Solver::migration`](crate::Solver::migration)).
///
/// A policy is split into a pure *decision* ([`plan`]) over barrier-time
/// island statuses and a default *execution* ([`exchange`]) of that plan
/// against in-process runs. In-process ensembles call `exchange`; the
/// distributed driver calls `plan` on the exact same statuses (reported
/// over the wire) and executes each offer with fetch/inject ops, so both
/// modes make bit-identical decisions.
///
/// [`plan`]: MigrationPolicy::plan
/// [`exchange`]: MigrationPolicy::exchange
pub trait MigrationPolicy: Send {
    /// Stable display name (also the wire/CLI spelling).
    fn name(&self) -> &'static str;

    /// Steps every island advances before the next exchange barrier,
    /// given the configured base interval. The default keeps the base;
    /// [`Adaptive`] stretches it under stagnation. Called once per epoch,
    /// before the islands advance.
    fn interval(&mut self, base: u64) -> u64 {
        base
    }

    /// Decides the exchanges for one barrier from a snapshot of island
    /// statuses. Must be deterministic in `islands` (plus any state the
    /// policy carries across barriers) — no wall clock, no unseeded RNG —
    /// or the byte-identical reproducibility contract breaks. Only
    /// called when at least two islands are live and migration is
    /// enabled.
    fn plan(&mut self, islands: &[IslandStatus]) -> Vec<MigrationOffer>;

    /// Executes [`plan`](MigrationPolicy::plan) at a barrier: clone each
    /// offer's donor molecule, offer it to every receiver. Returns how
    /// many offers were adopted.
    fn exchange(&mut self, islands: &mut [FusionFissionRun<'_>]) -> u64 {
        let statuses: Vec<IslandStatus> = islands.iter().map(IslandStatus::of).collect();
        let mut adopted = 0;
        for offer in self.plan(&statuses) {
            let molecule = islands[offer.donor].best_molecule().clone();
            for &i in &offer.receivers {
                let took = if offer.crossover {
                    islands[i].inject_crossover(&molecule)
                } else {
                    islands[i].inject(&molecule)
                };
                if took {
                    adopted += 1;
                }
            }
        }
        adopted
    }
}

impl IslandStatus {
    /// The status an in-process run presents at a barrier.
    pub fn of(run: &FusionFissionRun<'_>) -> IslandStatus {
        IslandStatus {
            objective: run.config().objective,
            best_energy: run.best_energy(),
        }
    }
}

impl MigrationPolicy for Box<dyn MigrationPolicy> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn interval(&mut self, base: u64) -> u64 {
        (**self).interval(base)
    }

    fn plan(&mut self, islands: &[IslandStatus]) -> Vec<MigrationOffer> {
        (**self).plan(islands)
    }

    fn exchange(&mut self, islands: &mut [FusionFissionRun<'_>]) -> u64 {
        (**self).exchange(islands)
    }
}

/// Indices grouped by objective, each group in ascending island order;
/// groups ordered by first appearance. Exchange never crosses groups.
fn objective_groups(islands: &[IslandStatus]) -> Vec<(Objective, Vec<usize>)> {
    let mut groups: Vec<(Objective, Vec<usize>)> = Vec::new();
    for (i, st) in islands.iter().enumerate() {
        match groups.iter_mut().find(|(o, _)| *o == st.objective) {
            Some((_, members)) => members.push(i),
            None => groups.push((st.objective, vec![i])),
        }
    }
    groups
}

/// Donor = lowest best-energy island of the group (ties → lowest index).
fn donor_of(group: &[usize], islands: &[IslandStatus]) -> usize {
    let mut best = group[0];
    for &i in &group[1..] {
        if islands[i].best_energy < islands[best].best_energy {
            best = i;
        }
    }
    best
}

/// The historical rule: the group's best molecule is offered to every
/// other island, adopted iff strictly better (bit-equal to the
/// pre-builder `Ensemble::run`, which is test-asserted).
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplaceIfBetter;

impl MigrationPolicy for ReplaceIfBetter {
    fn name(&self) -> &'static str {
        "replace"
    }

    fn plan(&mut self, islands: &[IslandStatus]) -> Vec<MigrationOffer> {
        let mut offers = Vec::new();
        for (_, group) in objective_groups(islands) {
            if group.len() < 2 {
                continue;
            }
            let donor = donor_of(&group, islands);
            let donor_energy = islands[donor].best_energy;
            // Islands already at or below the donor's energy would
            // reject the offer; skip them up front and spare the O(m)
            // re-scoring `inject` performs.
            let receivers: Vec<usize> = group
                .iter()
                .copied()
                .filter(|&i| i != donor && islands[i].best_energy > donor_energy)
                .collect();
            if !receivers.is_empty() {
                offers.push(MigrationOffer {
                    donor,
                    receivers,
                    crossover: false,
                });
            }
        }
        offers
    }
}

/// KaFFPaE-style *combine*: each receiving island crosses the donor's
/// molecule with its own best via
/// [`ff_core::overlap_combine`] (consensus
/// structure kept, disagreement region re-fused by the fusion operator)
/// and adopts whichever of {child, donor molecule} strictly improves it.
#[derive(Clone, Copy, Debug, Default)]
pub struct Combine;

impl MigrationPolicy for Combine {
    fn name(&self) -> &'static str {
        "combine"
    }

    fn plan(&mut self, islands: &[IslandStatus]) -> Vec<MigrationOffer> {
        let mut offers = Vec::new();
        for (_, group) in objective_groups(islands) {
            if group.len() < 2 {
                continue;
            }
            let donor = donor_of(&group, islands);
            let receivers: Vec<usize> = group.iter().copied().filter(|&i| i != donor).collect();
            offers.push(MigrationOffer {
                donor,
                receivers,
                crossover: true,
            });
        }
        offers
    }
}

/// Stagnation-driven interval scaling around [`ReplaceIfBetter`]: while
/// the ensemble keeps improving, barriers stay at the base interval
/// (frequent mixing); after `patience` consecutive barriers with no group
/// improving its best energy, the interval doubles — up to
/// `max_scale`× — so stagnating islands get longer independent walks
/// before the next exchange. Any improvement snaps the interval back to
/// the base. Entirely a function of barrier-time island energies, so the
/// byte-identical contract holds.
#[derive(Clone, Debug)]
pub struct Adaptive {
    /// Stagnant barriers tolerated before the interval doubles.
    pub patience: u32,
    /// Hard cap on the interval multiplier.
    pub max_scale: u64,
    inner: ReplaceIfBetter,
    scale: u64,
    stagnant: u32,
    last_energies: Vec<f64>,
}

impl Default for Adaptive {
    fn default() -> Self {
        Adaptive {
            patience: 3,
            max_scale: 8,
            inner: ReplaceIfBetter,
            scale: 1,
            stagnant: 0,
            last_energies: Vec::new(),
        }
    }
}

impl Adaptive {
    /// An adaptive policy with explicit knobs.
    pub fn new(patience: u32, max_scale: u64) -> Self {
        Adaptive {
            patience: patience.max(1),
            max_scale: max_scale.max(1),
            ..Adaptive::default()
        }
    }

    /// The current interval multiplier (1 until stagnation kicks in).
    pub fn scale(&self) -> u64 {
        self.scale
    }
}

impl MigrationPolicy for Adaptive {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn interval(&mut self, base: u64) -> u64 {
        base.saturating_mul(self.scale)
    }

    fn plan(&mut self, islands: &[IslandStatus]) -> Vec<MigrationOffer> {
        // Per-group minimum best energy, in deterministic group order.
        let energies: Vec<f64> = objective_groups(islands)
            .iter()
            .map(|(_, group)| {
                group
                    .iter()
                    .map(|&i| islands[i].best_energy)
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let improved = self.last_energies.is_empty()
            || energies
                .iter()
                .zip(&self.last_energies)
                .any(|(now, before)| now < before);
        if improved {
            self.stagnant = 0;
            self.scale = 1;
        } else {
            self.stagnant += 1;
            if self.stagnant >= self.patience {
                self.stagnant = 0;
                self.scale = (self.scale * 2).min(self.max_scale);
            }
        }
        self.last_energies = energies;
        self.inner.plan(islands)
    }
}

/// The built-in policies by name — the CLI/wire spelling used by
/// `ffpart --migration` and the service job schema.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum MigrationPolicyId {
    /// [`ReplaceIfBetter`] (the default, spelled `replace`).
    #[default]
    ReplaceIfBetter,
    /// [`Combine`] (spelled `combine`).
    Combine,
    /// [`Adaptive`] with default knobs (spelled `adaptive`).
    Adaptive,
}

impl MigrationPolicyId {
    /// The wire/CLI spelling.
    pub fn name(&self) -> &'static str {
        match self {
            MigrationPolicyId::ReplaceIfBetter => "replace",
            MigrationPolicyId::Combine => "combine",
            MigrationPolicyId::Adaptive => "adaptive",
        }
    }

    /// Parses the wire/CLI spelling.
    pub fn parse(name: &str) -> Option<MigrationPolicyId> {
        match name {
            "replace" | "replace-if-better" => Some(MigrationPolicyId::ReplaceIfBetter),
            "combine" => Some(MigrationPolicyId::Combine),
            "adaptive" => Some(MigrationPolicyId::Adaptive),
            _ => None,
        }
    }

    /// Instantiates the policy with default knobs.
    pub fn build(&self) -> Box<dyn MigrationPolicy> {
        match self {
            MigrationPolicyId::ReplaceIfBetter => Box::new(ReplaceIfBetter),
            MigrationPolicyId::Combine => Box::new(Combine),
            MigrationPolicyId::Adaptive => Box::new(Adaptive::default()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_core::{FusionFission, FusionFissionConfig};
    use ff_graph::generators::random_geometric;

    #[test]
    fn policy_ids_round_trip() {
        for id in [
            MigrationPolicyId::ReplaceIfBetter,
            MigrationPolicyId::Combine,
            MigrationPolicyId::Adaptive,
        ] {
            assert_eq!(MigrationPolicyId::parse(id.name()), Some(id));
            assert_eq!(id.build().name(), id.name());
        }
        assert_eq!(MigrationPolicyId::parse("osmosis"), None);
    }

    fn status(objective: Objective, best_energy: f64) -> IslandStatus {
        IslandStatus {
            objective,
            best_energy,
        }
    }

    #[test]
    fn groups_split_by_objective_in_island_order() {
        let statuses = vec![
            status(Objective::Cut, 1.0),
            status(Objective::MCut, 1.0),
            status(Objective::Cut, 1.0),
            status(Objective::NCut, 1.0),
        ];
        let groups = objective_groups(&statuses);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[0], (Objective::Cut, vec![0, 2]));
        assert_eq!(groups[1], (Objective::MCut, vec![1]));
        assert_eq!(groups[2], (Objective::NCut, vec![3]));
    }

    #[test]
    fn replace_plan_elects_donor_and_filters_receivers() {
        let statuses = vec![
            status(Objective::MCut, 3.0),
            status(Objective::MCut, 1.0),
            status(Objective::MCut, 1.0), // ties with 1 → donor is 1
            status(Objective::MCut, 2.0),
        ];
        let offers = ReplaceIfBetter.plan(&statuses);
        assert_eq!(
            offers,
            vec![MigrationOffer {
                donor: 1,
                receivers: vec![0, 3], // 2 holds the donor energy → skipped
                crossover: false,
            }]
        );
        // All islands at the donor's energy → nothing to offer.
        let tied: Vec<IslandStatus> = (0..3).map(|_| status(Objective::Cut, 1.0)).collect();
        assert!(ReplaceIfBetter.plan(&tied).is_empty());
    }

    #[test]
    fn combine_plan_offers_to_all_non_donors_per_group() {
        let statuses = vec![
            status(Objective::Cut, 2.0),
            status(Objective::MCut, 5.0),
            status(Objective::Cut, 1.0),
            status(Objective::MCut, 5.0), // ties with 1 → donor is 1
        ];
        let offers = Combine.plan(&statuses);
        assert_eq!(
            offers,
            vec![
                MigrationOffer {
                    donor: 2,
                    receivers: vec![0],
                    crossover: true,
                },
                MigrationOffer {
                    donor: 1,
                    receivers: vec![3],
                    crossover: true,
                },
            ]
        );
    }

    #[test]
    fn adaptive_scales_on_stagnation_and_resets_on_improvement() {
        let mut pol = Adaptive::new(2, 8);
        assert_eq!(pol.interval(100), 100);
        // Fake the state machine directly: no islands needed to check
        // the scaling arithmetic, which is what determinism rests on.
        pol.last_energies = vec![1.0];
        let g = random_geometric(20, 0.4, 1);
        let mut runs = vec![
            FusionFission::new(&g, FusionFissionConfig::fast(2), 1).start(),
            FusionFission::new(&g, FusionFissionConfig::fast(2), 2).start(),
        ];
        // Fresh runs hold +inf best energy: never an improvement on 1.0.
        for _ in 0..2 {
            pol.exchange(&mut runs);
        }
        assert_eq!(pol.scale(), 2);
        for _ in 0..2 {
            pol.exchange(&mut runs);
        }
        assert_eq!(pol.scale(), 4);
        assert_eq!(pol.interval(100), 400);
        // An improvement (advance the runs so they hold finite energy
        // below the fake previous best) snaps back to the base.
        pol.last_energies = vec![f64::INFINITY];
        for run in &mut runs {
            run.advance(500);
        }
        pol.exchange(&mut runs);
        assert_eq!(pol.scale(), 1);
        assert_eq!(pol.interval(100), 100);
    }
}

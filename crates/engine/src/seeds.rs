//! Root-seed → per-island seed derivation.

/// Derives `n` decorrelated island seeds from one root seed using the
/// SplitMix64 sequence. The mapping is pure, so island `i` of a run with
/// root seed `r` always receives the same seed — the foundation of the
/// engine's thread-schedule independence. (SplitMix64 is the generator
/// Vigna recommends for seeding other PRNGs; its output is equidistributed
/// over u64, so islands never collide for n ≪ 2^32.)
pub fn derive_seeds(root: u64, n: usize) -> Vec<u64> {
    let mut state = root;
    (0..n).map(|_| splitmix64(&mut state)).collect()
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_prefix_stable() {
        assert_eq!(derive_seeds(7, 4), derive_seeds(7, 4));
        // Growing the ensemble never reshuffles existing islands' seeds.
        assert_eq!(derive_seeds(7, 2), derive_seeds(7, 4)[..2].to_vec());
    }

    #[test]
    fn distinct_across_islands_and_roots() {
        let s = derive_seeds(1, 64);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 64, "island seeds must not collide");
        assert_ne!(derive_seeds(1, 4), derive_seeds(2, 4));
    }

    #[test]
    fn known_splitmix_vector() {
        // First output of SplitMix64 seeded with 0 (reference value from
        // Vigna's splitmix64.c).
        assert_eq!(derive_seeds(0, 1)[0], 0xE220_A839_7B1D_CDAF);
    }
}

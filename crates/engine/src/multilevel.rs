//! Multilevel acceleration for the solver: run the fusion–fission
//! ensemble on a coarsened graph, then uncoarsen with per-level
//! refinement.
//!
//! Flat fusion–fission starts from singletons and pays per-vertex
//! reaction costs on the full graph. [`Solver::multilevel`] instead runs
//! the *unchanged* ensemble (islands, migration, reduction) as the
//! coarse-level optimizer of an [`ff_multilevel::Vcycle`]: heavy-edge
//! coarsening to a few thousand vertices, the full search there, then
//! level-by-level projection plus greedy refinement back to the input
//! graph — the memetic-multilevel recipe. Steps cost ~`coarse_n / n` of
//! their flat price, so the same step budget finishes in a fraction of
//! the wall-clock.
//!
//! Determinism is preserved end to end: the coarsening stack, the coarse
//! ensemble, and every refinement sweep are pure functions of the root
//! seed, so equal seeds and step budgets give byte-identical fine
//! partitions across reruns and thread caps.
//!
//! [`Solver::multilevel`]: crate::Solver::multilevel

pub use ff_multilevel::LevelReport;

/// Options for [`Solver::multilevel`](crate::Solver::multilevel).
#[derive(Clone, Copy, Debug)]
pub struct MultilevelOpts {
    /// Coarsen until at most this many vertices remain (default 3000).
    /// Must be positive; validation rejects 0.
    pub coarsen_until: usize,
    /// Greedy refinement sweeps per uncoarsening level (default 8).
    pub refine_passes: usize,
    /// Optional fine-graph polish: after uncoarsening, warm-start one
    /// fusion–fission run (`FusionFission::with_initial`) on the input
    /// graph from the refined partition for this many steps, keeping the
    /// result only if it is at least as good. `0` (default) disables it.
    /// Ignored for Pareto reductions, whose points are refined per
    /// objective instead.
    pub polish_steps: u64,
}

impl Default for MultilevelOpts {
    fn default() -> Self {
        MultilevelOpts {
            coarsen_until: 3000,
            refine_passes: 8,
            polish_steps: 0,
        }
    }
}

/// What the multilevel pipeline did, attached to
/// [`EnsembleResult::multilevel`](crate::EnsembleResult::multilevel).
#[derive(Clone, Debug)]
pub struct MultilevelInfo {
    /// Coarsening levels built (0 means the input was already at or below
    /// the target and the run was effectively flat).
    pub levels: usize,
    /// Vertices of the graph the ensemble actually searched.
    pub coarse_vertices: usize,
    /// Per-level refinement reports for the winning partition,
    /// coarsest-first; the last report's `value_after` is the final fine
    /// objective value.
    pub reports: Vec<LevelReport>,
}

//! The [`Solver`] builder — the one front door to the fusion–fission
//! engine.
//!
//! Historically the engine had scattered entry points
//! (`FusionFission::new`/`with_initial`, `Ensemble::new`,
//! `EnsembleConfig`); the builder unifies them behind one fluent,
//! validated configuration path and adds the two strategy seams:
//! [`MigrationPolicy`] (what moves between islands, and when) and
//! [`Reduction`] (how harvested islands become one result, including the
//! multi-objective Pareto front).
//!
//! ```
//! use ff_engine::Solver;
//! use ff_graph::generators::planted_partition;
//!
//! let g = planted_partition(4, 10, 0.85, 0.03, 5);
//! let result = Solver::on(&g)
//!     .k(4)
//!     .islands(3)
//!     .steps(2_000)
//!     .seed(42)
//!     .run()
//!     .unwrap();
//! assert_eq!(result.best.num_nonempty_parts(), 4);
//! ```

use crate::ensemble::EnsembleResult;
use crate::migration::{MigrationPolicy, ReplaceIfBetter};
use crate::multilevel::{MultilevelInfo, MultilevelOpts};
use crate::obs::{record_level_reports, EngineObs};
use crate::reduction::{MinEnergy, ParetoPoint, Reduction};
use crate::seeds::derive_seeds;
use ff_core::{
    ConfigError, FusionFission, FusionFissionConfig, FusionFissionResult, FusionFissionRun,
};
use ff_graph::Graph;
use ff_metaheur::{AnytimeTrace, CancelToken, StopCondition};
use ff_multilevel::{Vcycle, VcycleOpts};
use ff_partition::{pareto_front_indices, Objective, Partition};
use std::collections::BTreeMap;

/// The distinct objectives of a per-island cycle list, in first-
/// appearance order — the axis order of any Pareto front built over it.
pub fn distinct_objectives(list: &[Objective]) -> Vec<Objective> {
    let mut distinct = Vec::new();
    for &o in list {
        if !distinct.contains(&o) {
            distinct.push(o);
        }
    }
    distinct
}

/// Minimum island count so that cycling `list` over the islands gives
/// every distinct objective at least one island: the index of the last
/// first occurrence, plus one. (`[Cut, Cut, MCut]` needs 3 islands —
/// with 2, MCut would silently never be optimized.)
pub fn islands_to_cover(list: &[Objective]) -> usize {
    let mut seen = Vec::new();
    let mut needed = 0;
    for (i, &o) in list.iter().enumerate() {
        if !seen.contains(&o) {
            seen.push(o);
            needed = i + 1;
        }
    }
    needed
}

/// Fluent, validated configuration for a fusion–fission run — one island
/// or a whole migration ensemble. Build with [`Solver::on`], configure,
/// then [`Solver::run`] (one-shot) or [`Solver::start`] (resumable
/// [`SolverRun`]).
pub struct Solver<'g> {
    g: &'g Graph,
    base: FusionFissionConfig,
    islands: usize,
    max_threads: usize,
    migration_interval: u64,
    migration: Box<dyn MigrationPolicy>,
    reduction: Box<dyn Reduction>,
    seed: u64,
    island_seeds: Option<Vec<u64>>,
    objectives: Option<Vec<Objective>>,
    initial: Option<Partition>,
    multilevel: Option<MultilevelOpts>,
    obs: Option<ff_obs::Registry>,
}

impl<'g> Solver<'g> {
    /// A solver on `g` with the paper-faithful defaults: single island,
    /// Mcut, seed 1, [`ReplaceIfBetter`] migration every 1024 steps,
    /// [`MinEnergy`] reduction. `k` **must** be set before starting.
    pub fn on(g: &'g Graph) -> Solver<'g> {
        Solver {
            g,
            base: FusionFissionConfig::standard(0),
            islands: 1,
            max_threads: 0,
            migration_interval: 1024,
            migration: Box::new(ReplaceIfBetter),
            reduction: Box::new(MinEnergy),
            seed: 1,
            island_seeds: None,
            objectives: None,
            initial: None,
            multilevel: None,
            obs: None,
        }
    }

    /// Target part count (required).
    pub fn k(mut self, k: usize) -> Self {
        self.base.k = k;
        self
    }

    /// The objective every island minimizes (default Mcut). For
    /// per-island overrides see [`Solver::objectives`].
    pub fn objective(mut self, objective: Objective) -> Self {
        self.base.objective = objective;
        self.objectives = None;
        self
    }

    /// Per-island objective overrides: island `i` minimizes
    /// `objectives[i % len]`, so 4 islands over `[Cut, MCut]` run two of
    /// each. More than one distinct objective usually wants the
    /// [`ParetoFront`](crate::ParetoFront) reduction.
    pub fn objectives(mut self, objectives: impl Into<Vec<Objective>>) -> Self {
        self.objectives = Some(objectives.into());
        self
    }

    /// Island count (default 1).
    pub fn islands(mut self, islands: usize) -> Self {
        self.islands = islands;
        self
    }

    /// Concurrent OS threads per epoch; `0` (default) means one per
    /// island. Results are identical for any cap under step budgets.
    pub fn threads(mut self, max_threads: usize) -> Self {
        self.max_threads = max_threads;
        self
    }

    /// The migration policy (default [`ReplaceIfBetter`]).
    pub fn migration(mut self, policy: impl MigrationPolicy + 'static) -> Self {
        self.migration = Box::new(policy);
        self
    }

    /// Steps each island advances between migration barriers (default
    /// 1024); `0` disables migration (pure independent multi-start).
    pub fn migration_interval(mut self, interval: u64) -> Self {
        self.migration_interval = interval;
        self
    }

    /// The ensemble reduction (default [`MinEnergy`]).
    pub fn reduction(mut self, reduction: impl Reduction + 'static) -> Self {
        self.reduction = Box::new(reduction);
        self
    }

    /// Root RNG seed (default 1). Island seeds are derived from it with
    /// [`derive_seeds`] unless [`Solver::island_seeds`] overrides them.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Explicit per-island seeds, bypassing root-seed derivation — how a
    /// single-island solver reproduces a plain
    /// `FusionFission::new(g, cfg, seed)` run bit-for-bit. Must match the
    /// island count.
    pub fn island_seeds(mut self, seeds: impl Into<Vec<u64>>) -> Self {
        self.island_seeds = Some(seeds.into());
        self
    }

    /// Step budget per island (a convenience over [`Solver::stop`]).
    pub fn steps(mut self, steps: u64) -> Self {
        self.base.stop = StopCondition::steps(steps);
        self
    }

    /// Full stop condition per island (steps and/or wall-clock).
    pub fn stop(mut self, stop: StopCondition) -> Self {
        self.base.stop = stop;
        self
    }

    /// Warm start: every island skips Algorithm 2's singleton
    /// agglomeration and starts from `initial` (the
    /// `FusionFission::with_initial` hybridization).
    pub fn initial(mut self, initial: Partition) -> Self {
        self.initial = Some(initial);
        self
    }

    /// Multilevel acceleration: coarsen the graph, run the (unchanged)
    /// ensemble on the coarse graph, then uncoarsen with per-level greedy
    /// refinement. Only [`Solver::run`] / [`Solver::run_with`] support it
    /// — the V-cycle owns the epoch loop, so [`Solver::start`] rejects it
    /// with [`ConfigError::MultilevelNotResumable`]. Incompatible with
    /// [`Solver::initial`] (the warm start lives on the fine graph).
    pub fn multilevel(mut self, opts: MultilevelOpts) -> Self {
        self.multilevel = Some(opts);
        self
    }

    /// Attaches a metrics registry. Observation-only — partition bytes,
    /// RNG streams and epoch chunking are identical with or without it
    /// (test-asserted). Registered families, per epoch barrier:
    /// `ff_engine_epochs_total`, `ff_engine_epoch_ms`,
    /// `ff_engine_migration_offers_total{policy}`,
    /// `ff_engine_migration_accepts_total{policy}`,
    /// `ff_engine_migration_rejects_total{policy}`,
    /// `ff_engine_improvement_delta`, and — under
    /// [`Solver::multilevel`] — `ff_engine_level_refine_ms` plus
    /// `ff_engine_refine_moves_total`.
    pub fn observe(mut self, registry: ff_obs::Registry) -> Self {
        self.obs = Some(registry);
        self
    }

    /// Full control over the per-island search configuration (presets,
    /// temperatures, ablation switches). Overwrites `k`, `objective` and
    /// the stop condition, so call it *before* those builder methods.
    pub fn config(mut self, base: FusionFissionConfig) -> Self {
        self.base = base;
        self
    }

    /// Validates the whole configuration without starting anything.
    pub fn try_validate(&self) -> Result<(), ConfigError> {
        self.base.try_validate()?;
        if self.islands == 0 {
            return Err(ConfigError::ZeroIslands);
        }
        if let Some(seeds) = &self.island_seeds {
            if seeds.len() != self.islands {
                return Err(ConfigError::SeedCountMismatch {
                    islands: self.islands,
                    seeds: seeds.len(),
                });
            }
        }
        if let Some(objectives) = &self.objectives {
            if objectives.is_empty() {
                return Err(ConfigError::NoObjectives);
            }
            let needed = islands_to_cover(objectives);
            if self.islands < needed {
                return Err(ConfigError::UncoveredObjectives {
                    islands: self.islands,
                    needed,
                });
            }
        }
        if let Some(ml) = &self.multilevel {
            if ml.coarsen_until == 0 {
                return Err(ConfigError::ZeroCoarsenTarget);
            }
            if self.initial.is_some() {
                return Err(ConfigError::MultilevelWithInitial);
            }
        }
        Ok(())
    }

    /// Builds the live, resumable run, or reports the first
    /// configuration error. Rejects multilevel configurations
    /// ([`ConfigError::MultilevelNotResumable`]): the V-cycle owns the
    /// epoch loop, so multilevel runs go through [`Solver::run`] or
    /// [`Solver::run_with`].
    pub fn start(self) -> Result<SolverRun<'g>, ConfigError> {
        if self.multilevel.is_some() {
            return Err(ConfigError::MultilevelNotResumable);
        }
        self.start_flat()
    }

    /// The flat start path — `self.multilevel` must already be `None` or
    /// stripped (the coarse solver inside [`Solver::run_with`]).
    fn start_flat(self) -> Result<SolverRun<'g>, ConfigError> {
        self.try_validate()?;
        let n = self.islands;
        let seeds = match self.island_seeds {
            Some(seeds) => seeds,
            None => derive_seeds(self.seed, n),
        };
        let per_island: Vec<Objective> = match &self.objectives {
            Some(list) => (0..n).map(|i| list[i % list.len()]).collect(),
            None => vec![self.base.objective; n],
        };
        // Axis order of any Pareto front. Validation guaranteed the
        // cycled assignment covers every distinct objective of the list.
        let distinct = distinct_objectives(&per_island);
        let runs: Vec<FusionFissionRun<'g>> = seeds
            .iter()
            .zip(&per_island)
            .map(|(&seed, &objective)| {
                let cfg = FusionFissionConfig {
                    objective,
                    ..self.base
                };
                match &self.initial {
                    Some(p) => FusionFission::with_initial(self.g, cfg, seed, p.clone()),
                    None => FusionFission::new(self.g, cfg, seed),
                }
                .start()
            })
            .collect();
        let (obs, migration) = match &self.obs {
            Some(registry) => {
                let obs = EngineObs::new(registry, self.migration.name(), n);
                let wrapped = obs.wrap(registry, self.migration);
                (Some(obs), wrapped)
            }
            None => (None, self.migration),
        };
        Ok(SolverRun {
            g: self.g,
            runs,
            max_threads: self.max_threads,
            base_interval: self.migration_interval,
            migration,
            reduction: self.reduction,
            objectives: distinct,
            migrations_adopted: 0,
            obs,
        })
    }

    /// Runs to every island's stop condition and reduces. Without
    /// [`Solver::multilevel`] this is equivalent to [`Solver::start`] +
    /// [`SolverRun::advance_epoch`] to exhaustion + [`SolverRun::harvest`]
    /// (bit-equal; both paths drive the same epoch code). With it, the
    /// ensemble runs on the coarse graph and the winner is uncoarsened
    /// with per-level refinement.
    pub fn run(self) -> Result<EnsembleResult, ConfigError> {
        self.run_with(|run| while run.advance_epoch() {})
    }

    /// Like [`Solver::run`], but the caller drives the epoch loop: `drive`
    /// receives the live [`SolverRun`] (the *coarse* run under
    /// [`Solver::multilevel`]) and advances it however it likes —
    /// streaming traces, checking deadlines, binding cancellation.
    /// Harvest (and, for multilevel, uncoarsening) happens after `drive`
    /// returns.
    pub fn run_with<D>(mut self, mut drive: D) -> Result<EnsembleResult, ConfigError>
    where
        D: for<'a> FnMut(&mut SolverRun<'a>),
    {
        self.try_validate()?;
        let Some(opts) = self.multilevel.take() else {
            let mut run = self.start_flat()?;
            drive(&mut run);
            return Ok(run.harvest());
        };
        let g = self.g;
        let base = self.base;
        let vc = Vcycle::new(
            g,
            VcycleOpts {
                coarsen_until: opts.coarsen_until,
                refine_passes: opts.refine_passes,
                seed: self.seed,
                min_coarse_vertices: base.k.max(2),
            },
        );
        let Solver {
            g: _,
            base: _,
            islands,
            max_threads,
            migration_interval,
            migration,
            reduction,
            seed,
            island_seeds,
            objectives,
            initial: _,
            multilevel: _,
            obs,
        } = self;
        let obs_registry = obs.clone();
        let coarse_solver = Solver {
            g: vc.coarsest(),
            base,
            islands,
            max_threads,
            migration_interval,
            migration,
            reduction,
            seed,
            island_seeds,
            objectives,
            initial: None,
            multilevel: None,
            obs,
        };
        let mut run = coarse_solver.start_flat()?;
        drive(&mut run);
        let mut res = run.harvest();

        if let Some(front) = res.pareto.take() {
            // Refine every front point under its own objective, re-score
            // under all axes on the fine graph, and re-filter: refinement
            // can change domination.
            let axes = front.objectives.clone();
            let mut points = front.points;
            let mut reports_per_point = Vec::with_capacity(points.len());
            for pt in &mut points {
                let (fine, reports) = vc.refine_up(&pt.partition, pt.objective);
                if let Some(registry) = &obs_registry {
                    record_level_reports(registry, &reports);
                }
                pt.values = axes.iter().map(|o| o.evaluate(g, &fine)).collect();
                pt.parts = fine.num_nonempty_parts();
                pt.partition = fine;
                reports_per_point.push(reports);
            }
            let vectors: Vec<Vec<f64>> = points.iter().map(|p| p.values.clone()).collect();
            let keep = pareto_front_indices(&vectors);
            let (points, reports_per_point): (Vec<ParetoPoint>, Vec<_>) = keep
                .into_iter()
                .map(|i| (points[i].clone(), std::mem::take(&mut reports_per_point[i])))
                .unzip();
            let front = crate::reduction::ParetoResult {
                objectives: axes,
                points,
            };
            let mut rep_reports = Vec::new();
            if let Some(rep) = front.best_under(front.objectives[0]) {
                let axis = front
                    .objectives
                    .iter()
                    .position(|&o| o == rep.objective)
                    .unwrap_or(0);
                res.best = rep.partition.clone();
                res.best_value = rep.values[axis];
                res.best_island = rep.island;
                let idx = front.points.iter().position(|p| p.island == rep.island);
                if let Some(idx) = idx {
                    rep_reports = reports_per_point[idx].clone();
                }
            }
            res.pareto = Some(front);
            res.multilevel = Some(MultilevelInfo {
                levels: vc.num_levels(),
                coarse_vertices: vc.coarsest().num_vertices(),
                reports: rep_reports,
            });
            return Ok(res);
        }

        // Single-front path: refine the winning partition under the
        // winning island's own objective.
        let win_obj = res.islands[res.best_island]
            .trace
            .tag()
            .unwrap_or(base.objective);
        let (fine, reports) = vc.refine_up(&res.best, win_obj);
        if let Some(registry) = &obs_registry {
            record_level_reports(registry, &reports);
        }
        res.best_value = reports
            .last()
            .map(|r| r.value_after)
            .unwrap_or(res.best_value);
        res.best = fine;
        if opts.polish_steps > 0 {
            // Warm-start one fine-graph fusion–fission run from the
            // refined partition; keep it when at least as good.
            let polish_seed = derive_seeds(seed, islands + 1)[islands];
            let cfg = FusionFissionConfig {
                objective: win_obj,
                stop: StopCondition::steps(opts.polish_steps),
                ..base
            };
            let polished = FusionFission::with_initial(g, cfg, polish_seed, res.best.clone()).run();
            res.steps += polished.steps;
            if polished.best_value <= res.best_value {
                res.best_value = polished.best_value;
                res.best = polished.best;
            }
        }
        res.multilevel = Some(MultilevelInfo {
            levels: vc.num_levels(),
            coarse_vertices: vc.coarsest().num_vertices(),
            reports,
        });
        Ok(res)
    }
}

/// A live, resumable solver run: islands advance in lockstep epochs with
/// the migration policy exchanging molecules at each barrier. Produced by
/// [`Solver::start`]; drive with [`SolverRun::advance_epoch`], harvest
/// with [`SolverRun::harvest`].
///
/// ## Determinism
///
/// With a step-based stop condition the result is byte-identical across
/// repeated runs and across any [`Solver::threads`] cap, for every
/// migration policy: island seeds are pure functions of the root seed,
/// epochs are barriers, and policies act only on barrier-time island
/// state.
pub struct SolverRun<'g> {
    g: &'g Graph,
    runs: Vec<FusionFissionRun<'g>>,
    max_threads: usize,
    base_interval: u64,
    migration: Box<dyn MigrationPolicy>,
    reduction: Box<dyn Reduction>,
    objectives: Vec<Objective>,
    migrations_adopted: u64,
    obs: Option<EngineObs>,
}

impl<'g> SolverRun<'g> {
    /// One epoch: every island advances by the policy's interval (in
    /// waves of at most the configured thread cap), then the policy
    /// exchanges molecules at the barrier. Returns `true` while at least
    /// one island has work left, `false` once all islands hit their stop
    /// conditions or a bound [`CancelToken`] fired.
    pub fn advance_epoch(&mut self) -> bool {
        let epoch_start = self.obs.as_ref().map(|_| std::time::Instant::now());
        let n = self.runs.len();
        let chunk = if self.base_interval == 0 {
            u64::MAX
        } else {
            self.migration.interval(self.base_interval).max(1)
        };
        let cap = if self.max_threads == 0 {
            n
        } else {
            self.max_threads.max(1)
        };
        // Each island's state evolution depends only on its own seed and
        // past injections, so wave layout cannot change results.
        let mut more = vec![false; n];
        for (wave, flags) in self.runs.chunks_mut(cap).zip(more.chunks_mut(cap)) {
            std::thread::scope(|scope| {
                for (run, flag) in wave.iter_mut().zip(flags.iter_mut()) {
                    scope.spawn(move || {
                        *flag = run.advance(chunk);
                    });
                }
            });
        }
        let any_more = more.iter().any(|&b| b);
        let adopted_before = self.migrations_adopted;
        if any_more && n > 1 && self.base_interval > 0 {
            self.migrations_adopted += self.migration.exchange(&mut self.runs);
        }
        if let (Some(obs), Some(start)) = (&mut self.obs, epoch_start) {
            obs.record_epoch(
                start.elapsed(),
                self.migrations_adopted - adopted_before,
                &self.runs,
            );
        }
        any_more
    }

    /// Binds one cooperative cancellation token to every island: when it
    /// fires, the in-flight epoch ends at each island's next step check
    /// and [`advance_epoch`](SolverRun::advance_epoch) returns `false`.
    pub fn bind_cancel(&mut self, token: CancelToken) {
        for run in &mut self.runs {
            run.bind_cancel(token.clone());
        }
    }

    /// The live island runs, in island order — read-only access for
    /// streaming taps (each island's
    /// [`trace`](FusionFissionRun::trace) is the per-island improvement
    /// stream, tagged with that island's objective).
    pub fn islands(&self) -> &[FusionFissionRun<'g>] {
        &self.runs
    }

    /// The distinct objectives this run optimizes, in island order of
    /// first appearance.
    pub fn objectives(&self) -> &[Objective] {
        &self.objectives
    }

    /// Whether every island has finished (stop condition or cancellation).
    pub fn finished(&self) -> bool {
        self.runs.iter().all(|r| r.finished())
    }

    /// Total steps executed so far across all islands.
    pub fn total_steps(&self) -> u64 {
        self.runs.iter().map(|r| r.steps()).sum()
    }

    /// Migration offers adopted so far.
    pub fn migrations_adopted(&self) -> u64 {
        self.migrations_adopted
    }

    /// Best objective value held at the target k so far, minimized across
    /// islands (`None` until some island first visits the target k). Only
    /// meaningful for single-objective runs — mixed-objective values are
    /// not comparable.
    pub fn best_value_at_target(&self) -> Option<f64> {
        self.runs
            .iter()
            .filter_map(|r| r.best_at_target().map(|(v, _)| v))
            .min_by(f64::total_cmp)
    }

    /// Consumes the run, harvesting every island and applying the
    /// configured [`Reduction`].
    pub fn harvest(self) -> EnsembleResult {
        let islands: Vec<FusionFissionResult> =
            self.runs.into_iter().map(|r| r.harvest()).collect();
        let reduced = self.reduction.reduce(self.g, &islands, &self.objectives);
        let best_island = reduced.best_island;
        // Cross-island merges only make sense within one criterion: merge
        // the primary (first) objective's islands, which for a
        // single-objective run is every island — bit-equal to the
        // historical reduction.
        let primary = self.objectives[0];
        let primary_islands = || {
            islands
                .iter()
                .filter(move |r| r.trace.tag().unwrap_or(primary) == primary)
        };
        let trace = AnytimeTrace::merged(primary_islands().map(|r| &r.trace));
        let mut best_value_per_k = BTreeMap::new();
        for r in primary_islands() {
            for (&k, &v) in &r.best_value_per_k {
                let entry = best_value_per_k.entry(k).or_insert(f64::INFINITY);
                if v < *entry {
                    *entry = v;
                }
            }
        }
        EnsembleResult {
            best: islands[best_island].best.clone(),
            best_value: islands[best_island].best_value,
            best_island,
            steps: islands.iter().map(|r| r.steps).sum(),
            migrations_adopted: self.migrations_adopted,
            trace,
            best_value_per_k,
            pareto: reduced.pareto,
            multilevel: None,
            islands,
        }
    }
}

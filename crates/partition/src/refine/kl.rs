//! Kernighan–Lin pairwise-swap bisection refinement.
//!
//! The 1970 original: in each pass, greedily pick the pair `(a ∈ A, b ∈ B)`
//! with the best swap gain `D[a] + D[b] − 2·w(a, b)`, tentatively swap and
//! lock, repeat, then keep the best prefix of the swap sequence. Swapping
//! pairs preserves part *sizes* exactly, which is why Table 1's `KL` rows
//! stay balanced without an explicit constraint.
//!
//! Pair selection uses the classic sorted-D pruning: once
//! `D[a] + D[b] ≤ best_gain`, no later pair can win (edge weights are
//! non-negative), so the double loop exits early.

use crate::objective::CutState;
use ff_graph::VertexId;

/// Options for [`kl_refine_bisection`].
#[derive(Clone, Copy, Debug)]
pub struct KlOptions {
    /// Maximum number of KL passes (default 8).
    pub max_passes: usize,
    /// Cap on tentative swaps per pass, as a fraction of the smaller side
    /// (default 1.0 = full pass).
    pub swap_fraction: f64,
}

impl Default for KlOptions {
    fn default() -> Self {
        KlOptions {
            max_passes: 8,
            swap_fraction: 1.0,
        }
    }
}

/// Refines the bisection formed by parts `pa` and `pb` of `st` in place,
/// swapping vertex pairs. Returns the total cut-weight improvement (≥ 0).
pub fn kl_refine_bisection(st: &mut CutState, pa: u32, pb: u32, opts: &KlOptions) -> f64 {
    assert_ne!(pa, pb, "bisection parts must differ");
    let g = st.graph();
    let n = g.num_vertices();
    let mut total_improvement = 0.0;

    for _pass in 0..opts.max_passes {
        let side_a: Vec<VertexId> = st.partition().part_members(pa);
        let side_b: Vec<VertexId> = st.partition().part_members(pb);
        if side_a.is_empty() || side_b.is_empty() {
            return total_improvement;
        }
        // D[v] = external − internal connection within the bisection.
        let mut d = vec![0.0f64; n];
        for &v in side_a.iter().chain(&side_b) {
            let own = st.partition().part_of(v);
            let other = if own == pa { pb } else { pa };
            let mut ext = 0.0;
            let mut int = 0.0;
            for (u, w) in g.edges_of(v) {
                let p = st.partition().part_of(u);
                if p == own {
                    int += w;
                } else if p == other {
                    ext += w;
                }
            }
            d[v as usize] = ext - int;
        }

        let mut locked = vec![false; n];
        let max_swaps =
            ((side_a.len().min(side_b.len()) as f64) * opts.swap_fraction).ceil() as usize;
        let mut swaps: Vec<(VertexId, VertexId)> = Vec::with_capacity(max_swaps);
        let mut cum = 0.0f64;
        let mut best_cum = 0.0f64;
        let mut best_len = 0usize;

        for _ in 0..max_swaps {
            // Candidates sorted by D descending (unlocked only).
            let mut cand_a: Vec<VertexId> = side_a
                .iter()
                .copied()
                .filter(|&v| !locked[v as usize])
                .collect();
            let mut cand_b: Vec<VertexId> = side_b
                .iter()
                .copied()
                .filter(|&v| !locked[v as usize])
                .collect();
            if cand_a.is_empty() || cand_b.is_empty() {
                break;
            }
            cand_a.sort_by(|&x, &y| d[y as usize].partial_cmp(&d[x as usize]).unwrap());
            cand_b.sort_by(|&x, &y| d[y as usize].partial_cmp(&d[x as usize]).unwrap());

            let mut best: Option<(VertexId, VertexId, f64)> = None;
            'outer: for &a in &cand_a {
                for &b in &cand_b {
                    let upper = d[a as usize] + d[b as usize];
                    if let Some((_, _, bg)) = best {
                        if upper <= bg {
                            if d[b as usize] == d[cand_b[0] as usize] {
                                // Even the best b can't beat it for any later a.
                                break 'outer;
                            }
                            break;
                        }
                    }
                    let w_ab = g.edge_weight(a, b).unwrap_or(0.0);
                    let gain = upper - 2.0 * w_ab;
                    if best.is_none_or(|(_, _, bg)| gain > bg) {
                        best = Some((a, b, gain));
                    }
                }
            }
            let Some((a, b, gain)) = best else { break };

            // Tentatively swap (two moves), lock both, update D values.
            st.move_vertex(a, pb);
            st.move_vertex(b, pa);
            locked[a as usize] = true;
            locked[b as usize] = true;
            swaps.push((a, b));
            cum += gain;
            if cum > best_cum + 1e-12 {
                best_cum = cum;
                best_len = swaps.len();
            }

            // Standard D update: for unlocked v on a's old side,
            // D[v] += 2w(v,a) − 2w(v,b); symmetric for b's old side.
            for (u, w) in g.edges_of(a) {
                if locked[u as usize] {
                    continue;
                }
                let p = st.partition().part_of(u);
                if p == pa {
                    d[u as usize] += 2.0 * w;
                } else if p == pb {
                    d[u as usize] -= 2.0 * w;
                }
            }
            for (u, w) in g.edges_of(b) {
                if locked[u as usize] {
                    continue;
                }
                let p = st.partition().part_of(u);
                if p == pb {
                    d[u as usize] += 2.0 * w;
                } else if p == pa {
                    d[u as usize] -= 2.0 * w;
                }
            }
        }

        // Roll back swaps beyond the best prefix.
        for &(a, b) in swaps[best_len..].iter().rev() {
            st.move_vertex(a, pa);
            st.move_vertex(b, pb);
        }
        total_improvement += best_cum;
        if best_cum <= 1e-12 {
            break;
        }
    }
    total_improvement
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Partition;
    use ff_graph::generators::{grid2d, random_geometric, two_cliques_bridge};

    #[test]
    fn recovers_planted_bisection() {
        let g = two_cliques_bridge(6, 2.0, 0.25);
        let asg: Vec<u32> = (0..12).map(|v| (v % 2) as u32).collect();
        let p = Partition::from_assignment(&g, asg, 2);
        let mut st = CutState::new(&g, p);
        let before = st.cut();
        let imp = kl_refine_bisection(&mut st, 0, 1, &KlOptions::default());
        assert!((before - st.cut() - imp).abs() < 1e-9);
        assert!(
            (st.cut() - 0.25).abs() < 1e-9,
            "expected bridge-only cut, got {}",
            st.cut()
        );
    }

    #[test]
    fn preserves_side_sizes_exactly() {
        let g = random_geometric(40, 0.3, 1);
        let p = Partition::random(&g, 2, 2);
        let (s0, s1) = (p.part_size(0), p.part_size(1));
        let mut st = CutState::new(&g, p);
        kl_refine_bisection(&mut st, 0, 1, &KlOptions::default());
        assert_eq!(st.partition().part_size(0), s0);
        assert_eq!(st.partition().part_size(1), s1);
    }

    #[test]
    fn never_worsens() {
        for seed in 0..5 {
            let g = random_geometric(50, 0.28, seed + 10);
            let p = Partition::random(&g, 2, seed);
            let mut st = CutState::new(&g, p);
            let before = st.cut();
            kl_refine_bisection(&mut st, 0, 1, &KlOptions::default());
            assert!(st.cut() <= before + 1e-9);
            assert!(st.drift() < 1e-8);
        }
    }

    #[test]
    fn improves_random_grid_bisection() {
        let g = grid2d(8, 8);
        let p = Partition::random(&g, 2, 3);
        let mut st = CutState::new(&g, p);
        let before = st.cut();
        let imp = kl_refine_bisection(&mut st, 0, 1, &KlOptions::default());
        assert!(imp > 0.0, "random grid bisection must be improvable");
        assert!(st.cut() < before);
    }

    #[test]
    fn empty_side_is_noop() {
        let g = grid2d(3, 3);
        let p = Partition::from_assignment(&g, vec![0; 9], 2);
        let mut st = CutState::new(&g, p);
        assert_eq!(
            kl_refine_bisection(&mut st, 0, 1, &KlOptions::default()),
            0.0
        );
    }
}

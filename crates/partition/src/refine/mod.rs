//! Local refinement algorithms.
//!
//! §2.3 of the paper: spectral and multilevel partitions are not locally
//! optimal; Kernighan–Lin-family refinement typically improves them
//! 10–30 %. This module provides:
//!
//! * [`kl`] — Kernighan–Lin pairwise-swap refinement of a bisection
//!   (the `KL` suffix of Table 1's method names),
//! * [`fm`] — Fiduccia–Mattheyses single-move passes with best-prefix
//!   rollback (the linear-time formulation; used inside the multilevel
//!   V-cycle),
//! * [`greedy`] — greedy k-way boundary refinement for arbitrary
//!   objectives (Cut/Ncut/Mcut).

pub mod fm;
pub mod greedy;
pub mod kl;
pub mod pairwise;

//! Greedy k-way boundary refinement for arbitrary objectives.
//!
//! METIS-style: sweep the vertices; for each, evaluate the objective delta
//! of moving it to each *neighboring* part (the only moves that can reduce
//! any of the three criteria) and apply the best strictly-improving
//! admissible move. Repeat until a sweep makes no move. Works for Cut,
//! Ncut and Mcut because it delegates deltas to
//! [`CutState::move_delta`].

use crate::balance::BalanceConstraint;
use crate::objective::{CutState, Objective};
use ff_graph::VertexId;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// Options for [`greedy_refine_kway`].
#[derive(Clone, Copy, Debug)]
pub struct GreedyOptions {
    /// Maximum sweeps (default 12).
    pub max_passes: usize,
    /// Balance band parts must stay inside.
    pub balance: BalanceConstraint,
    /// Seed for the sweep order shuffle.
    pub seed: u64,
    /// Never empty a part (default true — the paper's k-partition must keep
    /// k non-empty parts).
    pub keep_parts_nonempty: bool,
}

impl Default for GreedyOptions {
    fn default() -> Self {
        GreedyOptions {
            max_passes: 12,
            balance: BalanceConstraint::unconstrained(),
            seed: 1,
            keep_parts_nonempty: true,
        }
    }
}

/// Greedily refines `st` under `obj`. Returns the number of moves applied.
pub fn greedy_refine_kway(st: &mut CutState, obj: Objective, opts: &GreedyOptions) -> usize {
    let g = st.graph();
    let mut order: Vec<VertexId> = g.vertices().collect();
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed);
    let mut moves_total = 0usize;

    for _pass in 0..opts.max_passes {
        order.shuffle(&mut rng);
        let mut moved_this_pass = 0usize;
        for &v in &order {
            let from = st.partition().part_of(v);
            if opts.keep_parts_nonempty && st.partition().part_size(from) <= 1 {
                continue;
            }
            // Candidate targets: parts that own at least one neighbor
            // (sorted so tie-breaking is deterministic).
            let mut best: Option<(u32, f64)> = None;
            for (to, _) in st.connection_weights(v) {
                if to == from {
                    continue;
                }
                if !opts.balance.allows_move(
                    st.partition().part_weight(from),
                    st.partition().part_weight(to),
                    g.vertex_weight(v),
                ) {
                    continue;
                }
                let delta = st.move_delta(obj, v, to);
                if delta < -1e-12 && best.is_none_or(|(_, bd)| delta < bd) {
                    best = Some((to, delta));
                }
            }
            if let Some((to, _)) = best {
                st.move_vertex(v, to);
                moved_this_pass += 1;
            }
        }
        moves_total += moved_this_pass;
        if moved_this_pass == 0 {
            break;
        }
    }
    moves_total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Partition;
    use ff_graph::generators::{planted_partition, random_geometric};

    #[test]
    fn improves_each_objective() {
        let g = random_geometric(80, 0.22, 4);
        for obj in Objective::all() {
            let p = Partition::random(&g, 4, 9);
            let mut st = CutState::new(&g, p);
            let before = st.objective(obj);
            greedy_refine_kway(&mut st, obj, &GreedyOptions::default());
            let after = st.objective(obj);
            assert!(
                after <= before || (before.is_infinite() && after.is_finite()),
                "{obj}: {before} → {after}"
            );
            assert!(st.drift() < 1e-8);
        }
    }

    #[test]
    fn keeps_parts_nonempty() {
        let g = random_geometric(30, 0.4, 5);
        let p = Partition::random(&g, 6, 11);
        let k_before = p.num_nonempty_parts();
        let mut st = CutState::new(&g, p);
        greedy_refine_kway(&mut st, Objective::Cut, &GreedyOptions::default());
        assert_eq!(st.partition().num_nonempty_parts(), k_before);
    }

    #[test]
    fn finds_planted_communities() {
        let g = planted_partition(3, 12, 0.9, 0.02, 7);
        // Start from a noisy version of the planted assignment.
        let mut asg: Vec<u32> = (0..36).map(|v| (v / 12) as u32).collect();
        asg[0] = 1;
        asg[13] = 2;
        asg[25] = 0;
        let p = Partition::from_assignment(&g, asg, 3);
        let mut st = CutState::new(&g, p);
        let moves = greedy_refine_kway(&mut st, Objective::Cut, &GreedyOptions::default());
        assert!(moves >= 3, "should fix the three misplaced vertices");
        // After refinement every group should be pure.
        for group in 0..3u32 {
            let members = st
                .partition()
                .part_members(st.partition().part_of((group * 12) as VertexId));
            assert_eq!(members.len(), 12);
        }
    }

    #[test]
    fn respects_balance() {
        let g = random_geometric(60, 0.25, 8);
        let p = Partition::block(&g, 3);
        let balance = BalanceConstraint::with_tolerance(g.total_vertex_weight(), 3, 0.15);
        let mut st = CutState::new(&g, p);
        greedy_refine_kway(
            &mut st,
            Objective::Cut,
            &GreedyOptions {
                balance,
                ..Default::default()
            },
        );
        for part in 0..3u32 {
            assert!(balance.contains(st.partition().part_weight(part)));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let g = random_geometric(50, 0.3, 12);
        let run = |seed| {
            let p = Partition::random(&g, 4, 1);
            let mut st = CutState::new(&g, p);
            greedy_refine_kway(
                &mut st,
                Objective::MCut,
                &GreedyOptions {
                    seed,
                    ..Default::default()
                },
            );
            st.partition().assignment().to_vec()
        };
        assert_eq!(run(5), run(5));
    }
}

//! Fiduccia–Mattheyses bisection refinement.
//!
//! One FM pass moves vertices one at a time (not swaps), always taking the
//! best-gain admissible move, locking each moved vertex, and finally
//! rolling back to the best prefix seen. Unlike the 1982 formulation's
//! integer gain buckets, edge weights here are real-valued (aircraft
//! flows), so the gain structure is a lazy max-heap with stale-entry
//! skipping — same asymptotics up to a log factor, no integer-weight
//! assumption.

use crate::balance::BalanceConstraint;
use crate::objective::CutState;
use ff_graph::VertexId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Options for [`fm_refine_bisection`].
#[derive(Clone, Copy, Debug)]
pub struct FmOptions {
    /// Maximum number of full passes (default 8; FM usually converges in
    /// 2–4).
    pub max_passes: usize,
    /// Balance band both sides must stay inside.
    pub balance: BalanceConstraint,
}

impl Default for FmOptions {
    fn default() -> Self {
        FmOptions {
            max_passes: 8,
            balance: BalanceConstraint::unconstrained(),
        }
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    gain: f64,
    v: VertexId,
}

impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap on gain; ties by smaller vertex id for determinism.
        self.gain
            .partial_cmp(&other.gain)
            .unwrap()
            .then_with(|| other.v.cmp(&self.v))
    }
}

/// Refines the bisection formed by parts `pa` and `pb` of `st` in place.
/// Vertices in other parts are untouched. Returns the total cut-weight
/// improvement (≥ 0).
pub fn fm_refine_bisection(st: &mut CutState, pa: u32, pb: u32, opts: &FmOptions) -> f64 {
    assert_ne!(pa, pb, "bisection parts must differ");
    let g = st.graph();
    let n = g.num_vertices();
    let mut total_improvement = 0.0;

    for _pass in 0..opts.max_passes {
        // Gain of moving v to the other side = conn(other) − conn(same).
        let mut gain = vec![0.0f64; n];
        let mut locked = vec![false; n];
        let mut heap = BinaryHeap::new();
        let members: Vec<VertexId> = g
            .vertices()
            .filter(|&v| {
                let p = st.partition().part_of(v);
                p == pa || p == pb
            })
            .collect();
        if members.len() < 2 {
            return total_improvement;
        }
        for &v in &members {
            let (same, other) = side_connections(st, v, pa, pb);
            gain[v as usize] = other - same;
            heap.push(HeapEntry {
                gain: gain[v as usize],
                v,
            });
        }

        // Sequence of tentative moves.
        let mut moved: Vec<VertexId> = Vec::with_capacity(members.len());
        let mut cum = 0.0f64;
        let mut best_cum = 0.0f64;
        let mut best_len = 0usize;

        while let Some(HeapEntry { gain: hg, v }) = heap.pop() {
            if locked[v as usize] || hg != gain[v as usize] {
                continue; // stale entry
            }
            let from = st.partition().part_of(v);
            let to = if from == pa { pb } else { pa };
            let vw = g.vertex_weight(v);
            // Admissibility: balance band, and never empty a side.
            if st.partition().part_size(from) <= 1
                || !opts.balance.allows_move(
                    st.partition().part_weight(from),
                    st.partition().part_weight(to),
                    vw,
                )
            {
                locked[v as usize] = true; // inadmissible this pass
                continue;
            }

            st.move_vertex(v, to);
            locked[v as usize] = true;
            moved.push(v);
            cum += hg;
            if cum > best_cum + 1e-12 {
                best_cum = cum;
                best_len = moved.len();
            }

            // Refresh neighbor gains.
            for (u, _) in g.edges_of(v) {
                if locked[u as usize] {
                    continue;
                }
                let p = st.partition().part_of(u);
                if p != pa && p != pb {
                    continue;
                }
                let (same, other) = side_connections(st, u, pa, pb);
                let ng = other - same;
                if ng != gain[u as usize] {
                    gain[u as usize] = ng;
                    heap.push(HeapEntry { gain: ng, v: u });
                }
            }
        }

        // Roll back to the best prefix.
        for &v in moved[best_len..].iter().rev() {
            let cur = st.partition().part_of(v);
            let back = if cur == pa { pb } else { pa };
            st.move_vertex(v, back);
        }

        total_improvement += best_cum;
        if best_cum <= 1e-12 {
            break;
        }
    }
    total_improvement
}

/// `(connection to own side, connection to the other side)` of `v` within
/// the bisection `{pa, pb}`; edges to third parts are ignored.
fn side_connections(st: &CutState, v: VertexId, pa: u32, pb: u32) -> (f64, f64) {
    let own = st.partition().part_of(v);
    let other = if own == pa { pb } else { pa };
    let mut same = 0.0;
    let mut opp = 0.0;
    for (u, w) in st.graph().edges_of(v) {
        let p = st.partition().part_of(u);
        if p == own {
            same += w;
        } else if p == other {
            opp += w;
        }
    }
    (same, opp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::Objective;
    use crate::partition::Partition;
    use ff_graph::generators::{grid2d, random_geometric, two_cliques_bridge};

    #[test]
    fn recovers_planted_bisection() {
        let g = two_cliques_bridge(8, 2.0, 0.25);
        // Badly mixed start: alternating assignment.
        let asg: Vec<u32> = (0..16).map(|v| (v % 2) as u32).collect();
        let p = Partition::from_assignment(&g, asg, 2);
        let mut st = CutState::new(&g, p);
        let before = st.cut();
        let improvement = fm_refine_bisection(&mut st, 0, 1, &FmOptions::default());
        let after = st.cut();
        assert!((before - after - improvement).abs() < 1e-9);
        // optimal bisection cuts only the bridge
        assert!(
            (after - 0.25).abs() < 1e-9,
            "expected bridge-only cut, got {after}"
        );
        assert!(st.drift() < 1e-9);
    }

    #[test]
    fn never_worsens() {
        for seed in 0..5 {
            let g = random_geometric(60, 0.25, seed);
            let p = Partition::random(&g, 2, seed + 50);
            let mut st = CutState::new(&g, p);
            let before = st.cut();
            fm_refine_bisection(&mut st, 0, 1, &FmOptions::default());
            assert!(st.cut() <= before + 1e-9);
        }
    }

    #[test]
    fn respects_balance_constraint() {
        let g = grid2d(6, 6);
        let p = Partition::block(&g, 2);
        let balance = BalanceConstraint::with_tolerance(g.total_vertex_weight(), 2, 0.1);
        let mut st = CutState::new(&g, p);
        fm_refine_bisection(
            &mut st,
            0,
            1,
            &FmOptions {
                balance,
                max_passes: 8,
            },
        );
        assert!(balance.contains(st.partition().part_weight(0)));
        assert!(balance.contains(st.partition().part_weight(1)));
    }

    #[test]
    fn grid_bisection_reaches_minimum_width() {
        // 8×8 grid optimal bisection cut = 8 (a straight line).
        let g = grid2d(8, 8);
        let p = Partition::block(&g, 2); // already a straight split
        let mut st = CutState::new(&g, p);
        fm_refine_bisection(&mut st, 0, 1, &FmOptions::default());
        assert!(st.cut() <= 8.0 + 1e-9);
    }

    #[test]
    fn leaves_third_parts_alone() {
        let g = grid2d(4, 4);
        let asg: Vec<u32> = (0..16)
            .map(|v| {
                if v < 5 {
                    0
                } else if v < 10 {
                    1
                } else {
                    2
                }
            })
            .collect();
        let p = Partition::from_assignment(&g, asg, 3);
        let mut st = CutState::new(&g, p);
        let part2_before = st.partition().part_members(2);
        fm_refine_bisection(&mut st, 0, 1, &FmOptions::default());
        assert_eq!(st.partition().part_members(2), part2_before);
    }

    #[test]
    fn improvement_matches_cut_reduction_under_objective() {
        let g = random_geometric(50, 0.3, 3);
        let p = Partition::random(&g, 2, 4);
        let mut st = CutState::new(&g, p);
        let before = st.objective(Objective::Cut);
        let imp = fm_refine_bisection(&mut st, 0, 1, &FmOptions::default());
        let after = st.objective(Objective::Cut);
        assert!((before - after - imp).abs() < 1e-8);
    }

    #[test]
    fn tiny_sides_no_panic() {
        let g = ff_graph::generators::path(2);
        let p = Partition::from_assignment(&g, vec![0, 1], 2);
        let mut st = CutState::new(&g, p);
        let imp = fm_refine_bisection(&mut st, 0, 1, &FmOptions::default());
        assert_eq!(imp, 0.0); // cannot improve: sides may not be emptied
    }
}

//! Pairwise k-way refinement.
//!
//! Chaco refines k-way partitions by running a bisection refiner (KL or FM)
//! on pairs of parts. This driver sweeps all *connected* part pairs,
//! refining each, and repeats until a sweep yields no improvement.

use crate::balance::BalanceConstraint;
use crate::objective::{CutState, PartConnectivity};
use crate::refine::fm::{fm_refine_bisection, FmOptions};
use crate::refine::kl::{kl_refine_bisection, KlOptions};

/// Which bisection refiner pairwise sweeps apply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PairwiseMethod {
    /// Kernighan–Lin pair swaps (size-preserving).
    Kl,
    /// Fiduccia–Mattheyses single moves (needs a balance band).
    Fm,
}

/// Options for [`pairwise_refine_kway`].
#[derive(Clone, Copy, Debug)]
pub struct PairwiseOptions {
    /// The bisection refiner to use.
    pub method: PairwiseMethod,
    /// Sweep cap over all pairs (default 4).
    pub max_rounds: usize,
    /// Balance band for the FM variant.
    pub balance: BalanceConstraint,
}

impl Default for PairwiseOptions {
    fn default() -> Self {
        PairwiseOptions {
            method: PairwiseMethod::Kl,
            max_rounds: 4,
            balance: BalanceConstraint::unconstrained(),
        }
    }
}

/// Refines every connected pair of parts with a bisection refiner.
/// Returns the total cut-weight improvement.
pub fn pairwise_refine_kway(st: &mut CutState, opts: &PairwiseOptions) -> f64 {
    let mut total = 0.0;
    for _round in 0..opts.max_rounds {
        let conn = PartConnectivity::new(st.graph(), st.partition());
        let k = st.partition().num_parts() as u32;
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for a in 0..k {
            for b in (a + 1)..k {
                if conn.weight(a, b) > 0.0 {
                    pairs.push((a, b));
                }
            }
        }
        let mut round_gain = 0.0;
        for (a, b) in pairs {
            round_gain += match opts.method {
                PairwiseMethod::Kl => kl_refine_bisection(
                    st,
                    a,
                    b,
                    &KlOptions {
                        max_passes: 2,
                        ..Default::default()
                    },
                ),
                PairwiseMethod::Fm => fm_refine_bisection(
                    st,
                    a,
                    b,
                    &FmOptions {
                        max_passes: 2,
                        balance: opts.balance,
                    },
                ),
            };
        }
        total += round_gain;
        if round_gain <= 1e-12 {
            break;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Partition;
    use ff_graph::generators::{planted_partition, random_geometric};

    #[test]
    fn improves_kway_cut() {
        let g = random_geometric(80, 0.22, 14);
        let p = Partition::random(&g, 4, 3);
        let mut st = CutState::new(&g, p);
        let before = st.cut();
        let gain = pairwise_refine_kway(&mut st, &PairwiseOptions::default());
        assert!(gain >= 0.0);
        assert!((before - st.cut() - gain).abs() < 1e-8);
        assert!(st.drift() < 1e-8);
    }

    #[test]
    fn fm_variant_improves() {
        let g = planted_partition(4, 10, 0.85, 0.05, 21);
        let p = Partition::random(&g, 4, 5);
        let mut st = CutState::new(&g, p);
        let before = st.cut();
        pairwise_refine_kway(
            &mut st,
            &PairwiseOptions {
                method: PairwiseMethod::Fm,
                ..Default::default()
            },
        );
        assert!(st.cut() < before, "{} !< {before}", st.cut());
    }

    #[test]
    fn noop_on_perfect_partition() {
        // Two cliques joined by a light bridge, already optimally split.
        let g = ff_graph::generators::two_cliques_bridge(5, 3.0, 0.1);
        let asg: Vec<u32> = (0..10).map(|v| if v < 5 { 0 } else { 1 }).collect();
        let p = Partition::from_assignment(&g, asg, 2);
        let mut st = CutState::new(&g, p);
        let gain = pairwise_refine_kway(&mut st, &PairwiseOptions::default());
        assert!(gain.abs() < 1e-12);
        assert!((st.cut() - 0.1).abs() < 1e-12);
    }
}

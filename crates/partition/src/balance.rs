//! Part-weight balance metrics and constraints.
//!
//! The partitioning problem asks for parts of "roughly equal size". This
//! module quantifies *roughly*: [`imbalance`] is the standard
//! `max_p weight(p) / (total/k) − 1` metric, and [`BalanceConstraint`]
//! encodes the band refiners must stay inside.

use crate::partition::Partition;

/// Relative imbalance of a partition over its **non-empty** parts, against
/// the ideal `total_weight / num_parts` (counting all parts):
/// `0.0` = perfectly balanced, `0.05` = heaviest part 5 % over ideal.
pub fn imbalance(p: &Partition) -> f64 {
    let k = p.num_parts();
    if k == 0 || p.num_vertices() == 0 {
        return 0.0;
    }
    let total: f64 = (0..k as u32).map(|i| p.part_weight(i)).sum();
    let ideal = total / k as f64;
    if ideal <= 0.0 {
        return 0.0;
    }
    let max = (0..k as u32)
        .map(|i| p.part_weight(i))
        .fold(0.0f64, f64::max);
    max / ideal - 1.0
}

/// A per-part weight band `[lo, hi]` refiners must respect.
#[derive(Clone, Copy, Debug)]
pub struct BalanceConstraint {
    /// Minimum allowed part weight.
    pub lo: f64,
    /// Maximum allowed part weight.
    pub hi: f64,
}

impl BalanceConstraint {
    /// Band of ±`eps` (relative) around the ideal `total/k`.
    pub fn with_tolerance(total_weight: f64, k: usize, eps: f64) -> Self {
        assert!(k >= 1);
        assert!(eps >= 0.0);
        let ideal = total_weight / k as f64;
        BalanceConstraint {
            lo: ideal * (1.0 - eps),
            hi: ideal * (1.0 + eps),
        }
    }

    /// Unconstrained (any weight allowed) — what the paper's metaheuristics
    /// use: balance emerges from the objective, it is not enforced.
    pub fn unconstrained() -> Self {
        BalanceConstraint {
            lo: 0.0,
            hi: f64::INFINITY,
        }
    }

    /// Whether a move of `w` from a part at `from_weight` to one at
    /// `to_weight` keeps both inside the band.
    #[inline]
    pub fn allows_move(&self, from_weight: f64, to_weight: f64, w: f64) -> bool {
        from_weight - w >= self.lo && to_weight + w <= self.hi
    }

    /// Whether part weight `w` is inside the band.
    #[inline]
    pub fn contains(&self, w: f64) -> bool {
        (self.lo..=self.hi).contains(&w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_graph::generators::path;

    #[test]
    fn perfect_balance() {
        let g = path(8);
        let p = Partition::block(&g, 4);
        assert!(imbalance(&p).abs() < 1e-12);
    }

    #[test]
    fn skewed_balance() {
        let g = path(4);
        let p = Partition::from_assignment(&g, vec![0, 0, 0, 1], 2);
        // ideal = 2, max = 3 → imbalance 0.5
        assert!((imbalance(&p) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn constraint_band() {
        let c = BalanceConstraint::with_tolerance(100.0, 4, 0.1);
        assert!(c.contains(25.0));
        assert!(c.contains(27.5));
        assert!(!c.contains(28.0));
        assert!(c.allows_move(26.0, 24.0, 1.0));
        assert!(!c.allows_move(23.0, 24.0, 1.0)); // from side would hit 22 < 22.5
    }

    #[test]
    fn unconstrained_allows_anything() {
        let c = BalanceConstraint::unconstrained();
        assert!(c.allows_move(1.0, 1e9, 1.0));
        assert!(c.contains(0.0));
    }

    #[test]
    fn empty_partition_imbalance() {
        let g = ff_graph::GraphBuilder::new(0).build();
        let p = Partition::from_assignment(&g, vec![], 1);
        assert_eq!(imbalance(&p), 0.0);
    }
}

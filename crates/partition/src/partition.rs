//! The k-way partition data structure.

use ff_graph::{Graph, VertexId};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

/// An assignment of every vertex to one of `num_parts` parts.
///
/// Parts are dense ids `0..num_parts`. Parts **may be empty** — the
/// fusion–fission metaheuristic deliberately drifts the live part count, so
/// emptiness is a state, not an error; [`Partition::compact`] renumbers
/// away empty parts when a caller needs dense non-empty ids.
///
/// Per-part vertex counts and vertex weights are maintained on every move,
/// so they are always O(1) reads.
///
/// ```
/// use ff_graph::generators::path;
/// use ff_partition::Partition;
///
/// let g = path(6);
/// let mut p = Partition::block(&g, 2); // {0,1,2} | {3,4,5}
/// assert_eq!(p.part_of(1), 0);
/// assert_eq!(p.part_size(1), 3);
/// p.move_vertex(&g, 2, 1);
/// assert_eq!(p.part_size(1), 4);
/// assert!(p.validate(&g));
/// ```
#[derive(Clone, Debug)]
pub struct Partition {
    assignment: Vec<u32>,
    part_weight: Vec<f64>,
    /// Member list per part (unordered; maintained with swap-remove).
    members: Vec<Vec<VertexId>>,
    /// Index of each vertex inside its part's member list.
    pos: Vec<u32>,
}

impl PartialEq for Partition {
    fn eq(&self, other: &Self) -> bool {
        // Semantic equality: same assignment and part count; member-list
        // internal order is an implementation detail.
        self.assignment == other.assignment && self.num_parts() == other.num_parts()
    }
}

impl Partition {
    /// Builds from an explicit assignment; `num_parts` must exceed every
    /// assigned id.
    ///
    /// # Panics
    ///
    /// Panics if any assignment id is ≥ `num_parts`.
    pub fn from_assignment(g: &Graph, assignment: Vec<u32>, num_parts: usize) -> Self {
        assert_eq!(assignment.len(), g.num_vertices(), "assignment length");
        let mut part_weight = vec![0.0f64; num_parts];
        let mut members: Vec<Vec<VertexId>> = vec![Vec::new(); num_parts];
        let mut pos = vec![0u32; assignment.len()];
        for (v, &p) in assignment.iter().enumerate() {
            assert!(
                (p as usize) < num_parts,
                "vertex {v} assigned to part {p} ≥ {num_parts}"
            );
            part_weight[p as usize] += g.vertex_weight(v as VertexId);
            pos[v] = members[p as usize].len() as u32;
            members[p as usize].push(v as VertexId);
        }
        Partition {
            assignment,
            part_weight,
            members,
            pos,
        }
    }

    /// Contiguous block partition: the first ⌈n/k⌉ vertices in part 0, etc.
    /// This is the "Linear" scheme of Chaco's simplest mode.
    pub fn block(g: &Graph, k: usize) -> Self {
        assert!(k >= 1);
        let n = g.num_vertices();
        let assignment = (0..n)
            .map(|v| ((v * k) / n.max(1)).min(k - 1) as u32)
            .collect();
        Self::from_assignment(g, assignment, k)
    }

    /// Uniform random partition (each vertex assigned independently).
    pub fn random(g: &Graph, k: usize, seed: u64) -> Self {
        assert!(k >= 1);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let assignment = (0..g.num_vertices())
            .map(|_| rng.gen_range(0..k) as u32)
            .collect();
        Self::from_assignment(g, assignment, k)
    }

    /// Every vertex its own part (the fusion–fission initial state).
    pub fn singletons(g: &Graph) -> Self {
        let n = g.num_vertices();
        Self::from_assignment(g, (0..n as u32).collect(), n)
    }

    /// Number of parts, including empty ones.
    #[inline]
    pub fn num_parts(&self) -> usize {
        self.members.len()
    }

    /// Number of non-empty parts.
    pub fn num_nonempty_parts(&self) -> usize {
        self.members.iter().filter(|m| !m.is_empty()).count()
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.assignment.len()
    }

    /// Part of vertex `v`.
    #[inline]
    pub fn part_of(&self, v: VertexId) -> u32 {
        self.assignment[v as usize]
    }

    /// Vertex count of part `p`.
    #[inline]
    pub fn part_size(&self, p: u32) -> usize {
        self.members[p as usize].len()
    }

    /// Vertex-weight sum of part `p`.
    #[inline]
    pub fn part_weight(&self, p: u32) -> f64 {
        self.part_weight[p as usize]
    }

    /// The raw assignment slice.
    #[inline]
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// Moves `v` to `to` (no-op when already there). O(1).
    ///
    /// # Panics
    ///
    /// Panics if `to` is not an existing part id.
    pub fn move_vertex(&mut self, g: &Graph, v: VertexId, to: u32) {
        assert!((to as usize) < self.num_parts(), "part {to} out of range");
        let from = self.assignment[v as usize];
        if from == to {
            return;
        }
        let w = g.vertex_weight(v);
        self.part_weight[from as usize] -= w;
        self.part_weight[to as usize] += w;
        // Swap-remove from the old member list, patching the swapped-in
        // vertex's position.
        let vpos = self.pos[v as usize] as usize;
        let old = &mut self.members[from as usize];
        let last = *old.last().expect("member list can't be empty here");
        old.swap_remove(vpos);
        if last != v {
            self.pos[last as usize] = vpos as u32;
        }
        self.pos[v as usize] = self.members[to as usize].len() as u32;
        self.members[to as usize].push(v);
        self.assignment[v as usize] = to;
    }

    /// Appends a new empty part; returns its id.
    pub fn add_part(&mut self) -> u32 {
        self.members.push(Vec::new());
        self.part_weight.push(0.0);
        (self.num_parts() - 1) as u32
    }

    /// Members of part `p`, ascending. O(s log s) for the sort; use
    /// [`Partition::part_members_unordered`] in hot paths that don't need
    /// ordering.
    pub fn part_members(&self, p: u32) -> Vec<VertexId> {
        let mut m = self.members[p as usize].clone();
        m.sort_unstable();
        m
    }

    /// Members of part `p` in internal (arbitrary but deterministic)
    /// order. O(1), no allocation.
    #[inline]
    pub fn part_members_unordered(&self, p: u32) -> &[VertexId] {
        &self.members[p as usize]
    }

    /// Renumbers parts densely, dropping empty ones. Returns the old→new
    /// id map (`u32::MAX` for dropped parts).
    pub fn compact(&mut self) -> Vec<u32> {
        let mut remap = vec![u32::MAX; self.num_parts()];
        let mut next = 0u32;
        for (p, m) in self.members.iter().enumerate() {
            if !m.is_empty() {
                remap[p] = next;
                next += 1;
            }
        }
        for a in &mut self.assignment {
            *a = remap[*a as usize];
        }
        let live = next as usize;
        let mut weight = vec![0.0; live];
        let mut members: Vec<Vec<VertexId>> = vec![Vec::new(); live];
        for (p, m) in self.members.iter_mut().enumerate() {
            if remap[p] != u32::MAX {
                weight[remap[p] as usize] = self.part_weight[p];
                members[remap[p] as usize] = std::mem::take(m);
            }
        }
        self.part_weight = weight;
        self.members = members;
        remap
    }

    /// Structural self-check (tests and debug assertions): counts and
    /// weights agree with the assignment.
    pub fn validate(&self, g: &Graph) -> bool {
        if self.assignment.len() != g.num_vertices() {
            return false;
        }
        let mut count = vec![0usize; self.num_parts()];
        let mut weight = vec![0.0f64; self.num_parts()];
        for (v, &p) in self.assignment.iter().enumerate() {
            if (p as usize) >= self.num_parts() {
                return false;
            }
            count[p as usize] += 1;
            weight[p as usize] += g.vertex_weight(v as VertexId);
        }
        // Member lists and position index agree with the assignment.
        for (p, m) in self.members.iter().enumerate() {
            if m.len() != count[p] {
                return false;
            }
            for (i, &v) in m.iter().enumerate() {
                if self.assignment[v as usize] != p as u32 || self.pos[v as usize] != i as u32 {
                    return false;
                }
            }
        }
        weight
            .iter()
            .zip(&self.part_weight)
            .all(|(a, b)| (a - b).abs() < 1e-6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_graph::generators::{grid2d, path};

    #[test]
    fn block_partition_sizes() {
        let g = path(10);
        let p = Partition::block(&g, 3);
        assert_eq!(p.num_parts(), 3);
        let sizes: Vec<_> = (0..3).map(|i| p.part_size(i)).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| (3..=4).contains(&s)));
        assert!(p.validate(&g));
    }

    #[test]
    fn move_updates_bookkeeping() {
        let g = path(6);
        let mut p = Partition::block(&g, 2);
        let before0 = p.part_size(0);
        p.move_vertex(&g, 0, 1);
        assert_eq!(p.part_of(0), 1);
        assert_eq!(p.part_size(0), before0 - 1);
        assert!(p.validate(&g));
        // no-op move
        p.move_vertex(&g, 0, 1);
        assert!(p.validate(&g));
    }

    #[test]
    fn singletons_and_compact() {
        let g = path(5);
        let mut p = Partition::singletons(&g);
        assert_eq!(p.num_parts(), 5);
        // merge everything into part 0
        for v in 1..5 {
            p.move_vertex(&g, v, 0);
        }
        assert_eq!(p.num_nonempty_parts(), 1);
        let remap = p.compact();
        assert_eq!(p.num_parts(), 1);
        assert_eq!(remap[0], 0);
        assert!(remap[1..].iter().all(|&r| r == u32::MAX));
        assert!(p.validate(&g));
    }

    #[test]
    fn add_part_grows() {
        let g = path(4);
        let mut p = Partition::block(&g, 2);
        let new = p.add_part();
        assert_eq!(new, 2);
        p.move_vertex(&g, 3, new);
        assert_eq!(p.part_size(new), 1);
        assert!(p.validate(&g));
    }

    #[test]
    fn random_is_deterministic() {
        let g = grid2d(5, 5);
        let a = Partition::random(&g, 4, 9);
        let b = Partition::random(&g, 4, 9);
        assert_eq!(a, b);
        let c = Partition::random(&g, 4, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn part_members_lists() {
        let g = path(6);
        let p = Partition::block(&g, 2);
        assert_eq!(p.part_members(0), vec![0, 1, 2]);
        assert_eq!(p.part_members(1), vec![3, 4, 5]);
    }

    #[test]
    fn part_weight_tracks_vertex_weights() {
        let mut b = ff_graph::GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0);
        b.add_edge(1, 2, 1.0);
        b.set_vertex_weight(2, 10.0);
        let g = b.build();
        let p = Partition::from_assignment(&g, vec![0, 0, 1], 2);
        assert_eq!(p.part_weight(0), 2.0);
        assert_eq!(p.part_weight(1), 10.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn move_to_missing_part_panics() {
        let g = path(3);
        let mut p = Partition::block(&g, 2);
        p.move_vertex(&g, 0, 7);
    }
}

//! Partition analysis: per-part statistics, connectivity diagnostics, and
//! fragment repair.
//!
//! §3.1/§3.2 of the paper stress that its metaheuristics do **not** force
//! parts to be connected — "if connected sets often produced best results,
//! we should not force this connectivity". That makes connectivity a
//! *diagnostic*, not an invariant: this module measures it (how many parts
//! are fragmented, how big the fragments are) and offers an optional
//! repair pass for consumers (e.g. airspace blocks must be flyable as one
//! volume).

use crate::objective::CutState;
use crate::partition::Partition;
use ff_graph::{subset_components, Graph, VertexId};

/// Summary of one part.
#[derive(Clone, Debug)]
pub struct PartStats {
    /// Part id.
    pub part: u32,
    /// Vertex count.
    pub size: usize,
    /// Vertex-weight sum.
    pub weight: f64,
    /// Internal edge weight (each edge once).
    pub internal_weight: f64,
    /// Cut weight to all other parts.
    pub external_weight: f64,
    /// Number of connected components of the induced subgraph.
    pub components: usize,
}

/// Whole-partition report.
#[derive(Clone, Debug)]
pub struct PartitionReport {
    /// Per-part stats, indexed by part id (empty parts included with
    /// `size == 0`).
    pub parts: Vec<PartStats>,
    /// Total cut weight (each edge once).
    pub cut: f64,
    /// Number of parts with more than one component.
    pub fragmented_parts: usize,
}

/// Computes the full report in O(m + n).
pub fn analyze(g: &Graph, p: &Partition) -> PartitionReport {
    let st = CutState::new(g, p.clone());
    let mut parts = Vec::with_capacity(p.num_parts());
    let mut fragmented = 0;
    let mut members_mask = vec![false; g.num_vertices()];
    for part in 0..p.num_parts() as u32 {
        let members = p.part_members(part);
        for &v in &members {
            members_mask[v as usize] = true;
        }
        let components = if members.is_empty() {
            0
        } else {
            subset_components(g, &members_mask)
        };
        for &v in &members {
            members_mask[v as usize] = false;
        }
        if components > 1 {
            fragmented += 1;
        }
        parts.push(PartStats {
            part,
            size: members.len(),
            weight: p.part_weight(part),
            internal_weight: st.internal2(part) / 2.0,
            external_weight: st.external(part),
            components,
        });
    }
    PartitionReport {
        cut: st.cut(),
        parts,
        fragmented_parts: fragmented,
    }
}

/// Repairs fragmented parts: every component of a part except its largest
/// is reassigned, vertex by vertex, to the neighboring part with the
/// strongest connection. Returns the number of vertices moved. The result
/// has every non-empty part connected (repair iterates until clean or the
/// pass cap is hit).
pub fn repair_connectivity(g: &Graph, p: &mut Partition, max_passes: usize) -> usize {
    let mut moved_total = 0usize;
    for _ in 0..max_passes {
        let mut moved_this_pass = 0usize;
        for part in 0..p.num_parts() as u32 {
            let members = p.part_members(part);
            if members.len() <= 1 {
                continue;
            }
            // Label components of the induced subgraph.
            let comp = label_components(g, &members, p, part);
            let ncomp = comp.iter().copied().max().map_or(0, |m| m as usize + 1);
            if ncomp <= 1 {
                continue;
            }
            // Keep the largest component; disperse the rest.
            let mut sizes = vec![0usize; ncomp];
            for &c in &comp {
                sizes[c as usize] += 1;
            }
            let keep = sizes
                .iter()
                .enumerate()
                .max_by_key(|&(_, s)| *s)
                .map(|(i, _)| i as u32)
                .unwrap();
            for (i, &v) in members.iter().enumerate() {
                if comp[i] == keep {
                    continue;
                }
                // Strongest-connected other part.
                let mut best: Option<(u32, f64)> = None;
                let mut conn: std::collections::BTreeMap<u32, f64> = Default::default();
                for (u, w) in g.edges_of(v) {
                    let pu = p.part_of(u);
                    if pu != part {
                        *conn.entry(pu).or_insert(0.0) += w;
                    }
                }
                for (cand, w) in conn {
                    if best.is_none_or(|(_, bw)| w > bw) {
                        best = Some((cand, w));
                    }
                }
                if let Some((to, _)) = best {
                    p.move_vertex(g, v, to);
                    moved_this_pass += 1;
                }
            }
        }
        moved_total += moved_this_pass;
        if moved_this_pass == 0 {
            break;
        }
    }
    moved_total
}

/// Component label per member of `part` (0-based, discovery order).
fn label_components(g: &Graph, members: &[VertexId], p: &Partition, part: u32) -> Vec<u32> {
    use std::collections::VecDeque;
    let index: std::collections::HashMap<VertexId, usize> =
        members.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut label = vec![u32::MAX; members.len()];
    let mut next = 0u32;
    for start in 0..members.len() {
        if label[start] != u32::MAX {
            continue;
        }
        label[start] = next;
        let mut q = VecDeque::from([members[start]]);
        while let Some(v) = q.pop_front() {
            for &u in g.neighbors(v) {
                if p.part_of(u) != part {
                    continue;
                }
                let ui = index[&u];
                if label[ui] == u32::MAX {
                    label[ui] = next;
                    q.push_back(u);
                }
            }
        }
        next += 1;
    }
    label
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_graph::generators::{grid2d, path, two_cliques_bridge};

    #[test]
    fn analyze_two_cliques() {
        let g = two_cliques_bridge(4, 2.0, 0.5);
        let p = Partition::from_assignment(&g, vec![0, 0, 0, 0, 1, 1, 1, 1], 2);
        let r = analyze(&g, &p);
        assert_eq!(r.cut, 0.5);
        assert_eq!(r.fragmented_parts, 0);
        assert_eq!(r.parts[0].size, 4);
        assert_eq!(r.parts[0].internal_weight, 12.0); // K4 × 2.0
        assert_eq!(r.parts[0].external_weight, 0.5);
        assert_eq!(r.parts[0].components, 1);
    }

    #[test]
    fn detects_fragmentation() {
        let g = path(5); // 0-1-2-3-4
                         // part 0 = {0, 4}: two fragments around part 1 = {1,2,3}
        let p = Partition::from_assignment(&g, vec![0, 1, 1, 1, 0], 2);
        let r = analyze(&g, &p);
        assert_eq!(r.fragmented_parts, 1);
        assert_eq!(r.parts[0].components, 2);
        assert_eq!(r.parts[1].components, 1);
    }

    #[test]
    fn repair_makes_parts_connected() {
        let g = path(6); // 0-1-2-3-4-5
        let mut p = Partition::from_assignment(&g, vec![0, 1, 1, 0, 0, 1], 2);
        // part 0 = {0, 3, 4} (two fragments), part 1 = {1, 2, 5} (two).
        let moved = repair_connectivity(&g, &mut p, 8);
        assert!(moved > 0);
        let r = analyze(&g, &p);
        assert_eq!(r.fragmented_parts, 0, "assignment: {:?}", p.assignment());
        assert!(p.validate(&g));
    }

    #[test]
    fn repair_noop_when_connected() {
        let g = grid2d(4, 4);
        let mut p = Partition::block(&g, 2);
        assert_eq!(repair_connectivity(&g, &mut p, 4), 0);
    }

    #[test]
    fn empty_parts_reported() {
        let g = path(3);
        let mut p = Partition::from_assignment(&g, vec![0, 0, 0], 1);
        p.add_part();
        let r = analyze(&g, &p);
        assert_eq!(r.parts[1].size, 0);
        assert_eq!(r.parts[1].components, 0);
    }
}

//! Pareto dominance over objective vectors.
//!
//! Multi-objective ensembles (islands minimizing different criteria) are
//! reduced by *dominance* instead of a scalar minimum: a candidate is kept
//! iff no other candidate is at least as good on every objective and
//! strictly better on one. Everything here is deterministic and
//! order-insensitive — the front depends only on the multiset of vectors
//! (plus the index tie-break), never on the order they are offered in.
//!
//! All objectives are minimized; vectors must share one length and one
//! component order. Non-finite components are legal (an Mcut part with no
//! internal weight is ∞) and compare the usual IEEE way, except that a
//! vector containing NaN never dominates and is never kept on a front
//! (its quality is unknowable).

/// Whether `a` Pareto-dominates `b`: `a` is ≤ `b` on every component and
/// `<` on at least one. Irreflexive; NaN anywhere makes it `false`.
///
/// ```
/// use ff_partition::dominance::dominates;
///
/// assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
/// assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0])); // equal: no domination
/// assert!(!dominates(&[0.0, 5.0], &[1.0, 2.0])); // trade-off: incomparable
/// ```
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    assert_eq!(a.len(), b.len(), "objective vectors must align");
    let mut strict = false;
    for (&x, &y) in a.iter().zip(b) {
        if x.is_nan() || y.is_nan() || x > y {
            return false;
        }
        if x < y {
            strict = true;
        }
    }
    strict
}

/// Indices of the non-dominated vectors, ascending.
///
/// Duplicates collapse deterministically: when two vectors are
/// component-wise equal, only the lowest index survives — so the front is
/// a function of the vector multiset alone, insensitive to how the
/// candidates were gathered (harvest order, thread schedule). Vectors
/// containing NaN are dropped.
///
/// ```
/// use ff_partition::dominance::pareto_front_indices;
///
/// let vs = [vec![1.0, 4.0], vec![2.0, 2.0], vec![3.0, 3.0], vec![1.0, 4.0]];
/// // [3.0, 3.0] is dominated by [2.0, 2.0]; the duplicate keeps index 0.
/// assert_eq!(pareto_front_indices(&vs), vec![0, 1]);
/// ```
pub fn pareto_front_indices(vectors: &[Vec<f64>]) -> Vec<usize> {
    (0..vectors.len())
        .filter(|&i| {
            let vi = &vectors[i];
            if vi.iter().any(|v| v.is_nan()) {
                return false;
            }
            vectors.iter().enumerate().all(|(j, vj)| {
                if j == i || vj.iter().any(|v| v.is_nan()) {
                    return true;
                }
                // Dominated ⇒ out. Exact duplicate ⇒ only the lowest
                // index stays in.
                !(dominates(vj, vi) || (vj == vi && j < i))
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_basics() {
        assert!(dominates(&[1.0], &[2.0]));
        assert!(!dominates(&[2.0], &[1.0]));
        assert!(!dominates(&[1.0], &[1.0]));
        assert!(dominates(&[1.0, 1.0, 1.0], &[1.0, 1.0, 2.0]));
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0]));
        assert!(dominates(&[1.0, 2.0], &[f64::INFINITY, 2.0]));
        assert!(!dominates(&[f64::NAN, 0.0], &[1.0, 1.0]));
        assert!(!dominates(&[0.0, 0.0], &[f64::NAN, 1.0]));
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_lengths_panic() {
        dominates(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn front_is_mutually_non_dominated() {
        let vs = vec![
            vec![5.0, 1.0],
            vec![1.0, 5.0],
            vec![3.0, 3.0],
            vec![4.0, 4.0], // dominated by [3,3]
            vec![2.0, 6.0], // dominated by [1,5]
        ];
        let front = pareto_front_indices(&vs);
        assert_eq!(front, vec![0, 1, 2]);
        for &i in &front {
            for &j in &front {
                assert!(!dominates(&vs[i], &vs[j]) || i == j);
            }
        }
    }

    #[test]
    fn front_is_permutation_insensitive() {
        let vs = vec![
            vec![5.0, 1.0],
            vec![1.0, 5.0],
            vec![3.0, 3.0],
            vec![4.0, 4.0],
        ];
        let base: Vec<Vec<f64>> = pareto_front_indices(&vs)
            .into_iter()
            .map(|i| vs[i].clone())
            .collect();
        // Every rotation yields the same *set* of surviving vectors.
        for rot in 1..vs.len() {
            let mut perm = vs.clone();
            perm.rotate_left(rot);
            let mut got: Vec<Vec<f64>> = pareto_front_indices(&perm)
                .into_iter()
                .map(|i| perm[i].clone())
                .collect();
            let mut want = base.clone();
            let key = |v: &Vec<f64>| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            got.sort_by_key(key);
            want.sort_by_key(key);
            assert_eq!(got, want, "rotation {rot}");
        }
    }

    #[test]
    fn duplicates_keep_lowest_index() {
        let vs = vec![vec![1.0, 1.0], vec![1.0, 1.0], vec![1.0, 1.0]];
        assert_eq!(pareto_front_indices(&vs), vec![0]);
    }

    #[test]
    fn nan_vectors_never_survive() {
        let vs = vec![vec![f64::NAN, 0.0], vec![1.0, 1.0]];
        assert_eq!(pareto_front_indices(&vs), vec![1]);
    }

    #[test]
    fn single_and_empty() {
        assert!(pareto_front_indices(&[]).is_empty());
        assert_eq!(pareto_front_indices(&[vec![1.0]]), vec![0]);
        // An all-infinite vector still forms a (degenerate) front alone.
        assert_eq!(pareto_front_indices(&[vec![f64::INFINITY]]), vec![0]);
    }
}

//! # ff-partition — partition state, objectives, refinement
//!
//! The vocabulary shared by every partitioner in the suite:
//!
//! * [`Partition`] — a k-way assignment of vertices to parts with O(1)
//!   move bookkeeping (parts may be empty; fusion–fission grows and
//!   shrinks the part count at runtime),
//! * [`Objective`] — the paper's three criteria (§1): **Cut**, **Ncut**
//!   (Shi–Malik normalized cut) and **Mcut** (Ding et al. min-max cut),
//! * [`CutState`] — incremental per-part internal/external weight tracking
//!   so a vertex move and its objective delta cost O(deg v),
//! * [`refine`] — local refinement: Kernighan–Lin pairwise swaps,
//!   Fiduccia–Mattheyses single-move passes with rollback, and greedy
//!   k-way boundary refinement,
//! * [`balance`] — part-weight balance metrics and constraints,
//! * [`dominance`] — Pareto dominance over objective vectors, the
//!   reduction multi-objective ensembles use instead of a scalar min.
//!
//! In the paper's analogy this crate is the *molecule*: a [`Partition`] is
//! the molecule, each part an atom, each vertex a nucleon; [`CutState`] is
//! the calorimeter that re-measures a molecule's energy in O(deg v) per
//! reaction instead of O(m).
//!
//! ```
//! use ff_graph::generators::path;
//! use ff_partition::{CutState, Objective, Partition};
//!
//! let g = path(6); // 0-1-2-3-4-5
//! let mut st = CutState::new(&g, Partition::block(&g, 2)); // {0,1,2}|{3,4,5}
//! assert_eq!(st.cut(), 1.0); // only edge 2-3 crosses
//! // Predict a move without applying it, then apply and confirm:
//! let delta = st.move_delta(Objective::Cut, 2, 1);
//! st.move_vertex(2, 1);
//! assert_eq!(st.cut(), 1.0 + delta);
//! assert_eq!(st.objective(Objective::Cut), Objective::Cut.evaluate(&g, st.partition()));
//! ```

pub mod analysis;
pub mod balance;
pub mod dominance;
pub mod io;
pub mod objective;
pub mod partition;
pub mod refine;

pub use analysis::{analyze, repair_connectivity, PartStats, PartitionReport};
pub use balance::{imbalance, BalanceConstraint};
pub use dominance::{dominates, pareto_front_indices};
pub use io::{read_partition, write_partition};
pub use objective::{CutState, Objective, PartConnectivity};
pub use partition::Partition;
pub use refine::{
    fm::fm_refine_bisection,
    greedy::greedy_refine_kway,
    kl::kl_refine_bisection,
    pairwise::{pairwise_refine_kway, PairwiseMethod, PairwiseOptions},
};

//! Partition file I/O (METIS-compatible `.part` format).
//!
//! A partition file has one line per vertex: the 0-based part id of that
//! vertex — the format `pmetis`/`gpmetis` emit and downstream HPC tooling
//! (mesh distributors, load balancers) consume.

use crate::partition::Partition;
use ff_graph::Graph;
use std::io::{BufRead, BufReader, Read, Write};

/// Writes `p` in METIS `.part` format (one part id per line).
pub fn write_partition<W: Write>(p: &Partition, mut out: W) -> std::io::Result<()> {
    let mut buf = String::with_capacity(p.num_vertices() * 3);
    for &a in p.assignment() {
        buf.push_str(&a.to_string());
        buf.push('\n');
    }
    out.write_all(buf.as_bytes())
}

/// Reads a METIS `.part` file for graph `g`.
///
/// The number of parts is inferred as `max id + 1`; blank lines and `%`
/// comments are skipped.
pub fn read_partition<R: Read>(g: &Graph, input: R) -> Result<Partition, PartParseError> {
    let reader = BufReader::new(input);
    let mut assignment: Vec<u32> = Vec::with_capacity(g.num_vertices());
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let id: u32 = t
            .parse()
            .map_err(|_| PartParseError::Format(format!("bad part id `{t}` at line {lineno}")))?;
        assignment.push(id);
    }
    if assignment.len() != g.num_vertices() {
        return Err(PartParseError::Format(format!(
            "file has {} assignments for a {}-vertex graph",
            assignment.len(),
            g.num_vertices()
        )));
    }
    let k = assignment
        .iter()
        .copied()
        .max()
        .map_or(1, |m| m as usize + 1);
    Ok(Partition::from_assignment(g, assignment, k))
}

/// Errors from [`read_partition`].
#[derive(Debug)]
pub enum PartParseError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the file.
    Format(String),
}

impl std::fmt::Display for PartParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PartParseError::Io(e) => write!(f, "I/O error: {e}"),
            PartParseError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for PartParseError {}

impl From<std::io::Error> for PartParseError {
    fn from(e: std::io::Error) -> Self {
        PartParseError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_graph::generators::grid2d;

    #[test]
    fn roundtrip() {
        let g = grid2d(4, 4);
        let p = Partition::block(&g, 4);
        let mut buf = Vec::new();
        write_partition(&p, &mut buf).unwrap();
        let q = read_partition(&g, &buf[..]).unwrap();
        assert_eq!(p.assignment(), q.assignment());
        assert_eq!(q.num_parts(), 4);
    }

    #[test]
    fn skips_comments_and_blanks() {
        let g = grid2d(1, 3);
        let text = "% partition of P3\n0\n\n1\n0\n";
        let p = read_partition(&g, text.as_bytes()).unwrap();
        assert_eq!(p.assignment(), &[0, 1, 0]);
        assert_eq!(p.num_parts(), 2);
    }

    #[test]
    fn rejects_wrong_length() {
        let g = grid2d(2, 2);
        assert!(read_partition(&g, "0\n1\n".as_bytes()).is_err());
    }

    #[test]
    fn rejects_garbage() {
        let g = grid2d(1, 2);
        assert!(read_partition(&g, "0\nx\n".as_bytes()).is_err());
    }
}

//! The paper's objective functions and incremental cut bookkeeping.
//!
//! §1 of the paper defines, for a partition P_k(G) into parts A:
//!
//! * `Cut(P) = Σ_A cut(A, V−A)` — counting each cut edge twice (once per
//!   side); the conventional single-count cut is `Cut(P)/2`, which is what
//!   [`CutState::cut`] reports and what Table 1's "Cut" column lists,
//! * `Ncut(P) = Σ_A cut(A, V−A) / assoc(A, V)` with
//!   `assoc(A, V) = cut(A, V−A) + W(A)`,
//! * `Mcut(P) = Σ_A cut(A, V−A) / W(A)`,
//!
//! where `W(A) = Σ_{u∈A, v∈A} w(u, v)` sums **ordered** pairs, i.e. twice
//! the internal edge weight — so `assoc(A, V)` equals the degree-weight sum
//! of A, matching Shi–Malik.

use crate::partition::Partition;
use ff_graph::{Graph, VertexId};
use std::collections::HashMap;

/// The three partitioning criteria of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Sum of cut edge weights (each edge counted once).
    Cut,
    /// Normalized cut (Shi–Malik).
    NCut,
    /// Min-max cut (Ding et al.).
    MCut,
}

impl Objective {
    /// Evaluates the objective from scratch in O(m).
    pub fn evaluate(&self, g: &Graph, p: &Partition) -> f64 {
        CutState::new(g, p.clone()).objective(*self)
    }

    /// All three criteria, for reporting tables.
    pub fn all() -> [Objective; 3] {
        [Objective::Cut, Objective::NCut, Objective::MCut]
    }
}

impl std::fmt::Display for Objective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Objective::Cut => write!(f, "Cut"),
            Objective::NCut => write!(f, "Ncut"),
            Objective::MCut => write!(f, "Mcut"),
        }
    }
}

/// A partition plus per-part external (cut) and internal (2×edge-weight)
/// sums, maintained incrementally: moving a vertex costs O(deg v), and the
/// objective delta of a candidate move is evaluated without applying it.
///
/// ```
/// use ff_graph::generators::path;
/// use ff_partition::{CutState, Objective, Partition};
///
/// let g = path(4); // 0-1-2-3
/// let mut st = CutState::new(&g, Partition::block(&g, 2)); // {0,1}|{2,3}
/// assert_eq!(st.cut(), 1.0);
/// // Moving vertex 1 across swaps edge 1-2 out of the cut, edge 0-1 in:
/// assert_eq!(st.move_delta(Objective::Cut, 1, 1), 0.0);
/// // Moving vertex 0 across would newly cut its edge to vertex 1:
/// assert_eq!(st.move_delta(Objective::Cut, 0, 1), 1.0);
/// // The block split is optimal; applying the neutral move keeps cut = 1.
/// st.move_vertex(1, 1);
/// assert_eq!(st.cut(), 1.0);
/// ```
#[derive(Clone, Debug)]
pub struct CutState<'g> {
    g: &'g Graph,
    part: Partition,
    /// Per-part sums, interleaved so the two values a move touches per
    /// part share a cache line.
    sums: Vec<PartSums>,
}

/// Interleaved per-part cut bookkeeping: `ext` = cut(P_p, V − P_p),
/// `int2` = W(P_p) = 2 × (internal edge weight of P_p).
#[derive(Clone, Copy, Debug, Default)]
struct PartSums {
    ext: f64,
    int2: f64,
}

impl<'g> CutState<'g> {
    /// Builds the state in O(m).
    pub fn new(g: &'g Graph, part: Partition) -> Self {
        assert_eq!(part.num_vertices(), g.num_vertices(), "partition size");
        let k = part.num_parts();
        let mut sums = vec![PartSums::default(); k];
        for v in g.vertices() {
            let pv = part.part_of(v) as usize;
            for (u, w) in g.edges_of(v) {
                if part.part_of(u) as usize == pv {
                    sums[pv].int2 += w; // each internal edge visited twice → 2w total
                } else {
                    sums[pv].ext += w;
                }
            }
        }
        CutState { g, part, sums }
    }

    /// The underlying partition.
    #[inline]
    pub fn partition(&self) -> &Partition {
        &self.part
    }

    /// The graph this state refers to.
    #[inline]
    pub fn graph(&self) -> &'g Graph {
        self.g
    }

    /// Consumes the state, returning the partition.
    pub fn into_partition(self) -> Partition {
        self.part
    }

    /// cut(P_p, V − P_p) for part `p`.
    #[inline]
    pub fn external(&self, p: u32) -> f64 {
        self.sums[p as usize].ext
    }

    /// W(P_p) = 2 × internal edge weight of part `p`.
    #[inline]
    pub fn internal2(&self, p: u32) -> f64 {
        self.sums[p as usize].int2
    }

    /// assoc(P_p, V) = degree-weight sum of part `p`.
    #[inline]
    pub fn assoc(&self, p: u32) -> f64 {
        let s = self.sums[p as usize];
        s.ext + s.int2
    }

    /// Total cut weight, each edge counted once.
    pub fn cut(&self) -> f64 {
        self.sums.iter().map(|s| s.ext).sum::<f64>() / 2.0
    }

    /// Per-part contribution to Ncut/Mcut-style sums.
    ///
    /// Incremental updates can leave ±1e-16-scale residue on sums that are
    /// mathematically zero; snapping below `EPS` keeps Mcut's "hollow part
    /// ⇒ ∞" semantics identical between incremental and fresh evaluation.
    fn part_term(obj: Objective, ext: f64, int2: f64) -> f64 {
        const EPS: f64 = 1e-9;
        let ext = if ext <= EPS { 0.0 } else { ext };
        let int2 = if int2 <= EPS { 0.0 } else { int2 };
        match obj {
            Objective::Cut => ext / 2.0,
            Objective::NCut => {
                let assoc = ext + int2;
                if assoc <= 0.0 {
                    0.0
                } else {
                    ext / assoc
                }
            }
            Objective::MCut => {
                if ext <= 0.0 {
                    0.0
                } else if int2 <= 0.0 {
                    f64::INFINITY
                } else {
                    ext / int2
                }
            }
        }
    }

    /// Evaluates an objective from the cached per-part sums. O(k).
    pub fn objective(&self, obj: Objective) -> f64 {
        self.sums
            .iter()
            .map(|s| Self::part_term(obj, s.ext, s.int2))
            .sum()
    }

    /// Weight from `v` into each part among its neighbors, sorted by
    /// ascending part id (deterministic order). O(deg v · log deg v).
    pub fn connection_weights(&self, v: VertexId) -> Vec<(u32, f64)> {
        let mut conn: HashMap<u32, f64> = HashMap::new();
        for (u, w) in self.g.edges_of(v) {
            *conn.entry(self.part.part_of(u)).or_insert(0.0) += w;
        }
        let mut out: Vec<(u32, f64)> = conn.into_iter().collect();
        out.sort_unstable_by_key(|&(p, _)| p);
        out
    }

    /// Objective change if `v` moved to part `to`, without applying it.
    /// O(deg v). Returns 0.0 for a no-op move.
    pub fn move_delta(&self, obj: Objective, v: VertexId, to: u32) -> f64 {
        let from = self.part.part_of(v);
        if from == to {
            return 0.0;
        }
        let mut conn_from = 0.0;
        let mut conn_to = 0.0;
        for (u, w) in self.g.edges_of(v) {
            let pu = self.part.part_of(u);
            if pu == from {
                conn_from += w;
            } else if pu == to {
                conn_to += w;
            }
        }
        let degw = self.g.degree_weight(v);
        let (ef, if2) = {
            let s = self.sums[from as usize];
            (s.ext, s.int2)
        };
        let (et, it2) = {
            let s = self.sums[to as usize];
            (s.ext, s.int2)
        };
        let ef_new = ef - degw + 2.0 * conn_from;
        let if2_new = if2 - 2.0 * conn_from;
        let et_new = et + degw - 2.0 * conn_to;
        let it2_new = it2 + 2.0 * conn_to;
        Self::part_term(obj, ef_new, if2_new) + Self::part_term(obj, et_new, it2_new)
            - Self::part_term(obj, ef, if2)
            - Self::part_term(obj, et, it2)
    }

    /// Moves `v` to part `to`, updating all sums in O(deg v).
    ///
    /// # Panics
    ///
    /// Panics if `to` is not an existing part id.
    pub fn move_vertex(&mut self, v: VertexId, to: u32) {
        let from = self.part.part_of(v);
        if from == to {
            return;
        }
        let mut conn_from = 0.0;
        let mut conn_to = 0.0;
        for (u, w) in self.g.edges_of(v) {
            let pu = self.part.part_of(u);
            if pu == from {
                conn_from += w;
            } else if pu == to {
                conn_to += w;
            }
        }
        let degw = self.g.degree_weight(v);
        {
            let s = &mut self.sums[from as usize];
            s.ext += 2.0 * conn_from - degw;
            s.int2 -= 2.0 * conn_from;
        }
        {
            let s = &mut self.sums[to as usize];
            s.ext += degw - 2.0 * conn_to;
            s.int2 += 2.0 * conn_to;
        }
        self.part.move_vertex(self.g, v, to);
    }

    /// Appends a new empty part to the partition and the cached sums.
    pub fn add_part(&mut self) -> u32 {
        self.sums.push(PartSums::default());
        self.part.add_part()
    }

    /// Rebuilds sums from scratch and compares with the incremental state
    /// (test/debug aid). Returns the maximum absolute discrepancy.
    pub fn drift(&self) -> f64 {
        let fresh = CutState::new(self.g, self.part.clone());
        let mut d = 0.0f64;
        for p in 0..self.part.num_parts() {
            d = d.max((fresh.sums[p].ext - self.sums[p].ext).abs());
            d = d.max((fresh.sums[p].int2 - self.sums[p].int2).abs());
        }
        d
    }
}

/// Inter-part connection weights: `weight(a, b)` = total edge weight
/// between parts `a` and `b`. The fusion–fission *distance* between atoms
/// is the inverse of this quantity (§4.2).
#[derive(Clone, Debug)]
pub struct PartConnectivity {
    weights: HashMap<(u32, u32), f64>,
    num_parts: usize,
}

impl PartConnectivity {
    /// Builds from a partition in O(m).
    pub fn new(g: &Graph, p: &Partition) -> Self {
        let mut weights = HashMap::new();
        for (u, v, w) in g.edges() {
            let (a, b) = (p.part_of(u), p.part_of(v));
            if a != b {
                let key = if a < b { (a, b) } else { (b, a) };
                *weights.entry(key).or_insert(0.0) += w;
            }
        }
        PartConnectivity {
            weights,
            num_parts: p.num_parts(),
        }
    }

    /// Total edge weight between parts `a` and `b` (0.0 when unconnected).
    pub fn weight(&self, a: u32, b: u32) -> f64 {
        if a == b {
            return 0.0;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        self.weights.get(&key).copied().unwrap_or(0.0)
    }

    /// Fusion–fission distance: `1 / weight(a, b)`, ∞ when unconnected.
    pub fn distance(&self, a: u32, b: u32) -> f64 {
        let w = self.weight(a, b);
        if w > 0.0 {
            1.0 / w
        } else {
            f64::INFINITY
        }
    }

    /// Parts connected to `a`, with connection weights.
    pub fn neighbors_of(&self, a: u32) -> Vec<(u32, f64)> {
        (0..self.num_parts as u32)
            .filter(|&b| b != a)
            .filter_map(|b| {
                let w = self.weight(a, b);
                (w > 0.0).then_some((b, w))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_graph::generators::{path, random_geometric, two_cliques_bridge};
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn cut_on_path_block() {
        let g = path(6); // edges 0-1,1-2,2-3,3-4,4-5
        let p = Partition::block(&g, 2); // {0,1,2} {3,4,5}
        let st = CutState::new(&g, p);
        assert_eq!(st.cut(), 1.0); // only edge 2-3 crosses
        assert_eq!(st.external(0), 1.0);
        assert_eq!(st.internal2(0), 4.0); // edges 0-1,1-2 ×2
    }

    #[test]
    fn ncut_mcut_on_two_cliques() {
        let g = two_cliques_bridge(3, 1.0, 0.5); // K3 + K3, bridge 0.5
        let p = Partition::from_assignment(&g, vec![0, 0, 0, 1, 1, 1], 2);
        let st = CutState::new(&g, p);
        // each side: internal2 = 2*3 = 6, external = 0.5
        assert_eq!(st.cut(), 0.5);
        let ncut = st.objective(Objective::NCut);
        assert!((ncut - 2.0 * (0.5 / 6.5)).abs() < 1e-12);
        let mcut = st.objective(Objective::MCut);
        assert!((mcut - 2.0 * (0.5 / 6.0)).abs() < 1e-12);
    }

    #[test]
    fn mcut_infinite_for_hollow_part() {
        let g = path(4);
        // part 1 = {1}: no internal edges but has cut → ∞
        let p = Partition::from_assignment(&g, vec![0, 1, 0, 0], 2);
        let st = CutState::new(&g, p);
        assert!(st.objective(Objective::MCut).is_infinite());
    }

    #[test]
    fn single_part_objectives_zero() {
        let g = path(5);
        let p = Partition::from_assignment(&g, vec![0; 5], 1);
        let st = CutState::new(&g, p);
        assert_eq!(st.objective(Objective::Cut), 0.0);
        assert_eq!(st.objective(Objective::NCut), 0.0);
        assert_eq!(st.objective(Objective::MCut), 0.0);
    }

    #[test]
    fn move_vertex_matches_rebuild() {
        let g = random_geometric(50, 0.3, 5);
        let p = Partition::random(&g, 4, 6);
        let mut st = CutState::new(&g, p);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..200 {
            let v = rng.gen_range(0..50) as VertexId;
            let to = rng.gen_range(0..4) as u32;
            st.move_vertex(v, to);
        }
        assert!(
            st.drift() < 1e-8,
            "incremental sums drifted: {}",
            st.drift()
        );
    }

    #[test]
    fn move_delta_matches_actual_change() {
        let g = random_geometric(40, 0.3, 8);
        let p = Partition::random(&g, 3, 9);
        let mut st = CutState::new(&g, p);
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        for obj in Objective::all() {
            for _ in 0..100 {
                let v = rng.gen_range(0..40) as VertexId;
                let to = rng.gen_range(0..3) as u32;
                let before = st.objective(obj);
                let delta = st.move_delta(obj, v, to);
                st.move_vertex(v, to);
                let after = st.objective(obj);
                if delta.is_finite() && before.is_finite() && after.is_finite() {
                    assert!(
                        ((after - before) - delta).abs() < 1e-9,
                        "{obj}: delta {delta} but actual {}",
                        after - before
                    );
                }
            }
        }
    }

    #[test]
    fn evaluate_matches_state() {
        let g = random_geometric(30, 0.35, 2);
        let p = Partition::random(&g, 5, 3);
        let st = CutState::new(&g, p.clone());
        for obj in Objective::all() {
            let a = obj.evaluate(&g, &p);
            let b = st.objective(obj);
            assert!((a - b).abs() < 1e-12 || (a.is_infinite() && b.is_infinite()));
        }
    }

    #[test]
    fn connectivity_weights() {
        let g = path(4); // 0-1-2-3
        let p = Partition::from_assignment(&g, vec![0, 0, 1, 2], 3);
        let pc = PartConnectivity::new(&g, &p);
        assert_eq!(pc.weight(0, 1), 1.0); // edge 1-2
        assert_eq!(pc.weight(1, 2), 1.0); // edge 2-3
        assert_eq!(pc.weight(0, 2), 0.0);
        assert_eq!(pc.distance(0, 1), 1.0);
        assert!(pc.distance(0, 2).is_infinite());
        let nb: Vec<u32> = pc.neighbors_of(1).into_iter().map(|(b, _)| b).collect();
        assert_eq!(nb, vec![0, 2]);
    }

    #[test]
    fn add_part_then_move() {
        let g = path(4);
        let p = Partition::from_assignment(&g, vec![0, 0, 0, 0], 1);
        let mut st = CutState::new(&g, p);
        let newp = st.add_part();
        st.move_vertex(3, newp);
        assert_eq!(st.cut(), 1.0);
        assert!(st.drift() < 1e-12);
    }
}

//! Durability end-to-end: a journaled server restarted from its journal
//! restores finished jobs into the event ring (observation-only) and
//! re-executes jobs that were in flight, byte-identically.

use ff_service::{
    Client, Event, GraphFormat, GraphSource, InstanceCache, JobRequest, JobStatus, JournalRecord,
    JournalWriter, Server, ServerConfig,
};
use std::io::{Read, Write};

/// METIS text for the 3×3 grid — small enough that a 20k-step job ends
/// in milliseconds, rich enough to produce improvements.
const GRID: &str = "9 12\n2 4\n1 3 5\n2 6\n1 5 7\n2 4 6 8\n3 5 9\n4 8\n5 7 9\n6 8\n";

fn temp_journal(tag: &str) -> String {
    let path = std::env::temp_dir().join(format!("ff-journal-{tag}-{}.ndjson", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path.to_string_lossy().into_owned()
}

fn journaled_config(path: &str) -> ServerConfig {
    ServerConfig {
        workers: 1,
        http: Some("127.0.0.1:0".into()),
        journal: Some(path.to_string()),
        ..ServerConfig::default()
    }
}

fn grid_job(steps: u64, seed: u64) -> JobRequest {
    JobRequest {
        steps: Some(steps),
        seed,
        ..JobRequest::new("grid", 2)
    }
}

/// One blocking HTTP exchange against `addr`; returns the full reply.
fn http(addr: std::net::SocketAddr, request: String) -> String {
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    s.write_all(request.as_bytes()).unwrap();
    let mut reply = String::new();
    s.read_to_string(&mut reply).unwrap();
    reply
}

#[test]
fn finished_jobs_replay_into_the_event_ring_without_reexecution() {
    let path = temp_journal("finished");

    // First life: load, run one job to completion, shut down cleanly.
    let handle = Server::bind_with("127.0.0.1:0", journaled_config(&path))
        .unwrap()
        .spawn()
        .unwrap();
    assert_eq!(
        handle.replay_summary().map(|r| r.records),
        Some(0),
        "an empty journal replays nothing"
    );
    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .load("grid", GraphSource::Data(GRID.into()), GraphFormat::Metis)
        .unwrap();
    let id = client.submit(&grid_job(20_000, 7)).unwrap();
    let (improvements, done) = client.wait_done(id).unwrap();
    assert_eq!(done.status, JobStatus::Completed);
    client.shutdown().unwrap();
    handle.join().unwrap();

    // Second life: same journal. The finished job must come back as
    // history — served over `GET /jobs/:id/events` even though it was
    // originally submitted over NDJSON — with no re-execution.
    let handle = Server::bind_with("127.0.0.1:0", journaled_config(&path))
        .unwrap()
        .spawn()
        .unwrap();
    let replay = handle.replay_summary().unwrap();
    assert_eq!((replay.finished, replay.resumed, replay.skipped), (1, 0, 0));
    assert_eq!(replay.instances, 1);
    assert!(!replay.truncated);

    let reply = http(
        handle.http_addr().unwrap(),
        format!("GET /jobs/{id}/events HTTP/1.1\r\nConnection: close\r\n\r\n"),
    );
    assert!(reply.starts_with("HTTP/1.1 200"), "{reply}");
    let done_line = reply
        .lines()
        .find(|l| l.contains("\"event\":\"done\""))
        .expect("replayed stream ends with done");
    let Event::Done(restored) = Event::parse(done_line).unwrap() else {
        panic!("expected done event");
    };
    assert_eq!(restored.job, id);
    assert_eq!(restored.value, done.value);
    assert_eq!(restored.assignment, done.assignment);
    let replayed_improvements = reply
        .lines()
        .filter(|l| l.contains("\"event\":\"improvement\""))
        .count();
    assert_eq!(replayed_improvements, improvements.len());

    // Counters restored, not re-counted.
    let mut client = Client::connect(handle.addr()).unwrap();
    let Event::Stats(stats) = client.stats().unwrap() else {
        panic!("expected stats");
    };
    assert_eq!(stats.jobs_submitted, 1);
    assert_eq!(stats.jobs_done, 1);
    assert_eq!(stats.jobs_running, 0);

    // New jobs get fresh ids past the journaled ones.
    let fresh = client.submit(&grid_job(500, 3)).unwrap();
    assert!(fresh > id, "id allocator must resume past replayed jobs");
    client.wait_done(fresh).unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn inflight_jobs_are_reexecuted_byte_identically() {
    let path = temp_journal("inflight");

    // Fabricate the journal a crashed server would leave: a loaded
    // instance and an admitted spec with no `done`.
    let cache = InstanceCache::new();
    cache
        .load("grid", GraphSource::Data(GRID.into()), GraphFormat::Metis)
        .unwrap();
    let digest = cache.digest("grid").unwrap();
    let writer = JournalWriter::open(&path).unwrap();
    writer
        .append(&JournalRecord::Instance {
            instance: "grid".into(),
            source: GraphSource::Data(GRID.into()),
            format: GraphFormat::Metis,
            digest,
        })
        .unwrap();
    let spec = grid_job(20_000, 7);
    writer
        .append(&JournalRecord::Submitted {
            job: 5,
            spec: spec.clone(),
        })
        .unwrap();
    drop(writer);

    let handle = Server::bind_with("127.0.0.1:0", journaled_config(&path))
        .unwrap()
        .spawn()
        .unwrap();
    let replay = handle.replay_summary().unwrap();
    assert_eq!((replay.finished, replay.resumed, replay.skipped), (0, 1, 0));

    // The event stream blocks until the re-executed job finishes.
    let reply = http(
        handle.http_addr().unwrap(),
        "GET /jobs/5/events HTTP/1.1\r\nConnection: close\r\n\r\n".into(),
    );
    let done_line = reply
        .lines()
        .find(|l| l.contains("\"event\":\"done\""))
        .expect("resumed job runs to done");
    let Event::Done(resumed) = Event::parse(done_line).unwrap() else {
        panic!("expected done event");
    };
    assert_eq!(resumed.job, 5);
    assert_eq!(resumed.status, JobStatus::Completed);

    // Byte-identical to a fresh submit of the same spec — the contract
    // that makes re-execution a valid recovery strategy.
    let mut client = Client::connect(handle.addr()).unwrap();
    let rerun = client.submit(&spec).unwrap();
    assert!(rerun > 5);
    let (_, done) = client.wait_done(rerun).unwrap();
    assert_eq!(done.assignment, resumed.assignment);
    assert_eq!(done.value, resumed.value);
    client.shutdown().unwrap();
    handle.join().unwrap();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn torn_final_record_is_tolerated_and_corruption_is_fatal() {
    let path = temp_journal("torn");

    // A clean finished run...
    let handle = Server::bind_with("127.0.0.1:0", journaled_config(&path))
        .unwrap()
        .spawn()
        .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .load("grid", GraphSource::Data(GRID.into()), GraphFormat::Metis)
        .unwrap();
    let id = client.submit(&grid_job(2_000, 1)).unwrap();
    client.wait_done(id).unwrap();
    client.shutdown().unwrap();
    handle.join().unwrap();

    // ...then a crash mid-append: a torn, newline-less tail.
    let mut file = std::fs::OpenOptions::new()
        .append(true)
        .open(&path)
        .unwrap();
    file.write_all(b"312 deadbeefdeadbeef {\"kind\":\"ev")
        .unwrap();
    drop(file);
    let handle = Server::bind_with("127.0.0.1:0", journaled_config(&path))
        .unwrap()
        .spawn()
        .unwrap();
    let replay = handle.replay_summary().unwrap();
    assert!(replay.truncated, "torn tail must be detected and dropped");
    assert_eq!(replay.finished, 1);
    Client::connect(handle.addr()).unwrap().shutdown().unwrap();
    handle.join().unwrap();

    // Mid-file corruption is different: fail the bind, name the offset.
    let mut bytes = std::fs::read(&path).unwrap();
    bytes.truncate(bytes.iter().rposition(|&b| b == b'\n').unwrap() + 1);
    bytes[40] ^= 0x01;
    std::fs::write(&path, bytes).unwrap();
    let err = Server::bind_with("127.0.0.1:0", journaled_config(&path))
        .err()
        .expect("corrupt journal must refuse to bind");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(err.to_string().contains("journal corrupt at byte"), "{err}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn stale_instance_digest_skips_resume_instead_of_running_on_wrong_bytes() {
    let path = temp_journal("stale");
    let writer = JournalWriter::open(&path).unwrap();
    writer
        .append(&JournalRecord::Instance {
            instance: "grid".into(),
            source: GraphSource::Data(GRID.into()),
            format: GraphFormat::Metis,
            // Not what loading GRID produces: the "file changed across
            // the restart" shape.
            digest: 0xDEAD_BEEF,
        })
        .unwrap();
    writer
        .append(&JournalRecord::Submitted {
            job: 1,
            spec: grid_job(2_000, 1),
        })
        .unwrap();
    drop(writer);

    let handle = Server::bind_with("127.0.0.1:0", journaled_config(&path))
        .unwrap()
        .spawn()
        .unwrap();
    let replay = handle.replay_summary().unwrap();
    assert_eq!((replay.finished, replay.resumed, replay.skipped), (0, 0, 1));
    Client::connect(handle.addr()).unwrap().shutdown().unwrap();
    handle.join().unwrap();
    let _ = std::fs::remove_file(&path);
}

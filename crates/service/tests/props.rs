//! Property tests: the byte-budgeted LRU cache against an independent
//! reference model, and parser fuzzing (NDJSON lines) — the "never
//! panic, always typed" half of the serving-hardening contract.

use ff_partition::Objective;
use ff_service::{Event, GraphFormat, GraphSource, InstanceCache, PinnedGraph, Request};
use proptest::prelude::*;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

// ---------------------------------------------------------------------
// LRU cache vs reference model
// ---------------------------------------------------------------------

/// The op alphabet driving both the real cache and the model.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Load `keys[k]` from `sizes[s]`'s data.
    Load(usize, usize),
    /// Pin `keys[k]` (guard kept until a later Unpin).
    Pin(usize),
    /// Drop the most recent live guard.
    Unpin,
    /// Touch `keys[k]` without pinning.
    Get(usize),
}

const KEYS: [&str; 5] = ["a", "b", "c", "d", "e"];

/// Three distinct graph "sizes" (path graphs; distinct content ⇒
/// distinct digests, so reloading a key at a different size replaces).
fn corpus() -> Vec<(String, usize)> {
    [4usize, 10, 24]
        .iter()
        .map(|&n| {
            let g = ff_graph::generators::path(n);
            let mut text = Vec::new();
            ff_graph::io::write_metis(&g, &mut text).unwrap();
            let data = String::from_utf8(text).unwrap();
            let bytes = ff_graph::io::read_metis(data.as_bytes())
                .unwrap()
                .csr_bytes();
            (data, bytes)
        })
        .collect()
}

/// An entry in the reference model.
#[derive(Clone, Debug)]
struct ModelEntry {
    key: usize,
    size: usize,
    bytes: usize,
    pins: u32,
    last_use: u64,
    id: u64,
}

/// An independent reimplementation of the documented cache policy:
/// content-digest hits, LRU eviction past the budget, pinned entries and
/// the entry being inserted are exempt.
#[derive(Debug, Default)]
struct Model {
    entries: Vec<ModelEntry>,
    budget: usize,
    tick: u64,
    next_id: u64,
    evictions: u64,
    loads: u64,
}

impl Model {
    fn total(&self) -> usize {
        self.entries.iter().map(|e| e.bytes).sum()
    }

    fn evict(&mut self, protect: u64) {
        if self.budget == 0 {
            return;
        }
        while self.total() > self.budget {
            let victim = self
                .entries
                .iter()
                .filter(|e| e.pins == 0 && e.id != protect)
                .min_by_key(|e| e.last_use)
                .map(|e| e.id);
            let Some(id) = victim else { break };
            let gone = self.entries.iter().find(|e| e.id == id).unwrap();
            assert_eq!(gone.pins, 0, "model must never evict a pinned entry");
            self.entries.retain(|e| e.id != id);
            self.evictions += 1;
        }
    }

    /// Returns `(cached, reloaded)` like the real cache.
    fn load(&mut self, key: usize, size: usize, bytes: usize) -> (bool, bool) {
        self.tick += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.key == key) {
            if e.size == size {
                e.last_use = self.tick;
                return (true, false);
            }
        }
        let reloaded = self.entries.iter().any(|e| e.key == key);
        self.entries.retain(|e| e.key != key);
        let id = self.next_id;
        self.next_id += 1;
        self.loads += 1;
        self.entries.push(ModelEntry {
            key,
            size,
            bytes,
            pins: 0,
            last_use: self.tick,
            id,
        });
        self.evict(id);
        (false, reloaded)
    }

    /// Returns the pinned entry's generation id, if present.
    fn pin(&mut self, key: usize) -> Option<u64> {
        self.tick += 1;
        let tick = self.tick;
        let e = self.entries.iter_mut().find(|e| e.key == key)?;
        e.pins += 1;
        e.last_use = tick;
        Some(e.id)
    }

    /// Mirrors a guard drop: decrement only if the generation matches,
    /// and reclaim over-budget bytes once the entry is fully unpinned.
    fn unpin(&mut self, key: usize, id: u64) {
        let mut unpinned = false;
        if let Some(e) = self.entries.iter_mut().find(|e| e.key == key) {
            if e.id == id {
                e.pins -= 1;
                unpinned = e.pins == 0;
            }
        }
        if unpinned {
            self.evict(u64::MAX);
        }
    }

    fn get(&mut self, key: usize) -> bool {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.iter_mut().find(|e| e.key == key) {
            Some(e) => {
                e.last_use = tick;
                true
            }
            None => false,
        }
    }

    /// `(key, bytes, pins)` rows, least-recently-used first — the shape
    /// [`InstanceCache::entries`] reports.
    fn rows(&self) -> Vec<(String, usize, u32)> {
        let mut sorted: Vec<&ModelEntry> = self.entries.iter().collect();
        sorted.sort_by_key(|e| e.last_use);
        sorted
            .iter()
            .map(|e| (KEYS[e.key].to_string(), e.bytes, e.pins))
            .collect()
    }
}

/// Strategy: a budget choice and an op tape, derived from one seed the
/// way the repo's other property suites build structured inputs.
fn arb_case() -> impl Strategy<Value = (usize, Vec<Op>)> {
    (any::<u64>(), 8usize..48).prop_map(|(seed, len)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let sizes = corpus();
        let budget = match rng.gen_range(0u32..4) {
            0 => 0, // unlimited
            1 => sizes[0].1 * 2 + sizes[0].1 / 2,
            2 => sizes[1].1 * 2,
            _ => sizes[2].1 + sizes[1].1 + sizes[0].1,
        };
        let ops = (0..len)
            .map(|_| match rng.gen_range(0u32..10) {
                0..=3 => Op::Load(rng.gen_range(0..KEYS.len()), rng.gen_range(0usize..3)),
                4..=5 => Op::Pin(rng.gen_range(0..KEYS.len())),
                6..=7 => Op::Unpin,
                _ => Op::Get(rng.gen_range(0..KEYS.len())),
            })
            .collect();
        (budget, ops)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// ISSUE acceptance: arbitrary load/pin/unpin/get sequences keep the
    /// real cache in lockstep with the reference model — budget
    /// respected, pinned entries never evicted, LRU order preserved.
    #[test]
    fn lru_cache_matches_reference_model((budget, ops) in arb_case()) {
        let sizes = corpus();
        let cache = InstanceCache::with_budget(budget);
        let mut model = Model {
            budget,
            ..Model::default()
        };
        // Live guards as (key index, model generation id, real guard).
        let mut guards: Vec<(usize, u64, PinnedGraph)> = Vec::new();
        for op in ops {
            match op {
                Op::Load(k, s) => {
                    let (data, bytes) = &sizes[s];
                    let (_, outcome) = cache
                        .load(KEYS[k], GraphSource::Data(data.clone()), GraphFormat::Metis)
                        .unwrap();
                    let (cached, reloaded) = model.load(k, s, *bytes);
                    prop_assert_eq!(outcome.cached, cached);
                    prop_assert_eq!(outcome.reloaded, reloaded);
                }
                Op::Pin(k) => {
                    let real = cache.pin(KEYS[k]);
                    let id = model.pin(k);
                    prop_assert_eq!(real.is_some(), id.is_some());
                    if let (Some(guard), Some(id)) = (real, id) {
                        guards.push((k, id, guard));
                    }
                }
                Op::Unpin => {
                    if let Some((k, id, guard)) = guards.pop() {
                        drop(guard);
                        model.unpin(k, id);
                    }
                }
                Op::Get(k) => {
                    prop_assert_eq!(cache.get(KEYS[k]).is_some(), model.get(k));
                }
            }
            // Lockstep state: same entries, same bytes, same LRU order,
            // same pin counts, same eviction/load counters.
            let real_rows: Vec<(String, usize, u32)> = cache
                .entries()
                .into_iter()
                .map(|e| (e.key, e.bytes, e.pins))
                .collect();
            prop_assert_eq!(&real_rows, &model.rows());
            let stats = cache.stats();
            prop_assert_eq!(stats.bytes as usize, model.total());
            prop_assert_eq!(stats.evictions, model.evictions);
            prop_assert_eq!(stats.loads, model.loads);
            // The budget invariant: exceeding it is only legal when every
            // entry is pinned or is the single most-recently-loaded one.
            if budget > 0 && stats.bytes as usize > budget {
                let unpinned_lru_count = model
                    .entries
                    .iter()
                    .filter(|e| e.pins == 0 && e.id != model.next_id - 1)
                    .count();
                prop_assert_eq!(unpinned_lru_count, 0);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Protocol fuzz: truncated / overlong / type-confused lines
// ---------------------------------------------------------------------

/// Valid lines to mutate, covering every op and event shape. The w*
/// distributed-islands messages are generated from their typed forms so
/// the corpus can never drift from the real wire format.
fn seed_lines() -> Vec<String> {
    use ff_service::protocol::{MoleculeInfo, WIslandResult, WIslandState, WNews, WorkerStart};
    let molecule = MoleculeInfo {
        assignment: vec![0, 1, 2, 0],
        parts: 3,
    };
    let mut lines = w_lines(&[
        Request::WStart(WorkerStart {
            session: 1,
            instance: "g".into(),
            k: 3,
            seeds: vec![7, u64::MAX],
            objectives: vec![Objective::MCut, Objective::Cut],
            steps: 4_000,
        })
        .to_value(),
        Request::WAdvance {
            session: 1,
            epoch: 2,
            steps: 512,
        }
        .to_value(),
        Request::WMolecule {
            session: 1,
            island: 0,
        }
        .to_value(),
        Request::WInject {
            session: 1,
            island: 1,
            molecule: molecule.clone(),
            crossover: true,
        }
        .to_value(),
        Request::WHarvest { session: 1 }.to_value(),
        Event::WReady {
            session: 1,
            islands: 2,
        }
        .to_value(),
        Event::WState {
            session: 1,
            epoch: 2,
            islands: vec![WIslandState {
                island: 0,
                more: true,
                energy: f64::INFINITY,
                steps: 1_024,
                news: vec![WNews {
                    step: 40,
                    value: 0.5,
                    elapsed_ms: 3,
                }],
            }],
        }
        .to_value(),
        Event::WMolecule {
            session: 1,
            island: 0,
            molecule: molecule.clone(),
            energy: 0.25,
        }
        .to_value(),
        Event::WInjected {
            session: 1,
            island: 1,
            adopted: true,
        }
        .to_value(),
        Event::WHarvested {
            session: 1,
            islands: vec![WIslandResult {
                island: 0,
                value: 1.0,
                energy: f64::NEG_INFINITY,
                steps: 4_000,
                molecule,
                per_k: vec![(2, 1.0), (3, 0.5)],
            }],
        }
        .to_value(),
    ]);
    lines.extend(fixed_lines());
    lines
}

fn w_lines(values: &[serde_json::Value]) -> Vec<String> {
    values.iter().map(|v| v.to_string()).collect()
}

fn fixed_lines() -> Vec<String> {
    vec![
        r#"{"op":"load","instance":"g","data":"3 3\n2 3\n1 3\n1 2\n","format":"metis"}"#.into(),
        r#"{"op":"load","instance":"g","path":"/tmp/x.graph"}"#.into(),
        r#"{"op":"submit","instance":"g","k":4,"objective":"mcut","seed":7,"steps":1000,"islands":2,"chunk":64,"assignment":true}"#.into(),
        r#"{"op":"cancel","job":3}"#.into(),
        r#"{"op":"stats"}"#.into(),
        r#"{"op":"shutdown"}"#.into(),
        r#"{"event":"hello","proto":1,"workers":2}"#.into(),
        r#"{"event":"accepted","job":1,"instance":"g","k":4}"#.into(),
        r#"{"event":"rejected","instance":"g","reason":"full","retry_after_ms":100,"in_flight":8}"#.into(),
        r#"{"event":"improvement","job":1,"value":4.25,"step":900,"elapsed_ms":15,"island":0}"#.into(),
        r#"{"event":"done","job":1,"status":"completed","value":4.0,"parts":4,"steps":1000,"elapsed_ms":20,"migrations":0,"assignment":[0,1,2,3]}"#.into(),
        r#"{"event":"stats","instances":1,"cache_hits":2,"cache_loads":1,"jobs_submitted":3,"jobs_running":1,"jobs_done":2,"permit_wait_hist":[1,2,3,4,5]}"#.into(),
        r#"{"event":"error","message":"boom","job":9}"#.into(),
    ]
}

/// One deterministic mutation of a valid line.
fn mutate(line: &str, rng: &mut ChaCha8Rng) -> String {
    let mut bytes = line.as_bytes().to_vec();
    match rng.gen_range(0u32..5) {
        // Truncate at a random byte.
        0 => {
            let cut = rng.gen_range(0..=bytes.len());
            bytes.truncate(cut);
        }
        // Overlong: splice a huge run of a random byte into the middle.
        1 => {
            let at = rng.gen_range(0..=bytes.len());
            let filler = vec![b'a' + (rng.gen::<u8>() % 26); rng.gen_range(1_000usize..20_000)];
            bytes.splice(at..at, filler);
        }
        // Type confusion: numbers become strings/objects and vice versa.
        2 => {
            let s = String::from_utf8_lossy(&bytes)
                .replace(":1", ":\"one\"")
                .replace(":4", ":{}")
                .replace("\"mcut\"", "3.25")
                .replace("[0,1,2,3]", "\"0123\"");
            bytes = s.into_bytes();
        }
        // Random byte corruption.
        3 => {
            for _ in 0..rng.gen_range(1u32..8) {
                if bytes.is_empty() {
                    break;
                }
                let at = rng.gen_range(0..bytes.len());
                bytes[at] = rng.gen();
            }
        }
        // Pure garbage of random length.
        _ => {
            bytes = (0..rng.gen_range(0usize..256)).map(|_| rng.gen()).collect();
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Request/event parsing never panics: every mutated line either
    /// parses or yields a non-empty, human-readable error message.
    #[test]
    fn mutated_protocol_lines_never_panic(seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let lines = seed_lines();
        for line in &lines {
            let mutant = mutate(line, &mut rng);
            if let Err(msg) = Request::parse(&mutant) {
                prop_assert!(!msg.is_empty(), "empty error for {mutant:?}");
            }
            if let Err(msg) = Event::parse(&mutant) {
                prop_assert!(!msg.is_empty(), "empty error for {mutant:?}");
            }
        }
    }
}

// ---------------------------------------------------------------------
// Distributed w* messages: round-trip properties and payload fuzz
// ---------------------------------------------------------------------

/// Decodes a selector + raw bits into an f64 covering every shape the
/// wire must carry: ±inf, NaN, zero, arbitrary bit patterns (subnormals
/// and signalling NaNs included) and ordinary magnitudes.
fn float_shape(sel: u8, bits: u64) -> f64 {
    match sel % 6 {
        0 => f64::INFINITY,
        1 => f64::NEG_INFINITY,
        2 => f64::NAN,
        3 => 0.0,
        4 => f64::from_bits(bits),
        _ => (bits as f64) / 1e3,
    }
}

/// Wire equality for floats: exact bits for finite values (the format
/// prints shortest-round-trip), NaN payloads collapse to one NaN.
fn f64_wire_eq(a: f64, b: f64) -> bool {
    (a.is_nan() && b.is_nan()) || a == b
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `wstart` carries full-width u64 seeds (the >2^53 string escape
    /// hatch) and per-island objectives through a byte round-trip.
    #[test]
    fn wstart_roundtrips_full_width_seeds(
        session in any::<u64>(),
        seeds in (any::<u64>(), any::<u64>()),
        k in 2u64..12,
        steps in 1u64..u64::MAX,
    ) {
        use ff_service::protocol::WorkerStart;
        let req = Request::WStart(WorkerStart {
            session,
            instance: "g".into(),
            k: k as usize,
            seeds: vec![seeds.0, seeds.1, u64::MAX, (1 << 53) + 1],
            objectives: vec![
                Objective::MCut,
                Objective::Cut,
                Objective::NCut,
                Objective::MCut,
            ],
            steps,
        });
        let line = req.to_value().to_string();
        prop_assert_eq!(Request::parse(&line), Ok(req));
    }

    /// `wstate` and `wmolecule` events round-trip every float shape an
    /// energy can take — ±inf, NaN, subnormal, ordinary — exactly.
    #[test]
    fn wstate_roundtrips_every_float_shape(
        bits in (any::<u64>(), any::<u64>()),
        sel in (0u8..6, 0u8..6),
        step in any::<u64>(),
        elapsed in any::<u64>(),
    ) {
        use ff_service::protocol::{WIslandState, WNews};
        let energy = float_shape(sel.0, bits.0);
        let value = float_shape(sel.1, bits.1);
        let ev = Event::WState {
            session: 9,
            epoch: 3,
            islands: vec![WIslandState {
                island: 0,
                more: true,
                energy,
                steps: step,
                news: vec![WNews { step, value, elapsed_ms: elapsed }],
            }],
        };
        match Event::parse(&ev.to_value().to_string()) {
            Ok(Event::WState { session, epoch, islands }) => {
                prop_assert_eq!((session, epoch), (9, 3));
                prop_assert_eq!(islands.len(), 1);
                let st = &islands[0];
                prop_assert!((st.island, st.more, st.steps) == (0, true, step));
                prop_assert!(
                    f64_wire_eq(st.energy, energy),
                    "energy {energy} -> {}", st.energy
                );
                prop_assert_eq!(st.news.len(), 1);
                prop_assert!(
                    f64_wire_eq(st.news[0].value, value),
                    "value {value} -> {}", st.news[0].value
                );
                prop_assert!((st.news[0].step, st.news[0].elapsed_ms) == (step, elapsed));
            }
            other => prop_assert!(false, "round-trip broke: {other:?}"),
        }
    }

    /// `wharvested` round-trips molecules and the per-k value table with
    /// special floats intact.
    #[test]
    fn wharvested_roundtrips_molecule_and_per_k(
        bits in (any::<u64>(), any::<u64>()),
        sel in (0u8..6, 0u8..6),
        parts in 1u32..6,
        steps in any::<u64>(),
    ) {
        use ff_service::protocol::{MoleculeInfo, WIslandResult};
        let energy = float_shape(sel.0, bits.0);
        let value = float_shape(sel.1, bits.1);
        let assignment: Vec<u32> = (0..8).map(|i| i % parts).collect();
        let ev = Event::WHarvested {
            session: 4,
            islands: vec![WIslandResult {
                island: 0,
                value,
                energy,
                steps,
                molecule: MoleculeInfo {
                    assignment: assignment.clone(),
                    parts: parts as usize,
                },
                per_k: vec![(2, value), (3, energy)],
            }],
        };
        match Event::parse(&ev.to_value().to_string()) {
            Ok(Event::WHarvested { islands, .. }) => {
                let r = &islands[0];
                prop_assert_eq!(&r.molecule.assignment, &assignment);
                prop_assert_eq!(r.molecule.parts, parts as usize);
                prop_assert!(f64_wire_eq(r.value, value));
                prop_assert!(f64_wire_eq(r.energy, energy));
                prop_assert_eq!(r.steps, steps);
                prop_assert_eq!(r.per_k.len(), 2);
                prop_assert!(f64_wire_eq(r.per_k[0].1, value));
                prop_assert!(f64_wire_eq(r.per_k[1].1, energy));
            }
            other => prop_assert!(false, "round-trip broke: {other:?}"),
        }
    }

    /// Randomly mutated molecule payloads (truncation, type confusion,
    /// corruption, garbage) never panic the parser: they either parse or
    /// fail with a typed, non-empty message.
    #[test]
    fn mutated_molecule_payloads_never_panic(seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let base =
            r#"{"op":"winject","session":1,"island":0,"crossover":false,"assignment":[0,1,2,0],"parts":3}"#;
        for _ in 0..16 {
            let mutant = mutate(base, &mut rng);
            if let Err(msg) = Request::parse(&mutant) {
                prop_assert!(!msg.is_empty(), "empty error for {mutant:?}");
            }
        }
    }
}

/// Targeted molecule corruptions are rejected with a typed error — a
/// damaged payload can never silently become a *different* molecule.
#[test]
fn molecule_payload_corruptions_are_rejected_not_reinterpreted() {
    let cases = [
        // Truncation: a required field is simply gone.
        (
            r#"{"op":"winject","session":1,"island":0,"crossover":false,"parts":3}"#,
            "assignment",
        ),
        (
            r#"{"op":"winject","session":1,"island":0,"crossover":false,"assignment":[0,1]}"#,
            "parts",
        ),
        (
            r#"{"op":"winject","session":1,"island":0,"assignment":[0,1],"parts":2}"#,
            "crossover",
        ),
        // Degenerate shapes.
        (
            r#"{"op":"winject","session":1,"island":0,"crossover":false,"assignment":[],"parts":3}"#,
            "must not be empty",
        ),
        (
            r#"{"op":"winject","session":1,"island":0,"crossover":false,"assignment":[0],"parts":0}"#,
            "at least 1",
        ),
        // Out-of-range and type-confused part ids.
        (
            r#"{"op":"winject","session":1,"island":0,"crossover":false,"assignment":[0,9],"parts":3}"#,
            "out of range",
        ),
        (
            r#"{"op":"winject","session":1,"island":0,"crossover":false,"assignment":[0,-1],"parts":3}"#,
            "bad part id",
        ),
        (
            r#"{"op":"winject","session":1,"island":0,"crossover":false,"assignment":[0,1.5],"parts":3}"#,
            "bad part id",
        ),
        (
            r#"{"op":"winject","session":1,"island":0,"crossover":false,"assignment":["0",1],"parts":3}"#,
            "bad part id",
        ),
        (
            r#"{"op":"winject","session":1,"island":0,"crossover":false,"assignment":[0,4294967296],"parts":3}"#,
            "bad part id",
        ),
        (
            r#"{"op":"winject","session":1,"island":0,"crossover":"yes","assignment":[0,1],"parts":2}"#,
            "crossover",
        ),
    ];
    for (line, fragment) in cases {
        let err = Request::parse(line).expect_err(line);
        assert!(err.contains(fragment), "{line}: `{err}` lacks `{fragment}`");
    }
}

/// Unknown fields on w* messages are rejected *by name* — a typo'd or
/// smuggled field can never ride along silently.
#[test]
fn w_messages_reject_unknown_fields_by_name() {
    let cases = [
        r#"{"op":"winject","session":1,"island":0,"crossover":false,"assignment":[0,1],"parts":2,"smuggled":7}"#,
        r#"{"op":"wadvance","session":1,"epoch":0,"steps":10,"smuggled":7}"#,
        r#"{"op":"wmolecule","session":1,"island":0,"smuggled":7}"#,
        r#"{"op":"wharvest","session":1,"smuggled":7}"#,
        r#"{"op":"wstart","session":1,"instance":"g","k":2,"seeds":[1],"objectives":["mcut"],"steps":10,"smuggled":7}"#,
        r#"{"event":"wready","session":1,"islands":2,"smuggled":7}"#,
        r#"{"event":"wstate","session":1,"epoch":0,"islands":[],"smuggled":7}"#,
    ];
    for line in cases {
        let err = if line.contains("\"op\"") {
            Request::parse(line).expect_err(line)
        } else {
            Event::parse(line).expect_err(line)
        };
        assert!(
            err.contains("unknown field `smuggled`"),
            "{line}: error `{err}` should name the field"
        );
    }
}

// ---------------------------------------------------------------------
// Journal frame round-trip and crash-prefix tolerance
// ---------------------------------------------------------------------

/// Builds one journal record from four raw u64 draws — the shim has no
/// combinator zoo, so the record shape is decoded from the entropy by
/// hand: `sel` picks the variant, the rest parameterize it. Covers the
/// full vocabulary the server journals (instance loads, admitted specs,
/// improvement and done events, with every optional field exercised).
fn journal_record_from(sel: u64, a: u64, b: u64, c: u64) -> ff_service::JournalRecord {
    use ff_service::{DoneInfo, Improvement, JobRequest, JobStatus, JournalRecord};
    let objective = |n: u64| match n % 3 {
        0 => Objective::Cut,
        1 => Objective::NCut,
        _ => Objective::MCut,
    };
    match sel % 4 {
        0 => JournalRecord::Instance {
            instance: format!("inst-{}", a % 16),
            source: GraphSource::Data(format!("{} {}\n", b % 100, c % 100)),
            format: if b.is_multiple_of(2) {
                GraphFormat::Metis
            } else {
                GraphFormat::EdgeList
            },
            digest: c,
        },
        1 => JournalRecord::Submitted {
            job: a,
            spec: JobRequest {
                objective: objective(b),
                seed: c,
                steps: (!b.is_multiple_of(3)).then_some(b % 1_000_000 + 1),
                deadline_ms: b.is_multiple_of(3).then_some(c % 60_000 + 1),
                islands: (b % 7 + 1) as usize,
                chunk: c % 10_000 + 1,
                assignment: c.is_multiple_of(2),
                multilevel: c.is_multiple_of(5).then_some(b % 5_000),
                ..JobRequest::new(format!("inst-{}", a % 16), (b % 63 + 1) as usize)
            },
        },
        2 => JournalRecord::Event(Event::Improvement(Improvement {
            job: a,
            value: (b % 2_000_000) as f64 / 7.0 - 100_000.0,
            step: b,
            elapsed_ms: c % 1_000_000,
            island: (c % 64) as usize,
            objective: c.is_multiple_of(2).then(|| objective(b)),
        })),
        _ => JournalRecord::Event(Event::Done(DoneInfo {
            job: a,
            status: match b % 3 {
                0 => JobStatus::Completed,
                1 => JobStatus::Cancelled,
                _ => JobStatus::Deadline,
            },
            value: (c % 2_000_000) as f64 / 7.0 - 100_000.0,
            parts: (b % 63 + 1) as usize,
            steps: b,
            elapsed_ms: c % 1_000_000,
            migrations: a % 1_000,
            assignment: c
                .is_multiple_of(3)
                .then(|| (0..(c % 20) as u32).map(|i| i % 4).collect()),
            pareto: None,
        })),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any sequence of journal records survives the frame: write them
    /// through [`ff_service::JournalWriter`], read them back with
    /// [`ff_service::read_journal`], get the same records. And any
    /// crash-shaped prefix of those bytes still parses to a prefix of
    /// the records — a torn tail is tolerated, never misread.
    #[test]
    fn journal_records_roundtrip_and_any_prefix_parses(
        seed in any::<u64>(),
        count in 1usize..12,
        cut_frac in 0.0f64..1.0,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let records: Vec<ff_service::JournalRecord> = (0..count)
            .map(|_| journal_record_from(rng.gen(), rng.gen(), rng.gen(), rng.gen()))
            .collect();
        let path = std::env::temp_dir()
            .join(format!("ff-props-journal-{}.ndjson", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let writer = ff_service::JournalWriter::open(&path).unwrap();
        for record in &records {
            writer.append(record).unwrap();
        }
        drop(writer);
        let bytes = std::fs::read(&path).unwrap();
        let _ = std::fs::remove_file(&path);

        let outcome = ff_service::parse_journal(&bytes).unwrap();
        prop_assert!(!outcome.truncated);
        prop_assert_eq!(&outcome.records, &records);

        // Crash shape: the file ends mid-append at an arbitrary byte.
        let cut = (bytes.len() as f64 * cut_frac) as usize;
        let torn = ff_service::parse_journal(&bytes[..cut]).unwrap();
        // A prefix of the bytes must parse to a prefix of the records.
        prop_assert_eq!(&torn.records[..], &records[..torn.records.len()]);
        prop_assert!(torn.records.len() <= records.len());
    }
}

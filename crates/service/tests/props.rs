//! Property tests: the byte-budgeted LRU cache against an independent
//! reference model, and parser fuzzing (NDJSON lines) — the "never
//! panic, always typed" half of the serving-hardening contract.

use ff_service::{Event, GraphFormat, GraphSource, InstanceCache, PinnedGraph, Request};
use proptest::prelude::*;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

// ---------------------------------------------------------------------
// LRU cache vs reference model
// ---------------------------------------------------------------------

/// The op alphabet driving both the real cache and the model.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Load `keys[k]` from `sizes[s]`'s data.
    Load(usize, usize),
    /// Pin `keys[k]` (guard kept until a later Unpin).
    Pin(usize),
    /// Drop the most recent live guard.
    Unpin,
    /// Touch `keys[k]` without pinning.
    Get(usize),
}

const KEYS: [&str; 5] = ["a", "b", "c", "d", "e"];

/// Three distinct graph "sizes" (path graphs; distinct content ⇒
/// distinct digests, so reloading a key at a different size replaces).
fn corpus() -> Vec<(String, usize)> {
    [4usize, 10, 24]
        .iter()
        .map(|&n| {
            let g = ff_graph::generators::path(n);
            let mut text = Vec::new();
            ff_graph::io::write_metis(&g, &mut text).unwrap();
            let data = String::from_utf8(text).unwrap();
            let bytes = ff_graph::io::read_metis(data.as_bytes())
                .unwrap()
                .csr_bytes();
            (data, bytes)
        })
        .collect()
}

/// An entry in the reference model.
#[derive(Clone, Debug)]
struct ModelEntry {
    key: usize,
    size: usize,
    bytes: usize,
    pins: u32,
    last_use: u64,
    id: u64,
}

/// An independent reimplementation of the documented cache policy:
/// content-digest hits, LRU eviction past the budget, pinned entries and
/// the entry being inserted are exempt.
#[derive(Debug, Default)]
struct Model {
    entries: Vec<ModelEntry>,
    budget: usize,
    tick: u64,
    next_id: u64,
    evictions: u64,
    loads: u64,
}

impl Model {
    fn total(&self) -> usize {
        self.entries.iter().map(|e| e.bytes).sum()
    }

    fn evict(&mut self, protect: u64) {
        if self.budget == 0 {
            return;
        }
        while self.total() > self.budget {
            let victim = self
                .entries
                .iter()
                .filter(|e| e.pins == 0 && e.id != protect)
                .min_by_key(|e| e.last_use)
                .map(|e| e.id);
            let Some(id) = victim else { break };
            let gone = self.entries.iter().find(|e| e.id == id).unwrap();
            assert_eq!(gone.pins, 0, "model must never evict a pinned entry");
            self.entries.retain(|e| e.id != id);
            self.evictions += 1;
        }
    }

    /// Returns `(cached, reloaded)` like the real cache.
    fn load(&mut self, key: usize, size: usize, bytes: usize) -> (bool, bool) {
        self.tick += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.key == key) {
            if e.size == size {
                e.last_use = self.tick;
                return (true, false);
            }
        }
        let reloaded = self.entries.iter().any(|e| e.key == key);
        self.entries.retain(|e| e.key != key);
        let id = self.next_id;
        self.next_id += 1;
        self.loads += 1;
        self.entries.push(ModelEntry {
            key,
            size,
            bytes,
            pins: 0,
            last_use: self.tick,
            id,
        });
        self.evict(id);
        (false, reloaded)
    }

    /// Returns the pinned entry's generation id, if present.
    fn pin(&mut self, key: usize) -> Option<u64> {
        self.tick += 1;
        let tick = self.tick;
        let e = self.entries.iter_mut().find(|e| e.key == key)?;
        e.pins += 1;
        e.last_use = tick;
        Some(e.id)
    }

    /// Mirrors a guard drop: decrement only if the generation matches,
    /// and reclaim over-budget bytes once the entry is fully unpinned.
    fn unpin(&mut self, key: usize, id: u64) {
        let mut unpinned = false;
        if let Some(e) = self.entries.iter_mut().find(|e| e.key == key) {
            if e.id == id {
                e.pins -= 1;
                unpinned = e.pins == 0;
            }
        }
        if unpinned {
            self.evict(u64::MAX);
        }
    }

    fn get(&mut self, key: usize) -> bool {
        self.tick += 1;
        let tick = self.tick;
        match self.entries.iter_mut().find(|e| e.key == key) {
            Some(e) => {
                e.last_use = tick;
                true
            }
            None => false,
        }
    }

    /// `(key, bytes, pins)` rows, least-recently-used first — the shape
    /// [`InstanceCache::entries`] reports.
    fn rows(&self) -> Vec<(String, usize, u32)> {
        let mut sorted: Vec<&ModelEntry> = self.entries.iter().collect();
        sorted.sort_by_key(|e| e.last_use);
        sorted
            .iter()
            .map(|e| (KEYS[e.key].to_string(), e.bytes, e.pins))
            .collect()
    }
}

/// Strategy: a budget choice and an op tape, derived from one seed the
/// way the repo's other property suites build structured inputs.
fn arb_case() -> impl Strategy<Value = (usize, Vec<Op>)> {
    (any::<u64>(), 8usize..48).prop_map(|(seed, len)| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let sizes = corpus();
        let budget = match rng.gen_range(0u32..4) {
            0 => 0, // unlimited
            1 => sizes[0].1 * 2 + sizes[0].1 / 2,
            2 => sizes[1].1 * 2,
            _ => sizes[2].1 + sizes[1].1 + sizes[0].1,
        };
        let ops = (0..len)
            .map(|_| match rng.gen_range(0u32..10) {
                0..=3 => Op::Load(rng.gen_range(0..KEYS.len()), rng.gen_range(0usize..3)),
                4..=5 => Op::Pin(rng.gen_range(0..KEYS.len())),
                6..=7 => Op::Unpin,
                _ => Op::Get(rng.gen_range(0..KEYS.len())),
            })
            .collect();
        (budget, ops)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// ISSUE acceptance: arbitrary load/pin/unpin/get sequences keep the
    /// real cache in lockstep with the reference model — budget
    /// respected, pinned entries never evicted, LRU order preserved.
    #[test]
    fn lru_cache_matches_reference_model((budget, ops) in arb_case()) {
        let sizes = corpus();
        let cache = InstanceCache::with_budget(budget);
        let mut model = Model {
            budget,
            ..Model::default()
        };
        // Live guards as (key index, model generation id, real guard).
        let mut guards: Vec<(usize, u64, PinnedGraph)> = Vec::new();
        for op in ops {
            match op {
                Op::Load(k, s) => {
                    let (data, bytes) = &sizes[s];
                    let (_, outcome) = cache
                        .load(KEYS[k], GraphSource::Data(data.clone()), GraphFormat::Metis)
                        .unwrap();
                    let (cached, reloaded) = model.load(k, s, *bytes);
                    prop_assert_eq!(outcome.cached, cached);
                    prop_assert_eq!(outcome.reloaded, reloaded);
                }
                Op::Pin(k) => {
                    let real = cache.pin(KEYS[k]);
                    let id = model.pin(k);
                    prop_assert_eq!(real.is_some(), id.is_some());
                    if let (Some(guard), Some(id)) = (real, id) {
                        guards.push((k, id, guard));
                    }
                }
                Op::Unpin => {
                    if let Some((k, id, guard)) = guards.pop() {
                        drop(guard);
                        model.unpin(k, id);
                    }
                }
                Op::Get(k) => {
                    prop_assert_eq!(cache.get(KEYS[k]).is_some(), model.get(k));
                }
            }
            // Lockstep state: same entries, same bytes, same LRU order,
            // same pin counts, same eviction/load counters.
            let real_rows: Vec<(String, usize, u32)> = cache
                .entries()
                .into_iter()
                .map(|e| (e.key, e.bytes, e.pins))
                .collect();
            prop_assert_eq!(&real_rows, &model.rows());
            let stats = cache.stats();
            prop_assert_eq!(stats.bytes as usize, model.total());
            prop_assert_eq!(stats.evictions, model.evictions);
            prop_assert_eq!(stats.loads, model.loads);
            // The budget invariant: exceeding it is only legal when every
            // entry is pinned or is the single most-recently-loaded one.
            if budget > 0 && stats.bytes as usize > budget {
                let unpinned_lru_count = model
                    .entries
                    .iter()
                    .filter(|e| e.pins == 0 && e.id != model.next_id - 1)
                    .count();
                prop_assert_eq!(unpinned_lru_count, 0);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Protocol fuzz: truncated / overlong / type-confused lines
// ---------------------------------------------------------------------

/// Valid lines to mutate, covering every op and event shape.
fn seed_lines() -> Vec<String> {
    vec![
        r#"{"op":"load","instance":"g","data":"3 3\n2 3\n1 3\n1 2\n","format":"metis"}"#.into(),
        r#"{"op":"load","instance":"g","path":"/tmp/x.graph"}"#.into(),
        r#"{"op":"submit","instance":"g","k":4,"objective":"mcut","seed":7,"steps":1000,"islands":2,"chunk":64,"assignment":true}"#.into(),
        r#"{"op":"cancel","job":3}"#.into(),
        r#"{"op":"stats"}"#.into(),
        r#"{"op":"shutdown"}"#.into(),
        r#"{"event":"hello","proto":1,"workers":2}"#.into(),
        r#"{"event":"accepted","job":1,"instance":"g","k":4}"#.into(),
        r#"{"event":"rejected","instance":"g","reason":"full","retry_after_ms":100,"in_flight":8}"#.into(),
        r#"{"event":"improvement","job":1,"value":4.25,"step":900,"elapsed_ms":15,"island":0}"#.into(),
        r#"{"event":"done","job":1,"status":"completed","value":4.0,"parts":4,"steps":1000,"elapsed_ms":20,"migrations":0,"assignment":[0,1,2,3]}"#.into(),
        r#"{"event":"stats","instances":1,"cache_hits":2,"cache_loads":1,"jobs_submitted":3,"jobs_running":1,"jobs_done":2,"permit_wait_hist":[1,2,3,4,5]}"#.into(),
        r#"{"event":"error","message":"boom","job":9}"#.into(),
    ]
}

/// One deterministic mutation of a valid line.
fn mutate(line: &str, rng: &mut ChaCha8Rng) -> String {
    let mut bytes = line.as_bytes().to_vec();
    match rng.gen_range(0u32..5) {
        // Truncate at a random byte.
        0 => {
            let cut = rng.gen_range(0..=bytes.len());
            bytes.truncate(cut);
        }
        // Overlong: splice a huge run of a random byte into the middle.
        1 => {
            let at = rng.gen_range(0..=bytes.len());
            let filler = vec![b'a' + (rng.gen::<u8>() % 26); rng.gen_range(1_000usize..20_000)];
            bytes.splice(at..at, filler);
        }
        // Type confusion: numbers become strings/objects and vice versa.
        2 => {
            let s = String::from_utf8_lossy(&bytes)
                .replace(":1", ":\"one\"")
                .replace(":4", ":{}")
                .replace("\"mcut\"", "3.25")
                .replace("[0,1,2,3]", "\"0123\"");
            bytes = s.into_bytes();
        }
        // Random byte corruption.
        3 => {
            for _ in 0..rng.gen_range(1u32..8) {
                if bytes.is_empty() {
                    break;
                }
                let at = rng.gen_range(0..bytes.len());
                bytes[at] = rng.gen();
            }
        }
        // Pure garbage of random length.
        _ => {
            bytes = (0..rng.gen_range(0usize..256)).map(|_| rng.gen()).collect();
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Request/event parsing never panics: every mutated line either
    /// parses or yields a non-empty, human-readable error message.
    #[test]
    fn mutated_protocol_lines_never_panic(seed in any::<u64>()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let lines = seed_lines();
        for line in &lines {
            let mutant = mutate(line, &mut rng);
            if let Err(msg) = Request::parse(&mutant) {
                prop_assert!(!msg.is_empty(), "empty error for {mutant:?}");
            }
            if let Err(msg) = Event::parse(&mutant) {
                prop_assert!(!msg.is_empty(), "empty error for {mutant:?}");
            }
        }
    }
}

//! End-to-end tests: a real TCP server, concurrent clients, streaming,
//! cancellation, deadlines, isolation, determinism.

use ff_service::{Client, Event, GraphFormat, GraphSource, JobRequest, JobStatus, Request, Server};
use std::time::{Duration, Instant};

/// METIS text for a 60-vertex random-geometric instance — the shared
/// "loaded once, served many" graph.
fn instance_data() -> String {
    let g = ff_graph::generators::random_geometric(60, 0.25, 3);
    let mut text = Vec::new();
    ff_graph::io::write_metis(&g, &mut text).unwrap();
    String::from_utf8(text).unwrap()
}

fn start_server(workers: usize) -> ff_service::ServerHandle {
    Server::bind("127.0.0.1:0", workers)
        .unwrap()
        .spawn()
        .unwrap()
}

/// The acceptance driver: N concurrent clients over one cached instance,
/// each streaming its own step-budgeted job. Returns per-seed
/// `(improvement values, done)` in seed order, plus the cache-load count.
fn drive_concurrent_jobs(seeds: &[u64]) -> (Vec<(Vec<f64>, ff_service::DoneInfo)>, u64) {
    let handle = start_server(2);
    let addr = handle.addr();
    let data = instance_data();
    let results: Vec<(Vec<f64>, ff_service::DoneInfo)> = std::thread::scope(|scope| {
        let joins: Vec<_> = seeds
            .iter()
            .map(|&seed| {
                let data = data.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    // Every client loads the same key+data: exactly one
                    // actual load, the rest are cache hits.
                    client
                        .load("geo60", GraphSource::Data(data), GraphFormat::Metis)
                        .unwrap();
                    let job = JobRequest {
                        steps: Some(8_000),
                        seed,
                        chunk: 256,
                        ..JobRequest::new("geo60", 4)
                    };
                    let id = client.submit(&job).unwrap();
                    let (improvements, done) = client.wait_done(id).unwrap();
                    assert_eq!(done.job, id, "result routed to the wrong job");
                    let values: Vec<f64> = improvements.iter().map(|i| i.value).collect();
                    (values, done)
                })
            })
            .collect();
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });
    let mut admin = Client::connect(addr).unwrap();
    let loads = match admin.stats().unwrap() {
        Event::Stats(st) => st.cache_loads,
        other => panic!("expected stats, got {other:?}"),
    };
    admin.shutdown().unwrap();
    handle.join().unwrap();
    (results, loads)
}

/// ISSUE acceptance: ≥4 concurrent jobs over one cached instance, ≥1
/// streamed improvement per job before completion, and byte-identical
/// partitions for step-budgeted jobs across two separate server runs.
#[test]
fn four_concurrent_jobs_stream_and_reproduce_across_server_runs() {
    let seeds = [11u64, 22, 33, 44];
    let (first, loads_a) = drive_concurrent_jobs(&seeds);
    let (second, loads_b) = drive_concurrent_jobs(&seeds);
    assert_eq!(loads_a, 1, "one graph load must serve all four jobs");
    assert_eq!(loads_b, 1);
    for ((values, done), (values2, done2)) in first.iter().zip(&second) {
        assert!(
            !values.is_empty(),
            "each job must stream ≥1 improvement before done"
        );
        assert_eq!(done.status, JobStatus::Completed);
        assert_eq!(done.steps, 8_000);
        assert_eq!(done.parts, 4);
        // Anytime stream is strictly improving and ends at the final value.
        assert!(values.windows(2).all(|w| w[1] < w[0]));
        assert_eq!(values.last().copied().unwrap(), done.value);
        // Determinism across server runs: same request + seed ⇒
        // byte-identical final partition and identical streamed values.
        assert_eq!(done.assignment, done2.assignment);
        assert_eq!(done.value, done2.value);
        assert_eq!(values, values2);
    }
    // Different seeds explore differently (overwhelmingly likely that at
    // least one pair of assignments differs).
    assert!(
        first
            .windows(2)
            .any(|w| w[0].1.assignment != w[1].1.assignment),
        "all four seeds converged to identical assignments — suspicious"
    );
}

/// Satellite: served multilevel jobs honour the same determinism
/// contract as flat ones — same request ⇒ byte-identical `done`
/// assignment across two separate server processes.
#[test]
fn multilevel_job_over_the_wire_is_byte_identical_across_server_runs() {
    let run = || {
        let handle = start_server(2);
        let mut client = Client::connect(handle.addr()).unwrap();
        client
            .load(
                "geo60",
                GraphSource::Data(instance_data()),
                GraphFormat::Metis,
            )
            .unwrap();
        let job = JobRequest {
            steps: Some(6_000),
            seed: 17,
            islands: 2,
            chunk: 256,
            multilevel: Some(16),
            ..JobRequest::new("geo60", 4)
        };
        let id = client.submit(&job).unwrap();
        let (improvements, done) = client.wait_done(id).unwrap();
        client.shutdown().unwrap();
        handle.join().unwrap();
        let values: Vec<f64> = improvements.iter().map(|i| i.value).collect();
        (values, done)
    };
    let (values_a, done_a) = run();
    let (values_b, done_b) = run();
    assert_eq!(done_a.status, JobStatus::Completed);
    assert_eq!(done_a.parts, 4);
    assert_eq!(done_a.assignment.as_ref().unwrap().len(), 60);
    // Coarse-phase improvements stream, and the refined fine-graph value
    // can only be at least as good as the last coarse improvement.
    assert!(!values_a.is_empty());
    assert!(done_a.value <= values_a.last().copied().unwrap());
    assert_eq!(done_a.assignment, done_b.assignment);
    assert_eq!(done_a.value, done_b.value);
    assert_eq!(values_a, values_b);
}

/// Per-job result isolation: a job run concurrently with three others
/// returns exactly what it returns when run alone.
#[test]
fn concurrent_results_match_solo_runs() {
    let seeds = [5u64, 6, 7, 8];
    let (concurrent, _) = drive_concurrent_jobs(&seeds);
    for (i, &seed) in seeds.iter().enumerate() {
        let (solo, _) = drive_concurrent_jobs(&[seed]);
        assert_eq!(
            concurrent[i].1.assignment, solo[0].1.assignment,
            "seed {seed}: concurrency leaked into the result"
        );
        assert_eq!(concurrent[i].1.value, solo[0].1.value);
    }
}

#[test]
fn cancel_returns_best_so_far_promptly() {
    let handle = start_server(1);
    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .load(
            "geo60",
            GraphSource::Data(instance_data()),
            GraphFormat::Metis,
        )
        .unwrap();
    // Effectively unbounded: only cancel can end it.
    let job = JobRequest {
        steps: Some(u64::MAX / 2),
        chunk: 256,
        ..JobRequest::new("geo60", 4)
    };
    let id = client.submit(&job).unwrap();
    // Let it find at least one improvement first.
    let first = loop {
        match client.next_event().unwrap() {
            Event::Improvement(imp) if imp.job == id => break imp,
            _ => continue,
        }
    };
    assert!(first.value.is_finite() || first.value.is_infinite());
    let asked = Instant::now();
    assert!(client.cancel(id).unwrap(), "job should be known");
    let (_, done) = client.wait_done(id).unwrap();
    assert!(
        asked.elapsed() < Duration::from_secs(5),
        "cancel must land promptly, took {:?}",
        asked.elapsed()
    );
    assert_eq!(done.status, JobStatus::Cancelled);
    assert!(done.value.is_finite(), "best-so-far molecule returned");
    assert!(done.assignment.is_some());
    // Cancelling an unknown job is answered, not ignored.
    assert!(!client.cancel(9999).unwrap());
    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn deadline_only_job_stops_within_tolerance() {
    let handle = start_server(1);
    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .load(
            "geo60",
            GraphSource::Data(instance_data()),
            GraphFormat::Metis,
        )
        .unwrap();
    let job = JobRequest {
        deadline_ms: Some(300),
        chunk: 256,
        ..JobRequest::new("geo60", 4)
    };
    let started = Instant::now();
    let id = client.submit(&job).unwrap();
    let (_, done) = client.wait_done(id).unwrap();
    let elapsed = started.elapsed();
    assert_eq!(done.status, JobStatus::Deadline);
    assert!(
        elapsed >= Duration::from_millis(250),
        "gave up early: {elapsed:?}"
    );
    assert!(
        elapsed < Duration::from_secs(5),
        "deadline overshot: {elapsed:?}"
    );
    assert!(done.value.is_finite());
    assert!(done.steps > 0);
    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// One connection, several jobs in flight: the client-side demux must
/// route interleaved events to the right waiter.
#[test]
fn one_connection_runs_concurrent_jobs() {
    let handle = start_server(2);
    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .load(
            "geo60",
            GraphSource::Data(instance_data()),
            GraphFormat::Metis,
        )
        .unwrap();
    let mk = |seed| JobRequest {
        steps: Some(6_000),
        seed,
        chunk: 256,
        ..JobRequest::new("geo60", 3)
    };
    let a = client.submit(&mk(1)).unwrap();
    let b = client.submit(&mk(2)).unwrap();
    assert_ne!(a, b);
    // Wait in the "wrong" order on purpose: b's events arrive while
    // waiting for a and must be buffered, not lost.
    let (imp_a, done_a) = client.wait_done(a).unwrap();
    let (imp_b, done_b) = client.wait_done(b).unwrap();
    assert_eq!(done_a.status, JobStatus::Completed);
    assert_eq!(done_b.status, JobStatus::Completed);
    assert!(!imp_a.is_empty() && !imp_b.is_empty());
    assert!(imp_a.iter().all(|i| i.job == a));
    assert!(imp_b.iter().all(|i| i.job == b));
    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn protocol_errors_are_events_not_disconnects() {
    let handle = start_server(1);
    let mut client = Client::connect(handle.addr()).unwrap();

    // Unknown instance.
    client
        .send(&Request::Submit(JobRequest {
            steps: Some(10),
            ..JobRequest::new("ghost", 2)
        }))
        .unwrap();
    match client.next_event().unwrap() {
        Event::Error { message, .. } => assert!(message.contains("unknown instance")),
        other => panic!("expected error, got {other:?}"),
    }

    // Malformed graph data.
    client
        .send(&Request::Load {
            instance: "bad".into(),
            source: GraphSource::Data("this is not METIS".into()),
            format: GraphFormat::Metis,
        })
        .unwrap();
    match client.next_event().unwrap() {
        Event::Error { message, .. } => assert!(message.contains("inline data")),
        other => panic!("expected error, got {other:?}"),
    }

    // k out of range for the instance.
    client
        .load(
            "tri",
            GraphSource::Data("3 3\n2 3\n1 3\n1 2\n".into()),
            GraphFormat::Metis,
        )
        .unwrap();
    client
        .send(&Request::Submit(JobRequest {
            steps: Some(10),
            ..JobRequest::new("tri", 99)
        }))
        .unwrap();
    match client.next_event().unwrap() {
        Event::Error { message, .. } => assert!(message.contains("k must be in 1..=3")),
        other => panic!("expected error, got {other:?}"),
    }

    // Raw garbage line: still an error event, connection stays usable.
    {
        use std::io::Write;
        let mut raw = std::net::TcpStream::connect(handle.addr()).unwrap();
        let mut reader = std::io::BufReader::new(raw.try_clone().unwrap());
        let mut line = String::new();
        std::io::BufRead::read_line(&mut reader, &mut line).unwrap(); // hello
        writeln!(raw, "{{not json").unwrap();
        line.clear();
        std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
        let ev = Event::parse(line.trim_end()).unwrap();
        assert!(matches!(ev, Event::Error { .. }), "got {ev:?}");
        writeln!(raw, "{}", Request::Stats.to_value()).unwrap();
        line.clear();
        std::io::BufRead::read_line(&mut reader, &mut line).unwrap();
        assert!(matches!(
            Event::parse(line.trim_end()).unwrap(),
            Event::Stats { .. }
        ));
    }

    client.shutdown().unwrap();
    handle.join().unwrap();
}

#[test]
fn stats_track_cache_and_jobs() {
    let handle = start_server(1);
    let mut client = Client::connect(handle.addr()).unwrap();
    let (_, _, cached) = client
        .load(
            "tri",
            GraphSource::Data("3 3\n2 3\n1 3\n1 2\n".into()),
            GraphFormat::Metis,
        )
        .unwrap();
    assert!(!cached);
    let (_, _, cached) = client
        .load(
            "tri",
            GraphSource::Data("3 3\n2 3\n1 3\n1 2\n".into()),
            GraphFormat::Metis,
        )
        .unwrap();
    assert!(cached, "second identical load is a hit");
    let id = client
        .submit(&JobRequest {
            steps: Some(200),
            ..JobRequest::new("tri", 2)
        })
        .unwrap();
    let (_, done) = client.wait_done(id).unwrap();
    assert_eq!(done.status, JobStatus::Completed);
    match client.stats().unwrap() {
        Event::Stats(st) => {
            assert_eq!(st.instances, 1);
            assert_eq!(st.cache_loads, 1);
            assert!(
                st.cache_hits >= 2,
                "load hit + submit lookup, got {}",
                st.cache_hits
            );
            assert_eq!(st.jobs_submitted, 1);
            assert_eq!(st.jobs_running, 0);
            assert_eq!(st.jobs_done, 1);
            assert_eq!(st.jobs_rejected, 0);
            assert_eq!(st.cache_evictions, 0);
            assert!(st.cache_bytes > 0, "resident CSR bytes must be accounted");
            assert_eq!(st.workers, 1);
            assert!(
                st.permit_wait_hist.iter().sum::<u64>() > 0,
                "the job's chunk acquires must be in the histogram"
            );
        }
        other => panic!("expected stats, got {other:?}"),
    }
    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// An ensemble job served over the wire equals the library-level ensemble.
#[test]
fn ensemble_jobs_work_over_the_wire() {
    let handle = start_server(2);
    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .load(
            "geo60",
            GraphSource::Data(instance_data()),
            GraphFormat::Metis,
        )
        .unwrap();
    let job = JobRequest {
        steps: Some(4_000),
        seed: 17,
        islands: 3,
        chunk: 512,
        ..JobRequest::new("geo60", 4)
    };
    let id = client.submit(&job).unwrap();
    let (improvements, done) = client.wait_done(id).unwrap();
    assert_eq!(done.status, JobStatus::Completed);
    assert_eq!(done.steps, 12_000, "3 islands × 4000 steps");
    assert!(!improvements.is_empty());
    // The streamed ensemble-level values strictly improve.
    let values: Vec<f64> = improvements.iter().map(|i| i.value).collect();
    assert!(values.windows(2).all(|w| w[1] < w[0]));
    // And the result is the deterministic library-level solver result.
    let g = ff_graph::io::read_metis(instance_data().as_bytes()).unwrap();
    let direct = ff_engine::Solver::on(&g)
        .config(ff_core::FusionFissionConfig {
            objective: ff_partition::Objective::MCut,
            stop: ff_metaheur::StopCondition::steps(4_000),
            ..ff_core::FusionFissionConfig::standard(4)
        })
        .islands(3)
        .threads(1)
        .migration_interval(512)
        .seed(17)
        .run()
        .unwrap();
    assert_eq!(done.value, direct.best_value);
    assert_eq!(
        done.assignment.as_deref().unwrap(),
        direct.best.assignment()
    );
    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// Admission control: a saturated server answers overflow submits with a
/// typed `rejected` event (not an error, not unbounded queueing), and
/// capacity freed by a finished job is re-admittable.
#[test]
fn admission_control_rejects_overflow_and_recovers() {
    let handle = ff_service::Server::bind_with(
        "127.0.0.1:0",
        ff_service::ServerConfig {
            workers: 1,
            max_jobs: 1,
            ..Default::default()
        },
    )
    .unwrap()
    .spawn()
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .load(
            "geo60",
            GraphSource::Data(instance_data()),
            GraphFormat::Metis,
        )
        .unwrap();
    let long_job = JobRequest {
        steps: Some(u64::MAX / 2),
        chunk: 128,
        ..JobRequest::new("geo60", 4)
    };
    let first = match client.try_submit(&long_job).unwrap() {
        ff_service::SubmitOutcome::Accepted(id) => id,
        other => panic!("first job must be admitted, got {other:?}"),
    };
    // The server is now at max_jobs = 1: overflow is rejected with a hint.
    match client.try_submit(&long_job).unwrap() {
        ff_service::SubmitOutcome::Rejected {
            reason,
            retry_after_ms,
        } => {
            assert!(reason.contains("server at capacity"), "reason: {reason}");
            assert!(retry_after_ms >= 50, "hint too eager: {retry_after_ms}");
        }
        other => panic!("expected rejection, got {other:?}"),
    }
    // And `submit` (the strict variant) maps the rejection to WouldBlock.
    let err = client.submit(&long_job).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
    match client.stats().unwrap() {
        Event::Stats(st) => {
            assert_eq!(st.jobs_rejected, 2);
            assert_eq!(st.jobs_running, 1);
            assert_eq!(st.max_jobs, 1);
            // Rejected submits must not touch the cache: the only hit is
            // the admitted job's pin (the initial load was a miss).
            assert_eq!(st.cache_hits, 1, "rejections must not count hits");
        }
        other => panic!("expected stats, got {other:?}"),
    }
    // Freeing the slot makes the server admit again.
    assert!(client.cancel(first).unwrap());
    let (_, done) = client.wait_done(first).unwrap();
    assert_eq!(done.status, JobStatus::Cancelled);
    let second = client
        .submit(&JobRequest {
            steps: Some(500),
            ..JobRequest::new("geo60", 4)
        })
        .unwrap();
    let (_, done) = client.wait_done(second).unwrap();
    assert_eq!(done.status, JobStatus::Completed);
    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// Per-connection admission is independent of server-wide capacity:
/// a second connection can still submit when the first is at its bound.
#[test]
fn per_connection_bound_is_per_connection() {
    let handle = ff_service::Server::bind_with(
        "127.0.0.1:0",
        ff_service::ServerConfig {
            workers: 2,
            max_jobs_per_conn: 1,
            ..Default::default()
        },
    )
    .unwrap()
    .spawn()
    .unwrap();
    let mut a = Client::connect(handle.addr()).unwrap();
    a.load(
        "geo60",
        GraphSource::Data(instance_data()),
        GraphFormat::Metis,
    )
    .unwrap();
    let long_job = JobRequest {
        steps: Some(u64::MAX / 2),
        chunk: 128,
        ..JobRequest::new("geo60", 4)
    };
    let running = a.submit(&long_job).unwrap();
    match a.try_submit(&long_job).unwrap() {
        ff_service::SubmitOutcome::Rejected { reason, .. } => {
            assert!(reason.contains("connection at capacity"), "got: {reason}");
        }
        other => panic!("expected per-conn rejection, got {other:?}"),
    }
    let mut b = Client::connect(handle.addr()).unwrap();
    let id = b
        .submit(&JobRequest {
            steps: Some(500),
            ..JobRequest::new("geo60", 4)
        })
        .unwrap();
    let (_, done) = b.wait_done(id).unwrap();
    assert_eq!(done.status, JobStatus::Completed);
    assert!(a.cancel(running).unwrap());
    a.wait_done(running).unwrap();
    a.shutdown().unwrap();
    handle.join().unwrap();
}

/// A byte-budgeted server evicts the LRU instance; submitting against an
/// evicted key is the ordinary unknown-instance error.
#[test]
fn cache_budget_evicts_lru_instance_end_to_end() {
    let data = instance_data();
    let g = ff_graph::io::read_metis(data.as_bytes()).unwrap();
    let budget = g.csr_bytes() + g.csr_bytes() / 2; // room for one, not two
    let handle = ff_service::Server::bind_with(
        "127.0.0.1:0",
        ff_service::ServerConfig {
            workers: 1,
            cache_bytes: budget,
            ..Default::default()
        },
    )
    .unwrap()
    .spawn()
    .unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .load("first", GraphSource::Data(data.clone()), GraphFormat::Metis)
        .unwrap();
    client
        .load("second", GraphSource::Data(data), GraphFormat::Metis)
        .unwrap();
    match client.stats().unwrap() {
        Event::Stats(st) => {
            assert_eq!(st.instances, 1, "budget holds one instance");
            assert_eq!(st.cache_evictions, 1);
            assert!(st.cache_bytes <= st.cache_budget_bytes);
        }
        other => panic!("expected stats, got {other:?}"),
    }
    client
        .send(&Request::Submit(JobRequest {
            steps: Some(10),
            ..JobRequest::new("first", 2)
        }))
        .unwrap();
    match client.next_event().unwrap() {
        Event::Error { message, .. } => {
            assert!(message.contains("unknown instance"), "got: {message}")
        }
        other => panic!("expected error, got {other:?}"),
    }
    // The resident instance still serves jobs.
    let id = client
        .submit(&JobRequest {
            steps: Some(500),
            ..JobRequest::new("second", 4)
        })
        .unwrap();
    let (_, done) = client.wait_done(id).unwrap();
    assert_eq!(done.status, JobStatus::Completed);
    client.shutdown().unwrap();
    handle.join().unwrap();
}

/// Regression: a peer that greets and then goes silent forever (half-open
/// TCP, a hung server) used to hang `wait_done` indefinitely. With a read
/// timeout set, the client must surface `TimedOut` instead of blocking.
#[test]
fn wait_done_times_out_when_the_peer_stalls_mid_stream() {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let stalled = std::thread::spawn(move || {
        use std::io::Write;
        let (mut sock, _) = listener.accept().unwrap();
        let hello = Event::Hello {
            proto: ff_service::PROTOCOL_VERSION,
            workers: 1,
        };
        writeln!(sock, "{}", hello.to_value()).unwrap();
        sock.flush().unwrap();
        // Hold the socket open without ever writing again.
        sock
    });
    let mut client = Client::connect(addr).unwrap();
    let _held_open = stalled.join().unwrap();
    client
        .set_read_timeout(Some(Duration::from_millis(200)))
        .unwrap();
    let start = Instant::now();
    let err = client.wait_done(1).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::TimedOut, "got: {err}");
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "timed out far too slowly: {:?}",
        start.elapsed()
    );
}

//! Stress test: ~32 concurrent clients hammering one server over a
//! small `--max-jobs` bound. Every submit must either be admitted and
//! finish with the pinned deterministic partition, or be refused with a
//! typed `rejected` event — no hangs, no panics, no stuck server thread.

use ff_service::{
    Client, GraphFormat, GraphSource, JobRequest, JobStatus, Server, ServerConfig, SubmitOutcome,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const CLIENTS: usize = 32;
const MAX_JOBS: usize = 6;
const STEPS: u64 = 2_000;
const SEED: u64 = 41;

fn instance_data() -> String {
    let g = ff_graph::generators::random_geometric(48, 0.28, 9);
    let mut text = Vec::new();
    ff_graph::io::write_metis(&g, &mut text).unwrap();
    String::from_utf8(text).unwrap()
}

/// The pinned result every admitted job must reproduce: the same
/// step-budgeted request driven directly through the engine.
fn expected_assignment(data: &str) -> (f64, Vec<u32>) {
    let g = ff_graph::io::read_metis(data.as_bytes()).unwrap();
    let cfg = ff_core::FusionFissionConfig {
        objective: ff_partition::Objective::MCut,
        stop: ff_metaheur::StopCondition::steps(STEPS),
        ..ff_core::FusionFissionConfig::standard(3)
    };
    let res = ff_core::FusionFission::new(&g, cfg, SEED).run();
    (res.best_value, res.best.assignment().to_vec())
}

#[test]
fn thirty_two_clients_over_a_tiny_admission_bound() {
    let handle = Server::bind_with(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            max_jobs: MAX_JOBS,
            ..Default::default()
        },
    )
    .unwrap()
    .spawn()
    .unwrap();
    let addr = handle.addr();
    let data = instance_data();
    let (expected_value, expected) = expected_assignment(&data);

    let completed = AtomicU64::new(0);
    let rejected = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            let data = data.clone();
            let (completed, rejected) = (&completed, &rejected);
            let expected = &expected;
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                client
                    .load("geo48", GraphSource::Data(data), GraphFormat::Metis)
                    .unwrap();
                let job = JobRequest {
                    steps: Some(STEPS),
                    seed: SEED,
                    chunk: 256,
                    ..JobRequest::new("geo48", 3)
                };
                // Every client keeps submitting until admitted once, so
                // the test exercises both outcomes under real contention
                // AND proves rejection is retryable.
                loop {
                    match client.try_submit(&job).unwrap() {
                        SubmitOutcome::Accepted(id) => {
                            let (_, done) = client.wait_done(id).unwrap();
                            assert_eq!(done.status, JobStatus::Completed);
                            assert_eq!(done.steps, STEPS);
                            assert_eq!(done.value, expected_value);
                            assert_eq!(
                                done.assignment.as_deref(),
                                Some(expected.as_slice()),
                                "admitted job must reproduce the pinned partition"
                            );
                            completed.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                        SubmitOutcome::Rejected { retry_after_ms, .. } => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                            // Back off (bounded: the hint is ≤ 10 s by
                            // construction, and jobs are short).
                            std::thread::sleep(Duration::from_millis(retry_after_ms.min(500)));
                        }
                    }
                }
            });
        }
    });

    let completed = completed.load(Ordering::Relaxed);
    let rejected = rejected.load(Ordering::Relaxed);
    assert_eq!(completed as usize, CLIENTS, "every client eventually ran");

    // The server is intact after the storm: stats are coherent and the
    // in-flight count drained to zero.
    let mut admin = Client::connect(addr).unwrap();
    match admin.stats().unwrap() {
        ff_service::Event::Stats(st) => {
            assert_eq!(st.jobs_done, CLIENTS as u64);
            assert_eq!(st.jobs_submitted, CLIENTS as u64);
            assert_eq!(st.jobs_rejected, rejected);
            assert_eq!(st.jobs_running, 0);
            assert_eq!(st.cache_loads, 1, "one load served all {CLIENTS} clients");
            assert!(st.jobs_running as usize <= MAX_JOBS);
        }
        other => panic!("expected stats, got {other:?}"),
    }

    // Clean shutdown: the serve loop thread joins (no leaked listener).
    admin.shutdown().unwrap();
    handle.join().unwrap();

    // A fresh bind on the same port must succeed — the socket was
    // actually released (the no-leak half of the assertion).
    let rebind = std::net::TcpListener::bind(addr);
    assert!(rebind.is_ok(), "port not released: {rebind:?}");
}

//! Observability is observation-only: enabling the metrics registry and
//! structured logging at any layer — engine, NDJSON server, HTTP
//! gateway, distributed coordinator — must not change a single output
//! byte. Each test here runs the pinned golden job (3×3 grid, k = 2,
//! mcut, 20 000 steps, seed 7 → 0.964286) with instrumentation on and
//! off and compares the bytes, then checks the instruments actually
//! moved.

use std::io::Write;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use ff_engine::{MigrationPolicyId, Solver};
use ff_graph::io::read_metis;
use ff_obs::{parse_exposition, LogFormat, Logger, Registry, Sample, EXPOSITION_CONTENT_TYPE};
use ff_partition::Objective;
use ff_service::dist::{solve_distributed, DistOpts, DistSpec, WorkerSet};
use ff_service::{Client, GraphFormat, GraphSource, JobRequest, JobStatus, Server, ServerConfig};

const GRID: &str = "9 12\n2 4\n1 3 5\n2 6\n1 5 7\n2 4 6 8\n3 5 9\n4 8\n5 7 9\n6 8\n";
const GOLDEN: &str = "0.964286";

/// Finds one exposition sample by name + label subset.
fn sample<'a>(samples: &'a [Sample], name: &str, labels: &[(&str, &str)]) -> &'a Sample {
    samples
        .iter()
        .find(|s| {
            s.name == name
                && labels
                    .iter()
                    .all(|&(k, v)| s.labels.iter().any(|(lk, lv)| lk == k && lv == v))
        })
        .unwrap_or_else(|| panic!("no sample `{name}` with labels {labels:?}"))
}

// ---------------------------------------------------------------- engine

#[test]
fn solver_observation_changes_no_output_byte() {
    let g = read_metis(GRID.as_bytes()).unwrap();
    let plain = Solver::on(&g).k(2).steps(20_000).seed(7).run().unwrap();
    let registry = Registry::new();
    let observed = Solver::on(&g)
        .k(2)
        .steps(20_000)
        .seed(7)
        .observe(registry.clone())
        .run()
        .unwrap();
    assert_eq!(observed.best.assignment(), plain.best.assignment());
    assert_eq!(observed.best_value.to_bits(), plain.best_value.to_bits());
    assert_eq!(format!("{:.6}", observed.best_value), GOLDEN);
    // The registry did record the run.
    let samples = parse_exposition(&registry.render()).unwrap();
    assert!(sample(&samples, "ff_engine_epochs_total", &[]).value >= 1.0);
}

#[test]
fn solver_observation_is_inert_across_migration_policies() {
    let g = read_metis(GRID.as_bytes()).unwrap();
    for policy in [
        MigrationPolicyId::ReplaceIfBetter,
        MigrationPolicyId::Combine,
        MigrationPolicyId::Adaptive,
    ] {
        let run = |registry: Option<Registry>| {
            let mut solver = Solver::on(&g)
                .k(2)
                .islands(4)
                .migration(policy.build())
                .steps(6_000)
                .seed(7);
            if let Some(registry) = registry {
                solver = solver.observe(registry);
            }
            solver.run().unwrap()
        };
        let registry = Registry::new();
        let (plain, observed) = (run(None), run(Some(registry.clone())));
        assert_eq!(
            observed.best.assignment(),
            plain.best.assignment(),
            "{policy:?} diverged under observation"
        );
        assert_eq!(observed.migrations_adopted, plain.migrations_adopted);
        // Offers were counted under this policy's label; every planned
        // receiver pair (≥ 1 per offer) was adopted or rejected, and
        // adoptions agree with the engine's own counter.
        let samples = parse_exposition(&registry.render()).unwrap();
        let label = [("policy", policy.name())];
        let offers = sample(&samples, "ff_engine_migration_offers_total", &label).value;
        let accepts = sample(&samples, "ff_engine_migration_accepts_total", &label).value;
        let rejects = sample(&samples, "ff_engine_migration_rejects_total", &label).value;
        assert!(accepts + rejects >= offers, "{policy:?}: pairs < offers");
        assert_eq!(accepts as u64, observed.migrations_adopted);
        if observed.migrations_adopted > 0 {
            assert!(offers >= 1.0, "{policy:?}: adoptions without offers");
        }
    }
}

// --------------------------------------------------------- NDJSON server

fn golden_job() -> JobRequest {
    JobRequest {
        steps: Some(20_000),
        seed: 7,
        ..JobRequest::new("grid", 2)
    }
}

fn run_golden(handle: &ff_service::ServerHandle) -> ff_service::DoneInfo {
    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .load("grid", GraphSource::Data(GRID.into()), GraphFormat::Metis)
        .unwrap();
    let id = client.submit(&golden_job()).unwrap();
    let (_, done) = client.wait_done(id).unwrap();
    done
}

#[test]
fn server_json_logging_and_metrics_change_no_output_byte() {
    let plain_handle = Server::bind("127.0.0.1:0", 2).unwrap().spawn().unwrap();
    let logged_handle = Server::bind_with(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            log_format: Some(LogFormat::Json),
            ..ServerConfig::default()
        },
    )
    .unwrap()
    .spawn()
    .unwrap();

    let plain = run_golden(&plain_handle);
    let logged = run_golden(&logged_handle);
    assert_eq!(plain.status, JobStatus::Completed);
    assert_eq!(format!("{:.6}", plain.value), GOLDEN);
    assert_eq!(logged.assignment, plain.assignment);
    assert_eq!(logged.value.to_bits(), plain.value.to_bits());
    assert_eq!(logged.steps, plain.steps);

    // The instrumented server's stats snapshot saw the job end to end.
    let mut client = Client::connect(logged_handle.addr()).unwrap();
    let ff_service::Event::Stats(st) = client.stats().unwrap() else {
        panic!("stats() returns the stats event");
    };
    assert_eq!(st.jobs_submitted, 1);
    assert_eq!(st.jobs_done, 1);
    assert_eq!(st.jobs_cancelled, 0);
    assert_eq!(st.cache_loads, 1);
    assert_eq!(st.job_duration_hist.iter().sum::<u64>(), 1);
    assert_eq!(st.permit_wait_bucket_ms, ff_service::WAIT_BUCKET_MS);
    assert_eq!(st.job_duration_bucket_ms, ff_service::DURATION_BUCKET_MS);

    client.shutdown().unwrap();
    logged_handle.join().unwrap();
    Client::connect(plain_handle.addr())
        .unwrap()
        .shutdown()
        .unwrap();
    plain_handle.join().unwrap();
}

// ----------------------------------------------------------- HTTP gateway

/// One-shot HTTP exchange, returning `(status, head, body)`.
fn http(addr: std::net::SocketAddr, method: &str, path: &str) -> (u16, String, String) {
    use std::io::Read;
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: 0\r\n\r\n"
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").expect("response has a head");
    let status: u16 = head.split_whitespace().nth(1).unwrap().parse().unwrap();
    (status, head.to_string(), body.to_string())
}

#[test]
fn http_metrics_scrape_is_valid_exposition_covering_every_layer() {
    let handle = Server::bind_with(
        "127.0.0.1:0",
        ServerConfig {
            workers: 2,
            http: Some("127.0.0.1:0".into()),
            log_format: Some(LogFormat::Json),
            ..ServerConfig::default()
        },
    )
    .unwrap()
    .spawn()
    .unwrap();
    let http_addr = handle.http_addr().unwrap();

    let done = run_golden(&handle);
    assert_eq!(format!("{:.6}", done.value), GOLDEN);

    let (status, head, page) = http(http_addr, "GET", "/metrics");
    assert_eq!(status, 200);
    assert!(
        head.contains(EXPOSITION_CONTENT_TYPE),
        "missing exposition content type in {head:?}"
    );
    let samples = parse_exposition(&page).expect("page parses as Prometheus text");
    // Service layer.
    assert_eq!(
        sample(
            &samples,
            "ff_jobs_completed_total",
            &[("status", "completed")]
        )
        .value,
        1.0
    );
    assert_eq!(sample(&samples, "ff_jobs_submitted_total", &[]).value, 1.0);
    assert_eq!(sample(&samples, "ff_cache_loads_total", &[]).value, 1.0);
    assert_eq!(sample(&samples, "ff_job_duration_ms_count", &[]).value, 1.0);
    assert!(
        sample(
            &samples,
            "ff_connections_opened_total",
            &[("proto", "ndjson")]
        )
        .value
            >= 1.0
    );
    // Engine layer, wired through the job driver's `Solver::observe`.
    assert!(sample(&samples, "ff_engine_epochs_total", &[]).value >= 1.0);
    assert!(sample(&samples, "ff_engine_epoch_ms_count", &[]).value >= 1.0);
    // Distributed-coordinator families are pre-registered at zero, so
    // dashboards see the full catalog before the first fault.
    assert_eq!(
        sample(&samples, "ff_dist_wire_failures_total", &[("kind", "dead")]).value,
        0.0
    );
    assert_eq!(sample(&samples, "ff_dist_respawns_total", &[]).value, 0.0);

    // A rerun of the same job leaves every counter monotone.
    let rerun = run_golden(&handle);
    assert_eq!(
        rerun.assignment, done.assignment,
        "rerun must be deterministic"
    );
    let (_, _, page2) = http(http_addr, "GET", "/metrics");
    let after = parse_exposition(&page2).unwrap();
    for s in samples.iter().filter(|s| s.name.ends_with("_total")) {
        let labels: Vec<(&str, &str)> = s
            .labels
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_str()))
            .collect();
        let now = sample(&after, &s.name, &labels).value;
        assert!(
            now >= s.value,
            "{} went backwards: {} -> {now}",
            s.name,
            s.value
        );
    }
    assert_eq!(
        sample(
            &after,
            "ff_jobs_completed_total",
            &[("status", "completed")]
        )
        .value,
        2.0
    );
    assert!(
        sample(&after, "ff_cache_hits_total", &[]).value
            > sample(&samples, "ff_cache_hits_total", &[]).value,
        "rerun hits the instance cache"
    );

    // The scrape endpoint rejects non-GET like the other routes.
    let (status, _, _) = http(http_addr, "POST", "/metrics");
    assert_eq!(status, 405);

    Client::connect(handle.addr()).unwrap().shutdown().unwrap();
    handle.join().unwrap();
}

// ------------------------------------------------- distributed coordinator

/// A `Write` sink tests can read back — captures the coordinator's
/// structured log.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

#[test]
fn distributed_observation_changes_no_output_byte() {
    let g = read_metis(GRID.as_bytes()).unwrap();
    let spec = DistSpec {
        instance: "grid".into(),
        source: GraphSource::Data(GRID.into()),
        format: GraphFormat::Metis,
        k: 2,
        steps: 20_000,
        seeds: ff_engine::derive_seeds(7, 4),
        objectives: vec![Objective::MCut; 4],
        interval: ff_service::DEFAULT_CHUNK,
        migration: MigrationPolicyId::ReplaceIfBetter,
        pareto: false,
    };
    let workers = WorkerSet::Spawn {
        cmd: vec![env!("CARGO_BIN_EXE_ffworker").to_string()],
        count: 2,
    };
    let run =
        |opts: &DistOpts| solve_distributed(&g, &spec, &workers, opts, &mut |_, _| {}).unwrap();

    let plain = run(&DistOpts {
        reply_timeout: Duration::from_secs(120),
        ..DistOpts::default()
    });
    let registry = Registry::new();
    let buf = SharedBuf::default();
    let observed = run(&DistOpts {
        reply_timeout: Duration::from_secs(120),
        obs: Some(registry.clone()),
        logger: Logger::to(LogFormat::Json, Box::new(buf.clone())),
        ..DistOpts::default()
    });

    assert_eq!(observed.best.assignment(), plain.best.assignment());
    assert_eq!(observed.best_value.to_bits(), plain.best_value.to_bits());
    assert_eq!(observed.steps, plain.steps);
    assert_eq!(observed.migrations_adopted, plain.migrations_adopted);
    assert_eq!(format!("{:.6}", observed.best_value), GOLDEN);

    // A clean run: per-worker epoch gauges advanced in lockstep, no
    // faults, no respawns.
    let samples = parse_exposition(&registry.render()).unwrap();
    let lag0 = sample(&samples, "ff_dist_worker_epoch", &[("worker", "0")]).value;
    let lag1 = sample(&samples, "ff_dist_worker_epoch", &[("worker", "1")]).value;
    assert!(lag0 >= 1.0);
    assert_eq!(lag0, lag1, "lockstep workers must share an epoch");
    for kind in ["dead", "timeout", "corrupt"] {
        assert_eq!(
            sample(&samples, "ff_dist_wire_failures_total", &[("kind", kind)]).value,
            0.0
        );
    }
    assert_eq!(sample(&samples, "ff_dist_respawns_total", &[]).value, 0.0);

    // Every captured log line is one valid JSON object tagged `epoch`.
    let raw = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
    assert!(!raw.is_empty(), "json logger captured no spans");
    for line in raw.lines() {
        let v = serde_json::from_str(line).unwrap_or_else(|e| panic!("bad log line {line:?}: {e}"));
        assert_eq!(v.get("event").and_then(|e| e.as_str()), Some("epoch"));
        assert!(v.get("ts_ms").and_then(|t| t.as_u64()).is_some());
        assert!(v.get("workers").and_then(|w| w.as_u64()).is_some());
    }
}

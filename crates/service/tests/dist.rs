//! Distributed-islands determinism at the library layer: the
//! coordinator driving real worker *processes* must produce the same
//! bytes as the in-process [`Solver`] — same seeds, same epoch
//! schedule, any worker layout.

use std::time::Duration;

use ff_engine::{Combine, MigrationPolicyId, ParetoFront, Solver};
use ff_graph::io::read_metis;
use ff_partition::Objective;
use ff_service::dist::{solve_distributed, DistOpts, DistSpec, WorkerSet};
use ff_service::{GraphFormat, GraphSource};

const GRID: &str = "9 12\n2 4\n1 3 5\n2 6\n1 5 7\n2 4 6 8\n3 5 9\n4 8\n5 7 9\n6 8\n";

fn worker_cmd() -> Vec<String> {
    vec![env!("CARGO_BIN_EXE_ffworker").to_string()]
}

fn spec(islands: usize, seed: u64, migration: MigrationPolicyId) -> DistSpec {
    DistSpec {
        instance: "grid".into(),
        source: GraphSource::Data(GRID.into()),
        format: GraphFormat::Metis,
        k: 2,
        steps: 6_000,
        seeds: ff_engine::derive_seeds(seed, islands),
        objectives: vec![Objective::MCut; islands],
        interval: 1024,
        migration,
        pareto: false,
    }
}

fn run_dist(spec: &DistSpec, workers: usize) -> ff_engine::EnsembleResult {
    let g = read_metis(GRID.as_bytes()).unwrap();
    solve_distributed(
        &g,
        spec,
        &WorkerSet::Spawn {
            cmd: worker_cmd(),
            count: workers,
        },
        &DistOpts {
            reply_timeout: Duration::from_secs(120),
            ..DistOpts::default()
        },
        &mut |_, _| {},
    )
    .unwrap()
}

#[test]
fn distributed_replace_matches_in_process_for_any_worker_count() {
    let g = read_metis(GRID.as_bytes()).unwrap();
    let spec = spec(4, 7, MigrationPolicyId::ReplaceIfBetter);
    let local = Solver::on(&g)
        .k(2)
        .islands(4)
        .steps(6_000)
        .seed(7)
        .run()
        .unwrap();
    for workers in [1, 2, 4] {
        let dist = run_dist(&spec, workers);
        assert_eq!(
            dist.best.assignment(),
            local.best.assignment(),
            "{workers} workers diverged from in-process"
        );
        assert_eq!(dist.best_value, local.best_value);
        assert_eq!(dist.best_island, local.best_island);
        assert_eq!(dist.steps, local.steps);
        assert_eq!(dist.migrations_adopted, local.migrations_adopted);
        assert_eq!(dist.best_value_per_k, local.best_value_per_k);
        for (a, b) in dist.islands.iter().zip(&local.islands) {
            assert_eq!(a.best.assignment(), b.best.assignment());
            assert_eq!(a.best_energy, b.best_energy);
            assert_eq!(a.steps, b.steps);
        }
    }
}

#[test]
fn distributed_combine_crossover_matches_in_process() {
    let g = read_metis(GRID.as_bytes()).unwrap();
    let local = Solver::on(&g)
        .k(2)
        .islands(3)
        .migration(Combine)
        .steps(6_000)
        .seed(11)
        .run()
        .unwrap();
    let mut spec = spec(3, 11, MigrationPolicyId::Combine);
    spec.seeds = ff_engine::derive_seeds(11, 3);
    let dist = run_dist(&spec, 2);
    assert_eq!(dist.best.assignment(), local.best.assignment());
    assert_eq!(dist.best_value, local.best_value);
    assert_eq!(dist.migrations_adopted, local.migrations_adopted);
}

#[test]
fn distributed_pareto_front_matches_in_process() {
    let g = read_metis(GRID.as_bytes()).unwrap();
    let local = Solver::on(&g)
        .k(2)
        .islands(2)
        .objectives([Objective::Cut, Objective::MCut])
        .reduction(ParetoFront)
        .steps(6_000)
        .seed(5)
        .run()
        .unwrap();
    let mut spec = spec(2, 5, MigrationPolicyId::ReplaceIfBetter);
    spec.objectives = vec![Objective::Cut, Objective::MCut];
    spec.pareto = true;
    let dist = run_dist(&spec, 2);
    let (a, b) = (dist.pareto.unwrap(), local.pareto.unwrap());
    assert_eq!(a.objectives, b.objectives);
    assert_eq!(a.points.len(), b.points.len());
    for (pa, pb) in a.points.iter().zip(&b.points) {
        assert_eq!(pa.island, pb.island);
        assert_eq!(pa.values, pb.values);
        assert_eq!(pa.partition.assignment(), pb.partition.assignment());
    }
    assert_eq!(dist.best.assignment(), local.best.assignment());
}

#[test]
fn improvement_stream_reports_each_island_once_in_order() {
    let spec = spec(2, 7, MigrationPolicyId::ReplaceIfBetter);
    let g = read_metis(GRID.as_bytes()).unwrap();
    let mut seen: Vec<(usize, u64, f64)> = Vec::new();
    solve_distributed(
        &g,
        &spec,
        &WorkerSet::Spawn {
            cmd: worker_cmd(),
            count: 2,
        },
        &DistOpts {
            reply_timeout: Duration::from_secs(120),
            ..DistOpts::default()
        },
        &mut |island, news| seen.push((island, news.step, news.value)),
    )
    .unwrap();
    assert!(!seen.is_empty(), "improvements should stream");
    // Per island, values are strictly improving and steps increase.
    for island in 0..2 {
        let mine: Vec<_> = seen.iter().filter(|(i, _, _)| *i == island).collect();
        for pair in mine.windows(2) {
            assert!(pair[1].1 > pair[0].1, "steps must increase");
            assert!(pair[1].2 < pair[0].2, "values must improve");
        }
    }
}

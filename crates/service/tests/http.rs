//! HTTP/1.1 gateway end-to-end tests: the full verb surface, the
//! NDJSON-vs-HTTP determinism contract, admission control as `429`, and
//! malformed-request fuzzing (never a panic, never a hang).

use ff_service::{
    Client, Event, GraphFormat, GraphSource, JobRequest, JobStatus, Server, ServerConfig,
};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

fn instance_data() -> String {
    let g = ff_graph::generators::random_geometric(60, 0.25, 3);
    let mut text = Vec::new();
    ff_graph::io::write_metis(&g, &mut text).unwrap();
    String::from_utf8(text).unwrap()
}

fn start_http_server(config: ServerConfig) -> ff_service::ServerHandle {
    Server::bind_with(
        "127.0.0.1:0",
        ServerConfig {
            http: Some("127.0.0.1:0".into()),
            ..config
        },
    )
    .unwrap()
    .spawn()
    .unwrap()
}

/// One-shot HTTP exchange (`Connection: close`), returning
/// `(status code, head, body)`.
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let (head, body) = raw.split_once("\r\n\r\n").expect("response has a head");
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line in {head:?}"));
    (status, head.to_string(), body.to_string())
}

/// Decodes a chunked body into its payload bytes.
fn decode_chunked(body: &str) -> String {
    let mut out = String::new();
    let mut rest = body;
    while let Some((size_line, tail)) = rest.split_once("\r\n") {
        let size = usize::from_str_radix(size_line.trim(), 16).unwrap_or(0);
        if size == 0 {
            break;
        }
        out.push_str(&tail[..size]);
        rest = tail[size..].strip_prefix("\r\n").unwrap_or(&tail[size..]);
    }
    out
}

/// Streams `GET /jobs/:id/events` to completion and parses the NDJSON
/// payload into typed events.
fn stream_job_events(addr: SocketAddr, id: u64) -> Vec<Event> {
    let (status, head, body) = http(addr, "GET", &format!("/jobs/{id}/events"), "");
    assert_eq!(status, 200, "head: {head}");
    assert!(head.contains("Transfer-Encoding: chunked"), "head: {head}");
    decode_chunked(&body)
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| Event::parse(l).unwrap())
        .collect()
}

fn submit_http(addr: SocketAddr, body: &str) -> (u16, Event) {
    let (status, _, reply) = http(addr, "POST", "/jobs", body);
    (status, Event::parse(reply.trim()).unwrap())
}

#[test]
fn http_verbs_cover_the_job_lifecycle() {
    let handle = start_http_server(ServerConfig::with_workers(2));
    let http_addr = handle.http_addr().expect("gateway bound");

    // PUT an instance (inline METIS body).
    let (status, _, reply) = http(http_addr, "PUT", "/instances/geo60", &instance_data());
    assert_eq!(status, 200, "reply: {reply}");
    match Event::parse(reply.trim()).unwrap() {
        Event::Loaded {
            instance, vertices, ..
        } => {
            assert_eq!(instance, "geo60");
            assert_eq!(vertices, 60);
        }
        other => panic!("expected loaded, got {other:?}"),
    }
    // Re-PUT of identical content is a cache hit.
    let (_, _, reply) = http(http_addr, "PUT", "/instances/geo60", &instance_data());
    assert!(reply.contains("\"cached\":true"), "reply: {reply}");

    // POST a step-budgeted job.
    let (status, accepted) = submit_http(
        http_addr,
        r#"{"instance":"geo60","k":4,"seed":11,"steps":4000,"chunk":256}"#,
    );
    assert_eq!(status, 202);
    let job = match accepted {
        Event::Accepted { job, .. } => job,
        other => panic!("expected accepted, got {other:?}"),
    };

    // Stream its events: ≥1 improvement, then done with the assignment.
    let events = stream_job_events(http_addr, job);
    let improvements = events
        .iter()
        .filter(|e| matches!(e, Event::Improvement(_)))
        .count();
    assert!(improvements >= 1, "events: {events:?}");
    let done = match events.last() {
        Some(Event::Done(d)) => d.clone(),
        other => panic!("stream must end with done, got {other:?}"),
    };
    assert_eq!(done.status, JobStatus::Completed);
    assert_eq!(done.assignment.as_ref().unwrap().len(), 60);

    // The stream replays for a second (late) reader, identically.
    let replay = stream_job_events(http_addr, job);
    assert_eq!(events, replay, "event log must replay byte-identically");

    // GET /stats sees the work.
    let (status, _, reply) = http(http_addr, "GET", "/stats", "");
    assert_eq!(status, 200);
    match Event::parse(reply.trim()).unwrap() {
        Event::Stats(st) => {
            assert_eq!(st.jobs_done, 1);
            assert_eq!(st.instances, 1);
            assert!(st.cache_hits >= 1);
        }
        other => panic!("expected stats, got {other:?}"),
    }

    // DELETE cancels: start an effectively unbounded job, cancel it, and
    // its stream still ends with a best-so-far done.
    let (_, accepted) = submit_http(
        http_addr,
        r#"{"instance":"geo60","k":4,"steps":100000000000,"chunk":128}"#,
    );
    let long_job = match accepted {
        Event::Accepted { job, .. } => job,
        other => panic!("expected accepted, got {other:?}"),
    };
    std::thread::sleep(Duration::from_millis(150)); // let it improve once
    let (status, _, reply) = http(http_addr, "DELETE", &format!("/jobs/{long_job}"), "");
    assert_eq!(status, 200);
    assert!(reply.contains("\"known\":true"), "reply: {reply}");
    let events = stream_job_events(http_addr, long_job);
    match events.last() {
        Some(Event::Done(d)) => {
            assert_eq!(d.status, JobStatus::Cancelled);
            assert!(d.value.is_finite(), "best-so-far returned");
        }
        other => panic!("expected done, got {other:?}"),
    }

    // Unknown job id: typed 404.
    let (status, _, _) = http(http_addr, "GET", "/jobs/99999/events", "");
    assert_eq!(status, 404);

    // `Expect: 100-continue` (what `curl -T` sends for real uploads)
    // gets the interim response so the body is transmitted immediately.
    {
        use std::io::{Read, Write};
        let body = instance_data();
        let mut stream = TcpStream::connect(http_addr).unwrap();
        write!(
            stream,
            "PUT /instances/geo60b HTTP/1.1\r\nHost: t\r\nExpect: 100-continue\r\n\
             Connection: close\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 100 Continue"), "raw: {raw}");
        assert!(raw.contains("HTTP/1.1 200"), "raw: {raw}");
        assert!(raw.contains("\"event\":\"loaded\""), "raw: {raw}");
    }

    // Shut down over NDJSON; the HTTP accept loop must join too.
    Client::connect(handle.addr()).unwrap().shutdown().unwrap();
    handle.join().unwrap();
}

/// ISSUE acceptance: the same step-budgeted job, submitted over NDJSON
/// and over HTTP, cold cache and warm cache, under a saturated gate,
/// produces byte-identical partitions.
#[test]
fn ndjson_and_http_partitions_are_byte_identical() {
    let data = instance_data();
    let job_json = r#"{"instance":"geo60","k":4,"seed":3,"steps":4000,"chunk":256}"#;
    let job = JobRequest {
        steps: Some(4_000),
        seed: 3,
        chunk: 256,
        ..JobRequest::new("geo60", 4)
    };

    // Server A: NDJSON first (cold cache), then HTTP (warm cache), both
    // while a filler job keeps the single-slot gate saturated.
    let handle = start_http_server(ServerConfig::with_workers(1));
    let http_addr = handle.http_addr().unwrap();
    let mut ndjson = Client::connect(handle.addr()).unwrap();
    ndjson
        .load("geo60", GraphSource::Data(data.clone()), GraphFormat::Metis)
        .unwrap();
    let filler = ndjson
        .submit(&JobRequest {
            steps: Some(u64::MAX / 2),
            seed: 99,
            chunk: 128,
            ..JobRequest::new("geo60", 4)
        })
        .unwrap();
    let id = ndjson.submit(&job).unwrap();
    let (_, done_ndjson) = ndjson.wait_done(id).unwrap();
    assert_eq!(done_ndjson.status, JobStatus::Completed);

    let (status, accepted) = submit_http(http_addr, job_json);
    assert_eq!(status, 202);
    let http_job = match accepted {
        Event::Accepted { job, .. } => job,
        other => panic!("expected accepted, got {other:?}"),
    };
    let events = stream_job_events(http_addr, http_job);
    let done_http_warm = match events.last() {
        Some(Event::Done(d)) => d.clone(),
        other => panic!("expected done, got {other:?}"),
    };

    // Server B: HTTP only, cold cache, no contention.
    let handle_b = start_http_server(ServerConfig::with_workers(2));
    let http_b = handle_b.http_addr().unwrap();
    let (status, _, _) = http(http_b, "PUT", "/instances/geo60", &data);
    assert_eq!(status, 200);
    let (_, accepted) = submit_http(http_b, job_json);
    let cold_job = match accepted {
        Event::Accepted { job, .. } => job,
        other => panic!("expected accepted, got {other:?}"),
    };
    let done_http_cold = match stream_job_events(http_b, cold_job).last() {
        Some(Event::Done(d)) => d.clone(),
        other => panic!("expected done, got {other:?}"),
    };

    assert_eq!(
        done_ndjson.assignment, done_http_warm.assignment,
        "NDJSON (cold, saturated) vs HTTP (warm, saturated)"
    );
    assert_eq!(
        done_ndjson.assignment, done_http_cold.assignment,
        "vs HTTP on a fresh server (cold cache)"
    );
    assert_eq!(done_ndjson.value, done_http_warm.value);
    assert_eq!(done_ndjson.value, done_http_cold.value);
    assert_eq!(done_ndjson.steps, done_http_warm.steps);

    assert!(ndjson.cancel(filler).unwrap());
    ndjson.wait_done(filler).unwrap();
    ndjson.shutdown().unwrap();
    handle.join().unwrap();
    Client::connect(handle_b.addr())
        .unwrap()
        .shutdown()
        .unwrap();
    handle_b.join().unwrap();
}

/// Satellite: a multilevel job behaves identically over NDJSON and
/// HTTP, and reruns byte-identically on a fresh server process.
#[test]
fn http_multilevel_job_matches_ndjson_and_reruns_byte_identically() {
    let data = instance_data();
    let job_json = r#"{"instance":"geo60","k":4,"seed":23,"steps":5000,"chunk":256,"islands":2,"multilevel":16}"#;
    let handle = start_http_server(ServerConfig::with_workers(2));
    let http_addr = handle.http_addr().unwrap();

    // NDJSON reference on the same server.
    let mut ndjson = Client::connect(handle.addr()).unwrap();
    ndjson
        .load("geo60", GraphSource::Data(data.clone()), GraphFormat::Metis)
        .unwrap();
    let job = JobRequest {
        steps: Some(5_000),
        seed: 23,
        chunk: 256,
        islands: 2,
        multilevel: Some(16),
        ..JobRequest::new("geo60", 4)
    };
    let id = ndjson.submit(&job).unwrap();
    let (_, done_ndjson) = ndjson.wait_done(id).unwrap();
    assert_eq!(done_ndjson.status, JobStatus::Completed);
    assert_eq!(done_ndjson.assignment.as_ref().unwrap().len(), 60);

    let (status, accepted) = submit_http(http_addr, job_json);
    assert_eq!(status, 202);
    let http_job = match accepted {
        Event::Accepted { job, .. } => job,
        other => panic!("expected accepted, got {other:?}"),
    };
    let done_http = match stream_job_events(http_addr, http_job).last() {
        Some(Event::Done(d)) => d.clone(),
        other => panic!("expected done, got {other:?}"),
    };
    assert_eq!(done_ndjson.assignment, done_http.assignment);
    assert_eq!(done_ndjson.value, done_http.value);
    assert_eq!(done_ndjson.steps, done_http.steps);

    // Fresh server process, cold cache: still byte-identical.
    let handle_b = start_http_server(ServerConfig::with_workers(1));
    let http_b = handle_b.http_addr().unwrap();
    let (status, _, _) = http(http_b, "PUT", "/instances/geo60", &data);
    assert_eq!(status, 200);
    let (_, accepted) = submit_http(http_b, job_json);
    let cold_job = match accepted {
        Event::Accepted { job, .. } => job,
        other => panic!("expected accepted, got {other:?}"),
    };
    let done_cold = match stream_job_events(http_b, cold_job).last() {
        Some(Event::Done(d)) => d.clone(),
        other => panic!("expected done, got {other:?}"),
    };
    assert_eq!(done_ndjson.assignment, done_cold.assignment);
    assert_eq!(done_ndjson.value, done_cold.value);

    Client::connect(handle.addr()).unwrap().shutdown().unwrap();
    handle.join().unwrap();
    Client::connect(handle_b.addr())
        .unwrap()
        .shutdown()
        .unwrap();
    handle_b.join().unwrap();
}

/// ISSUE acceptance: a mixed-objective job's `done` event carries the
/// same deterministic Pareto front over HTTP as over NDJSON, and a
/// typo'd field in the HTTP job body is a named 400, not silently
/// ignored.
#[test]
fn http_pareto_front_matches_ndjson_and_unknown_fields_are_400() {
    let data = instance_data();
    let job_json = r#"{"instance":"geo60","k":4,"seed":7,"steps":3000,"chunk":300,"islands":4,"objectives":["cut","ncut","mcut"]}"#;
    let handle = start_http_server(ServerConfig::with_workers(2));
    let http_addr = handle.http_addr().unwrap();

    // NDJSON reference.
    let mut ndjson = Client::connect(handle.addr()).unwrap();
    ndjson
        .load("geo60", GraphSource::Data(data.clone()), GraphFormat::Metis)
        .unwrap();
    let job = JobRequest {
        steps: Some(3_000),
        seed: 7,
        chunk: 300,
        islands: 4,
        objectives: Some(vec![
            ff_partition::Objective::Cut,
            ff_partition::Objective::NCut,
            ff_partition::Objective::MCut,
        ]),
        ..JobRequest::new("geo60", 4)
    };
    let id = ndjson.submit(&job).unwrap();
    let (_, done_ndjson) = ndjson.wait_done(id).unwrap();
    let front_ndjson = done_ndjson.pareto.expect("ndjson front");

    // Same job over HTTP.
    let (status, accepted) = submit_http(http_addr, job_json);
    assert_eq!(status, 202);
    let http_job = match accepted {
        Event::Accepted { job, .. } => job,
        other => panic!("expected accepted, got {other:?}"),
    };
    let done_http = match stream_job_events(http_addr, http_job).last() {
        Some(Event::Done(d)) => d.clone(),
        other => panic!("expected done, got {other:?}"),
    };
    let front_http = done_http.pareto.expect("http front");
    assert_eq!(front_ndjson, front_http, "fronts must agree bit-for-bit");
    assert!(!front_http.is_empty());
    assert_eq!(done_ndjson.assignment, done_http.assignment);

    // A typo'd field is named in a 400, never silently dropped.
    let typo = r#"{"instance":"geo60","k":4,"steps":100,"objctives":["cut"]}"#;
    let (status, _, reply) = http(http_addr, "POST", "/jobs", typo);
    assert_eq!(status, 400, "reply: {reply}");
    assert!(reply.contains("unknown field"), "reply: {reply}");
    assert!(reply.contains("objctives"), "reply: {reply}");

    Client::connect(handle.addr()).unwrap().shutdown().unwrap();
    handle.join().unwrap();
}

/// Admission control speaks HTTP: overflow is `429 Too Many Requests`
/// with a `Retry-After` header and the typed `rejected` body.
#[test]
fn http_submit_overflow_is_429_with_retry_after() {
    let handle = start_http_server(ServerConfig {
        workers: 1,
        max_jobs: 1,
        ..Default::default()
    });
    let http_addr = handle.http_addr().unwrap();
    let (status, _, _) = http(http_addr, "PUT", "/instances/geo60", &instance_data());
    assert_eq!(status, 200);
    let long = r#"{"instance":"geo60","k":4,"steps":100000000000,"chunk":128}"#;
    let (status, accepted) = submit_http(http_addr, long);
    assert_eq!(status, 202);
    let running = match accepted {
        Event::Accepted { job, .. } => job,
        other => panic!("expected accepted, got {other:?}"),
    };
    let (status, head, reply) = http(http_addr, "POST", "/jobs", long);
    assert_eq!(status, 429, "reply: {reply}");
    assert!(head.contains("Retry-After:"), "head: {head}");
    match Event::parse(reply.trim()).unwrap() {
        Event::Rejected { reason, .. } => {
            assert!(reason.contains("server at capacity"), "reason: {reason}")
        }
        other => panic!("expected rejected, got {other:?}"),
    }
    let (status, _, _) = http(http_addr, "DELETE", &format!("/jobs/{running}"), "");
    assert_eq!(status, 200);
    Client::connect(handle.addr()).unwrap().shutdown().unwrap();
    handle.join().unwrap();
}

/// Malformed request heads: every one gets a typed 4xx/5xx (or a clean
/// close), the server never panics, and it keeps serving afterwards.
#[test]
fn malformed_http_heads_get_typed_errors_never_panics() {
    let handle = start_http_server(ServerConfig::with_workers(1));
    let http_addr = handle.http_addr().unwrap();

    let monsters: Vec<Vec<u8>> = vec![
        b"not an http request at all\r\n\r\n".to_vec(),
        b"GET\r\n\r\n".to_vec(),
        b"GET /stats\r\n\r\n".to_vec(), // HTTP/0.9-style, no version
        b"GET /stats SPDY/3\r\n\r\n".to_vec(),
        b"POST /jobs HTTP/1.1\r\nContent-Length: -5\r\n\r\n".to_vec(),
        b"POST /jobs HTTP/1.1\r\nContent-Length: zebra\r\n\r\n".to_vec(),
        b"POST /jobs HTTP/1.1\r\nContent-Length: 999999999999999999\r\n\r\n".to_vec(),
        b"POST /jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n".to_vec(),
        b"GET /stats HTTP/1.1\r\nno-colon-header\r\n\r\n".to_vec(),
        // Truncated body: promises 50 bytes, sends 3, closes.
        b"POST /jobs HTTP/1.1\r\nContent-Length: 50\r\n\r\n{}}".to_vec(),
        // Oversized header line (past the 8 KiB per-line cap).
        {
            let mut v = b"GET /stats HTTP/1.1\r\nX-Big: ".to_vec();
            v.extend(std::iter::repeat_n(b'x', 10_000));
            v.extend_from_slice(b"\r\n\r\n");
            v
        },
        // Binary garbage.
        (0u8..=255).cycle().take(512).collect(),
    ];
    for (i, monster) in monsters.iter().enumerate() {
        let mut stream = TcpStream::connect(http_addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        stream.write_all(monster).unwrap();
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let mut raw = String::new();
        // A clean close with no bytes is acceptable for unparseable
        // garbage; any response must be a typed 4xx/5xx.
        let _ = stream.read_to_string(&mut raw);
        if let Some(status) = raw
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse::<u16>().ok())
        {
            assert!(
                (400..=599).contains(&status),
                "case {i}: unexpected status {status} in {raw:?}"
            );
        }
    }

    // An HTTP/1.0 request without a Connection header must get a closed
    // connection after the response (1.0 clients read to EOF) — this
    // read_to_string would hang forever if the server kept it alive.
    {
        let mut stream = TcpStream::connect(http_addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        stream
            .write_all(b"GET /stats HTTP/1.0\r\nHost: t\r\n\r\n")
            .unwrap();
        let mut raw = String::new();
        stream.read_to_string(&mut raw).unwrap();
        assert!(raw.starts_with("HTTP/1.1 200"), "raw: {raw}");
        assert!(raw.contains("\"event\":\"stats\""), "raw: {raw}");
    }

    // Bad routes and methods on a healthy connection are typed too.
    let (status, _, _) = http(http_addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    let (status, _, _) = http(http_addr, "PATCH", "/jobs", "");
    assert_eq!(status, 405);
    let (status, _, _) = http(http_addr, "GET", "/jobs/notanumber/events", "");
    assert_eq!(status, 400);
    let (status, _, _) = http(http_addr, "PUT", "/instances/bad", "this is not METIS");
    assert_eq!(status, 400);

    // The server survived all of it.
    let (status, _, reply) = http(http_addr, "GET", "/stats", "");
    assert_eq!(status, 200);
    assert!(matches!(
        Event::parse(reply.trim()).unwrap(),
        Event::Stats(_)
    ));
    Client::connect(handle.addr()).unwrap().shutdown().unwrap();
    handle.join().unwrap();
}

/// Regression: a bodied request with *no* `Content-Length` used to be
/// silently parsed as an empty body (`{}` → "missing instance", a
/// misleading 400). The framing is the problem, not the body: RFC-shaped
/// answers are `411 Length Required` for a missing length and `501` for
/// `Transfer-Encoding` (not implemented) — and the connection keeps
/// serving afterwards.
#[test]
fn bodied_requests_without_length_get_411_not_a_body_parse_error() {
    let handle = start_http_server(ServerConfig::with_workers(1));
    let http_addr = handle.http_addr().unwrap();

    let exchange = |raw: &[u8]| {
        let mut stream = TcpStream::connect(http_addr).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        stream.write_all(raw).unwrap();
        let _ = stream.shutdown(std::net::Shutdown::Write);
        let mut raw = String::new();
        let _ = stream.read_to_string(&mut raw);
        raw
    };

    for raw in [
        &b"POST /jobs HTTP/1.1\r\nHost: t\r\n\r\n{\"instance\":\"g\",\"k\":2,\"steps\":10}"[..],
        &b"PUT /instances/g HTTP/1.1\r\nHost: t\r\n\r\n4 4\n2 3\n1 3\n1 2 4\n3\n"[..],
    ] {
        let reply = exchange(raw);
        assert!(reply.starts_with("HTTP/1.1 411"), "{reply}");
        assert!(reply.contains("Content-Length header"), "{reply}");
    }

    // Chunked uploads are declared unimplemented, not misread.
    let reply =
        exchange(b"POST /jobs HTTP/1.1\r\nHost: t\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n");
    assert!(reply.starts_with("HTTP/1.1 501"), "{reply}");

    // Bodiless methods still need no Content-Length.
    let (status, _, _) = http(http_addr, "GET", "/stats", "");
    assert_eq!(status, 200);
    Client::connect(handle.addr()).unwrap().shutdown().unwrap();
    handle.join().unwrap();
}

//! Regression: a panicking job driver must release its admission slot.
//!
//! Before the RAII guard, a panic between admission and `done` leaked
//! the registry entry and the per-connection count — on a `max_jobs=1`
//! server, one poisoned job bricked admission forever.
//!
//! This test lives in its own integration-test file on purpose: it is
//! the only test in this process, so `set_var` before the server starts
//! cannot race another thread's environment reads.

use ff_service::{Client, GraphFormat, GraphSource, JobRequest, JobStatus, Server, ServerConfig};

const GRID: &str = "9 12\n2 4\n1 3 5\n2 6\n1 5 7\n2 4 6 8\n3 5 9\n4 8\n5 7 9\n6 8\n";

#[test]
fn panicked_job_releases_its_slot_and_the_server_keeps_serving() {
    // Poison exactly the instance named "poison"; see `run_job`.
    std::env::set_var("FFPART_JOB_PANIC", "poison");
    let handle = Server::bind_with(
        "127.0.0.1:0",
        ServerConfig {
            workers: 1,
            max_jobs: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap()
    .spawn()
    .unwrap();

    let mut client = Client::connect(handle.addr()).unwrap();
    for key in ["poison", "clean"] {
        client
            .load(key, GraphSource::Data(GRID.into()), GraphFormat::Metis)
            .unwrap();
    }
    let poisoned = client
        .submit(&JobRequest {
            steps: Some(1_000),
            ..JobRequest::new("poison", 2)
        })
        .unwrap();
    let err = client
        .wait_done(poisoned)
        .expect_err("a panicked driver must surface a typed error event");
    assert!(err.to_string().contains("panicked"), "{err}");

    // The one admission slot must be free again: a subsequent job on a
    // healthy instance is admitted and runs to completion.
    let clean = client
        .submit(&JobRequest {
            steps: Some(1_000),
            ..JobRequest::new("clean", 2)
        })
        .expect("slot leaked: admission still thinks the dead job is running");
    let (_, done) = client.wait_done(clean).unwrap();
    assert_eq!(done.status, JobStatus::Completed);

    client.shutdown().unwrap();
    handle.join().unwrap();
}

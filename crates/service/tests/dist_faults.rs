//! Fault injection against real worker processes: whatever we do to a
//! worker — crash it, hang it, cut a reply in half, feed the
//! coordinator garbage, `kill -9` it from outside — the coordinator
//! must respawn, replay the op log, and finish with a final partition
//! **byte-identical** to the undisturbed run. This is the determinism
//! contract under fire.

use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use ff_engine::{EnsembleResult, MigrationPolicyId, Solver};
use ff_graph::io::read_metis;
use ff_partition::Objective;
use ff_service::dist::{solve_distributed, DistOpts, DistSpec, WorkerSet};
use ff_service::{GraphFormat, GraphSource};

const GRID: &str = "9 12\n2 4\n1 3 5\n2 6\n1 5 7\n2 4 6 8\n3 5 9\n4 8\n5 7 9\n6 8\n";

fn worker_cmd() -> Vec<String> {
    vec![env!("CARGO_BIN_EXE_ffworker").to_string()]
}

fn spec(islands: usize, seed: u64, steps: u64) -> DistSpec {
    DistSpec {
        instance: "grid".into(),
        source: GraphSource::Data(GRID.into()),
        format: GraphFormat::Metis,
        k: 2,
        steps,
        seeds: ff_engine::derive_seeds(seed, islands),
        objectives: vec![Objective::MCut; islands],
        interval: 1024,
        migration: MigrationPolicyId::ReplaceIfBetter,
        pareto: false,
    }
}

fn run(spec: &DistSpec, workers: usize, opts: DistOpts) -> EnsembleResult {
    let g = read_metis(GRID.as_bytes()).unwrap();
    solve_distributed(
        &g,
        spec,
        &WorkerSet::Spawn {
            cmd: worker_cmd(),
            count: workers,
        },
        &opts,
        &mut |_, _| {},
    )
    .unwrap()
}

fn opts_with_fault(fault: &str, reply_timeout: Duration) -> DistOpts {
    DistOpts {
        reply_timeout,
        env: vec![("FFPART_FAULT".into(), fault.into())],
        ..DistOpts::default()
    }
}

/// A unique, pre-cleaned fire-once flag path for this test process.
fn flag_path(name: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("ffpart-fault-{name}-{}", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// Full byte-level equality of two ensemble results, island by island.
fn assert_identical(faulted: &EnsembleResult, clean: &EnsembleResult, what: &str) {
    assert_eq!(
        faulted.best.assignment(),
        clean.best.assignment(),
        "{what}: final partition diverged"
    );
    assert_eq!(faulted.best_value, clean.best_value, "{what}");
    assert_eq!(faulted.best_island, clean.best_island, "{what}");
    assert_eq!(faulted.steps, clean.steps, "{what}");
    assert_eq!(
        faulted.migrations_adopted, clean.migrations_adopted,
        "{what}"
    );
    assert_eq!(faulted.best_value_per_k, clean.best_value_per_k, "{what}");
    assert_eq!(faulted.islands.len(), clean.islands.len(), "{what}");
    for (i, (a, b)) in faulted.islands.iter().zip(&clean.islands).enumerate() {
        assert_eq!(
            a.best.assignment(),
            b.best.assignment(),
            "{what}: island {i} partition diverged"
        );
        assert_eq!(a.best_energy, b.best_energy, "{what}: island {i}");
        assert_eq!(a.steps, b.steps, "{what}: island {i}");
    }
}

/// Every fault kind, injected into both workers at epoch 2: the worker
/// dies, stalls, truncates its reply mid-line, or answers with garbage,
/// and the coordinator's respawn + op-log replay must land on exactly
/// the bytes the undisturbed run produces — which themselves match the
/// in-process [`Solver`].
#[test]
fn every_fault_mode_replays_to_byte_identical_result() {
    let spec = spec(4, 7, 6_000);
    let g = read_metis(GRID.as_bytes()).unwrap();
    let clean = Solver::on(&g)
        .k(2)
        .islands(4)
        .steps(6_000)
        .seed(7)
        .run()
        .unwrap();
    for kind in ["die", "stall", "truncate", "garbage"] {
        let flag = flag_path(kind);
        // Stalls are only detected by the reply timeout, so keep it
        // short there; everywhere else the failure is immediate.
        let timeout = if kind == "stall" {
            Duration::from_secs(2)
        } else {
            Duration::from_secs(120)
        };
        let fault = format!("{kind}@2,flag={}", flag.display());
        let faulted = run(&spec, 2, opts_with_fault(&fault, timeout));
        assert!(
            flag.exists(),
            "{kind}: fault never fired — the test exercised nothing"
        );
        let _ = std::fs::remove_file(&flag);
        assert_identical(&faulted, &clean, kind);
    }
}

/// A fault on the *first* epoch, before any improvement has streamed:
/// replay starts from an op log holding only `load` + `wstart`.
#[test]
fn crash_before_first_epoch_completes_is_replayed() {
    let spec = spec(3, 11, 4_000);
    let clean = run(&spec, 2, DistOpts::default());
    let flag = flag_path("die-epoch0");
    let fault = format!("die@0,flag={}", flag.display());
    let faulted = run(&spec, 2, opts_with_fault(&fault, Duration::from_secs(120)));
    assert!(flag.exists(), "fault never fired");
    let _ = std::fs::remove_file(&flag);
    assert_identical(&faulted, &clean, "die@0");
}

/// `kill -9` from outside, mid-run, with no flag file and no
/// cooperation from the worker: the raw SIGKILL lands wherever it
/// lands, and the respawned worker must still replay to the same bytes.
#[test]
fn sigkill_mid_run_is_respawned_and_replayed() {
    // A budget big enough that the run is still in its epoch loop
    // (several seconds of work) when the signal arrives at ~300 ms.
    let spec = spec(4, 7, 20_000);
    let clean = run(&spec, 2, DistOpts::default());

    let pids: Arc<Mutex<Vec<u32>>> = Arc::new(Mutex::new(Vec::new()));
    let killer_pids = Arc::clone(&pids);
    let killer = std::thread::spawn(move || {
        // Wait for both workers, let them get past the handshake and
        // into the epoch loop, then SIGKILL the first one.
        loop {
            let snapshot = killer_pids.lock().unwrap().clone();
            if snapshot.len() >= 2 {
                std::thread::sleep(Duration::from_millis(300));
                let victim = snapshot[0];
                let _ = std::process::Command::new("kill")
                    .args(["-9", &victim.to_string()])
                    .status();
                return victim;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    });

    let opts = DistOpts {
        reply_timeout: Duration::from_secs(120),
        pids: Some(Arc::clone(&pids)),
        ..DistOpts::default()
    };
    let faulted = run(&spec, 2, opts);
    let victim = killer.join().unwrap();
    assert!(victim > 0);
    // The respawned replacement's pid joins the roster after the victim.
    assert!(
        pids.lock().unwrap().len() >= 2,
        "expected the original workers on the pid roster"
    );
    assert_identical(&faulted, &clean, "kill -9");
}

/// The respawn budget is a real bound: a fault that re-fires on every
/// replay (no flag file) must exhaust `max_respawns` and surface a
/// clean error instead of looping forever.
#[test]
fn unbounded_refiring_fault_exhausts_the_respawn_budget() {
    let spec = spec(2, 7, 4_000);
    let g = read_metis(GRID.as_bytes()).unwrap();
    let opts = DistOpts {
        reply_timeout: Duration::from_secs(120),
        max_respawns: 2,
        env: vec![("FFPART_FAULT".into(), "die@1".into())],
        ..DistOpts::default()
    };
    let err = solve_distributed(
        &g,
        &spec,
        &WorkerSet::Spawn {
            cmd: worker_cmd(),
            count: 2,
        },
        &opts,
        &mut |_, _| {},
    )
    .unwrap_err();
    assert!(
        err.contains("gave up after 2 respawns"),
        "unexpected error: {err}"
    );
}

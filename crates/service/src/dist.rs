//! The distributed-islands coordinator: shards an ensemble's islands
//! across worker processes and drives them in deterministic lockstep.
//!
//! ## Topology
//!
//! ```text
//!   coordinator (owns the graph, the MigrationPolicy and the Reduction)
//!      │ NDJSON: load, wstart, then per epoch wadvance / wmolecule / winject
//!      ├──────────────┬──────────────┐
//!   worker 0       worker 1       worker 2     (spawned `ffpart worker`
//!   islands 0,3    islands 1,4    islands 2,5   processes, or remote
//!                                               `ffpart serve` servers)
//! ```
//!
//! Islands are assigned round-robin (`island i → worker i mod W`); each
//! worker hosts its shard in one session whose islands are configured
//! exactly as [`Solver`](ff_engine::Solver) configures them in-process.
//! Every epoch the coordinator advances all shards by the policy's
//! interval, collects barrier-time energies, runs the *same*
//! [`MigrationPolicy::plan`](ff_engine::MigrationPolicy::plan) a
//! single-process run would execute, and
//! carries the planned molecules across process boundaries as
//! assignment vectors.
//!
//! ## Determinism contract
//!
//! An island's state is a pure function of its seed and injection
//! history, and injected molecules are canonicalized from their
//! assignment on arrival — so a distributed run is **byte-identical**
//! to the in-process [`Solver`](ff_engine::Solver) run with the same
//! seeds, per-island objectives, step budget and migration interval,
//! for any worker count or layout.
//!
//! ## Fault tolerance (crash–replay)
//!
//! Every state-changing op (`load`, `wstart`, each completed `wadvance`
//! and `winject`) is appended to a per-worker op log *after* its reply
//! arrives. When a worker dies, stalls past the reply timeout, or
//! returns a corrupt line, the coordinator kills it, spawns a fresh
//! one, replays the log (cheap deterministic recompute; replayed
//! replies are discarded so improvement callbacks never fire twice),
//! and re-sends the in-flight op. Purity of the island state makes the
//! replayed worker indistinguishable from the lost one, which is what
//! keeps the byte-identical contract intact *under* faults.

use crate::sync::lock;
use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use ff_core::FusionFissionResult;
use ff_engine::{
    distinct_objectives, EnsembleResult, IslandStatus, MigrationPolicyId, MinEnergy, ParetoFront,
    Reduction,
};
use ff_graph::Graph;
use ff_metaheur::AnytimeTrace;
use ff_partition::{Objective, Partition};

use crate::cache::{GraphFormat, GraphSource};
use crate::protocol::{Event, Request, WNews, WorkerStart};

/// What to solve, distributed. `seeds` and `objectives` are the full
/// per-island lists in global island order — callers (CLI, submit) fix
/// them exactly as the in-process path would, so the contract "same
/// seeds in, same bytes out" is theirs to state and this module's to
/// keep.
#[derive(Clone, Debug)]
pub struct DistSpec {
    /// Cache key the workers load the instance under.
    pub instance: String,
    /// Where each worker gets the graph bytes (a path for local
    /// spawned workers, inline data for remote servers).
    pub source: GraphSource,
    /// File format of `source`.
    pub format: GraphFormat,
    /// Target part count.
    pub k: usize,
    /// Step budget per island.
    pub steps: u64,
    /// Per-island seeds (length = island count).
    pub seeds: Vec<u64>,
    /// Per-island objectives (same length as `seeds`, already cycled).
    pub objectives: Vec<Objective>,
    /// Base migration interval in steps (`0` = no migration).
    pub interval: u64,
    /// Migration policy, instantiated coordinator-side.
    pub migration: MigrationPolicyId,
    /// Reduce with [`ParetoFront`] instead of [`MinEnergy`].
    pub pareto: bool,
}

/// Where the workers come from.
#[derive(Clone, Debug)]
pub enum WorkerSet {
    /// Spawn `count` local processes running `cmd` (argv vector) and
    /// speak NDJSON over their stdin/stdout.
    Spawn { cmd: Vec<String>, count: usize },
    /// Connect to already-running NDJSON servers.
    Connect { addrs: Vec<String> },
}

/// Coordinator knobs. The defaults suit production; the fault-injection
/// tests shorten `reply_timeout` and watch `pids`.
#[derive(Clone, Debug)]
pub struct DistOpts {
    /// How long to wait for any single reply before declaring the
    /// worker hung and respawning it. Generous by default — a legal
    /// epoch can run `interval` steps of real optimization.
    pub reply_timeout: Duration,
    /// Respawn/reconnect budget per worker before giving up.
    pub max_respawns: usize,
    /// Extra environment for spawned workers (the fault-injection hook:
    /// set `FFPART_FAULT` here).
    pub env: Vec<(String, String)>,
    /// When set, every spawned worker's pid is pushed here — lets a
    /// test `kill -9` a live worker mid-run.
    pub pids: Option<Arc<Mutex<Vec<u32>>>>,
    /// When set, the coordinator records its metrics here: respawns,
    /// wire failures by kind, replay lengths, per-worker epoch lag.
    /// Observation-only — the result bytes are identical either way.
    pub obs: Option<ff_obs::Registry>,
    /// Structured span logging (`epoch` / `fault` events). Defaults to
    /// [`ff_obs::Logger::off`].
    pub logger: ff_obs::Logger,
}

impl Default for DistOpts {
    fn default() -> DistOpts {
        DistOpts {
            reply_timeout: Duration::from_secs(600),
            max_respawns: 3,
            env: Vec::new(),
            pids: None,
            obs: None,
            logger: ff_obs::Logger::off(),
        }
    }
}

/// Runs `spec` across `workers` and reduces, coordinator-side, to the
/// same [`EnsembleResult`] the in-process solver would return. `g` is
/// the coordinator's own copy of the instance (for molecule
/// reconstruction and the reduction); it must be the graph `spec.source`
/// describes. `on_news` receives each island improvement exactly once
/// (global island index + point), replays excluded.
pub fn solve_distributed(
    g: &Graph,
    spec: &DistSpec,
    workers: &WorkerSet,
    opts: &DistOpts,
    on_news: &mut dyn FnMut(usize, &WNews),
) -> Result<EnsembleResult, String> {
    let n = spec.seeds.len();
    if n == 0 {
        return Err("distributed run needs at least one island".into());
    }
    if spec.objectives.len() != n {
        return Err("one objective per island required".into());
    }
    if let Some(registry) = &opts.obs {
        // Pre-register the coordinator's metric families so a clean run
        // still exposes the full catalog (failure counters at zero).
        crate::obs::dist_families(registry);
    }
    let targets = make_targets(workers, opts)?;
    // Never spawn more workers than islands: the extras would idle.
    let w_eff = targets.len().min(n);
    let mut conns = Vec::with_capacity(w_eff);
    for (w, target) in targets.into_iter().take(w_eff).enumerate() {
        conns.push(WorkerConn::open(w, target, opts)?);
    }
    for i in 0..n {
        conns[i % w_eff].islands.push(i);
    }

    // Load + session start, logged for replay.
    for conn in &mut conns {
        let load = Request::Load {
            instance: spec.instance.clone(),
            source: spec.source.clone(),
            format: spec.format,
        };
        match conn.call_logged(load, opts, true)? {
            Event::Loaded { .. } => {}
            other => return Err(conn.unexpected("loaded", &other)),
        }
        let start = Request::WStart(WorkerStart {
            session: conn.session,
            instance: spec.instance.clone(),
            k: spec.k,
            seeds: conn.islands.iter().map(|&i| spec.seeds[i]).collect(),
            objectives: conn.islands.iter().map(|&i| spec.objectives[i]).collect(),
            steps: spec.steps,
        });
        match conn.call_logged(start, opts, true)? {
            Event::WReady { islands, .. } if islands == conn.islands.len() => {}
            other => return Err(conn.unexpected("wready", &other)),
        }
    }

    // The epoch loop — a wire mirror of `SolverRun::advance_epoch`:
    // advance every island by the policy's interval, stop (without a
    // final exchange) once no island has work left, otherwise plan the
    // exchange over barrier-time statuses and carry it out.
    let mut migration = spec.migration.build();
    let mut energy = vec![f64::INFINITY; n];
    let mut more = vec![true; n];
    let mut traces: Vec<AnytimeTrace> = spec
        .objectives
        .iter()
        .map(|&o| AnytimeTrace::with_tag(o))
        .collect();
    let mut migrations_adopted = 0u64;
    let mut epoch = 0u64;
    loop {
        let chunk = if spec.interval == 0 {
            u64::MAX
        } else {
            migration.interval(spec.interval).max(1)
        };
        for conn in &mut conns {
            let req = Request::WAdvance {
                session: conn.session,
                epoch,
                steps: chunk,
            };
            match conn.call_logged(req, opts, true)? {
                Event::WState { islands, .. } => {
                    for st in islands {
                        let gi = conn.global(st.island)?;
                        energy[gi] = st.energy;
                        more[gi] = st.more;
                        for news in &st.news {
                            traces[gi].record(
                                Duration::from_millis(news.elapsed_ms),
                                news.value,
                                news.step,
                            );
                            on_news(gi, news);
                        }
                    }
                }
                other => return Err(conn.unexpected("wstate", &other)),
            }
            // Each shard's gauge advances as its `wadvance` completes,
            // so a scrape mid-epoch reads the true lag (max − min).
            if let Some(registry) = &opts.obs {
                crate::obs::dist_worker_epoch(registry, conn.session as usize, epoch);
            }
        }
        opts.logger.log(
            "epoch",
            None,
            &[
                ("epoch", ff_obs::LogValue::U64(epoch)),
                ("workers", ff_obs::LogValue::U64(w_eff as u64)),
                (
                    "live_islands",
                    ff_obs::LogValue::U64(more.iter().filter(|&&b| b).count() as u64),
                ),
            ],
        );
        if !more.iter().any(|&b| b) {
            break;
        }
        if n > 1 && spec.interval > 0 {
            let statuses: Vec<IslandStatus> = (0..n)
                .map(|i| IslandStatus {
                    objective: spec.objectives[i],
                    best_energy: energy[i],
                })
                .collect();
            for offer in migration.plan(&statuses) {
                // Offers move within disjoint objective groups, so a
                // donor fetched at execution time equals one fetched at
                // plan time — the same invariant the in-process
                // `exchange` relies on. The fetch is read-only (not
                // logged); the injections it feeds carry the molecule
                // bytes in the log, which is what makes replay
                // self-contained.
                let dw = offer.donor % w_eff;
                let req = Request::WMolecule {
                    session: conns[dw].session,
                    island: conns[dw].local(offer.donor),
                };
                let molecule = match conns[dw].call_logged(req, opts, false)? {
                    Event::WMolecule { molecule, .. } => molecule,
                    other => return Err(conns[dw].unexpected("wmolecule", &other)),
                };
                for &r in &offer.receivers {
                    let rw = r % w_eff;
                    let req = Request::WInject {
                        session: conns[rw].session,
                        island: conns[rw].local(r),
                        molecule: molecule.clone(),
                        crossover: offer.crossover,
                    };
                    match conns[rw].call_logged(req, opts, true)? {
                        Event::WInjected { adopted, .. } => {
                            if adopted {
                                migrations_adopted += 1;
                            }
                        }
                        other => return Err(conns[rw].unexpected("winjected", &other)),
                    }
                }
            }
        }
        epoch += 1;
    }

    // Harvest every shard and rebuild per-island results. The harvest is
    // deliberately *not* logged: a worker lost mid-harvest is replayed
    // to the same epoch and asked again.
    let mut islands_out: Vec<Option<FusionFissionResult>> = (0..n).map(|_| None).collect();
    for conn in &mut conns {
        let req = Request::WHarvest {
            session: conn.session,
        };
        match conn.call_logged(req, opts, false)? {
            Event::WHarvested { islands, .. } => {
                for r in islands {
                    let gi = conn.global(r.island)?;
                    islands_out[gi] = Some(rebuild_island(g, r, &mut traces[gi])?);
                }
            }
            other => return Err(conn.unexpected("wharvested", &other)),
        }
    }
    for conn in conns {
        conn.close();
    }
    let islands: Vec<FusionFissionResult> = islands_out
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.ok_or(format!("worker omitted island {i} from its harvest")))
        .collect::<Result<_, _>>()?;
    Ok(reduce(g, spec, islands, migrations_adopted))
}

/// Rebuilds one island's [`FusionFissionResult`] from its wire harvest
/// plus the improvement trace accumulated epoch by epoch.
fn rebuild_island(
    g: &Graph,
    r: crate::protocol::WIslandResult,
    trace: &mut AnytimeTrace,
) -> Result<FusionFissionResult, String> {
    if r.molecule.assignment.len() != g.num_vertices() {
        return Err(format!(
            "harvested molecule has {} vertices, instance has {}",
            r.molecule.assignment.len(),
            g.num_vertices()
        ));
    }
    Ok(FusionFissionResult {
        best: Partition::from_assignment(g, r.molecule.assignment, r.molecule.parts),
        best_value: r.value,
        best_energy: r.energy,
        steps: r.steps,
        trace: std::mem::take(trace),
        best_value_per_k: r.per_k.iter().map(|&(k, v)| (k as usize, v)).collect(),
    })
}

/// The coordinator-side ending of `SolverRun::harvest`: same reduction,
/// same primary-objective trace merge, same field-by-field assembly.
fn reduce(
    g: &Graph,
    spec: &DistSpec,
    islands: Vec<FusionFissionResult>,
    migrations_adopted: u64,
) -> EnsembleResult {
    let distinct = distinct_objectives(&spec.objectives);
    let reduction: Box<dyn Reduction> = if spec.pareto {
        Box::new(ParetoFront)
    } else {
        Box::new(MinEnergy)
    };
    let reduced = reduction.reduce(g, &islands, &distinct);
    let primary = distinct[0];
    let primary_islands = || {
        islands
            .iter()
            .filter(move |r| r.trace.tag().unwrap_or(primary) == primary)
    };
    let trace = AnytimeTrace::merged(primary_islands().map(|r| &r.trace));
    let mut best_value_per_k = BTreeMap::new();
    for r in primary_islands() {
        for (&k, &v) in &r.best_value_per_k {
            let entry = best_value_per_k.entry(k).or_insert(f64::INFINITY);
            if v < *entry {
                *entry = v;
            }
        }
    }
    EnsembleResult {
        best: islands[reduced.best_island].best.clone(),
        best_value: islands[reduced.best_island].best_value,
        best_island: reduced.best_island,
        steps: islands.iter().map(|r| r.steps).sum(),
        migrations_adopted,
        trace,
        best_value_per_k,
        pareto: reduced.pareto,
        multilevel: None,
        islands,
    }
}

/// One worker's connection recipe, kept for respawn/reconnect.
#[derive(Clone)]
enum Target {
    Spawn {
        cmd: Vec<String>,
        env: Vec<(String, String)>,
    },
    Addr(String),
}

fn make_targets(workers: &WorkerSet, opts: &DistOpts) -> Result<Vec<Target>, String> {
    match workers {
        WorkerSet::Spawn { cmd, count } => {
            if cmd.is_empty() {
                return Err("empty worker command".into());
            }
            if *count == 0 {
                return Err("worker count must be at least 1".into());
            }
            Ok(vec![
                Target::Spawn {
                    cmd: cmd.clone(),
                    env: opts.env.clone(),
                };
                *count
            ])
        }
        WorkerSet::Connect { addrs } => {
            if addrs.is_empty() {
                return Err("no worker addresses given".into());
            }
            Ok(addrs.iter().cloned().map(Target::Addr).collect())
        }
    }
}

/// How a single call can fail on the wire — each answer is "kill the
/// worker and replay" (even `Corrupt`, where the worker may in fact be
/// healthy: a replayed worker is cheap, an untrusted one is not).
enum WireFail {
    Dead(String),
    Timeout,
    Corrupt(String),
}

struct WorkerConn {
    /// Session id on the worker (= worker index; sessions are
    /// per-connection so ids need only be unique within one).
    session: u64,
    label: String,
    target: Target,
    child: Option<Child>,
    writer: Box<dyn Write + Send>,
    rx: Receiver<io::Result<String>>,
    /// Global island indices hosted by this worker, ascending; position
    /// = the worker's local island index.
    islands: Vec<usize>,
    /// Replayable op log: `load`, `wstart`, every *completed* `wadvance`
    /// and `winject`, in order.
    history: Vec<Request>,
    respawns: usize,
}

impl WorkerConn {
    fn open(index: usize, target: Target, opts: &DistOpts) -> Result<WorkerConn, String> {
        let label = match &target {
            Target::Spawn { cmd, .. } => format!("worker {index} ({})", cmd[0]),
            Target::Addr(addr) => format!("worker {index} ({addr})"),
        };
        let (child, writer, rx) = connect(&target, opts)?;
        let mut conn = WorkerConn {
            session: index as u64,
            label,
            target,
            child,
            writer,
            rx,
            islands: Vec::new(),
            history: Vec::new(),
            respawns: 0,
        };
        conn.handshake(opts)
            .map_err(|f| format!("{}: {}", conn.label, f.describe()))?;
        Ok(conn)
    }

    /// Maps a worker-local island index to the global one.
    fn global(&self, local: usize) -> Result<usize, String> {
        self.islands
            .get(local)
            .copied()
            .ok_or(format!("{}: reported unknown island {local}", self.label))
    }

    /// Maps a global island index to this worker's local one. Panics if
    /// the island is not hosted here — a coordinator logic error.
    fn local(&self, global: usize) -> usize {
        self.islands
            .iter()
            .position(|&i| i == global)
            // lint: allow(PANIC_PATH) — routing table is coordinator-built; a miss is a
            // coordinator logic error, not client-reachable input.
            .expect("island routed to the worker hosting it")
    }

    fn unexpected(&self, wanted: &str, got: &Event) -> String {
        format!("{}: expected `{wanted}` reply, got {:?}", self.label, got)
    }

    /// One request/reply round, no recovery.
    fn call(&mut self, req: &Request, timeout: Duration) -> Result<Event, WireFail> {
        let line = req.to_value().to_string();
        if writeln!(self.writer, "{line}")
            .and_then(|_| self.writer.flush())
            .is_err()
        {
            return Err(WireFail::Dead("write failed (pipe closed)".into()));
        }
        match self.rx.recv_timeout(timeout) {
            Ok(Ok(line)) => Event::parse(line.trim()).map_err(WireFail::Corrupt),
            Ok(Err(e)) => Err(WireFail::Dead(e.to_string())),
            Err(RecvTimeoutError::Timeout) => Err(WireFail::Timeout),
            Err(RecvTimeoutError::Disconnected) => {
                Err(WireFail::Dead("reader thread exited".into()))
            }
        }
    }

    /// A reliable call: on any wire failure the worker is respawned,
    /// its op log replayed, and `req` re-sent — repeated within the
    /// respawn budget. An `error` *event* is not a wire failure; it
    /// means a healthy worker rejected the op, which is fatal. When
    /// `log` is set, a completed `req` is appended to the replay log.
    fn call_logged(&mut self, req: Request, opts: &DistOpts, log: bool) -> Result<Event, String> {
        loop {
            match self.call(&req, opts.reply_timeout) {
                Ok(Event::Error { message, .. }) => {
                    return Err(format!("{}: {message}", self.label))
                }
                Ok(event) => {
                    if log {
                        self.history.push(req);
                    }
                    return Ok(event);
                }
                Err(fail) => {
                    eprintln!(
                        "ffpart: {}: {}; respawning and replaying {} ops",
                        self.label,
                        fail.describe(),
                        self.history.len()
                    );
                    if let Some(registry) = &opts.obs {
                        crate::obs::dist_wire_failure(registry, fail.kind(), self.history.len());
                    }
                    opts.logger.log(
                        "fault",
                        None,
                        &[
                            ("worker", ff_obs::LogValue::U64(self.session)),
                            ("kind", ff_obs::LogValue::Str(fail.kind())),
                            ("detail", ff_obs::LogValue::Str(&fail.describe())),
                            (
                                "replay_ops",
                                ff_obs::LogValue::U64(self.history.len() as u64),
                            ),
                        ],
                    );
                    self.reopen_and_replay(opts)?;
                }
            }
        }
    }

    /// Kills the worker (if spawned), opens a fresh one, and replays the
    /// op log. Replay replies are discarded — the ops are deterministic
    /// recompute, their effects already observed. Retries internally on
    /// further wire failures until the respawn budget runs out.
    fn reopen_and_replay(&mut self, opts: &DistOpts) -> Result<(), String> {
        'attempt: loop {
            self.respawns += 1;
            if let Some(registry) = &opts.obs {
                crate::obs::dist_respawn(registry);
            }
            if self.respawns > opts.max_respawns {
                return Err(format!(
                    "{}: gave up after {} respawns",
                    self.label, opts.max_respawns
                ));
            }
            if let Some(child) = &mut self.child {
                let _ = child.kill();
                let _ = child.wait();
            }
            let (child, writer, rx) = connect(&self.target, opts)?;
            self.child = child;
            self.writer = writer;
            self.rx = rx;
            if self.handshake(opts).is_err() {
                continue 'attempt;
            }
            for i in 0..self.history.len() {
                let req = self.history[i].clone();
                match self.call(&req, opts.reply_timeout) {
                    Ok(Event::Error { message, .. }) => {
                        return Err(format!("{}: replay diverged: {message}", self.label))
                    }
                    Ok(_) => {} // deterministic recompute; reply discarded
                    Err(_) => continue 'attempt,
                }
            }
            return Ok(());
        }
    }

    fn handshake(&mut self, opts: &DistOpts) -> Result<(), WireFail> {
        match self.rx.recv_timeout(opts.reply_timeout) {
            Ok(Ok(line)) => match Event::parse(line.trim()) {
                Ok(Event::Hello { .. }) => Ok(()),
                Ok(other) => Err(WireFail::Corrupt(format!("expected hello, got {other:?}"))),
                Err(e) => Err(WireFail::Corrupt(e)),
            },
            Ok(Err(e)) => Err(WireFail::Dead(e.to_string())),
            Err(RecvTimeoutError::Timeout) => Err(WireFail::Timeout),
            Err(RecvTimeoutError::Disconnected) => {
                Err(WireFail::Dead("reader thread exited".into()))
            }
        }
    }

    /// Orderly teardown: closing stdin (or the socket) is the protocol's
    /// goodbye; a spawned worker exits on stdin EOF and is reaped.
    fn close(self) {
        drop(self.writer);
        drop(self.rx);
        if let Some(mut child) = self.child {
            let _ = child.wait();
        }
    }
}

impl WireFail {
    fn describe(&self) -> String {
        match self {
            WireFail::Dead(why) => format!("connection lost ({why})"),
            WireFail::Timeout => "reply timed out".into(),
            WireFail::Corrupt(why) => format!("corrupt reply ({why})"),
        }
    }

    /// The `kind` label on `ff_dist_wire_failures_total`.
    fn kind(&self) -> &'static str {
        match self {
            WireFail::Dead(_) => "dead",
            WireFail::Timeout => "timeout",
            WireFail::Corrupt(_) => "corrupt",
        }
    }
}

/// Opens the transport for a target: a child process with piped stdio,
/// or a TCP connection. Returns the writer plus a reader-thread channel
/// (the thread lets every read carry a timeout).
type Transport = (
    Option<Child>,
    Box<dyn Write + Send>,
    Receiver<io::Result<String>>,
);

fn connect(target: &Target, opts: &DistOpts) -> Result<Transport, String> {
    match target {
        Target::Spawn { cmd, env } => {
            let mut command = Command::new(&cmd[0]);
            command
                .args(&cmd[1..])
                .stdin(Stdio::piped())
                .stdout(Stdio::piped());
            for (key, value) in env {
                command.env(key, value);
            }
            let mut child = command
                .spawn()
                .map_err(|e| format!("failed to spawn `{}`: {e}", cmd[0]))?;
            if let Some(pids) = &opts.pids {
                lock(pids).push(child.id());
            }
            let stdin = child
                .stdin
                .take()
                .ok_or_else(|| format!("`{}`: no piped stdin", cmd[0]))?;
            let stdout = child
                .stdout
                .take()
                .ok_or_else(|| format!("`{}`: no piped stdout", cmd[0]))?;
            Ok((Some(child), Box::new(stdin), spawn_reader(stdout)))
        }
        Target::Addr(addr) => {
            let stream = TcpStream::connect(addr)
                .map_err(|e| format!("failed to connect to {addr}: {e}"))?;
            let _ = stream.set_nodelay(true);
            let read_half = stream
                .try_clone()
                .map_err(|e| format!("failed to clone socket to {addr}: {e}"))?;
            Ok((None, Box::new(stream), spawn_reader(read_half)))
        }
    }
}

/// One line per message; EOF and errors are delivered in-band so the
/// consumer's `recv_timeout` sees everything.
fn spawn_reader(read: impl io::Read + Send + 'static) -> Receiver<io::Result<String>> {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let mut reader = BufReader::new(read);
        loop {
            let mut line = String::new();
            match reader.read_line(&mut line) {
                Ok(0) => {
                    let _ = tx.send(Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "worker closed the connection",
                    )));
                    return;
                }
                Ok(_) if line.ends_with('\n') => {
                    if tx.send(Ok(line)).is_err() {
                        return;
                    }
                }
                Ok(_) => {
                    // A final fragment with no newline: the peer died
                    // mid-message. Surface it as data — it will fail to
                    // parse — and then report the EOF.
                    let _ = tx.send(Ok(line));
                    let _ = tx.send(Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "worker closed the connection mid-line",
                    )));
                    return;
                }
                Err(e) => {
                    let _ = tx.send(Err(e));
                    return;
                }
            }
        }
    });
    rx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn islands_are_assigned_round_robin_and_mapped_both_ways() {
        // Pure index arithmetic — mirrors the assignment loop in
        // solve_distributed without any I/O.
        let n = 5;
        let w_eff = 2;
        let mut islands: Vec<Vec<usize>> = vec![Vec::new(); w_eff];
        for i in 0..n {
            islands[i % w_eff].push(i);
        }
        assert_eq!(islands[0], vec![0, 2, 4]);
        assert_eq!(islands[1], vec![1, 3]);
        // local -> global -> local round-trips.
        for (w, hosted) in islands.iter().enumerate() {
            for (local, &global) in hosted.iter().enumerate() {
                assert_eq!(global % w_eff, w);
                assert_eq!(hosted.iter().position(|&i| i == global), Some(local));
            }
        }
    }

    #[test]
    fn worker_set_validation_rejects_empty_configurations() {
        let opts = DistOpts::default();
        assert!(make_targets(
            &WorkerSet::Spawn {
                cmd: vec![],
                count: 2
            },
            &opts
        )
        .is_err());
        assert!(make_targets(
            &WorkerSet::Spawn {
                cmd: vec!["ffworker".into()],
                count: 0
            },
            &opts
        )
        .is_err());
        assert!(make_targets(&WorkerSet::Connect { addrs: vec![] }, &opts).is_err());
        let ok = make_targets(
            &WorkerSet::Spawn {
                cmd: vec!["ffworker".into()],
                count: 3,
            },
            &opts,
        )
        .unwrap();
        assert_eq!(ok.len(), 3);
    }
}

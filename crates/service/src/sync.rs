//! Poison-recovering lock helpers.
//!
//! `Mutex::lock().unwrap()` turns one panicking thread into a cascade:
//! every later `lock()` on the same mutex panics too, and a panic
//! inside a `Drop` that locks (e.g. the job driver's guard) aborts the
//! whole process. The serving layer never wants that escalation — a
//! poisoned lock means a *previous* holder panicked, and the recovery
//! that preserves availability is to keep serving with the data as it
//! is. All state guarded here is either monotonic counters, logs, or
//! maps repaired by the panic guard itself, so continuing is safe.
//!
//! These helpers are also what `ff-lint`'s lock-order analysis keys on:
//! `lock(&x.y)` call sites feed the static acquisition graph (see
//! `INVARIANTS.md`).

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

/// Lock `m`, recovering the guard if a previous holder panicked.
pub(crate) fn lock<T: ?Sized>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Wait on `cv`, recovering the guard if a holder panicked mid-wait.
pub(crate) fn wait<'a, T>(cv: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

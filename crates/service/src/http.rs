//! The HTTP/1.1 gateway: browsers and `curl` as first-class clients.
//!
//! A thin, std-only translation of the HTTP verbs onto the exact same
//! job layer the NDJSON protocol drives — same admission control, same
//! FIFO-fair gate, same pinned LRU cache, same [`run_job`] drive — so a
//! step-budgeted job yields a byte-identical partition on either
//! transport:
//!
//! | request | effect | response |
//! |---|---|---|
//! | `PUT /instances/:key?format=metis` | load body as the instance | `200` `loaded` JSON |
//! | `POST /jobs` | submit (body = the NDJSON `submit` object) | `202` `accepted`, `429` `rejected` (+ `Retry-After`), or `400` `error` |
//! | `GET /jobs/:id/events` | stream the job's events | `200` chunked NDJSON (`improvement`* then `done`) |
//! | `DELETE /jobs/:id` | cancel | `200` `cancelling` JSON |
//! | `GET /stats` | statistics snapshot | `200` `stats` JSON |
//! | `GET /metrics` | Prometheus scrape | `200` text exposition (v0.0.4) |
//!
//! Response bodies are the protocol's event objects, so an HTTP client
//! and an NDJSON client parse the same schema. Unlike an NDJSON
//! connection, an HTTP job's events are buffered server-side (bounded
//! retention after completion) and replayed to any number of
//! `GET /jobs/:id/events` readers — closing the browser tab does not
//! cancel the job; `DELETE` does.

use crate::job::EventSink;
use crate::protocol::{Event, JobRequest};
use crate::server::{read_line_capped, submit_job, LineRead, ServerState, MAX_LINE_BYTES};
use crate::sync::{lock, wait};
use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::AtomicUsize;
use std::sync::{Arc, Condvar, Mutex};

/// Hard cap on one request head (request line + all headers).
const MAX_HEAD_BYTES: usize = 16 << 10;

/// Per-header-line cap (within [`MAX_HEAD_BYTES`]).
const MAX_HEADER_LINE: usize = 8 << 10;

/// A job's buffered event stream: NDJSON lines appended as the driver
/// thread emits them, replayable from the start by any number of
/// readers, with a condvar wakeup for live tailing.
pub(crate) struct EventLog {
    state: Mutex<LogState>,
    cv: Condvar,
}

struct LogState {
    lines: Vec<String>,
    done: bool,
}

impl EventLog {
    pub(crate) fn new() -> Arc<EventLog> {
        Arc::new(EventLog {
            state: Mutex::new(LogState {
                lines: Vec::new(),
                done: false,
            }),
            cv: Condvar::new(),
        })
    }

    pub(crate) fn push_line(&self, line: String) {
        let mut st = lock(&self.state);
        st.lines.push(line);
        drop(st);
        self.cv.notify_all();
    }

    /// Marks the stream complete (the job's `done` event is in the log).
    pub(crate) fn finish(&self) {
        lock(&self.state).done = true;
        self.cv.notify_all();
    }

    /// Blocks until there are lines past `from` (or the log is done),
    /// then returns them plus the done flag.
    fn wait_since(&self, from: usize) -> (Vec<String>, bool) {
        let mut st = lock(&self.state);
        while st.lines.len() <= from && !st.done {
            st = wait(&self.cv, st);
        }
        (st.lines[from.min(st.lines.len())..].to_vec(), st.done)
    }
}

/// The `Write` end the job driver streams into: whole `\n`-terminated
/// lines become log entries. [`EventSink`] writes one event per line
/// under its lock, so split-on-newline reassembles exactly the events.
struct LogWriter {
    log: Arc<EventLog>,
    buf: Vec<u8>,
}

/// An [`EventSink`] whose output is a job's [`EventLog`] — the sink
/// shape behind HTTP-submitted jobs and journal-resumed jobs, with the
/// server's journal tap threaded through when journaling is on.
pub(crate) fn log_sink(
    log: &Arc<EventLog>,
    journal: Option<Arc<crate::journal::JournalTap>>,
) -> EventSink {
    EventSink::with_journal(
        Box::new(LogWriter {
            log: log.clone(),
            buf: Vec::new(),
        }),
        journal,
    )
}

impl Write for LogWriter {
    fn write(&mut self, chunk: &[u8]) -> std::io::Result<usize> {
        self.buf.extend_from_slice(chunk);
        while let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.buf.drain(..=pos).collect();
            self.log
                .push_line(String::from_utf8_lossy(&line[..line.len() - 1]).into_owned());
        }
        Ok(chunk.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// One parsed request head plus its body.
struct HttpRequest {
    method: String,
    /// Path without the query string.
    path: String,
    /// Raw query string (no leading `?`), possibly empty.
    query: String,
    body: Vec<u8>,
    keep_alive: bool,
}

enum HeadError {
    /// Clean EOF before a request line: the client is done.
    Eof,
    /// Malformed/oversized request: respond `status` and close.
    Bad(u16, String),
}

/// Decodes `%XX` escapes (instance keys may be path-like).
fn percent_decode(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 3 <= bytes.len() {
            let hex = std::str::from_utf8(&bytes[i + 1..i + 3]).ok();
            if let Some(b) = hex.and_then(|h| u8::from_str_radix(h, 16).ok()) {
                out.push(b);
                i += 3;
                continue;
            }
        }
        out.push(bytes[i]);
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// First `format=` value in a query string, if any.
fn query_param<'q>(query: &'q str, name: &str) -> Option<&'q str> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == name).then_some(v)
    })
}

/// Reads one request (head + body) off the connection. `writer` is only
/// used for the `100 Continue` interim response.
fn read_request(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
) -> Result<HttpRequest, HeadError> {
    let mut line = Vec::new();
    let request_line = loop {
        match read_line_capped(reader, &mut line, MAX_HEADER_LINE) {
            Ok(LineRead::Eof) => return Err(HeadError::Eof),
            Ok(LineRead::TooLong) => {
                return Err(HeadError::Bad(431, "request line too long".into()))
            }
            Ok(LineRead::Line) => {
                let text = String::from_utf8_lossy(&line)
                    .trim_end_matches('\r')
                    .to_string();
                if text.is_empty() {
                    continue; // tolerate leading blank lines (RFC 9112 §2.2)
                }
                break text;
            }
            Err(_) => return Err(HeadError::Eof),
        }
    };
    let mut parts = request_line.split_whitespace();
    let (method, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if parts.next().is_none() => (m.to_string(), t.to_string(), v),
        _ => {
            return Err(HeadError::Bad(
                400,
                format!("malformed request line `{request_line}`"),
            ))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Err(HeadError::Bad(505, format!("unsupported `{version}`")));
    }
    // Headers: we only act on Content-Length, Connection and Expect.
    let mut content_length: Option<usize> = None;
    // HTTP/1.0 defaults to one request per connection — a 1.0 client
    // (curl --http1.0, read-to-EOF std clients) delimits the response by
    // the close, so keeping its connection alive would hang it.
    let mut keep_alive = version != "HTTP/1.0";
    let mut expects_continue = false;
    let mut head_bytes = request_line.len();
    loop {
        match read_line_capped(reader, &mut line, MAX_HEADER_LINE) {
            Ok(LineRead::Eof) | Err(_) => {
                return Err(HeadError::Bad(400, "truncated request head".into()))
            }
            Ok(LineRead::TooLong) => return Err(HeadError::Bad(431, "header too long".into())),
            Ok(LineRead::Line) => {
                let text = String::from_utf8_lossy(&line)
                    .trim_end_matches('\r')
                    .to_string();
                if text.is_empty() {
                    break;
                }
                head_bytes += text.len();
                if head_bytes > MAX_HEAD_BYTES {
                    return Err(HeadError::Bad(431, "request head too large".into()));
                }
                let Some((name, value)) = text.split_once(':') else {
                    return Err(HeadError::Bad(400, format!("malformed header `{text}`")));
                };
                let value = value.trim();
                if name.eq_ignore_ascii_case("content-length") {
                    match value.parse::<usize>() {
                        Ok(n) => content_length = Some(n),
                        Err(_) => {
                            return Err(HeadError::Bad(
                                400,
                                format!("bad Content-Length `{value}`"),
                            ))
                        }
                    }
                } else if name.eq_ignore_ascii_case("transfer-encoding") {
                    return Err(HeadError::Bad(
                        501,
                        "chunked request bodies are not supported; send Content-Length".into(),
                    ));
                } else if name.eq_ignore_ascii_case("connection") {
                    if value.eq_ignore_ascii_case("close") {
                        keep_alive = false;
                    } else if value.eq_ignore_ascii_case("keep-alive") {
                        keep_alive = true;
                    }
                } else if name.eq_ignore_ascii_case("expect")
                    && value.to_ascii_lowercase().contains("100-continue")
                {
                    expects_continue = true;
                }
            }
        }
    }
    let body_len = match content_length {
        Some(n) => n,
        // A bodied method without Content-Length used to fall through as
        // "no body" and parse an empty string into a confusing JSON
        // error; refuse it by name instead (chunked bodies are already
        // answered 501 above).
        None if matches!(method.as_str(), "POST" | "PUT") => {
            return Err(HeadError::Bad(
                411,
                format!("{method} requires a Content-Length header"),
            ))
        }
        None => 0,
    };
    if body_len > MAX_LINE_BYTES {
        return Err(HeadError::Bad(
            413,
            format!("body exceeds {MAX_LINE_BYTES} bytes"),
        ));
    }
    // `curl -T bigfile` sends `Expect: 100-continue` and stalls ~1 s
    // waiting for this interim response before transmitting the body.
    if expects_continue
        && body_len > 0
        && writer.write_all(b"HTTP/1.1 100 Continue\r\n\r\n").is_err()
    {
        return Err(HeadError::Eof);
    }
    // Read incrementally (`take` + `read_to_end` grows with the bytes
    // actually received) — pre-allocating `body_len` would let a client
    // pin `Content-Length` worth of memory per connection without ever
    // sending a byte.
    let mut body = Vec::new();
    match reader.by_ref().take(body_len as u64).read_to_end(&mut body) {
        Ok(n) if n == body_len => {}
        _ => return Err(HeadError::Bad(400, "truncated request body".into())),
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target, String::new()),
    };
    Ok(HttpRequest {
        method,
        path: percent_decode(&path),
        query,
        body,
        keep_alive,
    })
}

fn status_text(code: u16) -> &'static str {
    match code {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        411 => "Length Required",
        413 => "Content Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        501 => "Not Implemented",
        505 => "HTTP Version Not Supported",
        _ => "Error",
    }
}

/// Writes a complete non-streaming response with an exact body and
/// content type. `extra` lines (e.g. `Retry-After`) are injected
/// verbatim into the head.
fn respond_raw(
    out: &mut TcpStream,
    code: u16,
    content_type: &str,
    body: &str,
    keep_alive: bool,
    extra: &[String],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {code} {}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        status_text(code),
        body.len()
    );
    for line in extra {
        head.push_str(line);
        head.push_str("\r\n");
    }
    if !keep_alive {
        head.push_str("Connection: close\r\n");
    }
    head.push_str("\r\n");
    out.write_all(head.as_bytes())?;
    out.write_all(body.as_bytes())?;
    out.flush()
}

/// [`respond_raw`] for the JSON routes: one event object, `\n`-terminated
/// like its NDJSON twin.
fn respond(
    out: &mut TcpStream,
    code: u16,
    body: &str,
    keep_alive: bool,
    extra: &[String],
) -> std::io::Result<()> {
    respond_raw(
        out,
        code,
        "application/json",
        &format!("{body}\n"),
        keep_alive,
        extra,
    )
}

fn respond_event(
    out: &mut TcpStream,
    code: u16,
    event: &Event,
    keep_alive: bool,
    extra: &[String],
) -> std::io::Result<()> {
    respond(out, code, &event.to_value().to_string(), keep_alive, extra)
}

fn error_body(
    code: u16,
    message: &str,
    out: &mut TcpStream,
    keep_alive: bool,
) -> std::io::Result<()> {
    respond_event(
        out,
        code,
        &Event::Error {
            message: message.to_string(),
            job: None,
        },
        keep_alive,
        &[],
    )
}

/// Streams a job's event log as chunked NDJSON until the job is done.
/// Always closes the connection afterwards (the stream is the response).
fn stream_events(out: &mut TcpStream, log: &EventLog) -> std::io::Result<()> {
    out.write_all(
        b"HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\n\
          Transfer-Encoding: chunked\r\nConnection: close\r\n\r\n",
    )?;
    out.flush()?;
    let mut cursor = 0usize;
    loop {
        // The driver pushes every line *before* marking done, so a
        // `done = true` return already carries the complete tail.
        let (lines, done) = log.wait_since(cursor);
        cursor += lines.len();
        for line in &lines {
            write!(out, "{:x}\r\n{line}\n\r\n", line.len() + 1)?;
        }
        out.flush()?;
        if done {
            break;
        }
    }
    out.write_all(b"0\r\n\r\n")?;
    out.flush()
}

/// Serves one HTTP connection: requests are handled sequentially
/// (HTTP/1.1 keep-alive) until the client closes, sends
/// `Connection: close`, or reads an event stream.
pub(crate) fn handle_http_client(state: Arc<ServerState>, stream: TcpStream) {
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let _conn = state.metrics.connection("http");
    let mut reader = BufReader::new(stream);
    let conn_jobs = Arc::new(AtomicUsize::new(0));
    loop {
        let request = match read_request(&mut reader, &mut writer) {
            Ok(r) => r,
            Err(HeadError::Eof) => return,
            Err(HeadError::Bad(code, message)) => {
                let _ = error_body(code, &message, &mut writer, false);
                return;
            }
        };
        let keep_alive = request.keep_alive;
        let result = handle_request(&state, &request, &conn_jobs, &mut writer);
        match result {
            Ok(true) if keep_alive => continue,
            _ => return,
        }
    }
}

/// Routes one request. `Ok(true)` = response sent, connection reusable;
/// `Ok(false)` = the response consumed the connection (event stream).
fn handle_request(
    state: &Arc<ServerState>,
    req: &HttpRequest,
    conn_jobs: &Arc<AtomicUsize>,
    out: &mut TcpStream,
) -> std::io::Result<bool> {
    let keep = req.keep_alive;
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("PUT", ["instances", key @ ..]) if !key.is_empty() => {
            let key = key.join("/");
            let name = query_param(&req.query, "format").unwrap_or("metis");
            let Some(format) = crate::cache::GraphFormat::parse(name) else {
                error_body(
                    400,
                    &format!("unknown format `{name}` (metis|edgelist)"),
                    out,
                    keep,
                )?;
                return Ok(true);
            };
            let data = String::from_utf8_lossy(&req.body).into_owned();
            let source = crate::cache::GraphSource::Data(data);
            // Clone the source only when a journal will record it.
            let journal_copy = state.journal.is_some().then(|| source.clone());
            match state.cache.load(&key, source, format) {
                Ok((graph, outcome)) => {
                    if !outcome.cached {
                        if let Some(source) = journal_copy {
                            state.journal_instance(&key, &source, format);
                        }
                    }
                    respond_event(
                        out,
                        200,
                        &Event::Loaded {
                            instance: key,
                            vertices: graph.num_vertices(),
                            edges: graph.num_edges(),
                            cached: outcome.cached,
                            reloaded: outcome.reloaded,
                        },
                        keep,
                        &[],
                    )?
                }
                Err(message) => error_body(400, &message, out, keep)?,
            }
            Ok(true)
        }
        ("POST", ["jobs"]) => {
            let body = String::from_utf8_lossy(&req.body);
            let spec = serde_json::from_str(&body)
                .map_err(|e| format!("bad JSON body: {e}"))
                .and_then(|v| JobRequest::from_value(&v));
            let spec = match spec {
                Ok(s) => s,
                Err(message) => {
                    error_body(400, &message, out, keep)?;
                    return Ok(true);
                }
            };
            let log = EventLog::new();
            let sink = log_sink(&log, state.journal.clone());
            let reply = submit_job(state, spec, sink, conn_jobs, Some(log));
            match &reply {
                Event::Accepted { .. } => respond_event(out, 202, &reply, keep, &[])?,
                Event::Rejected { retry_after_ms, .. } => {
                    let retry = format!("Retry-After: {}", retry_after_ms.div_ceil(1000).max(1));
                    respond_event(out, 429, &reply, keep, &[retry])?;
                }
                _ => respond_event(out, 400, &reply, keep, &[])?,
            }
            Ok(true)
        }
        ("GET", ["jobs", id, "events"]) => match id.parse::<u64>().ok() {
            Some(id) => match state.event_log(id) {
                Some(log) => {
                    stream_events(out, &log)?;
                    Ok(false)
                }
                None => {
                    error_body(404, &format!("no event log for job {id}"), out, keep)?;
                    Ok(true)
                }
            },
            None => {
                error_body(400, &format!("bad job id `{id}`"), out, keep)?;
                Ok(true)
            }
        },
        ("DELETE", ["jobs", id]) => match id.parse::<u64>().ok() {
            Some(id) => {
                let known = state.cancel_job(id);
                respond_event(out, 200, &Event::Cancelling { job: id, known }, keep, &[])?;
                Ok(true)
            }
            None => {
                error_body(400, &format!("bad job id `{id}`"), out, keep)?;
                Ok(true)
            }
        },
        ("GET", ["stats"]) => {
            respond_event(out, 200, &Event::Stats(state.stats()), keep, &[])?;
            Ok(true)
        }
        ("GET", ["metrics"]) => {
            // `stats()` raises the scrape-time mirror counters first, so
            // the page always agrees with the `stats` event.
            let _ = state.stats();
            let page = state.metrics.registry.render();
            respond_raw(out, 200, ff_obs::EXPOSITION_CONTENT_TYPE, &page, keep, &[])?;
            Ok(true)
        }
        (_, ["jobs"])
        | (_, ["jobs", ..])
        | (_, ["instances", ..])
        | (_, ["stats"])
        | (_, ["metrics"]) => {
            error_body(405, &format!("{} not allowed here", req.method), out, keep)?;
            Ok(true)
        }
        _ => {
            error_body(
                404,
                &format!("no route for {} {}", req.method, req.path),
                out,
                keep,
            )?;
            Ok(true)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_decoding_handles_escapes_and_garbage() {
        assert_eq!(percent_decode("/instances/a%2Fb"), "/instances/a/b");
        assert_eq!(percent_decode("plain"), "plain");
        assert_eq!(percent_decode("bad%zz"), "bad%zz");
        assert_eq!(percent_decode("trail%2"), "trail%2");
        assert_eq!(percent_decode("%41%42"), "AB");
    }

    #[test]
    fn query_params_are_found_by_name() {
        assert_eq!(query_param("format=edgelist", "format"), Some("edgelist"));
        assert_eq!(query_param("a=1&format=metis&b=2", "format"), Some("metis"));
        assert_eq!(query_param("formats=x", "format"), None);
        assert_eq!(query_param("", "format"), None);
    }

    #[test]
    fn log_writer_reassembles_lines_across_partial_writes() {
        let log = EventLog::new();
        let mut w = LogWriter {
            log: log.clone(),
            buf: Vec::new(),
        };
        w.write_all(b"{\"a\":").unwrap();
        w.write_all(b"1}\n{\"b\":2}\n{\"c").unwrap();
        w.write_all(b"\":3}\n").unwrap();
        log.finish();
        let (lines, done) = log.wait_since(0);
        assert!(done);
        assert_eq!(lines, vec!["{\"a\":1}", "{\"b\":2}", "{\"c\":3}"]);
    }
}

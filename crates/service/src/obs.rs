//! Service-side observability: the always-on metrics registry behind
//! `GET /metrics` and the extended `stats` event, plus the optional
//! structured operational logger behind `ffpart serve --log-format`.
//!
//! Two update disciplines keep every metric observation-only:
//!
//! * **Event-time**: completions by status, job durations, permit waits
//!   and connection traffic are recorded where the event happens — all
//!   outside the engine's RNG/chunking path.
//! * **Scrape-time mirrors**: counters the server already keeps for
//!   `stats` (submits, rejections, cache traffic) are raised to the
//!   authoritative snapshot on every scrape via [`Counter::raise_to`],
//!   so `/metrics` stays monotone and can never disagree with `stats`
//!   on direction.
//!
//! The registry is always live (a scrape of an idle server reports
//! zeros — families are pre-registered so the catalog is visible from
//! the first scrape); only the logger is opt-in.

use crate::gate::WAIT_BUCKET_MS;
use crate::protocol::{DoneInfo, JobStatus, StatsInfo};
use ff_obs::{Counter, Gauge, Histogram, LogValue, Logger, Registry};
use std::time::Duration;

/// Buckets in the job-duration histogram (the last is unbounded).
pub const DURATION_BUCKETS: usize = 6;

/// Upper bounds (inclusive, in milliseconds) of the first
/// `DURATION_BUCKETS - 1` job-duration buckets.
pub const DURATION_BUCKET_MS: [u64; DURATION_BUCKETS - 1] = [10, 100, 1_000, 10_000, 60_000];

fn ms_bounds(bounds_ms: &[u64]) -> Vec<f64> {
    bounds_ms.iter().map(|&b| b as f64).collect()
}

/// The server's metric handles plus its operational [`Logger`]. One per
/// server state; handles are cheap clones of registry series.
pub(crate) struct Metrics {
    pub(crate) registry: Registry,
    pub(crate) logger: Logger,
    // Event-time.
    completed: Counter,
    cancelled: Counter,
    deadline: Counter,
    panicked: Counter,
    job_duration_ms: Histogram,
    permit_wait_ms: Histogram,
    // Scrape-time mirrors of the counters `stats` owns.
    submitted: Counter,
    rejected: Counter,
    cache_hits: Counter,
    cache_loads: Counter,
    cache_evictions: Counter,
    cache_bytes: Gauge,
    instances: Gauge,
    jobs_in_flight: Gauge,
    gate_queued: Gauge,
    workers: Gauge,
}

impl Metrics {
    pub(crate) fn new(registry: Registry, logger: Logger) -> Metrics {
        let m = Metrics {
            completed: registry.counter_with(
                "ff_jobs_completed_total",
                "Jobs finished, by final status",
                &[("status", "completed")],
            ),
            cancelled: registry.counter_with(
                "ff_jobs_completed_total",
                "Jobs finished, by final status",
                &[("status", "cancelled")],
            ),
            deadline: registry.counter_with(
                "ff_jobs_completed_total",
                "Jobs finished, by final status",
                &[("status", "deadline")],
            ),
            panicked: registry.counter(
                "ff_jobs_panicked_total",
                "Job driver threads that panicked (slot and permit were released)",
            ),
            job_duration_ms: registry.histogram(
                "ff_job_duration_ms",
                "Wall-clock milliseconds from job start to done",
                &ms_bounds(&DURATION_BUCKET_MS),
            ),
            permit_wait_ms: registry.histogram(
                "ff_permit_wait_ms",
                "Milliseconds a job chunk blocked waiting for a compute slot",
                &ms_bounds(&WAIT_BUCKET_MS),
            ),
            submitted: registry.counter("ff_jobs_submitted_total", "Jobs admitted since start"),
            rejected: registry.counter(
                "ff_jobs_rejected_total",
                "Jobs refused by admission control",
            ),
            cache_hits: registry.counter("ff_cache_hits_total", "Instance-cache hits served"),
            cache_loads: registry.counter(
                "ff_cache_loads_total",
                "Graph loads (parse + CSR build) performed",
            ),
            cache_evictions: registry.counter(
                "ff_cache_evictions_total",
                "Instances evicted to stay within the cache byte budget",
            ),
            cache_bytes: registry.gauge("ff_cache_bytes", "CSR bytes resident in the cache"),
            instances: registry.gauge("ff_cache_instances", "Instances currently cached"),
            jobs_in_flight: registry.gauge(
                "ff_jobs_in_flight",
                "Jobs admitted and not yet done (queued + running)",
            ),
            gate_queued: registry.gauge(
                "ff_gate_queued",
                "Job chunks currently blocked waiting for a compute slot",
            ),
            workers: registry.gauge("ff_workers", "Worker-pool width (compute slots)"),
            registry,
            logger,
        };
        // Pre-register the families event-driven paths fill in later, so
        // the full catalog (connections, distributed coordination) is
        // present — at zero — from the first scrape.
        for proto in ["ndjson", "http"] {
            m.registry.counter_with(
                "ff_connections_opened_total",
                "Client connections accepted, by front-end",
                &[("proto", proto)],
            );
            m.registry.gauge_with(
                "ff_connections_open",
                "Client connections currently open, by front-end",
                &[("proto", proto)],
            );
        }
        dist_families(&m.registry);
        journal_families(&m.registry);
        m
    }

    /// Records one finished job: status-labelled completion count, the
    /// duration histogram, and the `done` span log line.
    pub(crate) fn job_done(&self, done: &DoneInfo) {
        let status = match done.status {
            JobStatus::Completed => {
                self.completed.inc();
                "completed"
            }
            JobStatus::Cancelled => {
                self.cancelled.inc();
                "cancelled"
            }
            JobStatus::Deadline => {
                self.deadline.inc();
                "deadline"
            }
        };
        self.job_duration_ms.observe(done.elapsed_ms as f64);
        self.logger.log(
            "done",
            Some(done.job),
            &[
                ("status", LogValue::Str(status)),
                ("value", LogValue::F64(done.value)),
                ("steps", LogValue::U64(done.steps)),
                ("elapsed_ms", LogValue::U64(done.elapsed_ms)),
                ("migrations", LogValue::U64(done.migrations)),
            ],
        );
    }

    /// Records a driver-thread panic: the counter plus a `panic` span
    /// line. The guard that calls this has already released the job's
    /// registry slot, so the count measures lost *results*, not lost
    /// capacity.
    pub(crate) fn job_panicked(&self, job: u64) {
        self.panicked.inc();
        self.logger
            .log("panic", Some(job), &[("released", LogValue::Bool(true))]);
    }

    /// Raises the status-labelled completion counters to what the
    /// journal replayed — [`Counter::raise_to`], so a replay can only
    /// move the scrape forward, exactly like the stats mirrors.
    pub(crate) fn replay_totals(&self, completed: u64, cancelled: u64, deadline: u64) {
        self.completed.raise_to(completed);
        self.cancelled.raise_to(cancelled);
        self.deadline.raise_to(deadline);
    }

    /// Feeds one journaled `done` duration into the histogram, so a
    /// restarted server's duration profile covers its whole history.
    pub(crate) fn replay_duration(&self, elapsed_ms: u64) {
        self.job_duration_ms.observe(elapsed_ms as f64);
    }

    /// Records how long one chunk blocked on the gate. Separate from the
    /// gate's own histogram (which `stats` keeps as ground truth): this
    /// one is measured at the job driver and rendered as a Prometheus
    /// histogram with `sum`/`count`.
    pub(crate) fn permit_wait(&self, waited: Duration) {
        self.permit_wait_ms.observe(waited.as_secs_f64() * 1e3);
    }

    /// Counts a connection open and returns a guard that counts the
    /// close when dropped.
    pub(crate) fn connection(&self, proto: &'static str) -> ConnectionGuard {
        self.registry
            .counter_with(
                "ff_connections_opened_total",
                "Client connections accepted, by front-end",
                &[("proto", proto)],
            )
            .inc();
        let open = self.registry.gauge_with(
            "ff_connections_open",
            "Client connections currently open, by front-end",
            &[("proto", proto)],
        );
        open.add(1.0);
        ConnectionGuard { open }
    }

    /// Per-bucket counts of the job-duration histogram (the `stats`
    /// event carries them alongside the gate's permit-wait histogram).
    pub(crate) fn job_duration_counts(&self) -> [u64; DURATION_BUCKETS] {
        let counts = self.job_duration_ms.counts();
        std::array::from_fn(|i| counts[i])
    }

    /// Jobs that finished cancelled (the `stats` event's counter).
    pub(crate) fn jobs_cancelled(&self) -> u64 {
        self.cancelled.get()
    }

    /// Raises the mirror counters to `stats`'s authoritative snapshot
    /// and sets the point-in-time gauges. Called on every `stats`
    /// request and `/metrics` scrape.
    pub(crate) fn sync(&self, st: &StatsInfo) {
        self.submitted.raise_to(st.jobs_submitted);
        self.rejected.raise_to(st.jobs_rejected);
        self.cache_hits.raise_to(st.cache_hits);
        self.cache_loads.raise_to(st.cache_loads);
        self.cache_evictions.raise_to(st.cache_evictions);
        self.cache_bytes.set(st.cache_bytes as f64);
        self.instances.set(st.instances as f64);
        self.jobs_in_flight.set(st.jobs_running as f64);
        self.gate_queued.set(st.gate_queued as f64);
        self.workers.set(st.workers as f64);
    }
}

/// Decrements the per-front-end open-connections gauge on drop.
pub(crate) struct ConnectionGuard {
    open: Gauge,
}

impl Drop for ConnectionGuard {
    fn drop(&mut self) {
        self.open.add(-1.0);
    }
}

/// Bucket bounds for the distributed coordinator's replay-length
/// histogram (ops replayed into a respawned worker).
const REPLAY_BUCKETS: [f64; 5] = [1.0, 10.0, 100.0, 1000.0, 10000.0];

/// Registers the distributed-coordinator metric families on `registry`
/// (zero-valued until a coordinator runs with this registry via
/// [`DistOpts::obs`](crate::dist::DistOpts)). Idempotent.
pub(crate) fn dist_families(registry: &Registry) {
    for kind in ["dead", "timeout", "corrupt"] {
        registry.counter_with(
            "ff_dist_wire_failures_total",
            "Worker wire failures observed by the coordinator, by kind",
            &[("kind", kind)],
        );
    }
    registry.counter(
        "ff_dist_respawns_total",
        "Workers respawned/reconnected after a wire failure",
    );
    registry.histogram(
        "ff_dist_replay_ops",
        "Ops replayed into a freshly respawned worker",
        &REPLAY_BUCKETS,
    );
}

/// Records one wire failure: the by-kind counter plus the length of the
/// op log about to be replayed.
pub(crate) fn dist_wire_failure(registry: &Registry, kind: &'static str, replay_ops: usize) {
    registry
        .counter_with(
            "ff_dist_wire_failures_total",
            "Worker wire failures observed by the coordinator, by kind",
            &[("kind", kind)],
        )
        .inc();
    registry
        .histogram(
            "ff_dist_replay_ops",
            "Ops replayed into a freshly respawned worker",
            &REPLAY_BUCKETS,
        )
        .observe(replay_ops as f64);
}

/// Counts one worker respawn/reconnect attempt.
pub(crate) fn dist_respawn(registry: &Registry) {
    registry
        .counter(
            "ff_dist_respawns_total",
            "Workers respawned/reconnected after a wire failure",
        )
        .inc();
}

/// Sets the per-worker epoch gauge — the coordinator updates it as each
/// shard's `wadvance` completes, so a dashboard can read epoch lag
/// (max − min across workers) directly.
pub(crate) fn dist_worker_epoch(registry: &Registry, worker: usize, epoch: u64) {
    registry
        .gauge_with(
            "ff_dist_worker_epoch",
            "Lockstep epoch each worker has completed",
            &[("worker", &worker.to_string())],
        )
        .set(epoch as f64);
}

/// Registers the journal metric families on `registry` so they render —
/// at zero — from the first scrape, journal or no journal. Idempotent.
pub(crate) fn journal_families(registry: &Registry) {
    for kind in ["instance", "submitted", "event"] {
        journal_record_counter(registry, kind);
    }
    journal_write_errors(registry);
    journal_replayed_records(registry);
    for outcome in ["finished", "resumed", "skipped"] {
        journal_replay_jobs(registry, outcome);
    }
}

/// The by-kind appended-records counter.
pub(crate) fn journal_record_counter(registry: &Registry, kind: &'static str) -> Counter {
    registry.counter_with(
        "ff_journal_records_total",
        "Journal records appended, by kind",
        &[("kind", kind)],
    )
}

/// Appends that failed (the journal may be missing recent history).
pub(crate) fn journal_write_errors(registry: &Registry) -> Counter {
    registry.counter(
        "ff_journal_write_errors_total",
        "Journal appends that failed; recent history may be missing from the journal",
    )
}

/// Intact records read back at startup replay.
pub(crate) fn journal_replayed_records(registry: &Registry) -> Counter {
    registry.counter(
        "ff_journal_replayed_records_total",
        "Intact journal records read at startup replay",
    )
}

/// The by-outcome replayed-jobs counter (`finished` restored without
/// re-execution, `resumed` re-executed, `skipped` invalidated).
pub(crate) fn journal_replay_jobs(registry: &Registry, outcome: &'static str) -> Counter {
    registry.counter_with(
        "ff_journal_replay_jobs_total",
        "Jobs seen at journal replay, by outcome",
        &[("outcome", outcome)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ff_obs::parse_exposition;

    fn done(status: JobStatus, elapsed_ms: u64) -> DoneInfo {
        DoneInfo {
            job: 1,
            status,
            value: 0.5,
            parts: 2,
            steps: 100,
            elapsed_ms,
            migrations: 0,
            assignment: None,
            pareto: None,
        }
    }

    #[test]
    fn idle_server_catalog_is_complete_and_zero() {
        let m = Metrics::new(Registry::new(), Logger::off());
        m.sync(&StatsInfo::default());
        let page = m.registry.render();
        let samples = parse_exposition(&page).unwrap();
        for family in [
            "ff_jobs_submitted_total",
            "ff_jobs_completed_total",
            "ff_jobs_rejected_total",
            "ff_cache_loads_total",
            "ff_connections_opened_total",
            "ff_dist_respawns_total",
            "ff_dist_wire_failures_total",
            "ff_journal_records_total",
            "ff_journal_replay_jobs_total",
            "ff_jobs_panicked_total",
        ] {
            assert!(
                samples.iter().any(|s| s.name == family),
                "{family} missing from idle scrape"
            );
        }
        assert!(samples
            .iter()
            .filter(|s| s.name.ends_with("_total"))
            .all(|s| s.value == 0.0));
    }

    #[test]
    fn job_done_feeds_status_counters_and_duration_histogram() {
        let m = Metrics::new(Registry::new(), Logger::off());
        m.job_done(&done(JobStatus::Completed, 5));
        m.job_done(&done(JobStatus::Completed, 500));
        m.job_done(&done(JobStatus::Cancelled, 50));
        assert_eq!(m.jobs_cancelled(), 1);
        let counts = m.job_duration_counts();
        assert_eq!(counts.iter().sum::<u64>(), 3);
        assert_eq!(counts[0], 1); // ≤ 10 ms
        assert_eq!(counts[1], 1); // ≤ 100 ms
        assert_eq!(counts[2], 1); // ≤ 1 s
    }

    #[test]
    fn sync_mirrors_are_monotone_even_on_stale_snapshots() {
        let m = Metrics::new(Registry::new(), Logger::off());
        let mut st = StatsInfo {
            jobs_submitted: 10,
            ..StatsInfo::default()
        };
        m.sync(&st);
        st.jobs_submitted = 7; // a lagging snapshot must not lower it
        m.sync(&st);
        let page = m.registry.render();
        assert!(
            page.contains("ff_jobs_submitted_total 10"),
            "counter regressed:\n{page}"
        );
    }

    #[test]
    fn connection_guard_tracks_open_count() {
        let m = Metrics::new(Registry::new(), Logger::off());
        let a = m.connection("ndjson");
        let b = m.connection("ndjson");
        let _c = m.connection("http");
        drop(a);
        drop(b);
        let page = m.registry.render();
        assert!(
            page.contains("ff_connections_open{proto=\"http\"} 1"),
            "{page}"
        );
        assert!(
            page.contains("ff_connections_open{proto=\"ndjson\"} 0"),
            "{page}"
        );
        assert!(
            page.contains("ff_connections_opened_total{proto=\"ndjson\"} 2"),
            "{page}"
        );
    }
}
